"""Tests for report rendering."""

from repro.experiments.report import (_fmt_x, ascii_chart, format_table,
                                      shape_summary)
from repro.experiments.runner import SeriesStats, SweepResult


def sample_result():
    return SweepResult(
        name="figX", title="A sweep", xlabel="dynamism",
        x_values=[0.0, 0.5, 1.0],
        series={
            "nothing": SeriesStats(mean=[100.0, 200.0, 300.0],
                                   std=[1.0, 2.0, 3.0],
                                   raw=[[100.0], [200.0], [300.0]],
                                   swap_counts=[0.0, 0.0, 0.0]),
            "swap-greedy": SeriesStats(mean=[110.0, 150.0, 310.0],
                                       std=[1.0, 2.0, 3.0],
                                       raw=[[110.0], [150.0], [310.0]],
                                       swap_counts=[0.0, 3.0, 9.0]),
        },
        seeds=[0], paper_claim="the claim")


def test_table_contains_all_cells():
    text = format_table(sample_result(), baseline="nothing")
    assert "A sweep" in text
    assert "nothing" in text and "swap-greedy" in text
    for value in ("100.0", "150.0", "310.0"):
        assert value in text
    assert "(0.75)" in text  # 150/200 ratio column
    assert "the claim" in text


def test_table_event_counts_optional():
    plain = format_table(sample_result())
    with_events = format_table(sample_result(), show_events=True)
    assert "[  3.0]" not in plain
    assert "[  3.0]" in with_events


def test_chart_renders_legend_and_axis():
    text = ascii_chart(sample_result())
    assert "o nothing" in text
    assert "* swap-greedy" in text
    assert "dynamism" in text
    # y-axis spans the data range
    assert "310.0" in text and "100.0" in text


def test_chart_single_x_value():
    result = sample_result()
    result.x_values = [0.5]
    for stats in result.series.values():
        stats.mean = stats.mean[:1]
    text = ascii_chart(result)
    assert "o" in text


def test_shape_summary_ratios():
    text = shape_summary(sample_result(), baseline="nothing")
    assert "swap-greedy" in text
    assert "best 0.75x" in text
    assert "nothing:" not in text  # baseline excluded


def test_table_zero_baseline_mean_renders_na():
    result = sample_result()
    result.series["nothing"].mean[1] = 0.0
    text = format_table(result, baseline="nothing")
    assert "( n/a)" in text
    # The other rows keep real ratios.
    assert "(1.10)" in text and "(1.03)" in text


def test_fmt_x_spells_nonfinite_like_jsonable():
    assert _fmt_x(float("inf")) == "inf"
    assert _fmt_x(float("-inf")) == "-inf"
    assert _fmt_x(float("nan")) == "nan"
    assert _fmt_x(0.25) == "0.25"
    assert _fmt_x(250.0) == "250"


def test_table_with_inf_x_value():
    result = sample_result()
    result.x_values = [0.0, 0.5, float("inf")]
    text = format_table(result, baseline="nothing")
    assert "inf" in text.splitlines()[-3]


def test_chart_single_point_spells_axis_endpoints():
    result = sample_result()
    result.x_values = [float("inf")]
    for stats in result.series.values():
        stats.mean = stats.mean[:1]
    text = ascii_chart(result)
    assert "inf .. inf" in text


def test_chart_flat_series_does_not_divide_by_zero():
    result = sample_result()
    for stats in result.series.values():
        stats.mean = [5.0, 5.0, 5.0]
    text = ascii_chart(result)
    assert "o" in text and "*" in text
