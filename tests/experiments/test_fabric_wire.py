"""Framing-layer fuzz and hostility tests for the fabric wire module.

The `_SocketChannel` framing is transport-agnostic over the socket
family, so every test here runs twice: once over a UNIX socketpair
(the `socket` transport) and once over a loopback TCP connection (the
`tcp` transport).  The hostile-input tests pin the three wire bugfixes:
oversize headers are refused before allocation, un-sendable frames are
typed errors rather than raw ``struct.error``, and mid-frame hang-ups
report how far the frame got.
"""

import pickle
import socket
import struct

import pytest

from repro.errors import FabricError
from repro.experiments.fabric.wire import (
    ASSIGN_CELLS,
    HELLO,
    MAX_FRAME_BYTES,
    REQUEST_WORK,
    ChannelClosed,
    Envelope,
    HandshakeInfo,
    _SocketChannel,
    check_hello,
    restricted_loads,
)

_HEADER = struct.Struct(">I")


def _unix_pair():
    return socket.socketpair()


def _tcp_pair():
    listener = socket.create_server(("127.0.0.1", 0))
    client = socket.create_connection(listener.getsockname()[:2])
    server, _ = listener.accept()
    listener.close()
    return client, server


_PAIRS = {"unix": _unix_pair, "tcp": _tcp_pair}


@pytest.fixture(params=sorted(_PAIRS))
def sock_pair(request):
    a, b = _PAIRS[request.param]()
    yield a, b
    a.close()
    b.close()


def _frame(env: Envelope) -> bytes:
    body = pickle.dumps(env.to_wire(), protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(len(body)) + body


# -- happy-path framing, adversarially delivered ----------------------------


def test_torn_frames_reassemble_at_every_split(sock_pair):
    """A frame split at any byte boundary must still decode."""
    wire, far = sock_pair
    channel = _SocketChannel(far)
    env = Envelope(kind=ASSIGN_CELLS, sender="coordinator",
                   payload={"lease": 7, "cells": [{"xi": 0, "si": 1}]})
    frame = _frame(env)
    for split in range(1, len(frame)):
        wire.sendall(frame[:split])
        # A partial frame must never decode (even as garbage) ...
        assert channel.recv(timeout=0.01) is None
        wire.sendall(frame[split:])
        # ... and the reassembled one must decode exactly.
        got = channel.recv(timeout=5.0)
        assert got == env


def test_interleaved_frames_arrive_in_order(sock_pair):
    wire, far = sock_pair
    channel = _SocketChannel(far)
    envs = [Envelope(kind=REQUEST_WORK, sender=f"w{i}",
                     payload={"i": i}) for i in range(5)]
    blob = b"".join(_frame(env) for env in envs)
    # One write carrying five frames, torn mid-stream for good measure.
    wire.sendall(blob[:17])
    wire.sendall(blob[17:])
    got = [channel.recv(timeout=5.0) for _ in envs]
    assert got == envs


def test_poll_buffers_one_pending_frame(sock_pair):
    wire, far = sock_pair
    channel = _SocketChannel(far)
    env = Envelope(kind=REQUEST_WORK, sender="w0")
    wire.sendall(_frame(env))
    deadline_polls = 100
    while not channel.poll() and deadline_polls:
        deadline_polls -= 1
    assert channel.recv(timeout=1.0) == env


# -- hostile input ----------------------------------------------------------


def test_zero_length_frame_is_rejected(sock_pair):
    wire, far = sock_pair
    channel = _SocketChannel(far)
    wire.sendall(_HEADER.pack(0))
    with pytest.raises(ChannelClosed, match="undecodable 0-byte frame"):
        channel.recv(timeout=5.0)


def test_oversize_header_rejected_before_allocation(sock_pair):
    """A hostile 4-byte header demanding 2 GiB must die instantly --
    without the receiver waiting for (or allocating) the body."""
    wire, far = sock_pair
    channel = _SocketChannel(far)
    length = 1 << 31
    wire.sendall(_HEADER.pack(length))
    with pytest.raises(ChannelClosed, match=str(length)):
        channel.recv(timeout=5.0)
    assert length > MAX_FRAME_BYTES  # the header alone trips the limit


def test_oversize_send_is_typed_not_struct_error(sock_pair):
    wire, far = sock_pair
    channel = _SocketChannel(wire, max_frame_bytes=64)
    env = Envelope(kind=ASSIGN_CELLS, sender="coordinator",
                   payload={"blob": "x" * 4096})
    with pytest.raises(ChannelClosed, match="refusing to send"):
        channel.send(env)
    far.setblocking(False)  # nothing must have hit the wire
    with pytest.raises(BlockingIOError):
        far.recv(1)


def test_unpicklable_payload_is_typed(sock_pair):
    wire, _far = sock_pair
    channel = _SocketChannel(wire)
    env = Envelope(kind=REQUEST_WORK, sender="w0",
                   payload={"sock": wire})  # sockets cannot pickle
    with pytest.raises(FabricError, match="unpicklable"):
        channel.send(env)


def test_midframe_hangup_reports_progress(sock_pair):
    """Peer death halfway through a frame names the buffered byte count
    and the expected frame length (satellite bugfix 3)."""
    wire, far = sock_pair
    channel = _SocketChannel(far)
    env = Envelope(kind=ASSIGN_CELLS, sender="coordinator",
                   payload={"cells": list(range(50))})
    frame = _frame(env)
    sent = len(frame) // 2
    wire.sendall(frame[:sent])
    wire.close()
    with pytest.raises(ChannelClosed) as exc_info:
        channel.recv(timeout=5.0)
    message = str(exc_info.value)
    assert "mid-frame" in message
    assert f"{sent} buffered byte(s)" in message
    assert f"{len(frame) - _HEADER.size}-byte frame" in message


def test_clean_hangup_is_still_plain(sock_pair):
    wire, far = sock_pair
    channel = _SocketChannel(far)
    wire.close()
    with pytest.raises(ChannelClosed, match="hung up$"):
        channel.recv(timeout=5.0)


def test_forbidden_global_pickle_is_rejected(sock_pair):
    """The classic RCE gadget -- a frame whose pickle imports
    ``os.system`` -- must die in the restricted unpickler, not run."""
    wire, far = sock_pair
    channel = _SocketChannel(far)
    gadget = b"cos\nsystem\n(S'true'\ntR."
    wire.sendall(_HEADER.pack(len(gadget)) + gadget)
    with pytest.raises(ChannelClosed, match="undecodable"):
        channel.recv(timeout=5.0)


def test_benign_class_pickle_is_also_rejected(sock_pair):
    """Even a harmless non-primitive (an Envelope instance itself)
    is refused: the allow-list is the primitive set, full stop."""
    wire, far = sock_pair
    channel = _SocketChannel(far)
    body = pickle.dumps(Envelope(kind=REQUEST_WORK, sender="w0"))
    wire.sendall(_HEADER.pack(len(body)) + body)
    with pytest.raises(ChannelClosed, match="undecodable"):
        channel.recv(timeout=5.0)


# -- the restricted unpickler, unit-level -----------------------------------


def test_restricted_loads_accepts_primitives():
    data = {"kind": "HEARTBEAT", "sender": "w1",
            "payload": {"cells_done": 3, "walls": [0.1, None, True]},
            "version": 2}
    blob = pickle.dumps(data, protocol=pickle.HIGHEST_PROTOCOL)
    assert restricted_loads(blob) == data


def test_restricted_loads_refuses_globals():
    blob = pickle.dumps(struct.Struct)  # any importable global
    with pytest.raises(pickle.UnpicklingError, match="plain data only"):
        restricted_loads(blob)


# -- the HELLO token check, unit-level --------------------------------------


def test_non_ascii_token_is_rejected_not_crashed():
    """``hmac.compare_digest`` raises TypeError on non-ASCII str args,
    and the HELLO token is attacker-supplied -- the gate must compare
    bytes so a hostile token costs the peer admission, not the
    coordinator its sweep."""
    info = HandshakeInfo(token="sesame", scenario="s", fingerprint="f")
    hello = Envelope(kind=HELLO, sender="?",
                     payload={"token": "sésame€"})
    assert check_hello(hello, info) == "bad token"


def test_non_ascii_shared_secret_still_admits():
    info = HandshakeInfo(token="sésame", scenario="s", fingerprint="f")
    hello = Envelope(kind=HELLO, sender="?",
                     payload={"token": "sésame", "fingerprint": "f"})
    assert check_hello(hello, info) is None
