"""Boundary timing of the coordinator's liveness clock, on a fake clock.

The fabric's lease-expiry rule is ``now - last_seen > lease_timeout``
(strictly greater): a heartbeat landing *exactly* at the timeout keeps
the worker.  These tests drive :class:`Coordinator` internals directly
with hand-built worker handles and an injected monotonic clock, so every
boundary is exact -- no sleeps, no real transports.

Also here: the worker-lifetime accounting regression (each id's *final*
lifetime is recorded exactly once; the old ``setdefault`` on the
shutdown path could freeze a stale value recorded at revoke time).
"""

import json
from collections import deque

import pytest

from repro.app.iterative import ApplicationSpec
from repro.errors import FabricError
from repro.experiments.executor import CellResult, compute_cell
from repro.experiments.fabric import (
    CELL_RESULT,
    HEARTBEAT,
    Coordinator,
    Envelope,
    FabricConfig,
    WorkerHandle,
    _Lease,
    _Worker,
)
from repro.experiments.scenarios import ExperimentSpec
from repro.load.base import ConstantLoadModel
from repro.platform.cluster import make_platform
from repro.strategies.nothing import NothingStrategy


def _build(x, seed):
    platform = make_platform(3, ConstantLoadModel(int(x)), seed=seed,
                             speed_range=(100e6, 200e6))
    app = ApplicationSpec(n_processes=2, iterations=2,
                          flops_per_iteration=1e8)
    return platform, [("nothing", app, NothingStrategy())]


SPEC = ExperimentSpec(name="timing-spec", title="timing", xlabel="n",
                      x_values=(0.0, 1.0), build=_build,
                      paper_claim="toy", default_seeds=1)


class FakeClock:
    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> float:
        self.now += dt
        return self.now


class FakeChannel:
    """A scripted coordinator-side channel: the test enqueues envelopes."""

    def __init__(self) -> None:
        self.inbox: "deque[Envelope]" = deque()
        self.sent: "list[Envelope]" = []
        self.closed = False

    def push(self, kind: str, sender: str, **payload) -> None:
        self.inbox.append(Envelope(kind=kind, sender=sender,
                                   payload=payload))

    def poll(self) -> bool:
        return bool(self.inbox)

    def recv(self, timeout=None):
        return self.inbox.popleft() if self.inbox else None

    def send(self, env: Envelope) -> None:
        self.sent.append(env)

    def close(self) -> None:
        self.closed = True


def _coordinator(clock, *, lease_timeout=30.0, max_worker_restarts=0):
    config = FabricConfig(workers=1, transport="thread",
                          lease_timeout=lease_timeout,
                          max_worker_restarts=max_worker_restarts)
    return Coordinator(SPEC, [0], config=config, cache=None,
                       instrument=False, clock=clock)


def _register(coord, worker_id, *, started=0.0, alive=True):
    """Install a hand-built live worker into the coordinator."""
    channel = FakeChannel()
    handle = WorkerHandle(worker_id=worker_id, channel=channel,
                          is_alive=lambda: alive, kill=lambda: None,
                          join=lambda timeout: None, started=started)
    coord._workers[worker_id] = _Worker(handle=handle, last_seen=started)
    return channel


def _lease(coord, worker_id, keys):
    """Give the worker an outstanding lease over ``keys`` and register
    the matching cell specs as still-pending work."""
    worker = coord._workers[worker_id]
    for xi, si in keys:
        coord._cell_specs[(xi, si)] = {"xi": xi, "si": si, "x": float(xi),
                                       "seed": si, "digest": "d" * 64}
    worker.lease = _Lease(lease_id=coord._next_lease, worker_id=worker_id,
                          outstanding=set(keys))
    coord._next_lease += 1


# -- heartbeat exactly at the timeout ---------------------------------------


def test_heartbeat_exactly_at_lease_timeout_keeps_worker():
    clock = FakeClock()
    coord = _coordinator(clock, lease_timeout=30.0)
    channel = _register(coord, "w0", started=0.0)
    channel.push(HEARTBEAT, "w0", cells_done=0)
    clock.now = 30.0  # exactly the timeout: silence is NOT yet > timeout
    assert coord._drive() is True
    assert "w0" in coord._workers
    assert coord.stats.workers_lost == 0
    assert coord.stats.heartbeats == 1
    assert coord._workers["w0"].last_seen == 30.0


def test_silence_exactly_at_lease_timeout_keeps_worker():
    # The strict-> boundary without any message at all: a worker last
    # seen at t=0 survives the poll at t=30.0 and dies at t=30.000001.
    clock = FakeClock()
    coord = _coordinator(clock, lease_timeout=30.0)
    _register(coord, "w0", started=0.0)
    _register(coord, "w1", started=0.0)  # fleet survivor
    clock.now = 30.0
    coord._drive()
    assert "w0" in coord._workers
    clock.now = 30.000001
    coord._drive()
    assert "w0" not in coord._workers
    assert coord.stats.workers_lost == 2  # both were equally silent


def test_expired_lease_requeues_outstanding_cells_in_grid_order():
    clock = FakeClock()
    coord = _coordinator(clock, lease_timeout=10.0)
    _register(coord, "w0", started=0.0)
    _register(coord, "w1", started=0.0)
    coord._workers["w1"].last_seen = 5.0  # w1 stays inside the window
    _lease(coord, "w0", [(1, 0), (0, 0)])
    clock.now = 10.5
    coord._drive()
    assert "w0" not in coord._workers
    assert coord.stats.revoked_leases == 1
    assert coord.stats.requeued_cells == 2
    assert [(c["xi"], c["si"]) for c in coord.queue] == [(0, 0), (1, 0)]
    assert "w1" in coord._workers


# -- revoke-vs-result clock ordering ----------------------------------------


def _cell_payload():
    cell = compute_cell(SPEC, 0.0, 0)
    return cell.to_payload()


def test_result_already_queued_beats_the_revoke():
    # The worker went silent past the timeout, but its CELL_RESULT is
    # already sitting in the channel when the poll round runs.  Messages
    # are pumped before expiry is checked -- with the same ``now`` -- so
    # the result lands, refreshes liveness, and the worker survives.
    clock = FakeClock()
    coord = _coordinator(clock, lease_timeout=10.0)
    channel = _register(coord, "w0", started=0.0)
    _lease(coord, "w0", [(0, 0)])
    channel.push(CELL_RESULT, "w0", lease=0, xi=0, si=0, x=0.0, seed=0,
                 ok=True, cell=_cell_payload(), wall_s=0.25)
    clock.now = 11.0  # past the timeout
    coord._drive()
    assert "w0" in coord._workers
    assert (0, 0) in coord.cells
    assert coord.cell_walls == [0.25]
    assert coord.stats.workers_lost == 0


def test_result_after_revoke_and_recompute_is_a_counted_duplicate():
    # w0's lease expired and (0, 0) was recomputed by w1; the stale
    # result w0 pushed before dying must count as a duplicate and leave
    # the first-won cell untouched.
    clock = FakeClock()
    coord = _coordinator(clock, lease_timeout=10.0)
    _register(coord, "w0", started=0.0)
    w1_channel = _register(coord, "w1", started=0.0)
    coord._workers["w1"].last_seen = 8.0
    _lease(coord, "w0", [(0, 0)])
    clock.now = 10.5
    coord._drive()  # w0 revoked, (0, 0) requeued
    assert coord.queue and "w0" not in coord._workers

    payload = _cell_payload()
    w1_channel.push(CELL_RESULT, "w1", lease=1, xi=0, si=0, x=0.0,
                    seed=0, ok=True, cell=payload, wall_s=0.1)
    clock.now = 11.0
    coord._drive()
    first = coord.cells[(0, 0)]
    assert coord.stats.duplicate_results == 0

    w1_channel.push(CELL_RESULT, "w1", lease=0, xi=0, si=0, x=0.0,
                    seed=0, ok=True, cell=payload, wall_s=9.9)
    clock.now = 12.0
    coord._drive()
    assert coord.stats.duplicate_results == 1
    assert coord.cells[(0, 0)] is first
    assert coord.cell_walls == [0.1]  # the duplicate's wall is ignored


def test_all_workers_lost_with_no_restart_budget_raises():
    clock = FakeClock()
    coord = _coordinator(clock, lease_timeout=10.0,
                         max_worker_restarts=0)
    _register(coord, "w0", started=0.0)
    coord._cell_specs[(0, 0)] = {"xi": 0, "si": 0, "x": 0.0, "seed": 0,
                                 "digest": "d" * 64}
    clock.now = 20.0
    with pytest.raises(FabricError, match="restart budget"):
        coord._drive()


# -- worker-lifetime accounting (the setdefault regression) -----------------


def test_lifetime_recorded_once_on_loss():
    clock = FakeClock()
    coord = _coordinator(clock, lease_timeout=10.0)
    _register(coord, "w0", started=2.0)
    _register(coord, "w1", started=0.0)
    coord._workers["w1"].last_seen = 9.0
    clock.now = 14.0
    coord._drive()  # w0 silent for 12s > 10s
    assert coord.stats.worker_lifetimes == {"w0": 12.0}


def test_shutdown_lifetime_wins_over_stale_revoke_lifetime():
    # Regression: a worker id revoked at t=10 (lifetime 10) that is
    # *re-registered* and still alive at shutdown must record its final
    # lifetime -- the old ``setdefault`` froze the stale 10.0 forever.
    clock = FakeClock()
    coord = _coordinator(clock, lease_timeout=10.0)
    _register(coord, "w0", started=0.0)
    _register(coord, "keeper", started=0.0)
    coord._workers["keeper"].last_seen = 9.0
    clock.now = 10.5
    coord._drive()
    assert coord.stats.worker_lifetimes["w0"] == 10.5

    _register(coord, "w0", started=5.0)  # same id, later registration
    coord._workers["w0"].last_seen = clock.now
    clock.now = 50.0
    coord._shutdown_fleet()
    assert coord.stats.worker_lifetimes["w0"] == 45.0  # not the stale 10.5
    assert coord.stats.worker_lifetimes["keeper"] == 50.0
    assert not coord._workers


def test_shutdown_records_every_worker_exactly_once():
    clock = FakeClock()
    coord = _coordinator(clock)
    _register(coord, "w0", started=1.0)
    _register(coord, "w1", started=3.0)
    clock.now = 7.0
    coord._shutdown_fleet()
    assert coord.stats.worker_lifetimes == {"w0": 6.0, "w1": 4.0}


# -- telemetry stays out of the deterministic result ------------------------


def test_fake_clock_run_with_telemetry_is_byte_identical(tmp_path):
    """End-to-end on the thread transport: telemetry on vs off."""
    from repro.experiments.fabric import execute_sweep_fabric

    plain, _, _ = execute_sweep_fabric(SPEC, seeds=1, workers=2,
                                       transport="thread")
    run_dir = tmp_path / "rt"
    traced, _, _ = execute_sweep_fabric(SPEC, seeds=1, workers=2,
                                        transport="thread",
                                        runtime_dir=run_dir)
    assert json.dumps(plain.to_dict(), sort_keys=True) == \
        json.dumps(traced.to_dict(), sort_keys=True)
    names = {p.name for p in run_dir.iterdir()}
    assert "spans-coordinator.jsonl" in names
    assert "timeline.trace.json" in names
    assert "metrics.prom" in names
    doc = json.loads((run_dir / "timeline.trace.json").read_text())
    track_names = {e["args"]["name"] for e in doc["traceEvents"]
                   if e["ph"] == "M"}
    assert "coordinator" in track_names
    assert any(n.startswith("worker ") for n in track_names)
