"""Tests for sweep-result export (JSON / CSV) and the CLI flags."""

import csv
import json

from repro.experiments.cli import main
from repro.experiments.runner import SweepResult, run_sweep
from tests.experiments.test_runner import tiny_spec


def test_to_dict_roundtrip():
    result = run_sweep(tiny_spec(), seeds=2)
    clone = SweepResult.from_dict(result.to_dict())
    assert clone.name == result.name
    assert clone.x_values == result.x_values
    assert clone.mean_of("nothing") == result.mean_of("nothing")
    assert clone.series["swap-greedy"].raw == result.series["swap-greedy"].raw


def test_to_json_file(tmp_path):
    result = run_sweep(tiny_spec(), seeds=1)
    path = tmp_path / "sweep.json"
    result.to_json(path)
    payload = json.loads(path.read_text())
    assert payload["name"] == "tiny"
    assert set(payload["series"]) == {"nothing", "swap-greedy"}
    assert len(payload["x_values"]) == 3


def test_to_csv_file(tmp_path):
    result = run_sweep(tiny_spec(), seeds=1)
    path = tmp_path / "sweep.csv"
    result.to_csv(path)
    with open(path) as handle:
        rows = list(csv.reader(handle))
    assert rows[0][0] == "x"
    assert "nothing_mean" in rows[0]
    assert len(rows) == 1 + 3  # header + one row per x value
    assert float(rows[1][0]) == 0.0


def test_cli_export_flags(tmp_path, capsys):
    json_path = tmp_path / "fig4.json"
    csv_path = tmp_path / "fig4.csv"
    assert main(["fig4", "--seeds", "1", "--no-cache", "--no-bench",
                 "--json", str(json_path), "--csv", str(csv_path)]) == 0
    assert json_path.exists() and csv_path.exists()
    payload = json.loads(json_path.read_text())
    assert payload["name"] == "fig4"
    out = capsys.readouterr().out
    assert "wrote" in out
