"""Tests for the Fig. 1-3 illustration helpers."""

import pytest

from repro.experiments.illustrations import (
    ascii_load_strip,
    ascii_progress,
    fig1_payback,
    fig2_onoff_trace,
    fig3_hyperexp_trace,
)


def test_fig1_pause_equals_swap_cost():
    illustration = fig1_payback()
    start, end = illustration.swap_pause
    assert end - start == pytest.approx(illustration.swap_cost, rel=0.05)


def test_fig1_analytic_payback_matches_example_algebra():
    illustration = fig1_payback()
    # Performance doubles (20 s -> 10 s iterations); cost 10 s =>
    # payback = 10 / (20 - 10) = 1 iteration.
    assert illustration.analytic_payback_iterations == pytest.approx(
        1.0, rel=0.01)


def test_fig1_swapping_run_catches_baseline():
    illustration = fig1_payback()
    assert illustration.empirical_payback_time is not None
    assert illustration.empirical_payback_time > illustration.swap_pause[1]


def test_fig1_state_size_changes_payback():
    small = fig1_payback(state_bytes=6e6)
    large = fig1_payback(state_bytes=120e6)
    assert (large.analytic_payback_iterations
            > small.analytic_payback_iterations)


def test_fig2_exemplar_is_binary_onoff():
    exemplar = fig2_onoff_trace(seed=1)
    assert exemplar.stats.max_load <= 1
    assert "p=0.3" in exemplar.description


def test_fig3_exemplar_allows_overlap():
    max_loads = [fig3_hyperexp_trace(seed=s).stats.max_load
                 for s in range(5)]
    assert max(max_loads) >= 2


def test_ascii_load_strip_renders_levels():
    exemplar = fig3_hyperexp_trace(seed=0)
    text = ascii_load_strip(exemplar.trace, 0.0, exemplar.window, width=40)
    lines = text.splitlines()
    assert any("#" in line for line in lines)
    assert "competing processes" in text


def test_ascii_progress_renders_both_curves():
    illustration = fig1_payback()
    text = ascii_progress(illustration, width=50)
    assert "s" in text and ("b" in text or "X" in text)
    assert "payback" in text
