"""Tests for scenario definitions and the dynamism mapping."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.scenarios import (
    ALL_SCENARIOS,
    DYNAMISM,
    OnOffDynamism,
    get_scenario,
)
from repro.strategies.base import Strategy
from repro.units import GB, MB


def test_dynamism_bounds_checked():
    with pytest.raises(ExperimentError):
        DYNAMISM.params(-0.1)
    with pytest.raises(ExperimentError):
        DYNAMISM.params(1.1)


def test_dynamism_endpoints():
    p0, _q0 = DYNAMISM.params(0.0)
    assert p0 == 0.0  # quiescent: load never arrives
    p1, q1 = DYNAMISM.params(1.0)
    assert p1 == 1.0  # load arrives at every step
    # The stationary loaded fraction is preserved exactly at the cap.
    assert p1 / (p1 + q1) == pytest.approx(DYNAMISM.on_fraction_scale)


def test_dynamism_monotone_properties():
    """Along the axis the loaded fraction rises and persistence falls."""
    mapping = OnOffDynamism()
    previous_on, previous_dwell = -1.0, float("inf")
    for d in (0.1, 0.3, 0.5, 0.7, 0.9, 1.0):
        p, q = mapping.params(d)
        on_fraction = p / (p + q)
        dwell = mapping.step / q
        assert on_fraction > previous_on
        assert dwell < previous_dwell
        previous_on, previous_dwell = on_fraction, dwell


def test_dynamism_stationary_fraction_matches_target():
    mapping = OnOffDynamism()
    for d in (0.2, 0.5, 0.8):
        p, q = mapping.params(d)
        assert p / (p + q) == pytest.approx(mapping.on_fraction_scale * d,
                                            rel=1e-6)


def test_scenario_lookup():
    assert get_scenario("fig4").name == "fig4"
    with pytest.raises(ExperimentError):
        get_scenario("fig99")


def test_all_scenarios_present():
    for name in ("fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
                 "ablation-payback", "ablation-history",
                 "ablation-improvement", "ablation-maxswaps"):
        assert name in ALL_SCENARIOS


@pytest.mark.parametrize("name", sorted(ALL_SCENARIOS))
def test_builders_construct_valid_variants(name):
    spec = ALL_SCENARIOS[name]
    x = spec.x_values[0]
    platform, variants = spec.build(x, seed=0)
    assert len(platform) >= 1
    labels = [label for label, _a, _s in variants]
    assert len(set(labels)) == len(labels)
    for _label, app, strategy in variants:
        assert isinstance(strategy, Strategy)
        assert app.n_processes <= len(platform)


def test_fig6_has_both_state_sizes():
    _platform, variants = ALL_SCENARIOS["fig6"].build(0.3, seed=0)
    by_label = {label: app for label, app, _s in variants}
    assert by_label["swap-1MB"].state_bytes == pytest.approx(1 * MB)
    assert by_label["swap-1GB"].state_bytes == pytest.approx(1 * GB)
    assert by_label["cr-1GB"].state_bytes == pytest.approx(1 * GB)


def test_fig8_uses_two_active_of_32():
    platform, variants = ALL_SCENARIOS["fig8"].build(0.5, seed=0)
    assert len(platform) == 32
    assert all(app.n_processes == 2 for _l, app, _s in variants)


def test_fig5_platform_grows_with_overallocation():
    p0, _ = ALL_SCENARIOS["fig5"].build(0.0, seed=0)
    p300, _ = ALL_SCENARIOS["fig5"].build(300.0, seed=0)
    assert len(p0) == 8
    assert len(p300) == 32


def test_same_seed_same_platform_across_variants():
    platform, variants = ALL_SCENARIOS["fig4"].build(0.5, seed=3)
    # All variants literally share the platform object (same traces).
    assert all(v is not None for v in variants)
    again, _ = ALL_SCENARIOS["fig4"].build(0.5, seed=3)
    assert [h.speed for h in platform.hosts] == [h.speed for h in again.hosts]
