"""Fast reproduction regression tests.

The full shape checks live in ``benchmarks/`` (8-seed sweeps with
printed reports).  These single-seed versions run with the plain unit
suite so a regression in any figure's qualitative claim is caught by
``pytest tests/`` alone.
"""

import pytest

from repro.experiments.runner import run_sweep
from repro.experiments.scenarios import get_scenario


@pytest.fixture(scope="module")
def fig4():
    return run_sweep(get_scenario("fig4"), seeds=2)


@pytest.fixture(scope="module")
def fig8():
    return run_sweep(get_scenario("fig8"), seeds=2)


def test_fig4_quiescent_extreme_equal(fig4):
    for name in ("swap-greedy", "dlb", "cr"):
        assert abs(fig4.ratio_to(name)[0] - 1.0) < 0.06


def test_fig4_swap_wins_in_the_middle(fig4):
    assert fig4.best_improvement("swap-greedy") > 0.2
    assert fig4.best_improvement("cr") > 0.15


def test_fig4_swap_stops_helping_in_chaos(fig4):
    assert fig4.ratio_to("swap-greedy")[-1] > 0.9


def test_fig4_nothing_degrades_with_dynamism(fig4):
    nothing = fig4.mean_of("nothing")
    assert max(nothing) > 1.4 * nothing[0]


def test_fig8_only_safe_is_appropriate(fig8):
    safe = fig8.ratio_to("swap-safe")
    greedy = fig8.ratio_to("swap-greedy")
    assert max(safe) < 1.1
    assert max(greedy) > 1.8


def test_fig6_large_state_harms_swapping():
    result = run_sweep(get_scenario("fig6"), seeds=2)
    mid = result.x_values.index(0.5)
    assert result.ratio_to("swap-1GB")[mid] > 1.3
    assert result.ratio_to("swap-1MB")[mid] < 0.85


def test_fig9_swapping_viable_at_every_lifetime():
    result = run_sweep(get_scenario("fig9"), seeds=2)
    assert all(r < 1.0 for r in result.ratio_to("swap-greedy"))


def test_fig5_overallocation_helps_swap():
    result = run_sweep(get_scenario("fig5"), seeds=2)
    swap = result.ratio_to("swap-greedy")
    assert swap[0] == pytest.approx(1.0)
    assert min(swap[-2:]) < swap[0] - 0.1


def test_eviction_extension_swap_absorbs_reclamation():
    result = run_sweep(get_scenario("ext-eviction"), seeds=2)
    swap = result.ratio_to("swap-greedy")
    assert swap[-1] < 0.6
