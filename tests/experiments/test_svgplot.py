"""Tests for the SVG chart renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.errors import ExperimentError
from repro.experiments.runner import SeriesStats, SweepResult
from repro.experiments.svgplot import render_svg, write_svg

SVG_NS = "{http://www.w3.org/2000/svg}"


def sample_result(x_values=(0.0, 0.5, 1.0)):
    n = len(x_values)
    return SweepResult(
        name="figX", title="A sweep", xlabel="dynamism",
        x_values=list(x_values),
        series={
            "nothing": SeriesStats(mean=[100.0 + 50 * i for i in range(n)],
                                   std=[1.0] * n, raw=[[0.0]] * n,
                                   swap_counts=[0.0] * n),
            "swap-greedy": SeriesStats(mean=[90.0 + 40 * i for i in range(n)],
                                       std=[1.0] * n, raw=[[0.0]] * n,
                                       swap_counts=[1.0] * n),
        },
        seeds=[0])


def parse(svg_text):
    return ET.fromstring(svg_text)


def test_renders_valid_xml():
    root = parse(render_svg(sample_result()))
    assert root.tag == f"{SVG_NS}svg"


def test_one_polyline_per_series():
    root = parse(render_svg(sample_result()))
    polylines = root.findall(f".//{SVG_NS}polyline")
    assert len(polylines) == 2


def test_markers_cover_every_point():
    root = parse(render_svg(sample_result()))
    circles = root.findall(f".//{SVG_NS}circle")
    assert len(circles) == 2 * 3


def test_legend_and_labels_present():
    text = render_svg(sample_result())
    assert "nothing" in text and "swap-greedy" in text
    assert "dynamism" in text
    assert "execution time" in text


def test_higher_values_plot_higher_on_screen():
    """SVG y grows downward: the larger makespan has the smaller cy."""
    root = parse(render_svg(sample_result()))
    circles = root.findall(f".//{SVG_NS}circle")
    ys = [float(c.get("cy")) for c in circles]
    # nothing's last point (200) must be above (smaller cy than) its
    # first point (100).
    assert ys[2] < ys[0]


def test_single_x_value_ok():
    text = render_svg(sample_result(x_values=(0.5,)))
    parse(text)


def test_infinite_x_rejected():
    with pytest.raises(ExperimentError):
        render_svg(sample_result(x_values=(0.0, float("inf"))))


def test_title_escaped():
    result = sample_result()
    result.title = "a <b> & c"
    text = render_svg(result)
    assert "&lt;b&gt; &amp; c" in text
    parse(text)


def test_write_svg_file(tmp_path):
    path = tmp_path / "chart.svg"
    write_svg(sample_result(), path)
    root = ET.parse(path).getroot()
    assert root.tag == f"{SVG_NS}svg"
