"""Golden regression values for the headline figure.

These pin exact simulated makespans for one seed of Fig. 4.  They will
(and should) fail on any change to the platform physics, the dynamism
mapping, or the policy engine: such changes silently re-calibrate every
figure in EXPERIMENTS.md, and this test makes that visible.  If a change
is intentional, regenerate EXPERIMENTS.md and update these constants.
"""

import pytest

from repro.experiments.runner import run_sweep
from repro.experiments.scenarios import get_scenario

#: (x-index, series) -> makespan for fig4 with seeds=[0].
GOLDEN_FIG4_SEED0 = {
    (0, "nothing"): 2612.5178810379675,
    (0, "swap-greedy"): 2633.517881037968,
    (5, "nothing"): 4579.5740556982755,
    (5, "swap-greedy"): 2915.21583961122,
    (5, "dlb"): 3397.8313255352828,
    (5, "cr"): 3058.855944701785,
    (9, "nothing"): 4558.786371313198,
}


@pytest.fixture(scope="module")
def fig4_seed0():
    return run_sweep(get_scenario("fig4"), seeds=[0])


def test_fig4_golden_values(fig4_seed0):
    mismatches = []
    for (index, series), expected in GOLDEN_FIG4_SEED0.items():
        measured = fig4_seed0.series[series].mean[index]
        if measured != pytest.approx(expected, rel=1e-9):
            mismatches.append((index, series, expected, measured))
    assert not mismatches, (
        "simulated physics changed -- regenerate EXPERIMENTS.md and "
        f"update the golden constants: {mismatches}")
