"""Golden regression values for the headline figure.

These pin exact simulated makespans for one seed of Fig. 4.  They will
(and should) fail on any change to the platform physics, the dynamism
mapping, or the policy engine: such changes silently re-calibrate every
figure in EXPERIMENTS.md, and this test makes that visible.  If a change
is intentional, regenerate EXPERIMENTS.md and update these constants.
"""

import pytest

from repro.experiments.runner import run_sweep
from repro.experiments.scenarios import get_scenario

#: (x-index, series) -> makespan for fig4 with seeds=[0].
GOLDEN_FIG4_SEED0 = {
    (0, "nothing"): 2612.5178810379675,
    (0, "swap-greedy"): 2633.517881037968,
    (5, "nothing"): 4579.5740556982755,
    (5, "swap-greedy"): 2915.21583961122,
    (5, "dlb"): 3397.8313255352828,
    (5, "cr"): 3058.855944701785,
    (9, "nothing"): 4558.786371313198,
}


@pytest.fixture(scope="module")
def fig4_seed0():
    return run_sweep(get_scenario("fig4"), seeds=[0])


def test_fig4_golden_values(fig4_seed0):
    mismatches = []
    for (index, series), expected in GOLDEN_FIG4_SEED0.items():
        measured = fig4_seed0.series[series].mean[index]
        if measured != pytest.approx(expected, rel=1e-9):
            mismatches.append((index, series, expected, measured))
    assert not mismatches, (
        "simulated physics changed -- regenerate EXPERIMENTS.md and "
        f"update the golden constants: {mismatches}")


# -- committed full-sweep goldens (the kernel float-identity oracle) ---------
#
# tests/experiments/goldens/ pins the complete seeds=2 sweep results of
# the two headline figures, byte-for-byte.  Unlike the spot values above
# these cover every cell, so any drift in the vectorized kernels or the
# lowering passes -- however small -- fails loudly.  Regenerate with:
#   PYTHONPATH=src python -c "
#   import json
#   from repro.experiments.executor import execute_sweep
#   from repro.experiments.scenarios import get_scenario
#   for name in ('fig4', 'fig7'):
#       result, _ = execute_sweep(get_scenario(name), seeds=2)
#       open(f'tests/experiments/goldens/{name}-seeds2.json', 'w').write(
#           json.dumps(result.to_dict(), sort_keys=True, indent=2) + '\n')"

import json
from pathlib import Path

from repro.experiments.executor import execute_sweep
from repro.simkernel.plan import disable_lowering

GOLDENS = Path(__file__).parent / "goldens"


@pytest.mark.parametrize("name", ["fig4", "fig7"])
def test_sweep_byte_identical_to_committed_golden(name):
    result, _timing = execute_sweep(get_scenario(name), seeds=2)
    got = json.dumps(result.to_dict(), sort_keys=True, indent=2) + "\n"
    want = (GOLDENS / f"{name}-seeds2.json").read_text()
    assert got == want, (
        f"{name} drifted from its committed golden -- if the physics "
        "change is intentional, regenerate tests/experiments/goldens/")


def test_fig4_lowering_is_float_identical():
    """The scalar reference path must reproduce the golden bytes too."""
    with disable_lowering():
        result, _timing = execute_sweep(get_scenario("fig4"), seeds=2)
    got = json.dumps(result.to_dict(), sort_keys=True, indent=2) + "\n"
    assert got == (GOLDENS / "fig4-seeds2.json").read_text()
