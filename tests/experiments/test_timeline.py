"""Tests for the ASCII timeline renderer."""

from repro.app.iterative import ApplicationSpec
from repro.core.policy import greedy_policy
from repro.experiments.timeline import ascii_timeline
from repro.load.base import ConstantLoadModel, LoadTrace
from repro.platform.cluster import make_platform
from repro.strategies.base import ExecutionResult
from repro.strategies.nothing import NothingStrategy
from repro.strategies.swapstrat import SwapStrategy
from repro.units import MB


def test_empty_run():
    result = ExecutionResult(strategy="x", app=ApplicationSpec(
        n_processes=1, iterations=1, flops_per_iteration=1.0))
    assert ascii_timeline(result) == "(empty run)"


def test_nothing_run_marks_fixed_hosts():
    platform = make_platform(4, ConstantLoadModel(0), seed=0,
                             speed_range=(100e6, 100e6 + 1e-6))
    app = ApplicationSpec(n_processes=2, iterations=4,
                          flops_per_iteration=2e8)
    result = NothingStrategy().run(platform, app)
    text = ascii_timeline(result, n_hosts=4)
    rows = [line for line in text.splitlines()
            if "|" in line and line.lstrip("> ").startswith("h")]
    active_rows = [line for line in rows if "#" in line]
    idle_rows = [line for line in rows if "#" not in line]
    assert len(active_rows) == 2
    assert len(idle_rows) == 2
    # Final actives marked with '>'.
    assert sum(1 for line in rows if line.startswith(">")) == 2


def test_swap_run_shows_pause_and_migration():
    platform = make_platform(4, ConstantLoadModel(0), seed=0,
                             speed_range=(100e6, 100e6 + 1e-6))
    victim = 0
    platform.hosts[victim].trace = LoadTrace([0.0, 5.0, 1e12], [0, 3],
                                             beyond_horizon="hold")
    app = ApplicationSpec(n_processes=2, iterations=6,
                          flops_per_iteration=2e9, state_bytes=20 * MB)
    result = SwapStrategy(greedy_policy()).run(platform, app)
    assert result.swap_count >= 1
    text = ascii_timeline(result, n_hosts=4)
    assert "=" in text            # the pause is visible
    assert "swaps" in text
    # The victim's row shows activity followed by idleness.
    victim_row = [line for line in text.splitlines()
                  if line.lstrip("> ").startswith("h00")][0]
    assert "#" in victim_row and victim_row.rstrip().endswith(".")
