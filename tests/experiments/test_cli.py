"""Tests for the experiments command-line interface."""

import json

import pytest

from repro.experiments.cli import build_parser, main

#: Keep CLI invocations from writing .sweep-cache/ or BENCH_sweeps.json
#: into the repository while tests run.
QUIET = ["--no-cache", "--no-bench"]


def test_list_scenarios(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig4", "fig9", "ablation-payback"):
        assert name in out


def test_no_scenario_prints_usage(capsys):
    assert main([]) == 2
    assert "usage" in capsys.readouterr().err.lower() or True


def test_unknown_scenario_raises():
    from repro.errors import ExperimentError
    with pytest.raises(ExperimentError):
        main(["fig99"])


def test_run_small_scenario(capsys):
    assert main(["fig4", "--seeds", "1", *QUIET]) == 0
    out = capsys.readouterr().out
    assert "nothing" in out and "swap-greedy" in out
    assert "seeds" in out
    assert "cells computed" in out


def test_chart_and_events_flags(capsys):
    assert main(["fig4", "--seeds", "1", "--chart", "--events", *QUIET]) == 0
    out = capsys.readouterr().out
    assert "o nothing" in out          # chart legend
    assert "[" in out                  # event-count cells


def test_custom_baseline(capsys):
    assert main(["fig4", "--seeds", "1", "--baseline", "dlb", *QUIET]) == 0
    out = capsys.readouterr().out
    assert "of dlb" in out


def test_missing_baseline_degrades_gracefully(capsys):
    assert main(["fig4", "--seeds", "1", "--baseline", "ghost", *QUIET]) == 0


def test_parser_defaults():
    args = build_parser().parse_args(["fig7"])
    assert args.scenario == "fig7"
    assert args.seeds is None
    assert args.baseline == "nothing"
    assert args.jobs == 1
    assert args.cache_dir == ".sweep-cache"
    assert not args.no_cache
    assert args.bench_json == "BENCH_sweeps.json"
    assert not args.no_bench


def test_jobs_flag_runs_parallel(capsys):
    assert main(["fig4", "--seeds", "1", "--jobs", "2", *QUIET]) == 0
    out = capsys.readouterr().out
    assert "2 job(s)" in out


def test_cache_and_bench_threading(tmp_path, capsys):
    cache = tmp_path / "cache"
    bench = tmp_path / "bench.json"
    argv = ["fig4", "--seeds", "1", "--cache-dir", str(cache),
            "--bench-json", str(bench)]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "10/10 cells computed" in cold
    record = json.loads(bench.read_text())["records"][0]
    assert record["scenario"] == "fig4"
    assert record["cells_computed"] == 10
    for key in ("wall_time_s", "cache_hits", "events_per_sec"):
        assert key in record

    assert main(argv) == 0  # warm rerun: every cell from the cache
    warm = capsys.readouterr().out
    assert "0/10 cells computed" in warm
    assert "10 cache hits" in warm
    assert json.loads(bench.read_text())["records"][0]["cache_hits"] == 10


def test_regenerate_all_writes_artifacts(tmp_path, capsys):
    outdir = tmp_path / "figs"
    assert main(["all", "--seeds", "1", "--outdir", str(outdir),
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    out = capsys.readouterr().out
    assert "fig4" in out and "ext-contracts" in out
    for suffix in (".txt", ".svg", ".csv", ".json"):
        assert (outdir / f"fig4{suffix}").exists()
    # The payback ablation has an infinite x value: no SVG, other files yes.
    assert (outdir / "ablation-payback.txt").exists()
    assert not (outdir / "ablation-payback.svg").exists()
    # One perf record per scenario, inside the output directory.
    records = json.loads((outdir / "BENCH_sweeps.json").read_text())["records"]
    assert any(r["scenario"] == "fig4" for r in records)
