"""Tests for the experiments command-line interface."""

import pytest

from repro.experiments.cli import build_parser, main


def test_list_scenarios(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig4", "fig9", "ablation-payback"):
        assert name in out


def test_no_scenario_prints_usage(capsys):
    assert main([]) == 2
    assert "usage" in capsys.readouterr().err.lower() or True


def test_unknown_scenario_raises():
    from repro.errors import ExperimentError
    with pytest.raises(ExperimentError):
        main(["fig99"])


def test_run_small_scenario(capsys):
    assert main(["fig4", "--seeds", "1"]) == 0
    out = capsys.readouterr().out
    assert "nothing" in out and "swap-greedy" in out
    assert "seeds" in out


def test_chart_and_events_flags(capsys):
    assert main(["fig4", "--seeds", "1", "--chart", "--events"]) == 0
    out = capsys.readouterr().out
    assert "o nothing" in out          # chart legend
    assert "[" in out                  # event-count cells


def test_custom_baseline(capsys):
    assert main(["fig4", "--seeds", "1", "--baseline", "dlb"]) == 0
    out = capsys.readouterr().out
    assert "of dlb" in out


def test_missing_baseline_degrades_gracefully(capsys):
    assert main(["fig4", "--seeds", "1", "--baseline", "ghost"]) == 0


def test_parser_defaults():
    args = build_parser().parse_args(["fig7"])
    assert args.scenario == "fig7"
    assert args.seeds is None
    assert args.baseline == "nothing"


def test_regenerate_all_writes_artifacts(tmp_path, capsys):
    assert main(["all", "--seeds", "1", "--outdir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "fig4" in out and "ext-contracts" in out
    for suffix in (".txt", ".svg", ".csv", ".json"):
        assert (tmp_path / f"fig4{suffix}").exists()
    # The payback ablation has an infinite x value: no SVG, other files yes.
    assert (tmp_path / "ablation-payback.txt").exists()
    assert not (tmp_path / "ablation-payback.svg").exists()
