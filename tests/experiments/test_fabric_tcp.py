"""The TCP transport: determinism, late joiners, and the admission gate.

Three layers of test here:

* end-to-end sweeps over loopback TCP (plain, kill-chaos, and with a
  hostile peer harassing the listener mid-run) asserting byte-identity
  with the serial reference;
* the coordinator's accept loop -- a remote worker bootstrapped with
  :func:`run_remote_worker` joins a live sweep and is leased work;
* the HELLO gate unit-by-unit: wrong token, wrong fingerprint, raw
  garbage, and the ``python -m repro.experiments.fabric`` CLI's clean
  exit-2 refusals.
"""

import socket
import struct
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import FabricError
from repro.experiments.executor import execute_sweep, merge_cells
from repro.experiments.fabric import (
    COORDINATOR,
    HELLO,
    WELCOME,
    Coordinator,
    Envelope,
    FabricConfig,
    HandshakeInfo,
    TcpTransport,
    WorkerChaos,
    WorkerConfig,
    execute_sweep_fabric,
    run_remote_worker,
    welcome_payload,
)
from repro.experiments.fabric.wire import _SocketChannel
from repro.experiments.scenarios import ExperimentSpec
from tests.experiments.test_fabric import SERIAL, TINY, _canon, _tiny_build


def _slow_build(x, seed):
    # Slow enough that a late joiner reliably finds work left to lease.
    time.sleep(0.15)
    return _tiny_build(x, seed)


SLOW = ExperimentSpec(name="slow-fabric", title="slow fabric sweep",
                      xlabel="n", x_values=(0.0, 1.0, 2.0),
                      build=_slow_build, paper_claim="toy", default_seeds=2)

_HEADER = struct.Struct(">I")


# -- end-to-end determinism --------------------------------------------------


def test_tcp_kill_chaos_matches_serial():
    """One worker SIGKILLed mid-sweep; the merge stays byte-identical
    (the acceptance-criterion run, minus the CLI wrapper)."""
    config = FabricConfig(workers=2, transport="tcp",
                          chaos=WorkerChaos.parse("kill:1:1"))
    result, _timing, stats = execute_sweep_fabric(TINY, seeds=2,
                                                  config=config)
    assert _canon(result) == SERIAL
    assert stats.workers_lost >= 1
    assert stats.requeued_cells >= 1


# -- a live coordinator for gate/join tests ----------------------------------


class _LiveRun:
    """Run a Coordinator in a thread; expose its transport address."""

    def __init__(self, spec, *, workers=1, token="sesame",
                 lease_size=1) -> None:
        self.spec = spec
        config = FabricConfig(workers=workers, transport="tcp",
                              token=token, lease_size=lease_size)
        self.coordinator = Coordinator(spec, [0, 1], config=config,
                                       cache=None, instrument=False)
        self.cells = None
        self.error = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        try:
            self.cells = self.coordinator.run()
        except Exception as exc:  # surfaced by join()
            self.error = exc

    def __enter__(self) -> "_LiveRun":
        self._thread.start()
        deadline = time.monotonic() + 10.0
        while self.coordinator._transport is None:
            if time.monotonic() > deadline or not self._thread.is_alive():
                raise AssertionError("coordinator never bound its listener")
            time.sleep(0.01)
        self.address = self.coordinator._transport.address
        return self

    def __exit__(self, *exc) -> None:
        self._thread.join(60.0)
        assert not self._thread.is_alive(), "coordinator did not finish"

    def merged(self):
        assert self.error is None, f"coordinator failed: {self.error}"
        return merge_cells(self.spec, [0, 1], self.cells)


def test_remote_worker_joins_mid_run_and_is_leased_work():
    serial = _canon(execute_sweep(SLOW, seeds=2)[0])
    with _LiveRun(SLOW, workers=1) as run:
        # Bootstrap a remote worker into the live sweep, exactly as
        # `python -m repro.experiments.fabric worker` would (tests pass
        # the spec explicitly: SLOW is not in the scenario registry).
        worker_id = run_remote_worker(run.address, "sesame", spec=SLOW)
    assert worker_id  # the coordinator assigned an id
    assert _canon(run.merged()) == serial
    stats = run.coordinator.stats
    assert stats.remote_workers_joined == 1
    assert stats.workers_started == 2  # the local fleet + the joiner


def test_wrong_token_remote_worker_is_refused():
    with _LiveRun(SLOW, workers=1) as run:
        with pytest.raises(FabricError, match="bad token"):
            run_remote_worker(run.address, "wrong-token", spec=SLOW)
    assert run.coordinator.stats.handshakes_rejected >= 1
    assert _canon(run.merged()) == _canon(execute_sweep(SLOW, seeds=2)[0])


def test_hostile_peer_mid_run_does_not_crash_the_sweep():
    """An anonymous connection announcing a 2 GiB frame is dropped at
    the gate while the sweep completes byte-identically around it."""
    with _LiveRun(SLOW, workers=1) as run:
        host, port = run.address.rsplit(":", 1)
        evil = socket.create_connection((host, int(port)))
        evil.sendall(_HEADER.pack(1 << 31))
        payload = b"cos\nsystem\n(S'true'\ntR."
        gadget = socket.create_connection((host, int(port)))
        gadget.sendall(_HEADER.pack(len(payload)) + payload)
        deadline = time.monotonic() + 10.0
        while (run.coordinator._transport.rejected < 2
               and time.monotonic() < deadline):
            time.sleep(0.02)
        evil.close()
        gadget.close()
    assert _canon(run.merged()) == _canon(execute_sweep(SLOW, seeds=2)[0])
    assert run.coordinator.stats.handshakes_rejected >= 2


def test_protocol_error_from_admitted_worker_loses_it_cleanly():
    """An admitted peer that starts speaking nonsense (a WELCOME sent
    *to* the coordinator) is revoked like a death, not a crash."""
    with _LiveRun(SLOW, workers=1) as run:
        from repro.experiments.fabric.wire import (_SocketChannel,
                                                   client_handshake)
        host, port = run.address.rsplit(":", 1)
        sock = socket.create_connection((host, int(port)))
        channel = _SocketChannel(sock)
        client_handshake(channel, "sesame", timeout=10.0)
        channel.send(Envelope(kind=WELCOME, sender="imposter",
                              payload={"ok": True}))
        deadline = time.monotonic() + 10.0
        while (run.coordinator.stats.workers_lost < 1
               and time.monotonic() < deadline):
            time.sleep(0.02)
        channel.close()
    assert _canon(run.merged()) == _canon(execute_sweep(SLOW, seeds=2)[0])
    assert run.coordinator.stats.workers_lost >= 1


# -- the admission gate, unit-level ------------------------------------------


def _pump_until(transport, predicate, timeout=10.0):
    admitted = []
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        admitted.extend(transport.poll_peers())
        if predicate(admitted):
            return admitted
        time.sleep(0.01)
    raise AssertionError("admission gate never reached expected state")


@pytest.fixture
def gate():
    info = HandshakeInfo(token="sesame", scenario=TINY.name,
                         fingerprint=TINY.fingerprint())
    transport = TcpTransport(info, listen="127.0.0.1:0",
                             handshake_timeout=2.0)
    yield transport
    transport.close()


def _handshake_in_thread(address, token, **kwargs):
    result = {}

    def attempt():
        try:
            result["worker_id"] = run_remote_worker(address, token,
                                                    spec=TINY, **kwargs)
        except FabricError as exc:
            result["error"] = str(exc)

    thread = threading.Thread(target=attempt, daemon=True)
    thread.start()
    return thread, result


def test_gate_rejects_wrong_fingerprint(gate):
    """A worker holding a diverged spec (same scenario name, different
    cells) is turned away with a readable reason, not admitted to mix
    incompatible bytes into the sweep."""
    forged = ExperimentSpec(name=TINY.name, title=TINY.title,
                            xlabel=TINY.xlabel, x_values=(0.0, 9.9),
                            build=_tiny_build, paper_claim="toy",
                            default_seeds=2)
    assert forged.fingerprint() != TINY.fingerprint()

    bad = {}

    def attempt_forged():
        try:
            run_remote_worker(gate.address, "sesame", spec=forged)
        except FabricError as exc:
            bad["error"] = str(exc)

    thread = threading.Thread(target=attempt_forged, daemon=True)
    thread.start()
    _pump_until(gate, lambda _peers: gate.rejected >= 1)
    thread.join(10.0)
    assert "fingerprint mismatch" in bad["error"]


def test_gate_admits_matching_fingerprint_with_hello_intact(gate):
    thread, result = _handshake_in_thread(gate.address, "sesame")
    admitted = _pump_until(gate, lambda peers: len(peers) >= 1)
    channel, hello = admitted[0]
    assert hello.payload["fingerprint"] == TINY.fingerprint()
    # Complete the handshake with a refusal so the worker thread exits
    # instead of waiting for leases this unit test will never send.
    channel.send(Envelope(kind=WELCOME, sender=COORDINATOR,
                          payload={"ok": False, "error": "test over"}))
    thread.join(10.0)
    assert "test over" in result["error"]


def _connect(address):
    host, port = address.rsplit(":", 1)
    return socket.create_connection((host, int(port)))


def test_gate_rejects_garbage_without_reply(gate):
    sock = _connect(gate.address)
    sock.sendall(b"\x00\x00\x00\x04junk")
    _pump_until(gate, lambda _peers: gate.rejected >= 1)
    sock.close()


def test_gate_times_out_silent_connections(gate):
    sock = _connect(gate.address)
    _pump_until(gate, lambda _peers: gate.rejected >= 1, timeout=10.0)
    sock.close()


def test_gate_survives_non_ascii_token(gate):
    """A HELLO bearing a non-ASCII token used to blow up
    ``hmac.compare_digest`` with a TypeError inside ``poll_peers``,
    aborting the whole sweep; it must cost the peer its connection
    instead (the pump below propagates any exception as a failure)."""
    channel = _SocketChannel(_connect(gate.address))
    channel.send(Envelope(kind=HELLO, sender="?",
                          payload={"token": "sésame€"}))
    _pump_until(gate, lambda _peers: gate.rejected >= 1)
    channel.close()


def test_launch_ignores_impostor_claiming_worker_id(gate):
    """A token-holding stranger that claims the about-to-launch worker
    id must not be handed the local worker's slot: ``launch`` matches
    its spawned child by a per-launch nonce, and the impostor lands in
    the backlog as an ordinary late joiner."""
    impostor = _SocketChannel(_connect(gate.address))
    impostor.send(Envelope(kind=HELLO, sender="w0",
                           payload={"token": "sesame", "worker_id": "w0",
                                    "fingerprint": TINY.fingerprint()}))
    handle = gate.launch(TINY, False, WorkerConfig(worker_id="w0"))
    strangers = []
    try:
        assert handle.is_alive()  # the handle points at the real child
        strangers = _pump_until(
            gate, lambda peers: any(
                hello.payload.get("worker_id") == "w0" for _c, hello in peers))
        hello = strangers[0][1]
        assert hello.payload.get("nonce") is None  # it is the impostor
    finally:
        handle.kill()
        handle.channel.close()
        for peer, _hello in strangers:
            peer.close()
        impostor.close()


def test_minted_worker_ids_skip_remote_claims():
    """Replacement launches must not reuse an id a remote peer already
    holds -- an overwrite would orphan the incumbent's lease and hang
    the sweep waiting for cells nobody owns."""
    class _Shim:
        _workers = {"w0": object(), "w2": object()}
        _next_worker = 0

    shim = _Shim()
    assert Coordinator._mint_worker_id(shim) == "w1"
    assert Coordinator._mint_worker_id(shim) == "w3"
    assert shim._next_worker == 4


# -- the CLI bootstrap -------------------------------------------------------


def _run_cli_worker(address, token, pump, extra=()):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.experiments.fabric", "worker",
         address, "--token", token, "--handshake-timeout", "10",
         *extra],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    try:
        while proc.poll() is None:
            pump()
            time.sleep(0.02)
    finally:
        if proc.poll() is None:
            proc.kill()
    out, err = proc.communicate(timeout=10)
    return proc.returncode, out, err


def test_cli_worker_wrong_token_exits_2(gate):
    code, _out, err = _run_cli_worker(
        gate.address, "wrong", lambda: gate.poll_peers())
    assert code == 2
    assert "bad token" in err
    assert "Traceback" not in err


def test_cli_worker_unknown_scenario_exits_2():
    info = HandshakeInfo(token="sesame", scenario="no-such-scenario",
                         fingerprint="f" * 64)
    transport = TcpTransport(info, listen="127.0.0.1:0",
                             handshake_timeout=5.0)

    def pump():
        for channel, _hello in transport.poll_peers():
            channel.send(Envelope(kind=WELCOME, sender=COORDINATOR,
                                  payload=welcome_payload(info, "w0")))

    try:
        code, _out, err = _run_cli_worker(transport.address, "sesame",
                                          pump)
    finally:
        transport.close()
    assert code == 2
    assert "does not know" in err
    assert "Traceback" not in err
