"""Tests for the parallel sweep executor and its cell cache.

The load-bearing guarantees:

* serial (`jobs=1`), parallel (`jobs>1`) and cache-assisted executions
  produce **byte-identical** `SweepResult.to_dict()` payloads;
* a warm cache computes zero cells; extending the seed list computes
  only the new cells;
* corrupted or mismatched cache entries are recomputed, never trusted.
"""

import dataclasses
import json

import pytest

from repro.app.iterative import ApplicationSpec
from repro.errors import ExperimentError
from repro.experiments.executor import (
    CellCache,
    CellResult,
    append_bench_record,
    cell_digest,
    compute_cell,
    execute_sweep,
)
from repro.experiments.runner import run_sweep
from repro.experiments.scenarios import ExperimentSpec, get_scenario
from repro.load.base import ConstantLoadModel
from repro.platform.cluster import make_platform
from repro.strategies.nothing import NothingStrategy
from repro.strategies.swapstrat import SwapStrategy


def _tiny_build(x, seed):
    # Module-level so the spec is picklable into pool workers.
    platform = make_platform(3, ConstantLoadModel(int(x)), seed=seed,
                             speed_range=(100e6, 200e6))
    app = ApplicationSpec(n_processes=2, iterations=3,
                          flops_per_iteration=2e8)
    return platform, [("nothing", app, NothingStrategy()),
                      ("swap-greedy", app, SwapStrategy())]


TINY = ExperimentSpec(name="tiny-exec", title="tiny sweep", xlabel="n",
                      x_values=(0.0, 1.0, 2.0), build=_tiny_build,
                      paper_claim="toy", default_seeds=2)


def _canon(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


# -- serial/parallel equivalence --------------------------------------------


@pytest.mark.parametrize("scenario", ["fig4", "fig7"])
def test_parallel_matches_serial_byte_identical(scenario):
    spec = get_scenario(scenario)
    serial, serial_timing = execute_sweep(spec, seeds=2, jobs=1)
    parallel, parallel_timing = execute_sweep(spec, seeds=2, jobs=4)
    assert _canon(serial) == _canon(parallel)
    assert serial_timing.cells_total == parallel_timing.cells_total
    assert parallel_timing.jobs == 4


def test_run_sweep_jobs_parameter_delegates():
    serial = run_sweep(TINY, seeds=2)
    parallel = run_sweep(TINY, seeds=2, jobs=3)
    assert _canon(serial) == _canon(parallel)


def test_jobs_below_one_rejected():
    with pytest.raises(ExperimentError):
        execute_sweep(TINY, seeds=1, jobs=0)


# -- cell cache --------------------------------------------------------------


def test_warm_cache_computes_zero_cells(tmp_path):
    cold, cold_timing = execute_sweep(TINY, seeds=2, cache_dir=tmp_path)
    assert cold_timing.cells_computed == 6  # 3 x values * 2 seeds
    assert cold_timing.cache_hits == 0

    warm, warm_timing = execute_sweep(TINY, seeds=2, cache_dir=tmp_path)
    assert warm_timing.cells_computed == 0
    assert warm_timing.cache_hits == 6
    assert _canon(cold) == _canon(warm)
    # Cache hits did no simulation work this run.
    assert warm_timing.iterations == 0

    uncached = execute_sweep(TINY, seeds=2)[0]
    assert _canon(uncached) == _canon(warm)


def test_extending_seeds_computes_only_new_cells(tmp_path):
    execute_sweep(TINY, seeds=1, cache_dir=tmp_path)
    more, timing = execute_sweep(TINY, seeds=3, cache_dir=tmp_path)
    assert timing.cache_hits == 3       # the seed-0 column
    assert timing.cells_computed == 6   # seeds 1 and 2
    assert _canon(more) == _canon(execute_sweep(TINY, seeds=3)[0])


def test_parallel_run_populates_cache_for_serial_reader(tmp_path):
    execute_sweep(TINY, seeds=2, jobs=3, cache_dir=tmp_path)
    _result, timing = execute_sweep(TINY, seeds=2, jobs=1,
                                    cache_dir=tmp_path)
    assert timing.cells_computed == 0


def test_corrupted_cache_entry_is_recomputed(tmp_path):
    execute_sweep(TINY, seeds=2, cache_dir=tmp_path)
    cache_files = sorted(tmp_path.rglob("*.json"))
    assert len(cache_files) == 6
    cache_files[0].write_text("{ not json")

    result, timing = execute_sweep(TINY, seeds=2, cache_dir=tmp_path)
    assert timing.cells_computed == 1
    assert timing.cache_hits == 5
    assert _canon(result) == _canon(execute_sweep(TINY, seeds=2)[0])


def test_tampered_digest_is_a_miss(tmp_path):
    execute_sweep(TINY, seeds=1, cache_dir=tmp_path)
    victim = sorted(tmp_path.rglob("*.json"))[0]
    payload = json.loads(victim.read_text())
    payload["digest"] = "0" * 64
    victim.write_text(json.dumps(payload))

    _result, timing = execute_sweep(TINY, seeds=1, cache_dir=tmp_path)
    assert timing.cells_computed == 1


def test_cache_roundtrip_preserves_exact_floats(tmp_path):
    cell = compute_cell(TINY, 1.0, seed=0)
    cache = CellCache(tmp_path)
    digest = cell_digest("tiny-exec", TINY.fingerprint(), 1.0, 0)
    cache.store(digest, cell, scenario="tiny-exec", x=1.0, seed=0)
    loaded = cache.load(digest)
    assert loaded is not None
    assert loaded.makespans == cell.makespans  # bit-exact via repr round-trip
    assert loaded.labels == cell.labels
    assert loaded.events == cell.events


def test_cache_load_missing_entry_returns_none(tmp_path):
    assert CellCache(tmp_path).load("ab" * 32) is None


def test_payload_label_mismatch_rejected():
    with pytest.raises(ValueError):
        CellResult.from_payload({
            "labels": ["a"], "makespans": {"b": 1.0}, "events": {"a": 0.0},
            "iterations": 1, "engine_events": 0})


# -- content addressing ------------------------------------------------------


def test_cell_digest_varies_with_coordinates_and_spec():
    fp = TINY.fingerprint()
    base = cell_digest("tiny-exec", fp, 1.0, 0)
    assert cell_digest("tiny-exec", fp, 2.0, 0) != base
    assert cell_digest("tiny-exec", fp, 1.0, 1) != base
    assert cell_digest("other", fp, 1.0, 0) != base
    assert cell_digest("tiny-exec", "different-fingerprint", 1.0, 0) != base
    assert base == cell_digest("tiny-exec", fp, 1.0, 0)  # stable


def test_fingerprint_changes_with_grid_and_is_stable():
    assert TINY.fingerprint() == TINY.fingerprint()
    narrowed = dataclasses.replace(TINY, x_values=(0.0, 1.0))
    assert narrowed.fingerprint() != TINY.fingerprint()
    assert get_scenario("fig4").fingerprint() != TINY.fingerprint()


def test_digest_handles_non_finite_x():
    fp = "fp"
    assert (cell_digest("s", fp, float("inf"), 0)
            != cell_digest("s", fp, 0.0, 0))


# -- timing / bench records --------------------------------------------------


def test_timing_record_fields():
    _result, timing = execute_sweep(TINY, seeds=2)
    record = timing.to_dict()
    for key in ("scenario", "jobs", "wall_time_s", "cells_total",
                "cells_computed", "cache_hits", "events_per_sec",
                "cells_per_sec", "iterations", "engine_events"):
        assert key in record
    assert record["scenario"] == "tiny-exec"
    assert record["cells_total"] == 6
    assert record["wall_time_s"] > 0
    assert timing.iterations > 0  # the tiny app simulates 3 iterations/run


def test_append_bench_record_merges_by_scenario_and_jobs(tmp_path):
    path = tmp_path / "BENCH_sweeps.json"
    _result, timing = execute_sweep(TINY, seeds=1)
    doc = append_bench_record(path, timing)
    assert len(doc["records"]) == 1

    _result, timing2 = execute_sweep(TINY, seeds=1, jobs=2)
    doc = append_bench_record(path, timing2)
    assert len(doc["records"]) == 2  # same scenario, different jobs

    doc = append_bench_record(path, timing)
    assert len(doc["records"]) == 2  # (scenario, jobs=1) overwritten
    on_disk = json.loads(path.read_text())
    assert [r["jobs"] for r in on_disk["records"]] == [1, 2]


def test_append_bench_record_survives_corrupt_file(tmp_path):
    path = tmp_path / "BENCH_sweeps.json"
    path.write_text("not json at all")
    _result, timing = execute_sweep(TINY, seeds=1)
    doc = append_bench_record(path, timing)
    assert len(doc["records"]) == 1


# -- progress callback -------------------------------------------------------


def test_on_point_called_once_per_cell_in_grid_order(tmp_path):
    execute_sweep(TINY, seeds=2, cache_dir=tmp_path)  # prime the cache
    calls = []
    execute_sweep(TINY, seeds=2, cache_dir=tmp_path,
                  on_point=lambda x, s: calls.append((x, s)))
    assert calls == [(x, s) for x in (0.0, 1.0, 2.0) for s in (0, 1)]
