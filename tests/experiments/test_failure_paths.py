"""Regression tests for the executor's failure paths.

Three bugfixes are locked in here:

* a cell raising inside a ``ProcessPoolExecutor`` worker surfaces as an
  :class:`ExperimentError` carrying ``(scenario, x, seed)`` -- not a bare
  exception with no context -- and the outstanding futures are cancelled
  and drained before the re-raise;
* ``append_bench_record`` writes atomically (tmp + ``os.replace``) so
  concurrent sweep invocations can never leave a half-written perf file,
  and an unparseable existing file is preserved (``.corrupt``) rather
  than silently clobbered or crashed on;
* every flavor of cache-entry corruption -- empty file, truncated JSON,
  binary garbage, digest mismatch, wrong ``CACHE_FORMAT``, mismatched
  payload structure -- is a silent recompute, never an exception.
"""

import json
import threading

import pytest

from repro.app.iterative import ApplicationSpec
from repro.errors import ExperimentError
from repro.experiments.executor import (
    CACHE_FORMAT,
    CellCache,
    append_bench_record,
    cell_digest,
    compute_cell,
    execute_sweep,
)
from repro.experiments.scenarios import ExperimentSpec
from repro.load.base import ConstantLoadModel
from repro.platform.cluster import make_platform
from repro.strategies.nothing import NothingStrategy


def _ok_build(x, seed):
    platform = make_platform(2, ConstantLoadModel(int(x)), seed=seed,
                             speed_range=(100e6, 200e6))
    app = ApplicationSpec(n_processes=2, iterations=2,
                          flops_per_iteration=1e8)
    return platform, [("nothing", app, NothingStrategy())]


def _failing_build(x, seed):
    # Module-level so it pickles into pool workers; poisons exactly one x.
    if x == 1.0:
        raise ValueError("spec builder exploded")
    return _ok_build(x, seed)


OK = ExperimentSpec(name="ok-exec", title="ok", xlabel="n",
                    x_values=(0.0, 1.0, 2.0), build=_ok_build,
                    paper_claim="toy", default_seeds=1)

POISONED = ExperimentSpec(name="poisoned-exec", title="poisoned", xlabel="n",
                          x_values=(0.0, 1.0, 2.0), build=_failing_build,
                          paper_claim="toy", default_seeds=1)


# -- worker failures carry cell context --------------------------------------


def test_pool_worker_failure_carries_cell_context():
    with pytest.raises(ExperimentError) as excinfo:
        execute_sweep(POISONED, seeds=2, jobs=3)
    message = str(excinfo.value)
    assert "poisoned-exec" in message
    assert "x=1.0" in message
    assert "seed=" in message
    assert "spec builder exploded" in message
    # The original exception stays reachable for debugging.
    assert isinstance(excinfo.value.__cause__, ValueError)


def test_serial_failure_carries_cell_context():
    with pytest.raises(ExperimentError) as excinfo:
        execute_sweep(POISONED, seeds=1, jobs=1)
    assert "poisoned-exec" in str(excinfo.value)
    assert "x=1.0" in str(excinfo.value)
    assert "seed=0" in str(excinfo.value)


def test_pool_failure_does_not_poison_cache_with_partial_grid(tmp_path):
    with pytest.raises(ExperimentError):
        execute_sweep(POISONED, seeds=1, jobs=2, cache_dir=tmp_path)
    # Whatever healthy cells landed in the cache before the failure are
    # legitimate: a fixed spec (different fingerprint) ignores them, and
    # re-running the broken spec fails again rather than trusting them.
    with pytest.raises(ExperimentError):
        execute_sweep(POISONED, seeds=1, jobs=2, cache_dir=tmp_path)


# -- bench record atomicity ---------------------------------------------------


def _timing(scenario="bench-test", jobs=1):
    _result, timing = execute_sweep(OK, seeds=1, jobs=jobs)
    return timing


def test_bench_write_is_atomic_no_tmp_left_behind(tmp_path):
    path = tmp_path / "BENCH_sweeps.json"
    append_bench_record(path, _timing())
    leftovers = [p for p in tmp_path.iterdir() if p.name != path.name]
    assert leftovers == []
    assert json.loads(path.read_text())["version"] == 4


def test_corrupt_bench_file_preserved_not_clobbered(tmp_path):
    path = tmp_path / "BENCH_sweeps.json"
    path.write_text("{ definitely not json")
    doc = append_bench_record(path, _timing())
    assert len(doc["records"]) == 1
    corrupt = tmp_path / "BENCH_sweeps.json.corrupt"
    assert corrupt.read_text() == "{ definitely not json"
    assert json.loads(path.read_text()) == doc


def test_bench_records_keyed_by_mode_too(tmp_path):
    path = tmp_path / "BENCH_sweeps.json"
    timing = _timing()
    append_bench_record(path, timing)
    import dataclasses

    fabric_timing = dataclasses.replace(timing, mode="fabric")
    doc = append_bench_record(path, fabric_timing)
    assert len(doc["records"]) == 2  # same scenario+jobs, different mode
    modes = [r["mode"] for r in doc["records"]]
    assert modes == ["fabric", "pool"]


def test_bench_reader_defaults_legacy_records_to_pool_mode(tmp_path):
    path = tmp_path / "BENCH_sweeps.json"
    legacy = {"version": 2, "tool": "sweep-bench",
              "records": [{"scenario": "ok-exec", "jobs": 1,
                           "wall_time_s": 1.0}]}
    path.write_text(json.dumps(legacy))
    doc = append_bench_record(path, _timing())
    # The legacy record was re-keyed as pool-mode and overwritten by the
    # fresh pool-mode record for the same (scenario, jobs).
    assert len(doc["records"]) == 1
    assert doc["records"][0]["mode"] == "pool"


def test_concurrent_bench_appends_never_corrupt_the_file(tmp_path):
    path = tmp_path / "BENCH_sweeps.json"
    timing = _timing()
    import dataclasses

    def hammer(worker):
        for i in range(10):
            record = dataclasses.replace(
                timing, scenario=f"hammer-{worker}", jobs=i % 3 + 1)
            append_bench_record(path, record)

    threads = [threading.Thread(target=hammer, args=(w,)) for w in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # Interleaved read-modify-write cycles may drop records, but the
    # file itself must always parse: every observable state is some
    # complete, valid document (tmp + os.replace).
    doc = json.loads(path.read_text())
    assert doc["version"] == 4
    assert len(doc["records"]) >= 1
    assert not list(tmp_path.glob("*.tmp*"))


# -- cache corruption corpus --------------------------------------------------


def _store_one(tmp_path):
    cell = compute_cell(OK, 0.0, seed=0)
    cache = CellCache(tmp_path)
    digest = cell_digest(OK.name, OK.fingerprint(), 0.0, 0)
    cache.store(digest, cell, scenario=OK.name, x=0.0, seed=0)
    return cache, digest, cache.path_for(digest)


def _valid_payload(path):
    return json.loads(path.read_text())


CORRUPTIONS = {
    "empty-file": lambda path: "",
    "truncated-json": lambda path: path.read_text()[: len(path.read_text()) // 2],
    "binary-garbage": lambda path: "\x00\xff\x01 not even text",
    "json-scalar": lambda path: "42",
    "json-array": lambda path: "[1, 2, 3]",
    "digest-mismatch": lambda path: json.dumps(
        {**_valid_payload(path), "digest": "0" * 64}),
    "wrong-format": lambda path: json.dumps(
        {**_valid_payload(path), "format": CACHE_FORMAT + 1}),
    "missing-cell-key": lambda path: json.dumps(
        {k: v for k, v in _valid_payload(path).items() if k != "cell"}),
    "label-series-mismatch": lambda path: json.dumps(
        {**_valid_payload(path),
         "cell": {**_valid_payload(path)["cell"],
                  "labels": ["somebody-else"]}}),
}


@pytest.mark.parametrize("corruption", sorted(CORRUPTIONS))
def test_corrupted_cache_entry_is_a_silent_miss(tmp_path, corruption):
    cache, digest, path = _store_one(tmp_path)
    path.write_text(CORRUPTIONS[corruption](path))
    assert cache.load(digest) is None  # never an exception


@pytest.mark.parametrize("corruption", sorted(CORRUPTIONS))
def test_corrupted_cache_entry_is_recomputed_in_a_sweep(tmp_path, corruption):
    _result, cold = execute_sweep(OK, seeds=1, cache_dir=tmp_path)
    assert cold.cells_computed == 3
    victim = sorted(tmp_path.rglob("*.json"))[0]
    victim.write_text(CORRUPTIONS[corruption](victim))

    result, timing = execute_sweep(OK, seeds=1, cache_dir=tmp_path)
    assert timing.cells_computed == 1
    assert timing.cache_hits == 2
    reference = execute_sweep(OK, seeds=1)[0]
    assert (json.dumps(result.to_dict(), sort_keys=True)
            == json.dumps(reference.to_dict(), sort_keys=True))
