"""Tests for the sweep runner."""

import pytest

from repro.app.iterative import ApplicationSpec
from repro.errors import ExperimentError
from repro.experiments.runner import run_sweep
from repro.experiments.scenarios import ExperimentSpec
from repro.load.base import ConstantLoadModel
from repro.platform.cluster import make_platform
from repro.strategies.nothing import NothingStrategy
from repro.strategies.swapstrat import SwapStrategy


def tiny_spec(duplicate_labels=False):
    def build(x, seed):
        platform = make_platform(3, ConstantLoadModel(int(x)), seed=seed,
                                 speed_range=(100e6, 200e6))
        app = ApplicationSpec(n_processes=2, iterations=3,
                              flops_per_iteration=2e8)
        label2 = "nothing" if duplicate_labels else "swap-greedy"
        return platform, [("nothing", app, NothingStrategy()),
                          (label2, app, SwapStrategy())]

    return ExperimentSpec(name="tiny", title="tiny sweep", xlabel="n",
                          x_values=(0.0, 1.0, 2.0), build=build,
                          paper_claim="toy", default_seeds=2)


def test_run_sweep_shapes():
    result = run_sweep(tiny_spec(), seeds=3)
    assert result.x_values == [0.0, 1.0, 2.0]
    assert set(result.series) == {"nothing", "swap-greedy"}
    for stats in result.series.values():
        assert len(stats.mean) == 3
        assert len(stats.std) == 3
        assert all(len(raw) == 3 for raw in stats.raw)


def test_makespan_grows_with_load():
    result = run_sweep(tiny_spec(), seeds=2)
    means = result.mean_of("nothing")
    assert means[0] < means[1] < means[2]


def test_ratio_and_best_improvement():
    result = run_sweep(tiny_spec(), seeds=2)
    ratios = result.ratio_to("nothing", baseline="nothing")
    assert all(r == pytest.approx(1.0) for r in ratios)
    assert result.best_improvement("nothing") == pytest.approx(0.0)


def test_unknown_series_raises():
    result = run_sweep(tiny_spec(), seeds=1)
    with pytest.raises(ExperimentError):
        result.mean_of("dlb")


def test_seed_argument_forms():
    by_count = run_sweep(tiny_spec(), seeds=2)
    by_iterable = run_sweep(tiny_spec(), seeds=[0, 1])
    assert by_count.mean_of("nothing") == by_iterable.mean_of("nothing")
    default = run_sweep(tiny_spec())
    assert len(default.seeds) == 2  # default_seeds


def test_empty_seeds_rejected():
    with pytest.raises(ExperimentError):
        run_sweep(tiny_spec(), seeds=[])


def test_duplicate_labels_rejected():
    with pytest.raises(ExperimentError):
        run_sweep(tiny_spec(duplicate_labels=True), seeds=1)


def test_progress_callback_invoked():
    calls = []
    run_sweep(tiny_spec(), seeds=2, on_point=lambda x, s: calls.append((x, s)))
    assert len(calls) == 3 * 2


def test_deterministic_across_invocations():
    a = run_sweep(tiny_spec(), seeds=2)
    b = run_sweep(tiny_spec(), seeds=2)
    assert a.mean_of("swap-greedy") == b.mean_of("swap-greedy")
