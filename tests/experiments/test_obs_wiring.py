"""Observability wiring through the sweep executor and the CLI.

The contract under test: a traced sweep produces a byte-identical JSONL
trace and metrics registry for any worker count and any cache state, and
an untraced sweep emits exactly zero records.
"""

import json

from repro import obs
from repro.app.workloads import paper_application
from repro.core.policy import greedy_policy
from repro.experiments import cli
from repro.experiments.executor import cell_digest, compute_cell, execute_sweep
from repro.experiments.scenarios import ExperimentSpec
from repro.load.onoff import OnOffLoadModel
from repro.platform.cluster import make_platform
from repro.strategies.cr import CrStrategy
from repro.strategies.dlb import DlbStrategy
from repro.strategies.nothing import NothingStrategy
from repro.strategies.swapstrat import SwapStrategy
from repro.units import KB, MB


def _tiny_build(x: float, seed: int):
    platform = make_platform(6, OnOffLoadModel(p=0.3 * x + 0.1, q=0.3),
                             seed=seed)
    app = paper_application(n_processes=2, iterations=6,
                            iteration_minutes=0.5, bytes_per_process=10 * KB,
                            state_bytes=1 * MB)
    return platform, [("nothing", app, NothingStrategy()),
                      ("swap", app, SwapStrategy(greedy_policy())),
                      ("dlb", app, DlbStrategy()),
                      ("cr", app, CrStrategy())]


TINY = ExperimentSpec(name="tiny-obs", title="tiny", xlabel="x",
                      x_values=(0.0, 1.0), build=_tiny_build,
                      default_seeds=2)


def _traced(jobs: int = 1, cache_dir=None) -> obs.ObsSession:
    session = obs.ObsSession()
    execute_sweep(TINY, seeds=2, jobs=jobs, cache_dir=cache_dir,
                  obs_session=session)
    return session


# -- determinism ----------------------------------------------------------------

def test_traced_sweep_is_byte_identical_across_runs():
    one, two = _traced(), _traced()
    assert one.trace.to_jsonl() == two.trace.to_jsonl()
    assert one.metrics.to_json() == two.metrics.to_json()
    assert len(one.trace) > 0


def test_parallel_trace_matches_serial():
    serial, parallel = _traced(jobs=1), _traced(jobs=2)
    assert parallel.trace.to_jsonl() == serial.trace.to_jsonl()
    assert parallel.metrics.to_json() == serial.metrics.to_json()


def test_warm_cache_trace_matches_cold(tmp_path):
    cold = _traced(cache_dir=tmp_path)
    warm = _traced(cache_dir=tmp_path)
    assert warm.trace.to_jsonl() == cold.trace.to_jsonl()
    assert warm.metrics.to_json() == cold.metrics.to_json()


def test_untraced_run_emits_zero_records():
    before = obs.emitted_total()
    execute_sweep(TINY, seeds=2)
    assert obs.emitted_total() == before


def test_untraced_and_traced_cache_entries_do_not_collide(tmp_path):
    execute_sweep(TINY, seeds=1, cache_dir=tmp_path)  # untraced warm-up
    session = _traced(cache_dir=tmp_path)
    # The traced run recomputed its own (instrumented) entries instead of
    # hitting untraced ones, so the trace is complete.
    assert any(r["kind"] == "decision" for r in session.trace.records)
    fp = TINY.fingerprint()
    assert (cell_digest("tiny-obs", fp, 0.0, 0)
            != cell_digest("tiny-obs", fp, 0.0, 0, instrumented=True))


# -- record content -------------------------------------------------------------

def test_trace_covers_every_decision_epoch_and_cell():
    session = _traced()
    decisions = [r for r in session.trace.records
                 if r["kind"] == "decision" and r["series"] == "swap"]
    # decide_swaps runs after every iteration but the last: 5 epochs
    # per cell, 2 x values * 2 seeds.
    assert len(decisions) == 5 * 4
    for record in decisions:
        assert record["scenario"] == "tiny-obs"
        assert "gates" in record and "rejected_reason" in record
        assert record["accepted"] == bool(record["moves"])
    cells = {(r["x"], r["seed"]) for r in session.trace.records}
    assert cells == {(0.0, 0), (0.0, 1), (1.0, 0), (1.0, 1)}


def test_trace_has_iterations_for_all_four_strategies():
    session = _traced()
    by_series = {}
    for record in session.trace.records:
        if record["kind"] == "iteration":
            by_series.setdefault(record["series"], 0)
            by_series[record["series"]] += 1
    assert set(by_series) == {"nothing", "swap", "dlb", "cr"}
    assert all(count == 6 * 4 for count in by_series.values())


def test_metrics_count_epochs_and_iterations():
    session = _traced()
    counters = session.metrics.to_dict()["counters"]
    assert counters["strategy.iterations_total"] == 4 * 6 * 4
    swap_epochs = counters["decision.epochs_total"]
    rejected = counters.get("decision.epochs_rejected_total", 0.0)
    moves = counters.get("decision.moves_total", 0.0)
    assert swap_epochs >= 5 * 4
    assert rejected <= swap_epochs
    assert moves >= 0.0


def test_compute_cell_untraced_has_empty_obs_payloads():
    cell = compute_cell(TINY, 0.0, 0)
    assert cell.trace_events == []
    assert cell.metrics == {}


# -- CLI ------------------------------------------------------------------------

def test_cli_writes_jsonl_trace_and_metrics(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    trace = tmp_path / "trace.jsonl"
    metrics = tmp_path / "metrics.json"
    code = cli.main(["fig4", "--seeds", "1", "--no-cache", "--no-bench",
                     "--trace", str(trace), "--metrics-json", str(metrics)])
    assert code == 0
    lines = trace.read_text().strip().split("\n")
    assert all(json.loads(line)["scenario"] == "fig4" for line in lines[:5])
    registry = json.loads(metrics.read_text())
    assert registry["counters"]["decision.epochs_total"] > 0
    out = capsys.readouterr().out
    assert "trace records" in out and "metrics registry" in out


def test_cli_chrome_trace_loads(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    trace = tmp_path / "trace.json"
    code = cli.main(["fig4", "--seeds", "1", "--no-cache", "--no-bench",
                     "--trace", str(trace), "--trace-format", "chrome"])
    assert code == 0
    doc = json.loads(trace.read_text())
    assert doc["displayTimeUnit"] == "ms"
    assert len(doc["traceEvents"]) > 0
    phases = {e["ph"] for e in doc["traceEvents"]}
    assert phases <= {"M", "X", "i"}


def test_cli_trace_runs_are_byte_identical(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    paths = []
    for name in ("one.jsonl", "two.jsonl"):
        path = tmp_path / name
        assert cli.main(["fig4", "--seeds", "1", "--no-cache", "--no-bench",
                         "--trace", str(path)]) == 0
        paths.append(path.read_bytes())
    assert paths[0] == paths[1]


def test_cli_report_writes_markdown_and_gantt(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    outdir = tmp_path / "run-report"
    code = cli.main(["fig4", "--seeds", "1", "--no-cache", "--no-bench",
                     "--report", str(outdir)])
    assert code == 0
    report = (outdir / "report.md").read_text()
    assert report.startswith("# Trace run report")
    assert "clean" in report  # a real sweep trace lints clean
    assert (outdir / "gantt.svg").read_text().startswith("<svg")
    out = capsys.readouterr().out
    assert "wrote run report" in out
    assert "lint finding" not in out


def test_cli_report_is_byte_identical_across_jobs(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    outputs = []
    for jobs, name in (("1", "a"), ("2", "b")):
        outdir = tmp_path / name
        assert cli.main(["fig4", "--seeds", "1", "--no-cache", "--no-bench",
                         "--jobs", jobs, "--report", str(outdir)]) == 0
        outputs.append(((outdir / "report.md").read_bytes(),
                        (outdir / "gantt.svg").read_bytes()))
    assert outputs[0] == outputs[1]


def test_cli_without_trace_flags_makes_no_session():
    class Args:
        trace = None
        metrics_json = None
        report = None

    assert cli._make_session(Args()) is None


def test_cli_report_flag_alone_makes_a_session():
    class Args:
        trace = None
        metrics_json = None
        report = "report-dir"

    assert cli._make_session(Args()) is not None
