"""Tests for the distributed sweep fabric.

The load-bearing guarantees:

* a fabric run -- any transport, any worker count -- produces a
  ``SweepResult`` **byte-identical** to the ``jobs=1`` serial reference;
* worker loss mid-lease (crash, hard ``SIGKILL``, or silent hang) causes
  the leased cells to be re-queued and the run to finish, still
  byte-identical;
* computed cells hit the content-addressed cache as they arrive, so a
  run that loses its coordinator resumes from cache -- and a rerun after
  a completed-then-crashed coordinator computes **zero** cells;
* a cell failing inside a worker surfaces as an ``ExperimentError``
  carrying ``(scenario, x, seed)``, not a hang or a bare traceback.
"""

import json

import pytest

from repro.app.iterative import ApplicationSpec
from repro.errors import ExperimentError, FabricError
from repro.experiments.executor import execute_sweep
from repro.experiments.fabric import (
    ASSIGN_CELLS,
    MESSAGE_KINDS,
    PROTOCOL_VERSION,
    REQUEST_WORK,
    Envelope,
    FabricConfig,
    WorkerChaos,
    execute_sweep_fabric,
)
from repro.experiments.scenarios import ExperimentSpec
from repro.load.base import ConstantLoadModel
from repro.platform.cluster import make_platform
from repro.strategies.nothing import NothingStrategy
from repro.strategies.swapstrat import SwapStrategy


def _tiny_build(x, seed):
    # Module-level so the spec pickles into process/socket workers.
    platform = make_platform(3, ConstantLoadModel(int(x)), seed=seed,
                             speed_range=(100e6, 200e6))
    app = ApplicationSpec(n_processes=2, iterations=3,
                          flops_per_iteration=2e8)
    return platform, [("nothing", app, NothingStrategy()),
                      ("swap-greedy", app, SwapStrategy())]


TINY = ExperimentSpec(name="tiny-fabric", title="tiny fabric sweep",
                      xlabel="n", x_values=(0.0, 1.0, 2.0),
                      build=_tiny_build, paper_claim="toy", default_seeds=2)


def _failing_build(x, seed):
    if x == 1.0:
        raise ValueError("deliberately poisoned cell")
    return _tiny_build(x, seed)


POISONED = ExperimentSpec(name="poisoned-fabric", title="poisoned sweep",
                          xlabel="n", x_values=(0.0, 1.0, 2.0),
                          build=_failing_build, paper_claim="toy",
                          default_seeds=1)


def _canon(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


SERIAL = _canon(execute_sweep(TINY, seeds=2)[0])


# -- message protocol --------------------------------------------------------


def test_envelope_wire_round_trip():
    env = Envelope(kind=ASSIGN_CELLS, sender="coordinator",
                   payload={"lease": 3, "cells": []})
    again = Envelope.from_wire(env.to_wire())
    assert again == env
    assert again.version == PROTOCOL_VERSION


def test_envelope_rejects_unknown_kind():
    with pytest.raises(FabricError):
        Envelope(kind="GOSSIP", sender="w0")


def test_envelope_rejects_version_mismatch():
    wire = Envelope(kind=REQUEST_WORK, sender="w0").to_wire()
    wire["version"] = PROTOCOL_VERSION + 1
    with pytest.raises(FabricError, match="version"):
        Envelope.from_wire(wire)


def test_envelope_rejects_malformed_wire():
    with pytest.raises(FabricError, match="malformed"):
        Envelope.from_wire({"kind": REQUEST_WORK})


def test_message_kinds_cover_the_protocol():
    assert MESSAGE_KINDS == {"REQUEST_WORK", "ASSIGN_CELLS", "CELL_RESULT",
                             "HEARTBEAT", "DRAIN", "SHUTDOWN",
                             "HELLO", "WELCOME"}


def test_chaos_parse():
    chaos = WorkerChaos.parse("crash:0:2")
    assert chaos == WorkerChaos(mode="crash", worker="w0", after_cells=2)
    with pytest.raises(FabricError):
        WorkerChaos.parse("crash:0")
    with pytest.raises(FabricError):
        WorkerChaos.parse("crash:zero:2")
    with pytest.raises(FabricError):
        WorkerChaos.parse("explode:0:2")


def test_config_validation():
    with pytest.raises(FabricError):
        FabricConfig(workers=0)
    with pytest.raises(FabricError):
        FabricConfig(lease_size=0)
    with pytest.raises(FabricError):
        FabricConfig(transport="carrier-pigeon")
    with pytest.raises(FabricError, match="kill"):
        FabricConfig(transport="thread",
                     chaos=WorkerChaos(mode="kill", worker="w0",
                                       after_cells=0))
    with pytest.raises(FabricError):
        FabricConfig(transport="tcp", handshake_timeout=0.0)
    assert FabricConfig(transport="tcp").listen == "127.0.0.1:0"


# -- byte-identity across transports ----------------------------------------


@pytest.mark.parametrize("transport", ["thread", "process", "socket", "tcp"])
def test_fabric_matches_serial_byte_identical(transport):
    result, timing, stats = execute_sweep_fabric(
        TINY, seeds=2, workers=3, transport=transport)
    assert _canon(result) == SERIAL
    assert timing.mode == "fabric"
    assert timing.cells_computed == 6
    assert stats.leases >= 1
    assert stats.workers_started == 3


def test_single_worker_fabric_matches_serial():
    result, _timing, _stats = execute_sweep_fabric(
        TINY, seeds=2, workers=1, transport="thread",
        config=FabricConfig(workers=1, transport="thread", lease_size=2))
    assert _canon(result) == SERIAL


# -- cache integration -------------------------------------------------------


def test_fabric_populates_and_reuses_cache(tmp_path):
    cold, cold_timing, _ = execute_sweep_fabric(
        TINY, seeds=2, workers=2, transport="thread", cache_dir=tmp_path)
    assert cold_timing.cells_computed == 6
    assert cold_timing.cache_hits == 0

    warm, warm_timing, warm_stats = execute_sweep_fabric(
        TINY, seeds=2, workers=2, transport="thread", cache_dir=tmp_path)
    assert warm_timing.cells_computed == 0
    assert warm_timing.cache_hits == 6
    assert warm_stats.workers_started == 0  # fully warm: no fleet launched
    assert _canon(cold) == _canon(warm) == SERIAL


def test_fabric_and_pool_share_one_cache(tmp_path):
    execute_sweep(TINY, seeds=2, jobs=2, cache_dir=tmp_path)
    _result, timing, _ = execute_sweep_fabric(
        TINY, seeds=2, workers=2, transport="thread", cache_dir=tmp_path)
    assert timing.cells_computed == 0  # same content addresses

    _result, pool_timing = execute_sweep(TINY, seeds=2, cache_dir=tmp_path)
    assert pool_timing.cells_computed == 0


# -- recovery semantics ------------------------------------------------------


def test_worker_crash_mid_lease_requeues_and_stays_identical():
    config = FabricConfig(
        workers=2, transport="thread", lease_size=2,
        chaos=WorkerChaos(mode="crash", worker="w0", after_cells=1))
    result, _timing, stats = execute_sweep_fabric(TINY, seeds=2,
                                                  config=config)
    assert _canon(result) == SERIAL
    assert stats.workers_lost == 1
    assert stats.requeued_cells >= 1
    assert stats.revoked_leases >= 1


def test_hard_process_kill_requeues_and_stays_identical():
    config = FabricConfig(
        workers=2, transport="process", lease_size=2,
        chaos=WorkerChaos(mode="kill", worker="w0", after_cells=1))
    result, _timing, stats = execute_sweep_fabric(TINY, seeds=2,
                                                  config=config)
    assert _canon(result) == SERIAL
    assert stats.workers_lost == 1
    assert stats.requeued_cells >= 1


def test_hung_worker_caught_by_lease_expiry():
    config = FabricConfig(
        workers=2, transport="thread", lease_size=2, lease_timeout=0.5,
        chaos=WorkerChaos(mode="hang", worker="w0", after_cells=1))
    result, _timing, stats = execute_sweep_fabric(TINY, seeds=2,
                                                  config=config)
    assert _canon(result) == SERIAL
    assert stats.revoked_leases >= 1
    assert stats.requeued_cells >= 1


def test_losing_every_worker_raises_not_hangs():
    config = FabricConfig(
        workers=1, transport="thread", lease_size=1, max_worker_restarts=0,
        chaos=WorkerChaos(mode="crash", worker="w0", after_cells=0))
    with pytest.raises(FabricError, match="every fabric worker died"):
        execute_sweep_fabric(TINY, seeds=2, config=config)


def test_replacement_worker_finishes_after_fleet_attrition():
    # One worker, one restart: the replacement (w1, untargeted by the
    # chaos) must finish the whole grid alone.
    config = FabricConfig(
        workers=1, transport="thread", lease_size=1, max_worker_restarts=1,
        chaos=WorkerChaos(mode="crash", worker="w0", after_cells=2))
    result, _timing, stats = execute_sweep_fabric(TINY, seeds=2,
                                                  config=config)
    assert _canon(result) == SERIAL
    assert stats.workers_started == 2
    assert stats.workers_lost == 1


# -- coordinator death / resume-from-cache -----------------------------------


class _CoordinatorDied(Exception):
    pass


def test_coordinator_crash_mid_run_resumes_from_cache(tmp_path):
    seen = []

    def die_after_two(xi, si):
        seen.append((xi, si))
        if len(seen) == 2:
            raise _CoordinatorDied

    with pytest.raises(_CoordinatorDied):
        execute_sweep_fabric(TINY, seeds=2, workers=2, transport="thread",
                             cache_dir=tmp_path, on_cell=die_after_two)

    # Everything that fired on_cell was already on disk.
    result, timing, _ = execute_sweep_fabric(
        TINY, seeds=2, workers=2, transport="thread", cache_dir=tmp_path)
    assert timing.cache_hits >= 2
    assert timing.cells_computed <= 4
    assert _canon(result) == SERIAL


def test_rerun_after_coordinator_death_computes_zero_cells(tmp_path):
    # Coordinator dies after the last cell was stored but before the
    # merge: the result was "lost", yet the rerun is pure cache.
    def die_at_the_finish_line(xi, si):
        if len(list(tmp_path.rglob("*.json"))) >= 6:
            raise _CoordinatorDied

    with pytest.raises(_CoordinatorDied):
        execute_sweep_fabric(TINY, seeds=2, workers=2, transport="thread",
                             cache_dir=tmp_path,
                             on_cell=die_at_the_finish_line)

    result, timing, stats = execute_sweep_fabric(
        TINY, seeds=2, workers=2, transport="thread", cache_dir=tmp_path)
    assert timing.cells_computed == 0
    assert timing.cache_hits == 6
    assert stats.workers_started == 0
    assert _canon(result) == SERIAL


# -- failing cells -----------------------------------------------------------


def test_failing_cell_surfaces_with_coordinates():
    with pytest.raises(ExperimentError) as excinfo:
        execute_sweep_fabric(POISONED, seeds=1, workers=2,
                             transport="thread")
    message = str(excinfo.value)
    assert "poisoned-fabric" in message
    assert "x=1.0" in message
    assert "seed=0" in message
    assert "deliberately poisoned cell" in message


def test_failing_cell_on_process_transport():
    with pytest.raises(ExperimentError, match="poisoned-fabric"):
        execute_sweep_fabric(POISONED, seeds=1, workers=2,
                             transport="process")


# -- observability -----------------------------------------------------------


def test_fabric_trace_matches_pool_trace_and_counts_fabric_metrics():
    from repro import obs

    pool_session = obs.ObsSession()
    execute_sweep(TINY, seeds=2, obs_session=pool_session)

    fabric_session = obs.ObsSession()
    _result, _timing, stats = execute_sweep_fabric(
        TINY, seeds=2, workers=2, transport="thread",
        obs_session=fabric_session)

    # The simulation trace is merged in grid order: byte-identical.
    assert fabric_session.trace.records == pool_session.trace.records
    counters = fabric_session.metrics.to_dict()["counters"]
    assert counters["fabric.leases_total"] == stats.leases
    assert counters["fabric.workers_started_total"] == 2
    assert counters["fabric.heartbeats_total"] >= 1
    lifetimes = fabric_session.metrics.to_dict()["histograms"][
        "fabric.worker_lifetime_seconds"]
    assert lifetimes["count"] == 2


def test_on_point_fires_in_grid_order():
    calls = []
    execute_sweep_fabric(TINY, seeds=2, workers=2, transport="thread",
                         on_point=lambda x, s: calls.append((x, s)))
    assert calls == [(x, s) for x in (0.0, 1.0, 2.0) for s in (0, 1)]
