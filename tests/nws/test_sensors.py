"""Tests for NWS-style sensors."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.load.base import ConstantLoadModel, LoadTrace
from repro.nws.sensors import BandwidthSensor, CpuSensor, MeasurementSeries
from repro.platform.host import Host, HostSpec
from repro.platform.network import LinkSpec


def make_host(times, values, speed=100e6):
    host = Host(HostSpec(name="h", speed=speed,
                         load_model=ConstantLoadModel(0)),
                np.random.default_rng(0))
    host.trace = LoadTrace(times, values, beyond_horizon="hold")
    return host


# -- MeasurementSeries ---------------------------------------------------------

def test_series_append_and_last():
    series = MeasurementSeries(name="s")
    series.append(0.0, 1.0)
    series.append(5.0, 2.0)
    assert len(series) == 2
    assert series.last == 2.0


def test_series_rejects_time_travel():
    series = MeasurementSeries(name="s")
    series.append(5.0, 1.0)
    with pytest.raises(ReproError):
        series.append(4.0, 2.0)


def test_series_bounded_length():
    series = MeasurementSeries(name="s", max_length=3)
    for i in range(6):
        series.append(float(i), float(i))
    assert len(series) == 3
    assert series.values == [3.0, 4.0, 5.0]


def test_series_window():
    series = MeasurementSeries(name="s")
    for i in range(5):
        series.append(float(i), float(i * 10))
    assert series.window(1.0, 3.0) == [(1.0, 10.0), (2.0, 20.0), (3.0, 30.0)]


def test_empty_series_last_raises():
    with pytest.raises(ReproError):
        MeasurementSeries(name="s").last


# -- CpuSensor --------------------------------------------------------------------

def test_cpu_sensor_reads_availability():
    host = make_host([0.0, 10.0, 100.0], [0, 1])
    sensor = CpuSensor(host, period=5.0)
    assert sensor.probe(0.0) == pytest.approx(1.0)
    assert sensor.probe(20.0) == pytest.approx(0.5)
    assert len(sensor.series) == 2


def test_cpu_sensor_sample_range():
    host = make_host([0.0, 50.0, 100.0], [0, 3])
    sensor = CpuSensor(host, period=10.0)
    series = sensor.sample_range(0.0, 100.0)
    assert len(series) == 11
    assert series.values[0] == pytest.approx(1.0)
    assert series.values[-1] == pytest.approx(0.25)


def test_cpu_sensor_period_validation():
    host = make_host([0.0, 10.0], [0])
    with pytest.raises(ReproError):
        CpuSensor(host, period=0.0)


# -- BandwidthSensor -----------------------------------------------------------------

def test_bandwidth_probe_uncontended():
    link = LinkSpec(latency=0.0, bandwidth=6e6)
    sensor = BandwidthSensor(link, probe_bytes=6e6)
    assert sensor.probe(0.0) == pytest.approx(6e6)


def test_bandwidth_probe_latency_amortization():
    """Small probes under-estimate bandwidth -- the classic NWS bias."""
    link = LinkSpec(latency=1.0, bandwidth=6e6)
    small = BandwidthSensor(link, probe_bytes=6e4).probe(0.0)
    large = BandwidthSensor(link, probe_bytes=6e7).probe(0.0)
    assert small < large < 6e6


def test_bandwidth_probe_sees_contention():
    link = LinkSpec(latency=0.0, bandwidth=6e6)
    sensor = BandwidthSensor(link)
    alone = sensor.probe(0.0, concurrent_flows=0)
    shared = sensor.probe(1.0, concurrent_flows=2)
    assert shared == pytest.approx(alone / 3)


def test_bandwidth_probe_size_validation():
    with pytest.raises(ReproError):
        BandwidthSensor(LinkSpec(), probe_bytes=0.0)
