"""Tests for the online forecaster bank."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PolicyError
from repro.nws.forecasting import (
    BankMonitor,
    Forecast,
    ForecasterBank,
    default_methods,
)


def test_empty_bank_rejected():
    with pytest.raises(PolicyError):
        ForecasterBank(methods=[])


def test_forecast_before_data_rejected():
    with pytest.raises(PolicyError):
        ForecasterBank().forecast()


def test_single_sample_predicts_it():
    bank = ForecasterBank()
    bank.update(7.0)
    forecast = bank.forecast()
    assert forecast.value == pytest.approx(7.0)
    assert forecast.n_samples == 1


def test_constant_series_zero_error():
    bank = ForecasterBank()
    for _ in range(50):
        bank.update(3.0)
    forecast = bank.forecast()
    assert forecast.value == pytest.approx(3.0)
    assert forecast.error == pytest.approx(0.0)


def test_trend_prefers_reactive_methods():
    """On a strict trend, last-value / fast EWMA beat long means."""
    bank = ForecasterBank()
    for i in range(100):
        bank.update(float(i))
    leaderboard = dict(bank.leaderboard())
    assert leaderboard["last"] < leaderboard["running-mean"]
    winner = bank.leaderboard()[0][0]
    assert winner in ("last", "ewma-0.6", "ewma-0.25")


def test_noisy_level_prefers_smoothing():
    """On i.i.d. noise around a level, smoothing beats last-value."""
    rng = np.random.default_rng(0)
    bank = ForecasterBank()
    for _ in range(400):
        bank.update(float(5.0 + rng.normal(0, 1.0)))
    leaderboard = dict(bank.leaderboard())
    assert leaderboard["running-mean"] < leaderboard["last"]
    assert bank.forecast().value == pytest.approx(5.0, abs=0.5)


def test_leaderboard_sorted():
    bank = ForecasterBank()
    for i in range(30):
        bank.update(float(i % 5))
    maes = [mae for _name, mae in bank.leaderboard()]
    assert maes == sorted(maes)


def test_forecast_has_provenance():
    bank = ForecasterBank()
    for i in range(10):
        bank.update(1.0)
    forecast = bank.forecast()
    assert isinstance(forecast, Forecast)
    assert forecast.method in {m.name for m in default_methods()}


@given(st.lists(st.floats(min_value=0.0, max_value=1e3), min_size=1,
                max_size=80))
@settings(max_examples=50)
def test_bank_never_crashes_and_interpolates(values):
    bank = ForecasterBank()
    for v in values:
        bank.update(float(v))
    forecast = bank.forecast()
    assert min(values) - 1e-9 <= forecast.value <= max(values) + 1e-9
    assert forecast.error >= 0.0


# -- BankMonitor --------------------------------------------------------------------

def test_bank_monitor_per_resource():
    monitor = BankMonitor()
    for i in range(20):
        monitor.record("a", float(i), 10.0)
        monitor.record("b", float(i), 99.0)
    assert monitor.predict("a") == pytest.approx(10.0)
    assert monitor.forecast("b").value == pytest.approx(99.0)
    assert set(monitor.known_resources()) == {"a", "b"}


def test_bank_monitor_unknown_resource():
    with pytest.raises(PolicyError):
        BankMonitor().predict("ghost")


def test_bank_monitor_tracks_nonstationary_signal():
    """After a level shift, the bank converges to the new level faster
    than a plain running mean would."""
    monitor = BankMonitor()
    t = 0.0
    for _ in range(50):
        monitor.record("cpu", t, 1.0)
        t += 1.0
    for _ in range(30):
        monitor.record("cpu", t, 0.5)
        t += 1.0
    assert monitor.predict("cpu") == pytest.approx(0.5, abs=0.1)
