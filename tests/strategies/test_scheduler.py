"""Tests for the pre-execution scheduler."""

import pytest

from repro.errors import StrategyError
from repro.load.base import ConstantLoadModel
from repro.platform.cluster import make_platform
from repro.strategies.scheduler import initial_schedule, rank_hosts


def test_ranks_by_unloaded_speed_when_dedicated():
    platform = make_platform(6, ConstantLoadModel(0), seed=2)
    ranked = rank_hosts(platform, 0.0)
    speeds = [platform.host(h).speed for h in ranked]
    assert speeds == sorted(speeds, reverse=True)


def test_initial_schedule_picks_n_fastest():
    platform = make_platform(6, ConstantLoadModel(0), seed=2)
    chosen = initial_schedule(platform, 3)
    all_ranked = rank_hosts(platform, 0.0)
    assert chosen == all_ranked[:3]


def test_load_at_startup_changes_ranking():
    # All speeds equal-ish per seed; load host 0 heavily at t=0.
    platform = make_platform(
        4, lambda i: ConstantLoadModel(3 if i == 0 else 0), seed=2)
    chosen = initial_schedule(platform, 3)
    assert 0 not in chosen


def test_schedule_validation():
    platform = make_platform(4, ConstantLoadModel(0), seed=2)
    with pytest.raises(StrategyError):
        initial_schedule(platform, 0)
    with pytest.raises(StrategyError):
        initial_schedule(platform, 5)


def test_ties_broken_by_index():
    platform = make_platform(4, ConstantLoadModel(0), seed=2,
                             speed_range=(300e6, 300e6))
    assert initial_schedule(platform, 4) == [0, 1, 2, 3]
