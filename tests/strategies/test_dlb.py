"""Tests for the DLB strategy."""

import pytest

from repro.app.iterative import ApplicationSpec
from repro.load.base import ConstantLoadModel, LoadTrace
from repro.load.onoff import OnOffLoadModel
from repro.platform.cluster import make_platform
from repro.strategies.dlb import DlbStrategy
from repro.strategies.nothing import NothingStrategy


def app(n, iters=5, flops=4e8):
    return ApplicationSpec(n_processes=n, iterations=iters,
                           flops_per_iteration=flops)


def test_perfect_balance_on_static_heterogeneity():
    """With static speeds, DLB achieves the aggregate-rate lower bound."""
    platform = make_platform(2, ConstantLoadModel(0), seed=1,
                             speed_range=(100e6, 400e6))
    total_rate = sum(h.speed for h in platform.hosts)
    result = DlbStrategy().run(platform, app(2, iters=5, flops=4e8))
    per_iter = 4e8 / total_rate
    assert result.makespan == pytest.approx(1.5 + 5 * per_iter)


def test_beats_nothing_on_heterogeneous_static_platform():
    platform = make_platform(4, ConstantLoadModel(0), seed=3,
                             speed_range=(100e6, 500e6))
    a = app(4)
    assert DlbStrategy().run(platform, a).makespan < (
        NothingStrategy().run(platform, a).makespan)


def test_equals_nothing_on_homogeneous_static_platform():
    platform = make_platform(4, ConstantLoadModel(0), seed=3,
                             speed_range=(200e6, 200e6 + 1e-6))
    a = app(4)
    assert DlbStrategy().run(platform, a).makespan == pytest.approx(
        NothingStrategy().run(platform, a).makespan, rel=1e-9)


def test_mid_iteration_load_change_hurts_dlb():
    """The paper's DLB pathology: partition on speeds observed at the
    start of the iteration, then the environment shifts."""
    platform = make_platform(2, ConstantLoadModel(0), seed=0,
                             speed_range=(100e6, 100e6 + 1e-6))
    # Host 0 looks free when the iteration starts (t=1.5, after startup)
    # but becomes loaded at t=2.0, mid-iteration.
    platform.hosts[0].trace = LoadTrace([0.0, 2.0, 1e9], [0, 3],
                                        beyond_horizon="hold")
    result = DlbStrategy().run(platform, app(2, iters=1, flops=2e8))
    # DLB split the work ~50/50.  Host 0 does 5e7 flop in its free 0.5 s,
    # then the remaining 5e7 at 25 MF/s takes 2 s: iteration ends t=4.0.
    assert result.makespan == pytest.approx(4.0, rel=1e-4)


def test_no_overhead_charged():
    platform = make_platform(4, OnOffLoadModel(0.1, 0.1), seed=5)
    result = DlbStrategy().run(platform, app(4))
    assert result.overhead_time == 0.0
    assert result.swap_count == 0


def test_measurement_window_validation():
    with pytest.raises(ValueError):
        DlbStrategy(measurement_window=-1.0)
