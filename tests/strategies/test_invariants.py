"""Cross-strategy invariants on shared stochastic platforms."""

import pytest

from repro.app.iterative import ApplicationSpec
from repro.core.policy import friendly_policy, greedy_policy, safe_policy
from repro.load.onoff import OnOffLoadModel
from repro.platform.cluster import make_platform
from repro.strategies.cr import CrStrategy
from repro.strategies.dlb import DlbStrategy
from repro.strategies.nothing import NothingStrategy
from repro.strategies.swapstrat import SwapStrategy
from repro.units import MB

APP = ApplicationSpec(n_processes=4, iterations=15,
                      flops_per_iteration=4 * 9e9,
                      bytes_per_process=1e5, state_bytes=1 * MB)


def platform_for(seed):
    return make_platform(12, OnOffLoadModel(p=0.02, q=0.03), seed=seed,
                         speed_range=(250e6, 350e6))


ALL_STRATEGIES = [NothingStrategy(), SwapStrategy(greedy_policy()),
                  SwapStrategy(safe_policy()), SwapStrategy(friendly_policy()),
                  DlbStrategy(), CrStrategy()]


@pytest.mark.parametrize("strategy", ALL_STRATEGIES,
                         ids=lambda s: s.name)
def test_runs_are_deterministic(strategy):
    first = strategy.run(platform_for(3), APP)
    second = strategy.run(platform_for(3), APP)
    assert first.makespan == second.makespan
    assert first.swap_count == second.swap_count
    assert first.final_active == second.final_active


@pytest.mark.parametrize("strategy", ALL_STRATEGIES,
                         ids=lambda s: s.name)
def test_makespan_above_physical_lower_bound(strategy):
    """No strategy can beat the aggregate unloaded compute rate."""
    platform = platform_for(5)
    result = strategy.run(platform, APP)
    best_rate = max(h.speed for h in platform.hosts)
    lower_bound = APP.iterations * APP.chunk_flops / best_rate
    assert result.makespan > lower_bound


@pytest.mark.parametrize("strategy", ALL_STRATEGIES,
                         ids=lambda s: s.name)
def test_accounting_consistent(strategy):
    result = strategy.run(platform_for(7), APP)
    assert result.iteration_count == APP.iterations
    assert result.makespan == pytest.approx(
        result.startup_time
        + sum(r.duration for r in result.records)
        + result.overhead_time)
    assert len(result.final_active) == APP.n_processes
    for record in result.records:
        assert record.compute_end <= record.end + 1e-9
        assert len(record.active) == APP.n_processes


def test_swap_equals_nothing_when_no_spares():
    """With zero over-allocation, SWAP degenerates to NOTHING (plus no
    extra startup: the pool is exactly N)."""
    app = ApplicationSpec(n_processes=4, iterations=10,
                          flops_per_iteration=4 * 9e9, state_bytes=1 * MB)
    swap = SwapStrategy(greedy_policy()).run(
        make_platform(4, OnOffLoadModel(0.05, 0.05), seed=2,
                      speed_range=(250e6, 350e6)), app)
    nothing = NothingStrategy().run(
        make_platform(4, OnOffLoadModel(0.05, 0.05), seed=2,
                      speed_range=(250e6, 350e6)), app)
    assert swap.makespan == pytest.approx(nothing.makespan)
    assert swap.swap_count == 0


def test_same_platform_object_reusable_across_strategies():
    """Running one strategy must not perturb the platform for the next
    (trace extension is append-only and shared)."""
    platform = platform_for(11)
    first = NothingStrategy().run(platform, APP)
    SwapStrategy(greedy_policy()).run(platform, APP)
    CrStrategy().run(platform, APP)
    again = NothingStrategy().run(platform, APP)
    assert again.makespan == first.makespan


def test_greedy_swaps_at_least_as_often_as_safe():
    platform = platform_for(13)
    greedy = SwapStrategy(greedy_policy()).run(platform, APP)
    safe = SwapStrategy(safe_policy()).run(platform, APP)
    assert greedy.swap_count >= safe.swap_count
