"""Tests for the checkpoint/restart strategy."""

import pytest

from repro.app.iterative import ApplicationSpec
from repro.core.policy import greedy_policy, safe_policy
from repro.load.base import ConstantLoadModel, LoadTrace
from repro.platform.cluster import make_platform
from repro.strategies.cr import CrStrategy
from repro.strategies.nothing import NothingStrategy
from repro.units import MB


def app(n, iters=6, flops=4e8, state=1 * MB):
    return ApplicationSpec(n_processes=n, iterations=iters,
                           flops_per_iteration=flops, state_bytes=state)


def homogeneous(n, seed=0):
    return make_platform(n, ConstantLoadModel(0), seed=seed,
                         speed_range=(100e6, 100e6 + 1e-6))


def load_host(platform, index, n_competing, from_t):
    platform.hosts[index].trace = LoadTrace(
        [0.0, from_t, 1e12], [0, n_competing], beyond_horizon="hold")


def test_restart_cost_formula():
    platform = homogeneous(4)
    a = app(2, state=6e6)
    cost = CrStrategy().restart_cost(platform, a)
    link = platform.link
    expected = 2 * link.serialized_time(2 * 6e6, 2) + 2 * 0.75
    assert cost == pytest.approx(expected)


def test_no_restarts_when_quiescent():
    platform = homogeneous(6)
    result = CrStrategy().run(platform, app(2))
    assert result.restart_count == 0
    assert result.overhead_time == 0.0


def test_migrates_whole_set_away_from_load():
    platform = homogeneous(6)
    load_host(platform, 0, 3, from_t=5.0)
    load_host(platform, 1, 3, from_t=5.0)
    result = CrStrategy().run(platform, app(2, iters=8))
    assert result.restart_count >= 1
    assert set(result.final_active).isdisjoint({0, 1})


def test_restart_overhead_accounted():
    platform = homogeneous(6)
    load_host(platform, 0, 3, from_t=5.0)
    load_host(platform, 1, 3, from_t=5.0)
    a = app(2, iters=8)
    result = CrStrategy().run(platform, a)
    cost = CrStrategy().restart_cost(platform, a)
    assert result.overhead_time == pytest.approx(cost * result.restart_count)


def test_cr_beats_nothing_under_persistent_load():
    a = app(2, iters=10)
    p1, p2 = homogeneous(6), homogeneous(6)
    for p in (p1, p2):
        load_host(p, 0, 3, from_t=5.0)
        load_host(p, 1, 3, from_t=5.0)
    assert CrStrategy().run(p1, a).makespan < (
        NothingStrategy().run(p2, a).makespan)


def test_initial_startup_covers_only_active_processes():
    platform = homogeneous(6)
    result = CrStrategy().run(platform, app(2))
    assert result.startup_time == pytest.approx(2 * 0.75)


def test_policy_gates_apply():
    """With a strict payback threshold, an expensive restart for a modest
    gain is refused."""
    platform = homogeneous(6)
    load_host(platform, 0, 1, from_t=5.0)  # only a 2x slowdown on one host
    a = app(2, iters=8, state=200 * MB)    # restart moves 2 x 200 MB twice
    strict = CrStrategy(safe_policy().with_overrides(history_window=0.0))
    result = strict.run(platform, a)
    assert result.restart_count == 0


def test_name_reflects_policy():
    assert CrStrategy().name == "cr"
    assert CrStrategy(safe_policy()).name == "cr-safe"


def test_greedy_default_policy():
    assert CrStrategy().policy == greedy_policy()
