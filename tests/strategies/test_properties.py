"""Property-based tests over randomly drawn platforms and workloads."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.app.iterative import ApplicationSpec
from repro.core.policy import greedy_policy, safe_policy
from repro.load.onoff import OnOffLoadModel
from repro.platform.cluster import make_platform
from repro.strategies.cr import CrStrategy
from repro.strategies.dlb import DlbStrategy
from repro.strategies.nothing import NothingStrategy
from repro.strategies.swapstrat import SwapStrategy
from repro.units import MB

probabilities = st.floats(min_value=0.0, max_value=1.0)
platform_params = st.tuples(
    probabilities, probabilities,
    st.integers(min_value=2, max_value=8),   # hosts
    st.integers(min_value=0, max_value=99),  # seed
)


def build(params, n_active):
    p, q, n_hosts, seed = params
    platform = make_platform(n_hosts, OnOffLoadModel(p=p, q=q), seed=seed,
                             speed_range=(100e6, 400e6))
    app = ApplicationSpec(n_processes=min(n_active, n_hosts), iterations=4,
                          flops_per_iteration=2e9, bytes_per_process=1e4,
                          state_bytes=1 * MB)
    return platform, app


@given(platform_params, st.integers(min_value=1, max_value=4))
@settings(max_examples=40, deadline=None)
def test_accounting_identity_holds_everywhere(params, n_active):
    platform, app = build(params, n_active)
    for strategy in (NothingStrategy(), SwapStrategy(greedy_policy()),
                     SwapStrategy(safe_policy()), DlbStrategy(),
                     CrStrategy()):
        result = strategy.run(platform, app)
        assert result.makespan == pytest.approx(
            result.startup_time
            + sum(r.duration for r in result.records)
            + result.overhead_time)
        assert result.iteration_count == app.iterations
        assert all(r.compute_end <= r.end + 1e-9 for r in result.records)
        assert all(r.duration > 0 for r in result.records)
        assert len(set(result.final_active)) == app.n_processes


@given(platform_params, st.integers(min_value=1, max_value=4))
@settings(max_examples=30, deadline=None)
def test_determinism_everywhere(params, n_active):
    first_platform, app = build(params, n_active)
    second_platform, _ = build(params, n_active)
    strategy = SwapStrategy(greedy_policy())
    a = strategy.run(first_platform, app)
    b = strategy.run(second_platform, app)
    assert a.makespan == b.makespan
    assert a.swap_count == b.swap_count
    assert a.final_active == b.final_active


@given(platform_params)
@settings(max_examples=30, deadline=None)
def test_dlb_never_slower_than_nothing_on_its_predictions(params):
    """DLB can lose to NOTHING only through mispredicted mid-iteration
    changes; with 4 iterations of ~10-20 s against >=10 s dwell steps the
    loss is bounded -- it must never be catastrophic."""
    platform, app = build(params, 2)
    nothing = NothingStrategy().run(platform, app)
    dlb = DlbStrategy().run(platform, app)
    assert dlb.makespan < 2.0 * nothing.makespan


@given(platform_params)
@settings(max_examples=30, deadline=None)
def test_swap_overhead_matches_event_log(params):
    platform, app = build(params, 2)
    result = SwapStrategy(greedy_policy()).run(platform, app)
    logged = sum(r.overhead_after for r in result.records)
    assert result.overhead_time == pytest.approx(logged)
    n_pauses = sum(1 for r in result.records if r.event == "swap")
    assert (result.swap_count == 0) == (n_pauses == 0)
