"""Tests for the dynamic-spawning swap strategy (extension)."""

import pytest

from repro.app.iterative import ApplicationSpec
from repro.core.policy import greedy_policy, safe_policy
from repro.load.base import ConstantLoadModel, LoadTrace
from repro.platform.cluster import make_platform
from repro.strategies.spawnswap import SpawnSwapStrategy
from repro.strategies.swapstrat import SwapStrategy
from repro.units import MB


def app(n, iters=6, flops=4e8, state=1 * MB):
    return ApplicationSpec(n_processes=n, iterations=iters,
                           flops_per_iteration=flops, state_bytes=state)


def homogeneous(n, seed=0):
    return make_platform(n, ConstantLoadModel(0), seed=seed,
                         speed_range=(100e6, 100e6 + 1e-6))


def load_host(platform, index, n_competing, from_t):
    platform.hosts[index].trace = LoadTrace(
        [0.0, from_t, 1e12], [0, n_competing], beyond_horizon="hold")


def test_startup_covers_only_working_processes():
    platform = homogeneous(12)
    result = SpawnSwapStrategy(greedy_policy()).run(platform, app(2))
    assert result.startup_time == pytest.approx(2 * 0.75)
    over = SwapStrategy(greedy_policy()).run(platform, app(2))
    assert over.startup_time == pytest.approx(12 * 0.75)


def test_swap_pays_spawn_cost():
    platform = homogeneous(4)
    load_host(platform, 0, 3, from_t=5.0)
    load_host(platform, 1, 3, from_t=5.0)
    result = SpawnSwapStrategy(greedy_policy()).run(platform, app(2, iters=8))
    assert result.swap_count >= 1
    # Overhead includes at least one 0.75 s spawn beyond the transfers.
    transfers = result.swap_count * platform.link.transfer_time(1 * MB)
    assert result.overhead_time > transfers


def test_matches_overallocation_results_apart_from_costs():
    """Same platform, same policy: both variants make the same escape
    decisions; only the cost accounting differs."""
    def build():
        platform = homogeneous(6, seed=2)
        load_host(platform, 0, 3, from_t=5.0)
        return platform

    a = SwapStrategy(greedy_policy()).run(build(), app(2, iters=8))
    b = SpawnSwapStrategy(greedy_policy()).run(build(), app(2, iters=8))
    assert set(a.final_active) == set(b.final_active)


def test_short_run_advantage():
    """On a quiescent pool a 2-iteration app should not pay for spares."""
    short = app(2, iters=2)
    platform = homogeneous(16)
    spawn = SpawnSwapStrategy(greedy_policy()).run(platform, short)
    over = SwapStrategy(greedy_policy()).run(platform, short)
    assert spawn.makespan < over.makespan
    assert over.makespan - spawn.makespan == pytest.approx(14 * 0.75)


def test_policy_gates_see_spawn_cost():
    """The spawn cost enters the payback calculation: a strict payback
    threshold refuses swaps that the transfer alone would allow."""
    platform = homogeneous(3)
    load_host(platform, 0, 1, from_t=5.0)  # modest 2x slowdown
    tight = safe_policy().with_overrides(name="tight",
                                         min_process_improvement=0.0,
                                         payback_threshold=0.1,
                                         history_window=0.0)
    result = SpawnSwapStrategy(tight).run(platform,
                                          app(1, iters=6, flops=2e8))
    # Payback of (0.75 + transfer) / (~1 s/iteration saved) > 0.1.
    assert result.swap_count == 0


def test_name_reflects_policy():
    assert SpawnSwapStrategy().name == "swap-spawn-greedy"
    assert SpawnSwapStrategy(safe_policy()).name == "swap-spawn-safe"
