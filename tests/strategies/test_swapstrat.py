"""Tests for the SWAP strategy."""

import pytest

from repro.app.iterative import ApplicationSpec
from repro.core.policy import greedy_policy, safe_policy
from repro.load.base import ConstantLoadModel, LoadTrace
from repro.platform.cluster import make_platform
from repro.strategies.nothing import NothingStrategy
from repro.strategies.swapstrat import SwapStrategy
from repro.units import MB


def app(n, iters=5, flops=4e8, state=1 * MB):
    return ApplicationSpec(n_processes=n, iterations=iters,
                           flops_per_iteration=flops, state_bytes=state)


def homogeneous(n, seed=0):
    return make_platform(n, ConstantLoadModel(0), seed=seed,
                         speed_range=(100e6, 100e6 + 1e-6))


def load_host(platform, index, n_competing, from_t=0.0):
    """Overwrite one host's trace with a permanent load step."""
    if from_t == 0.0:
        trace = LoadTrace([0.0, 1e12], [n_competing], beyond_horizon="hold")
    else:
        trace = LoadTrace([0.0, from_t, 1e12], [0, n_competing],
                          beyond_horizon="hold")
    platform.hosts[index].trace = trace


def test_overallocation_startup_cost():
    platform = homogeneous(8)
    result = SwapStrategy(greedy_policy()).run(platform, app(2))
    assert result.startup_time == pytest.approx(8 * 0.75)


def test_no_swaps_in_quiescent_environment():
    platform = homogeneous(8)
    result = SwapStrategy(greedy_policy()).run(platform, app(2))
    assert result.swap_count == 0
    assert result.overhead_time == 0.0


def test_escapes_persistently_loaded_host():
    from repro.strategies.scheduler import initial_schedule

    platform = homogeneous(4)
    active = initial_schedule(platform, 2)
    victim = active[0]
    load_host(platform, victim, n_competing=3, from_t=5.0)
    result = SwapStrategy(greedy_policy()).run(platform, app(2, iters=6))
    assert result.swap_count >= 1
    assert victim not in result.final_active
    # The first iteration ran on the original schedule.
    assert set(result.records[0].active) == set(active)


def test_swap_beats_nothing_under_persistent_load():
    platform_a = homogeneous(4)
    platform_b = homogeneous(4)
    for p in (platform_a, platform_b):
        load_host(p, 0, n_competing=3, from_t=5.0)
        load_host(p, 1, n_competing=3, from_t=5.0)
    a = app(2, iters=10)
    swap = SwapStrategy(greedy_policy()).run(platform_a, a)
    nothing = NothingStrategy().run(platform_b, a)
    assert swap.makespan < nothing.makespan


def test_swap_overhead_accounted():
    platform = homogeneous(4)
    load_host(platform, 0, n_competing=3, from_t=5.0)
    result = SwapStrategy(greedy_policy()).run(platform, app(2, iters=6))
    expected_min = platform.link.transfer_time(1 * MB) * result.swap_count
    assert result.overhead_time >= expected_min * 0.99
    assert result.overhead_time == pytest.approx(
        sum(r.overhead_after for r in result.records))


def test_chunks_not_redistributed_after_swap():
    """Active set changes, but every process still computes an equal
    chunk (the paper forbids data redistribution)."""
    platform = homogeneous(4)
    load_host(platform, 0, n_competing=3, from_t=5.0)
    a = app(2, iters=6)
    result = SwapStrategy(greedy_policy()).run(platform, a)
    # After the swap, iteration time returns to the unloaded value.
    last = result.records[-1]
    assert last.compute_time == pytest.approx(a.chunk_flops / 100e6, rel=1e-2)


def test_safe_policy_refuses_marginal_swaps():
    """A 10% faster spare tempts greedy but not safe (20% threshold)."""
    from repro.platform.cluster import Platform
    from repro.platform.host import Host, HostSpec
    from repro.simkernel.rng import RngRegistry

    def build():
        reg = RngRegistry(0)
        hosts = [
            Host(HostSpec("slow", 100e6, ConstantLoadModel(0)),
                 reg.stream(0)),
            Host(HostSpec("fast", 110e6, ConstantLoadModel(0)),
                 reg.stream(1)),
        ]
        # The fast host looks busy at startup (so the scheduler picks the
        # slow one) and frees up at t=5.
        hosts[1].trace = LoadTrace([0.0, 5.0, 1e12], [1, 0],
                                   beyond_horizon="hold")
        return Platform(hosts=hosts)

    a = app(1, iters=6)
    g = SwapStrategy(greedy_policy()).run(build(), a)
    s = SwapStrategy(safe_policy()).run(build(), a)
    assert g.swap_count >= 1
    assert s.swap_count == 0


def test_no_swap_on_last_iteration():
    platform = homogeneous(4)
    load_host(platform, 0, n_competing=3, from_t=0.5)
    result = SwapStrategy(greedy_policy()).run(platform, app(2, iters=1))
    assert result.swap_count == 0


def test_strategy_name_includes_policy():
    assert SwapStrategy(greedy_policy()).name == "swap-greedy"
    assert SwapStrategy(safe_policy()).name == "swap-safe"
