"""Tests for the NOTHING baseline on hand-computable platforms."""

import pytest

from repro.app.iterative import ApplicationSpec
from repro.errors import StrategyError
from repro.load.base import ConstantLoadModel
from repro.platform.cluster import make_platform
from repro.platform.network import LinkSpec
from repro.strategies.nothing import NothingStrategy


def dedicated_platform(n=4, speed=100e6, **kwargs):
    return make_platform(n, ConstantLoadModel(0), seed=0,
                         speed_range=(speed, speed + 1e-6), **kwargs)


def app(n=4, iters=5, flops=4e8, comm=0.0):
    return ApplicationSpec(n_processes=n, iterations=iters,
                           flops_per_iteration=flops, bytes_per_process=comm)


def test_makespan_hand_computed_no_comm():
    platform = dedicated_platform()
    result = NothingStrategy().run(platform, app())
    # startup 4 * 0.75 = 3 s; each iteration 1e8 flop / 1e8 flop/s = 1 s.
    assert result.startup_time == pytest.approx(3.0)
    assert result.makespan == pytest.approx(3.0 + 5.0)


def test_comm_phase_added_each_iteration():
    platform = dedicated_platform(link=LinkSpec(latency=0.5, bandwidth=1e6))
    result = NothingStrategy().run(platform, app(comm=1e6))
    comm_time = 0.5 + 4e6 / 1e6  # latency + serialized payloads
    assert result.makespan == pytest.approx(3.0 + 5.0 * (1.0 + comm_time))


def test_constant_load_halves_throughput():
    platform = make_platform(4, ConstantLoadModel(1), seed=0,
                             speed_range=(100e6, 100e6 + 1e-6))
    result = NothingStrategy().run(platform, app())
    assert result.makespan == pytest.approx(3.0 + 5.0 * 2.0)


def test_slowest_host_dominates_iteration():
    platform = make_platform(
        2, lambda i: ConstantLoadModel(i), seed=0,  # host 1 loaded (n=1)
        speed_range=(100e6, 100e6 + 1e-6))
    result = NothingStrategy().run(platform, app(n=2, flops=2e8))
    # Host 1 runs its 1e8 chunk at 50 MF/s -> 2 s per iteration.
    assert result.makespan == pytest.approx(2 * 0.75 + 5 * 2.0)


def test_records_and_progress_consistent():
    platform = dedicated_platform()
    result = NothingStrategy().run(platform, app())
    assert result.iteration_count == 5
    assert result.swap_count == 0 and result.restart_count == 0
    assert result.overhead_time == 0.0
    times, iters = result.progress.curve()
    assert iters[-1] == 5
    assert times[-1] == pytest.approx(result.makespan)
    for a, b in zip(result.records, result.records[1:]):
        assert b.start == pytest.approx(a.end)


def test_active_set_is_fixed():
    platform = dedicated_platform()
    result = NothingStrategy().run(platform, app())
    sets = {r.active for r in result.records}
    assert len(sets) == 1
    assert result.final_active in sets


def test_too_many_processes_rejected():
    platform = dedicated_platform(n=2)
    with pytest.raises(StrategyError):
        NothingStrategy().run(platform, app(n=4))


def test_single_process_has_no_comm_phase():
    platform = dedicated_platform(n=1, link=LinkSpec(latency=1.0,
                                                     bandwidth=1.0))
    result = NothingStrategy().run(platform, app(n=1, flops=1e8, comm=1e6))
    assert result.makespan == pytest.approx(0.75 + 5.0)
