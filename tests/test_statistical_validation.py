"""Statistical validation of the simulator against closed forms.

The qualitative figure shapes are checked elsewhere; these tests verify
the simulator's *quantitative* core against analytic expectations, so
that the strategy comparisons rest on a calibrated substrate.
"""

import numpy as np
import pytest

from repro.app.iterative import ApplicationSpec
from repro.load.base import ConstantLoadModel
from repro.load.onoff import OnOffLoadModel
from repro.platform.cluster import make_platform
from repro.strategies.nothing import NothingStrategy


def test_nothing_makespan_closed_form_under_constant_load():
    """With constant load everywhere the makespan is exactly
    startup + I * (chunk / (speed / (1+n)) + comm)."""
    platform = make_platform(4, ConstantLoadModel(2), seed=0,
                             speed_range=(200e6, 200e6))
    app = ApplicationSpec(n_processes=4, iterations=7,
                          flops_per_iteration=4 * 2e9,
                          bytes_per_process=3e6)
    result = NothingStrategy().run(platform, app)
    compute = 2e9 / (200e6 / 3.0)
    comm = platform.link.exchange_phase_time(3e6, 4)
    assert result.makespan == pytest.approx(3.0 + 7 * (compute + comm))


def test_mean_iteration_time_matches_renewal_reward():
    """Long-run mean compute time of a chunk on an ON/OFF host converges
    to chunk / (speed * E[availability]) only when chunks are long
    relative to dwells; for long chunks the time-average availability
    p_off * 1 + p_on * 0.5 governs."""
    p = q = 0.2  # fast flipping (dwell 50 s) relative to the chunk below
    expected_availability = 0.5 * 1.0 + 0.5 * 0.5
    speed = 100e6
    chunk = 1e10  # 100 s of dedicated compute >> dwell
    durations = []
    for seed in range(12):
        platform = make_platform(1, OnOffLoadModel(p=p, q=q), seed=seed,
                                 speed_range=(speed, speed))
        host = platform.host(0)
        t = 0.0
        for _ in range(10):
            end = host.compute_finish(t, chunk)
            durations.append(end - t)
            t = end
    analytic = chunk / (speed * expected_availability)
    assert np.mean(durations) == pytest.approx(analytic, rel=0.03)


def test_short_chunks_see_bimodal_times():
    """Chunks much shorter than dwells run at either full or half speed,
    almost never in between -- the regime where swapping decisions are
    meaningful."""
    platform = make_platform(1, OnOffLoadModel(p=0.01, q=0.01), seed=5,
                             speed_range=(100e6, 100e6))
    host = platform.host(0)
    chunk = 1e8  # 1 s of dedicated compute << 1000 s dwells
    durations = []
    t = 0.0
    for _ in range(2000):
        end = host.compute_finish(t, chunk)
        durations.append(end - t)
        t = end
    durations = np.array(durations)
    near_fast = np.mean(np.abs(durations - 1.0) < 0.05)
    near_slow = np.mean(np.abs(durations - 2.0) < 0.05)
    assert near_fast + near_slow > 0.95
    assert near_fast > 0.2 and near_slow > 0.2


def test_startup_scaling_matches_paper_quote():
    """'An over-allocation of 30 processors adds approximately 20 seconds
    to the application startup time.'"""
    platform = make_platform(34, ConstantLoadModel(0), seed=0)
    base = platform.startup_time(4)
    overallocated = platform.startup_time(34)
    assert overallocated - base == pytest.approx(22.5)  # 30 x 0.75 s


def test_swap_time_paper_scale():
    """Sanity of the 6 MB/s link against the paper's Fig. 8 remark that a
    1 GB image takes about twice a ~83 s iteration."""
    platform = make_platform(2, ConstantLoadModel(0), seed=0)
    one_gb = platform.link.transfer_time(1e9)
    assert one_gb == pytest.approx(166.7, rel=0.01)
