"""The unified ``python -m repro.analysis`` umbrella CLI.

Covers the subcommand interface (lint / flow / rules / trace /
self-check), the shared exit-code convention (0 clean, 1 findings, 2
usage error), baseline filtering, and the byte-stable effects report.
The pre-umbrella spellings are covered by
``test_suppressions_and_cli.py``; this file only checks they coexist.
"""

import json
from pathlib import Path

from repro.analysis.cli import main

FIXTURE_PKG = str(Path(__file__).resolve().parent / "flowfixtures")


# -- lint subcommand ----------------------------------------------------------

def test_lint_subcommand_matches_legacy_invocation(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    assert main(["lint", str(bad)]) == 1
    new_out = capsys.readouterr().out
    assert main([str(bad)]) == 1
    legacy_out = capsys.readouterr().out
    assert new_out == legacy_out
    assert "SL001" in new_out


def test_lint_subcommand_json_schema(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    assert main(["lint", str(bad), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["tool"] == "simlint"


# -- flow subcommand ----------------------------------------------------------

def test_flow_subcommand_on_fixture_package(capsys):
    # Under the *default* (repro) contracts the fixture package still
    # trips the contract-independent rules.
    assert main(["flow", FIXTURE_PKG, "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["tool"] == "simflow"
    assert payload["finding_count"] == len(payload["findings"])
    codes = set(payload["counts_by_code"])
    assert {"SF002", "SF005", "SF006"} <= codes
    for entry in payload["findings"]:
        assert set(entry) == {"code", "message", "path", "line", "column",
                              "function"}


def test_flow_subcommand_missing_root_is_usage_error(capsys):
    assert main(["flow", "definitely/not/a/package"]) == 2
    assert "error" in capsys.readouterr().out


def test_flow_baseline_roundtrip(tmp_path, capsys):
    assert main(["flow", FIXTURE_PKG, "--format", "json"]) == 1
    baseline = tmp_path / "baseline.json"
    baseline.write_text(capsys.readouterr().out)
    assert main(["flow", FIXTURE_PKG, "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "0 findings" in out


def test_flow_unreadable_baseline_is_usage_error(tmp_path, capsys):
    missing = tmp_path / "nope.json"
    assert main(["flow", FIXTURE_PKG, "--baseline", str(missing)]) == 2
    assert "baseline" in capsys.readouterr().out


def test_flow_effects_report_is_byte_stable(capsys):
    assert main(["flow", FIXTURE_PKG, "--package", "flowfixtures",
                 "--effects-report"]) == 0
    first = capsys.readouterr().out
    assert main(["flow", FIXTURE_PKG, "--package", "flowfixtures",
                 "--effects-report"]) == 0
    second = capsys.readouterr().out
    assert first == second
    report = json.loads(first)
    assert report["tool"] == "simflow-effects"
    assert first.endswith("\n") and not first.endswith("\n\n")


# -- rules subcommand ---------------------------------------------------------

def test_rules_subcommand_lists_every_family(capsys):
    assert main(["rules"]) == 0
    out = capsys.readouterr().out
    for code in ("SL001", "SF001", "SF006", "SZ101", "TL001", "TL007"):
        assert code in out


def test_rules_subcommand_json_is_sorted_and_unique(capsys):
    assert main(["rules", "--format", "json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    codes = [r["code"] for r in rows]
    assert codes == sorted(codes)
    assert len(codes) == len(set(codes))
    assert len(codes) >= 24  # 6 SL + 6 SF + 5 SZ + 7 TL
    assert all({"code", "name", "summary"} == set(r) for r in rows)


# -- trace forwarding ----------------------------------------------------------

def test_trace_subcommand_forwards_to_obs(capsys):
    assert main(["trace", "rules"]) == 0
    out = capsys.readouterr().out
    assert "TL001" in out and "TL007" in out


# -- self-check ------------------------------------------------------------------

def test_self_check_subcommand_includes_flow_gate(capsys):
    assert main(["self-check"]) == 0
    out = capsys.readouterr().out
    assert "simlint: 0 findings" in out
    assert "sanitizer demo: 0 errors" in out
    assert "simflow: 0 findings" in out
