"""The simflow interprocedural analyzer: rules, signatures, report.

Three layers of coverage:

* every SF rule fires on its injected violation in
  ``tests/analysis/flowfixtures`` and stays quiet on the adjacent clean
  code;
* golden effect signatures for the kernel, a strategy, and the executor
  -- the purity contract the fabric/vectorization PRs consume;
* the committed effects report (``docs/effects-report.json``) matches a
  fresh run byte-for-byte.
"""

import textwrap

from repro.analysis.flow import (analyze_package, apply_baseline,
                                 effects_report, flow_payload,
                                 format_effects_report, load_baseline)
from repro.analysis.flow import dims
from repro.analysis.flow.contracts import FlowContracts

from tests.analysis.conftest import REPO_ROOT


def _codes(result):
    return sorted({f.code for f in result.findings})


def _by_code(result, code):
    return [f for f in result.findings if f.code == code]


# -- every rule fires on the fixture package ---------------------------------

def test_every_sf_rule_fires_on_fixture(fixture_flow):
    assert _codes(fixture_flow) == ["SF001", "SF002", "SF003", "SF004",
                                    "SF005", "SF006"]


def test_sf001_names_the_parallel_chain(fixture_flow):
    (finding,) = _by_code(fixture_flow, "SF001")
    assert finding.function == "flowfixtures.state.remember"
    assert "CACHE" in finding.message
    assert ("flowfixtures.cells.compute -> flowfixtures.state.remember"
            in finding.message)


def test_sf002_flags_only_the_unowned_draw(fixture_flow):
    (finding,) = _by_code(fixture_flow, "SF002")
    assert finding.function == "flowfixtures.randomness.bad_draw"
    assert "random.random" in finding.message


def test_sf003_flags_set_iteration_feeding_the_sink(fixture_flow):
    (finding,) = _by_code(fixture_flow, "SF003")
    assert finding.function == "flowfixtures.cells.compute"
    assert "set literal" in finding.message


def test_sf004_reports_the_purity_contract_violation(fixture_flow):
    (finding,) = _by_code(fixture_flow, "SF004")
    assert finding.function == "flowfixtures.purity.supposedly_pure"
    assert "performs-io" in finding.message


def test_sf005_reports_the_dimension_pair(fixture_flow):
    (finding,) = _by_code(fixture_flow, "SF005")
    assert finding.function == "flowfixtures.unitsbad.mix"
    assert "seconds + bytes" in finding.message


def test_sf006_flags_unguarded_and_chained_use(fixture_flow):
    findings = _by_code(fixture_flow, "SF006")
    assert [f.function for f in findings] == [
        "flowfixtures.hooksbad.Emitter.unguarded",
        "flowfixtures.hooksbad.chained",
    ]


def test_clean_neighbours_stay_clean(fixture_flow):
    flagged = {f.function for f in fixture_flow.findings}
    for clean in ("flowfixtures.randomness.good_draw",
                  "flowfixtures.hooksbad.Emitter.guarded",
                  "flowfixtures.purity.actually_pure",
                  "flowfixtures.unitsbad.fine"):
        assert clean not in flagged


def test_fixture_effect_signatures(fixture_flow):
    analysis = fixture_flow.analysis
    assert analysis.is_pure("flowfixtures.purity.actually_pure")
    assert analysis.signature("flowfixtures.purity.supposedly_pure") == [
        "performs-io"]
    assert analysis.signature("flowfixtures.randomness.bad_draw") == [
        "consumes-rng-stream"]
    # compute inherits its callee's mutation plus the kernel's sim time.
    sig = analysis.signature("flowfixtures.cells.compute")
    assert "mutates-shared-state" in sig
    assert "sim-time-dependent" in sig


# -- golden signatures of the real package -----------------------------------

def test_repro_package_has_no_unsuppressed_findings(repro_flow):
    assert repro_flow.findings == []
    # The justified exceptions (obs ambient session, diagnostics
    # counters, swap chunk rebuild) stay visible as suppressions.
    assert repro_flow.suppressed_count >= 7


def test_golden_signature_simulator_step(repro_flow):
    assert repro_flow.analysis.signature(
        "repro.simkernel.engine.Simulator.step") == [
        "mutates-shared-state", "reads-sim-state", "sim-time-dependent"]


def test_golden_signature_swap_strategy_run(repro_flow):
    assert repro_flow.analysis.signature(
        "repro.strategies.swapstrat.SwapStrategy.run") == [
        "mutates-shared-state", "reads-sim-state", "consumes-rng-stream"]


def test_golden_signature_compute_cell(repro_flow):
    assert repro_flow.analysis.signature(
        "repro.experiments.executor.compute_cell") == [
        "mutates-shared-state", "reads-sim-state", "consumes-rng-stream",
        "sim-time-dependent", "performs-io"]


def test_contracted_pure_functions_are_pure(repro_flow):
    analysis = repro_flow.analysis
    # initial_schedule left this list with the batch-kernel rewrite: host
    # ranking can lazily extend load traces (an RNG draw), so it never
    # belonged under the purity contract.
    for qualname in ("repro.simkernel.rng.derive_seed",
                     "repro.core.payback.iterations_to_break_even",
                     "repro.platform.network.LinkSpec.transfer_time"):
        assert analysis.is_pure(qualname), qualname


def test_transfer_time_returns_seconds(repro_flow):
    assert repro_flow.analysis.return_dims[
        "repro.platform.network.LinkSpec.transfer_time"] == dims.SECONDS


# -- the effects report -------------------------------------------------------

def test_committed_effects_report_is_current(repro_flow):
    fresh = format_effects_report(effects_report(repro_flow.analysis))
    committed = (REPO_ROOT / "docs" / "effects-report.json").read_text(
        encoding="utf-8")
    assert fresh == committed, (
        "docs/effects-report.json drifted; regenerate with "
        "`python -m repro.analysis flow --effects-report > "
        "docs/effects-report.json`")


def test_effects_report_scope_and_shape(repro_flow):
    report = effects_report(repro_flow.analysis)
    assert report["tool"] == "simflow-effects"
    assert report["function_count"] == len(report["functions"])
    assert 0 < report["pure_count"] < report["function_count"]
    for qualname, entry in report["functions"].items():
        assert qualname.startswith(("repro.simkernel.", "repro.strategies.",
                                    "repro.experiments.executor"))
        assert entry["pure"] == (entry["effects"] == [])


# -- baselines ----------------------------------------------------------------

def test_baseline_filters_known_findings(fixture_flow, tmp_path):
    payload = flow_payload(fixture_flow.findings,
                           fixture_flow.functions_analyzed)
    baseline_file = tmp_path / "baseline.json"
    import json

    baseline_file.write_text(json.dumps(payload))
    baseline = load_baseline(baseline_file)
    assert apply_baseline(fixture_flow.findings, baseline) == []


def test_partial_baseline_keeps_new_findings(fixture_flow):
    keep = fixture_flow.findings[0]
    baseline = {(f.code, f.path, f.function)
                for f in fixture_flow.findings[1:]}
    assert apply_baseline(fixture_flow.findings, baseline) == [keep]


# -- suppression integration ---------------------------------------------------

def _write_package(tmp_path, name, body):
    pkg = tmp_path / name
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text(textwrap.dedent(body))
    return pkg


def test_simflow_comment_suppresses_flow_finding(tmp_path):
    pkg = _write_package(tmp_path, "pkg", """
        import random

        def draw():
            return random.random()  # simflow: disable=SF002
    """)
    result = analyze_package(pkg)
    assert result.findings == []
    assert result.suppressed_count == 1


def test_decorator_line_suppression_covers_def_anchored_finding(tmp_path):
    # SF004 anchors to the def line; the suppression sits on the
    # decorator line above it (the natural comment spot).
    pkg = _write_package(tmp_path, "pkg", """
        import functools

        @functools.lru_cache()  # simflow: disable=SF004
        def supposedly_pure(x):
            print(x)
            return x
    """)
    contracts = FlowContracts(assumed_pure=("pkg.mod.supposedly_pure",))
    result = analyze_package(pkg, contracts=contracts)
    assert [f.code for f in result.findings] == []
    assert result.suppressed_count == 1
