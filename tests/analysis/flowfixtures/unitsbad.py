"""Wrong-dimension arithmetic (SF005): seconds + bytes."""


def mix(delay, nbytes):
    return delay + nbytes


def fine(delay, nbytes, bandwidth):
    return delay + nbytes / bandwidth
