"""A function the fixture contracts assume pure -- but it prints (SF004)."""


def supposedly_pure(x):
    print(x)
    return x * 2


def actually_pure(x):
    return x + 1
