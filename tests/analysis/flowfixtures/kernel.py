"""The fixture's sinks: a toy event kernel and trace emitter."""


class Sim:
    def __init__(self):
        self.now = 0.0
        self._pending = []

    def _schedule(self, event, delay):
        """The fixture contracts name this as the schedule sink."""
        self._pending.append((self.now + delay, event))


def active():
    """The fixture's optional-session accessor (returns None here)."""
    return None


def emit(kind, t):
    """The fixture contracts name this as the trace sink."""
    return (kind, t)
