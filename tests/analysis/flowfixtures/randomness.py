"""One unowned draw (SF002) next to a properly owned one (clean)."""

import random


def bad_draw():
    return random.random()


def good_draw(rng):
    return rng.uniform(0.0, 1.0)
