"""The fixture's executor-parallel entry point.

``compute`` reaches :func:`flowfixtures.state.remember` (a shared-state
mutation, SF001) and iterates a set literal on its way into the schedule
sink (SF003).
"""

from flowfixtures import kernel, state


def compute(cell):
    state.remember(cell, cell * 2)
    sim = kernel.Sim()
    for item in {cell, cell + 1}:
        sim._schedule(item, 1.0)
    return cell
