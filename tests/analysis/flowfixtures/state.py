"""Shared mutable module state (the SF001 target)."""

CACHE = {}


def remember(key, value):
    CACHE[key] = value
    return value
