"""A miniature package with one injected violation per SF rule.

Never imported at runtime: the flow-analyzer tests parse this directory
with :func:`repro.analysis.flow.analyze_package` under the fixture
contracts defined in ``tests/analysis/test_flow_analyzer.py``.  Each
module carries exactly the hazards its name advertises, so rule tests
can assert precise (code, function) pairs.
"""
