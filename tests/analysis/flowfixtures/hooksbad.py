"""Optional hook/session use without a None guard (SF006)."""

from flowfixtures import kernel


class Emitter:
    def __init__(self):
        self.hooks = None

    def unguarded(self, event):
        self.hooks.fire(event)

    def guarded(self, event):
        if self.hooks is not None:
            self.hooks.fire(event)


def chained():
    return kernel.active().fire("x")
