"""Each sanitizer check: a toy run that provably triggers it."""

import random

import numpy as np
import pytest

from repro.analysis.sanitizer import (SanitizedSimulator, SanitizerError)
from repro.simkernel.resources import Resource


def run_codes(sim):
    sim.run()
    return [f.code for f in sim.report().findings]


# -- SZ101: same-(time, priority) ties ---------------------------------------

class TestTieDetection:
    def test_deliberate_tie_is_reported(self):
        sim = SanitizedSimulator()

        def proc(sim):
            yield sim.timeout(5.0)

        sim.process(proc(sim), name="a")
        sim.process(proc(sim), name="b")
        codes = run_codes(sim)
        assert "SZ101" in codes
        tie = next(f for f in sim.findings if f.code == "SZ101")
        assert "insertion" in tie.message or "scheduled first" in tie.message
        assert tie.severity == "warning"

    def test_distinct_times_no_tie(self):
        sim = SanitizedSimulator()

        def proc(sim):
            yield sim.timeout(1.0)
            yield sim.timeout(2.5)

        sim.process(proc(sim), name="solo")
        assert "SZ101" not in run_codes(sim)

    def test_tie_reports_are_capped(self):
        sim = SanitizedSimulator(max_tie_reports=3)

        def proc(sim):
            yield sim.timeout(1.0)

        for i in range(10):
            sim.process(proc(sim), name=f"p{i}")
        sim.run()
        assert sum(1 for f in sim.findings if f.code == "SZ101") == 3

    def test_different_priorities_are_not_ties(self):
        from repro.simkernel.events import NORMAL, URGENT

        sim = SanitizedSimulator()
        a, b = sim.event(), sim.event()
        a._ok = b._ok = True
        a._value = b._value = None
        sim._schedule(a, priority=URGENT, delay=1.0)
        sim._schedule(b, priority=NORMAL, delay=1.0)
        sim.run()
        assert [f.code for f in sim.findings] == []


# -- SZ102: corrupt delays ---------------------------------------------------

class TestDelayChecks:
    def test_nan_delay_caught(self):
        sim = SanitizedSimulator()
        event = sim.event()
        event._ok, event._value = True, None
        with pytest.raises(SanitizerError):
            sim._schedule(event, delay=float("nan"))
        assert [f.code for f in sim.findings] == ["SZ102"]

    def test_infinite_delay_caught(self):
        sim = SanitizedSimulator()
        event = sim.event()
        event._ok, event._value = True, None
        with pytest.raises(SanitizerError):
            sim._schedule(event, delay=float("inf"))
        assert [f.code for f in sim.findings] == ["SZ102"]

    def test_negative_delay_recorded_before_engine_raises(self):
        from repro.errors import SchedulingError

        sim = SanitizedSimulator()
        event = sim.event()
        event._ok, event._value = True, None
        with pytest.raises(SchedulingError):
            sim._schedule(event, delay=-1.0)
        assert [f.code for f in sim.findings] == ["SZ102"]

    def test_plain_simulator_also_rejects_nan(self):
        """The base engine now rejects NaN itself (SchedulingError); the
        sanitizer still reports SZ102 first, pinning the origin in its
        findings even when the exception is caught upstream."""
        from repro.errors import SchedulingError
        from repro.simkernel.engine import Simulator

        sim = Simulator()
        event = sim.event()
        event._ok, event._value = True, None
        with pytest.raises(SchedulingError):
            sim._schedule(event, delay=float("nan"))
        assert len(sim._heap) == 0


# -- SZ103: scheduling after the run drained ---------------------------------

class TestPostRunScheduling:
    def test_post_run_schedule_flagged(self):
        sim = SanitizedSimulator()

        def proc(sim):
            yield sim.timeout(1.0)

        sim.process(proc(sim), name="only")
        sim.run()
        orphan = sim.event()
        orphan.succeed("never delivered")
        assert "SZ103" in [f.code for f in sim.findings]

    def test_strict_mode_raises(self):
        sim = SanitizedSimulator(strict=True)
        sim.run()
        orphan = sim.event()
        with pytest.raises(SanitizerError):
            orphan.succeed("boom")

    def test_run_until_time_does_not_mark_drained(self):
        sim = SanitizedSimulator()

        def proc(sim):
            yield sim.timeout(10.0)

        sim.process(proc(sim), name="later")
        sim.run(until=1.0)
        follow_up = sim.event()
        follow_up.succeed(None)
        sim.run()
        assert "SZ103" not in [f.code for f in sim.findings]


# -- SZ104: terminating while holding a resource -----------------------------

class TestResourceLeaks:
    def test_leaked_slot_flagged(self):
        sim = SanitizedSimulator()
        resource = Resource(sim, capacity=1)

        def leaker(sim, resource):
            yield resource.request()
            yield sim.timeout(1.0)
            # terminates without release()

        sim.process(leaker(sim, resource), name="leaker")
        codes = run_codes(sim)
        assert "SZ104" in codes
        assert resource.in_use == 1  # the slot is indeed gone forever

    def test_clean_release_not_flagged(self):
        sim = SanitizedSimulator()
        resource = Resource(sim, capacity=1)

        def polite(sim, resource):
            yield resource.request()
            yield sim.timeout(1.0)
            resource.release()

        sim.process(polite(sim, resource), name="polite")
        codes = run_codes(sim)
        assert "SZ104" not in codes
        assert resource.in_use == 0

    def test_two_holders_one_leaks(self):
        sim = SanitizedSimulator()
        resource = Resource(sim, capacity=2)

        def polite(sim, resource):
            yield resource.request()
            yield sim.timeout(1.0)
            resource.release()

        def leaker(sim, resource):
            yield resource.request()
            yield sim.timeout(2.0)

        sim.process(polite(sim, resource), name="polite")
        sim.process(leaker(sim, resource), name="leaker")
        findings = [f for f in _report(sim) if f.code == "SZ104"]
        assert len(findings) == 1
        assert "leaker" in findings[0].message


def _report(sim):
    sim.run()
    return sim.report().findings


# -- SZ105: RNG draws outside the registry -----------------------------------

class TestRngDiscipline:
    def test_unregistered_numpy_draw_flagged(self):
        sim = SanitizedSimulator()

        def proc(sim):
            np.random.default_rng()  # ambient entropy mid-run
            yield sim.timeout(1.0)

        sim.process(proc(sim), name="cheater")
        assert "SZ105" in run_codes(sim)

    def test_stdlib_random_flagged(self):
        sim = SanitizedSimulator()

        def proc(sim):
            random.random()
            yield sim.timeout(1.0)

        sim.process(proc(sim), name="cheater")
        assert "SZ105" in run_codes(sim)

    def test_registry_stream_allowed(self):
        from repro.simkernel.rng import RngRegistry

        sim = SanitizedSimulator()
        registry = RngRegistry(7)

        def proc(sim):
            rng = registry.stream("test", 0)
            rng.random()
            yield sim.timeout(1.0)

        sim.process(proc(sim), name="lawful")
        assert "SZ105" not in run_codes(sim)

    def test_patching_is_restored_after_run(self):
        sim = SanitizedSimulator()

        def proc(sim):
            yield sim.timeout(1.0)

        sim.process(proc(sim), name="p")
        original = np.random.default_rng
        sim.run()
        assert np.random.default_rng is original


# -- report shape ------------------------------------------------------------

def test_report_json_schema():
    sim = SanitizedSimulator()

    def proc(sim):
        yield sim.timeout(5.0)

    sim.process(proc(sim), name="a")
    sim.process(proc(sim), name="b")
    sim.run()
    payload = sim.report().to_dict()
    assert payload["version"] == 1
    assert payload["tool"] == "sim-sanitizer"
    assert payload["events_processed"] == sim.processed_events > 0
    assert payload["error_count"] == 0
    assert payload["warning_count"] >= 1
    for entry in payload["findings"]:
        assert set(entry) == {"code", "message", "time", "severity"}


def test_event_log_records_every_event():
    sim = SanitizedSimulator()

    def proc(sim):
        yield sim.timeout(5.0)

    sim.process(proc(sim), name="solo")
    sim.run()
    assert len(sim.event_log) == sim.processed_events
    assert any("Process:solo" in line for line in sim.event_log)
