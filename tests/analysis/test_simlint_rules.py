"""Each SL rule: one fixture that triggers it, one that must not."""

import textwrap

from repro.analysis.linter import lint_source


def lint(code):
    return lint_source(textwrap.dedent(code), path="src/repro/fake/mod.py")


def codes(code):
    return [f.code for f in lint(code)]


# -- SL001: wall clock / ambient entropy -----------------------------------

class TestSL001:
    def test_time_time_flagged(self):
        assert codes("""
            import time
            def stamp():
                return time.time()
        """) == ["SL001"]

    def test_from_import_alias_resolved(self):
        assert codes("""
            from time import time as wall
            def stamp():
                return wall()
        """) == ["SL001"]

    def test_datetime_now_flagged(self):
        assert codes("""
            from datetime import datetime
            def stamp():
                return datetime.now()
        """) == ["SL001"]

    def test_module_level_random_flagged(self):
        assert codes("""
            import random
            def draw():
                return random.random()
        """) == ["SL001"]

    def test_unseeded_default_rng_flagged(self):
        assert codes("""
            import numpy as np
            def make():
                return np.random.default_rng()
        """) == ["SL001"]

    def test_seeded_default_rng_ok(self):
        assert codes("""
            import numpy as np
            def make(seed):
                return np.random.default_rng(seed)
        """) == []

    def test_registry_stream_ok(self):
        assert codes("""
            from repro.simkernel.rng import RngRegistry
            def make(seed):
                return RngRegistry(seed).stream("load", 0)
        """) == []


# -- SL002: sim coroutine discipline ----------------------------------------

class TestSL002:
    def test_yield_constant_flagged(self):
        assert codes("""
            from repro.simkernel import Simulator
            def proc(sim):
                yield 3.0
        """) == ["SL002"]

    def test_yield_event_ok(self):
        assert codes("""
            from repro.simkernel import Simulator
            def proc(sim):
                yield sim.timeout(3.0)
        """) == []

    def test_plain_generator_module_not_flagged(self):
        # No simkernel import: ordinary data generators are fine.
        assert codes("""
            def naturals():
                yield 1
                yield 2
        """) == []

    def test_return_inside_try_with_yielding_finally(self):
        assert codes("""
            from repro.simkernel import Simulator
            def proc(sim, res):
                try:
                    return 42
                finally:
                    yield res.release_event()
        """) == ["SL002"]


# -- SL003: heap encapsulation ----------------------------------------------

class TestSL003:
    def test_heapq_outside_engine_flagged(self):
        assert codes("""
            import heapq
            def push(h, x):
                heapq.heappush(h, x)
        """) == ["SL003"]

    def test_private_heap_access_flagged(self):
        assert codes("""
            def drain(sim):
                return len(sim._heap)
        """) == ["SL003"]

    def test_engine_module_exempt(self):
        findings = lint_source(
            "import heapq\n"
            "def push(h, x):\n"
            "    heapq.heappush(h, x)\n",
            path="src/repro/simkernel/engine.py")
        assert findings == []


# -- SL004: float time equality ---------------------------------------------

class TestSL004:
    def test_now_equality_flagged(self):
        assert codes("""
            def check(sim, t):
                return sim.now == t
        """) == ["SL004"]

    def test_peek_inequality_flagged(self):
        assert codes("""
            def check(sim, t):
                return sim.peek() != t
        """) == ["SL004"]

    def test_ordering_comparison_ok(self):
        assert codes("""
            def check(sim, t):
                return sim.now >= t
        """) == []


# -- SL005: raw unit literals -----------------------------------------------

class TestSL005:
    def test_raw_gigabyte_flagged(self):
        assert codes("""
            STATE = 1e9
        """) == ["SL005"]

    def test_raw_hour_flagged(self):
        assert codes("""
            def horizon():
                return 3600
        """) == ["SL005"]

    def test_units_module_exempt(self):
        assert lint_source("HOUR = 3600.0\n",
                           path="src/repro/units.py") == []

    def test_units_constant_usage_ok(self):
        assert codes("""
            from repro.units import GB
            STATE = 1 * GB
        """) == []


# -- SL006: shared mutable state --------------------------------------------

class TestSL006:
    def test_mutable_default_argument_flagged(self):
        assert codes("""
            def run(history=[]):
                history.append(1)
        """) == ["SL006"]

    def test_keyword_only_mutable_default_flagged(self):
        assert codes("""
            def run(*, cache={}):
                return cache
        """) == ["SL006"]

    def test_class_level_mutable_attribute_flagged(self):
        assert codes("""
            class Greedy:
                history = []
        """) == ["SL006"]

    def test_dataclass_field_factory_ok(self):
        assert codes("""
            from dataclasses import dataclass, field
            @dataclass
            class Stats:
                raw: list = field(default_factory=list)
        """) == []

    def test_none_default_ok(self):
        assert codes("""
            def run(history=None):
                history = history or []
        """) == []


def test_every_rule_has_a_registered_code():
    from repro.analysis.rules import all_rules

    rules = all_rules()
    assert len(rules) >= 6
    assert sorted(r.code for r in rules) == [
        "SL001", "SL002", "SL003", "SL004", "SL005", "SL006"]
    for rule in rules:
        assert rule.summary and rule.name
