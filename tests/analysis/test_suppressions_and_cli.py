"""Suppression comments, JSON schema, and the CLI front end."""

import json
import textwrap

from repro.analysis.cli import main
from repro.analysis.linter import findings_to_dict, lint_paths, lint_source

FLAGGED = textwrap.dedent("""
    import time
    def stamp():
        return time.time()
""")


# -- suppression comments ---------------------------------------------------

def test_line_suppression_silences_only_that_code():
    source = FLAGGED.replace(
        "return time.time()",
        "return time.time()  # simlint: disable=SL001")
    assert lint_source(source) == []


def test_line_suppression_wrong_code_keeps_finding():
    source = FLAGGED.replace(
        "return time.time()",
        "return time.time()  # simlint: disable=SL005")
    assert [f.code for f in lint_source(source)] == ["SL001"]


def test_line_suppression_multiple_codes():
    source = textwrap.dedent("""
        import time
        def stamp(h=[]):
            return time.time(), h  # simlint: disable=SL001,SL006
    """)
    # SL006 is reported on the default's line (the def), not the body line.
    findings = lint_source(source)
    assert [f.code for f in findings] == ["SL006"]
    source = source.replace("def stamp(h=[]):",
                            "def stamp(h=[]):  # simlint: disable=SL006")
    assert lint_source(source) == []


def test_line_suppression_mixes_families_on_one_line():
    # One directive may carry codes from several analyzer families;
    # simlint honours its own and ignores the rest.
    source = FLAGGED.replace(
        "return time.time()",
        "return time.time()  # simlint: disable=SL001,SF002")
    assert lint_source(source) == []


def test_simflow_and_umbrella_prefixes_suppress_sl_codes():
    for prefix in ("simflow", "repro-analysis"):
        source = FLAGGED.replace(
            "return time.time()",
            f"return time.time()  # {prefix}: disable=SL001")
        assert lint_source(source) == [], prefix


def test_file_suppression_via_umbrella_prefix():
    source = "# repro-analysis: disable-file=SL001\n" + FLAGGED
    assert lint_source(source) == []


def test_decorator_line_suppression_covers_the_def_line():
    # SL006 anchors to the def line's mutable default; with a decorator
    # stack, the comment naturally sits on a decorator line.
    source = textwrap.dedent("""
        import functools

        @functools.lru_cache()  # simlint: disable=SL006
        def cached(key, bucket=[]):
            return bucket
    """)
    assert lint_source(source) == []


def test_decorator_line_suppression_wrong_code_keeps_finding():
    source = textwrap.dedent("""
        import functools

        @functools.lru_cache()  # simlint: disable=SL001
        def cached(key, bucket=[]):
            return bucket
    """)
    assert [f.code for f in lint_source(source)] == ["SL006"]


def test_suppression_on_middle_decorator_of_a_stack():
    source = textwrap.dedent("""
        import functools

        @functools.wraps(print)
        @functools.lru_cache()  # simlint: disable=SL006
        def cached(key, bucket=[]):
            return bucket
    """)
    assert lint_source(source) == []


def test_line_suppression_all_keyword():
    source = FLAGGED.replace(
        "return time.time()",
        "return time.time()  # simlint: disable=all")
    assert lint_source(source) == []


def test_file_suppression():
    source = "# simlint: disable-file=SL001\n" + FLAGGED
    assert lint_source(source) == []


def test_file_suppression_other_code_untouched():
    source = "# simlint: disable-file=SL003\n" + FLAGGED
    assert [f.code for f in lint_source(source)] == ["SL001"]


# -- JSON schema -------------------------------------------------------------

def test_json_payload_schema():
    findings = lint_source(FLAGGED, path="pkg/mod.py")
    payload = findings_to_dict(findings, files_scanned=1)
    assert payload["version"] == 1
    assert payload["tool"] == "simlint"
    assert payload["files_scanned"] == 1
    assert payload["finding_count"] == 1
    assert payload["counts_by_code"] == {"SL001": 1}
    (entry,) = payload["findings"]
    assert set(entry) == {"code", "message", "path", "line", "column"}
    assert entry["code"] == "SL001"
    assert entry["path"] == "pkg/mod.py"
    assert entry["line"] == 4
    assert isinstance(entry["column"], int) and entry["column"] >= 1
    json.dumps(payload)  # must be serializable as-is


def test_findings_sorted_and_counted(tmp_path):
    (tmp_path / "b.py").write_text("import time\nt = time.time()\nH = 3600\n")
    (tmp_path / "a.py").write_text("def f(x=[]):\n    return x\n")
    findings, files_scanned = lint_paths([tmp_path])
    assert files_scanned == 2
    assert [f.code for f in findings] == ["SL006", "SL001", "SL005"]
    paths = [f.path for f in findings]
    assert paths == sorted(paths)


# -- CLI ---------------------------------------------------------------------

def test_cli_clean_tree_exits_zero(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("from repro.units import HOUR\nH = HOUR\n")
    assert main([str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "0 findings" in out


def test_cli_findings_exit_one_and_print_location(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    assert main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "bad.py:2" in out and "SL001" in out


def test_cli_json_format(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    assert main([str(bad), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["tool"] == "simlint"
    assert payload["finding_count"] == 1


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("SL001", "SL002", "SL003", "SL004", "SL005", "SL006"):
        assert code in out


def test_cli_no_paths_is_usage_error(capsys):
    assert main([]) == 2


def test_cli_missing_path_is_usage_error(capsys):
    assert main(["definitely/not/a/real/path"]) == 2


def test_cli_syntax_error_reported_not_raised(tmp_path, capsys):
    (tmp_path / "broken.py").write_text("def f(:\n")
    assert main([str(tmp_path)]) == 1
    assert "SL000" in capsys.readouterr().out


def test_cli_self_check_is_clean(capsys):
    """The committed tree must pass its own gate (the CI invocation)."""
    assert main(["--self-check"]) == 0
    out = capsys.readouterr().out
    assert "0 findings" in out
    assert "sanitizer demo: 0 errors" in out
