"""Determinism guarantees, enforced as regression tests.

* The committed tree stays ``simlint``-clean (the static half).
* The same root seed reproduces a swap-stack run byte-for-byte under the
  sanitizer (the runtime half) -- the paper's identical-environments
  property, observed on the real event stream rather than assumed.
"""

from pathlib import Path

import repro
from repro.analysis.demo import run_demo
from repro.analysis.linter import lint_paths

PACKAGE_DIR = Path(repro.__file__).resolve().parent


def test_repo_is_simlint_clean():
    """Every hazard in src/repro is fixed or explicitly suppressed."""
    findings, files_scanned = lint_paths([PACKAGE_DIR])
    assert files_scanned > 50  # the walk really saw the package
    assert findings == [], "\n".join(f.format() for f in findings)


def test_same_seed_reproduces_event_log_byte_for_byte():
    first = run_demo(seed=11)
    second = run_demo(seed=11)

    log_a = "\n".join(first.event_log).encode()
    log_b = "\n".join(second.event_log).encode()
    assert log_a == log_b
    assert len(first.event_log) > 100  # a run of real size, not a stub

    assert first.makespan == second.makespan
    assert first.result.swap_count == second.result.swap_count
    assert first.result.startup_time == second.result.startup_time
    assert ([f.to_dict() for f in first.report.findings]
            == [f.to_dict() for f in second.report.findings])


def test_different_seeds_diverge():
    """The comparison above is meaningful: seeds do change the run."""
    a = run_demo(seed=11)
    b = run_demo(seed=12)
    assert "\n".join(a.event_log) != "\n".join(b.event_log)


def test_demo_run_is_sanitizer_error_free():
    outcome = run_demo(seed=0)
    assert outcome.report.error_count == 0
    assert outcome.report.events_processed > 100
    assert outcome.makespan > 0
