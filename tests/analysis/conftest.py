"""Shared fixtures: whole-package flow analyses are ~2s each, so the
expensive ones run once per session."""

from pathlib import Path

import pytest

from repro.analysis.flow import analyze_package
from repro.analysis.flow.contracts import FlowContracts

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURE_PKG = Path(__file__).resolve().parent / "flowfixtures"


@pytest.fixture(scope="session")
def repro_flow():
    """Flow analysis of the real repro package under its own contracts."""
    return analyze_package(REPO_ROOT / "src" / "repro", package="repro")


@pytest.fixture(scope="session")
def fixture_contracts():
    """Contracts pointing at the flowfixtures package's own roots/sinks."""
    return FlowContracts(
        parallel_roots=("flowfixtures.cells.compute",),
        assumed_pure=("flowfixtures.purity.supposedly_pure",),
        trace_sinks=("flowfixtures.kernel.emit",),
        schedule_sinks=("flowfixtures.kernel.Sim._schedule",),
        report_scope=("flowfixtures.",),
        optional_session_calls=("flowfixtures.kernel.active",),
    )


@pytest.fixture(scope="session")
def fixture_flow(fixture_contracts):
    """Flow analysis of the violation-seeded fixture package."""
    return analyze_package(FIXTURE_PKG, contracts=fixture_contracts)
