"""Tests for the kernel hook API (engine + process instrumentation)."""

from repro import obs
from repro.obs.hooks import SimHooks, TraceHooks
from repro.simkernel.engine import Simulator


class RecordingHooks(SimHooks):
    """Collects every callback as a tuple, for assertions."""

    def __init__(self):
        self.calls = []

    def event_scheduled(self, now, when, priority, seq, event_type):
        self.calls.append(("scheduled", now, when, seq, event_type))

    def event_fired(self, when, seq, event_type):
        self.calls.append(("fired", when, seq, event_type))

    def process_started(self, now, name):
        self.calls.append(("process_started", now, name))

    def process_ended(self, now, name, ok):
        self.calls.append(("process_ended", now, name, ok))


def _two_step_proc(sim):
    yield sim.timeout(3.0)
    yield sim.timeout(2.0)
    return "done"


def test_default_simulator_has_no_hooks():
    assert Simulator().hooks is None


def test_hooks_see_timeouts_and_process_lifecycle():
    hooks = RecordingHooks()
    sim = Simulator(hooks=hooks)
    sim.process(_two_step_proc(sim), name="worker")
    sim.run()

    kinds = [c[0] for c in hooks.calls]
    assert kinds.count("process_started") == 1
    assert kinds.count("process_ended") == 1
    # _Initialize + 2 timeouts + the process's own termination event.
    assert kinds.count("scheduled") == 4
    assert kinds.count("fired") == 4

    started = next(c for c in hooks.calls if c[0] == "process_started")
    ended = next(c for c in hooks.calls if c[0] == "process_ended")
    assert started[2] == "worker" and started[1] == 0.0
    assert ended[2] == "worker" and ended[1] == 5.0 and ended[3] is True


def test_hooks_report_failed_process():
    def boom(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("boom")

    hooks = RecordingHooks()
    sim = Simulator(hooks=hooks)
    sim.process(boom(sim), name="boom")
    try:
        sim.run()
    except RuntimeError:
        pass
    ended = next(c for c in hooks.calls if c[0] == "process_ended")
    assert ended[3] is False


def test_scheduled_and_fired_sequence_numbers_pair_up():
    hooks = RecordingHooks()
    sim = Simulator(hooks=hooks)
    sim.timeout(1.0)
    sim.timeout(2.0)
    sim.run()
    scheduled = {c[3] for c in hooks.calls if c[0] == "scheduled"}
    fired = {c[2] for c in hooks.calls if c[0] == "fired"}
    assert fired == scheduled


def test_trace_hooks_emit_into_session():
    session = obs.ObsSession()
    sim = Simulator(hooks=TraceHooks(session))
    sim.process(_two_step_proc(sim), name="worker")
    sim.run()

    kinds = {r["kind"] for r in session.trace.records}
    assert kinds == {"kernel.event_scheduled", "kernel.event_fired",
                     "kernel.process_started", "kernel.process_ended"}
    counters = session.metrics.to_dict()["counters"]
    assert counters["kernel.events_scheduled_total"] == counters[
        "kernel.events_fired_total"]
    assert counters["kernel.processes_started_total"] == 1.0
    assert counters["kernel.processes_ended_total"] == 1.0


def test_kernel_hooks_helper_binds_to_active_session():
    assert obs.kernel_hooks() is None
    session = obs.ObsSession()
    with obs.observing(session):
        hooks = obs.kernel_hooks()
        assert isinstance(hooks, TraceHooks)
        assert hooks.session is session
    assert obs.kernel_hooks() is None


def test_swap_runtime_traces_kernel_under_session():
    from repro.load.base import ConstantLoadModel
    from repro.platform.cluster import make_platform
    from repro.swap.runtime import SwapRuntime

    platform = make_platform(3, ConstantLoadModel(0.0), seed=0)
    session = obs.ObsSession()
    with obs.observing(session):
        runtime = SwapRuntime(platform, n_active=2, chunk_flops=1e9)
        result = runtime.run_iterative(iterations=2)
    assert result.makespan > 0
    kinds = {r["kind"] for r in session.trace.records}
    assert "kernel.event_fired" in kinds
    assert "kernel.process_started" in kinds
    # The manager's decision epochs are in the same trace.
    assert "decision" in kinds


def test_hook_trace_is_deterministic_across_runs():
    def run() -> str:
        from repro.load.base import ConstantLoadModel
        from repro.platform.cluster import make_platform
        from repro.swap.runtime import SwapRuntime

        platform = make_platform(3, ConstantLoadModel(0.0), seed=0)
        session = obs.ObsSession()
        with obs.observing(session):
            SwapRuntime(platform, n_active=2,
                        chunk_flops=1e9).run_iterative(iterations=2)
        return session.trace.to_jsonl()

    assert run() == run()
