"""Tests for the Markdown run report and Gantt SVG renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.obs import ObsSession
from repro.obs.analyze import TraceSet, lint
from repro.obs.report import (GANTT_ACCENTS, render_gantt_svg,
                              render_markdown, write_report)

from tests.obs.test_analyze import swept_session, synthetic_recorder


@pytest.fixture(scope="module")
def fig4_session() -> ObsSession:
    return swept_session()


@pytest.fixture(scope="module")
def fig4_ts(fig4_session) -> TraceSet:
    return TraceSet.from_recorder(fig4_session.trace)


# -- Markdown -----------------------------------------------------------------


def test_markdown_contains_all_sections(fig4_ts, fig4_session):
    text = render_markdown(fig4_ts, fig4_session.metrics)
    for heading in ("# Trace run report", "## Overview",
                    "### Records by kind", "## Decision outcomes",
                    "## Payback distribution", "## Adaptation by series",
                    "## Timeline", "## Trace lint"):
        assert heading in text
    assert "| scenarios | fig4 |" in text
    assert "clean" in text


def test_markdown_is_byte_stable(fig4_ts, fig4_session):
    first = render_markdown(fig4_ts, fig4_session.metrics)
    second = render_markdown(fig4_ts, fig4_session.metrics)
    assert first == second
    # And independent of whether findings were precomputed.
    precomputed = render_markdown(
        fig4_ts, findings=lint(fig4_ts, fig4_session.metrics))
    assert precomputed == first


def test_markdown_reports_lint_findings():
    ts = TraceSet.from_jsonl('{"kind":"e","t":1.0}\ngarbage\n')
    text = render_markdown(ts)
    assert "| trace lint | 1 finding(s) |" in text
    assert "`TL006`" in text
    assert "clean" not in text.split("## Trace lint")[1]


def test_markdown_synthetic_numbers():
    ts = TraceSet.from_recorder(synthetic_recorder())
    text = render_markdown(ts)
    assert "| epochs | 3 |" in text
    assert "| accepted moves | 2 |" in text
    assert "| payback exceeds threshold | 1 |" in text
    # The accepted CR payback is inf -> lands in the overflow bucket.
    assert "| > 64 | 1 |" in text
    assert "max inf" in text


def test_markdown_empty_trace_degrades_gracefully():
    text = render_markdown(TraceSet([]))
    assert "| records | 0 |" in text
    assert "clean" in text


# -- Gantt SVG ----------------------------------------------------------------


def test_gantt_svg_parses_and_has_marks(fig4_ts):
    svg = render_gantt_svg(fig4_ts)
    root = ET.fromstring(svg)
    assert root.tag.endswith("svg")
    assert "fig4" in svg
    # Iteration bars plus at least one adaptation accent color.
    assert 'fill-opacity="0.35"' in svg
    assert GANTT_ACCENTS["swap"] in svg


def test_gantt_defaults_to_first_cell_and_accepts_explicit_cell(fig4_ts):
    cells = fig4_ts.cells()
    assert render_gantt_svg(fig4_ts) == render_gantt_svg(fig4_ts,
                                                         cell=cells[0])
    other = render_gantt_svg(fig4_ts, cell=cells[-1])
    assert other != render_gantt_svg(fig4_ts)


def test_gantt_renders_rebalance_and_checkpoint_marks():
    svg = render_gantt_svg(TraceSet.from_recorder(synthetic_recorder()))
    assert GANTT_ACCENTS["checkpoint"] in svg
    assert GANTT_ACCENTS["rebalance"] in svg
    for series in ("swap", "cr", "dlb"):
        assert f">{series}" in svg


def test_gantt_empty_trace_is_valid_svg():
    svg = render_gantt_svg(TraceSet([]))
    ET.fromstring(svg)
    assert "empty trace" in svg


# -- write_report -------------------------------------------------------------


def test_write_report_writes_both_artifacts(fig4_ts, fig4_session, tmp_path):
    md, svg, findings = write_report(fig4_ts, tmp_path / "out",
                                     metrics=fig4_session.metrics)
    assert md.read_text().startswith("# Trace run report")
    ET.fromstring(svg.read_text())
    assert findings == []
    assert "see `gantt.svg`" in md.read_text()


def test_write_report_is_byte_stable_across_calls(fig4_ts, fig4_session,
                                                  tmp_path):
    md1, svg1, _ = write_report(fig4_ts, tmp_path / "a",
                                metrics=fig4_session.metrics)
    md2, svg2, _ = write_report(fig4_ts, tmp_path / "b",
                                metrics=fig4_session.metrics)
    assert md1.read_bytes() == md2.read_bytes()
    assert svg1.read_bytes() == svg2.read_bytes()


def test_write_report_surfaces_findings(tmp_path):
    ts = TraceSet.from_jsonl("garbage\n")
    _md, _svg, findings = write_report(ts, tmp_path / "out")
    assert [f.code for f in findings] == ["TL006"]
