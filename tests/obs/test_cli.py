"""Tests for the ``python -m repro.obs`` trace-analytics CLI."""

import json

import pytest

from repro.obs.__main__ import main
from repro.obs.analyze import TRACE_RULES

from tests.obs.test_analyze import swept_session, synthetic_recorder


@pytest.fixture(scope="module")
def trace_files(tmp_path_factory):
    """A real traced sweep written out as (trace.jsonl, metrics.json)."""
    outdir = tmp_path_factory.mktemp("trace")
    session = swept_session()
    trace = outdir / "trace.jsonl"
    metrics = outdir / "metrics.json"
    session.trace.write_jsonl(trace)
    session.metrics.write_json(metrics)
    return trace, metrics


@pytest.fixture()
def dirty_trace(tmp_path):
    path = tmp_path / "dirty.jsonl"
    path.write_text('{"kind":"iteration","t":1.0}\nnot json at all\n')
    return path


def test_no_command_prints_usage(capsys):
    assert main([]) == 2
    assert "usage" in capsys.readouterr().out


def test_rules_lists_every_code(capsys):
    assert main(["rules"]) == 0
    out = capsys.readouterr().out
    for code in TRACE_RULES:
        assert code in out


def test_lint_clean_trace_exits_zero(trace_files, capsys):
    trace, metrics = trace_files
    assert main(["lint", str(trace), "--metrics", str(metrics)]) == 0
    assert "clean" in capsys.readouterr().out


def test_lint_findings_exit_one(dirty_trace, capsys):
    assert main(["lint", str(dirty_trace)]) == 1
    err = capsys.readouterr().err
    assert "TL006" in err and "1 lint finding(s)" in err


def test_lint_json_output_is_machine_readable(dirty_trace, capsys):
    assert main(["lint", str(dirty_trace), "--json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc[0]["code"] == "TL006"
    assert "message" in doc[0]


def test_report_writes_markdown_and_svg(trace_files, tmp_path, capsys):
    trace, metrics = trace_files
    out = tmp_path / "report"
    assert main(["report", str(trace), "--metrics", str(metrics),
                 "--out", str(out)]) == 0
    assert (out / "report.md").exists()
    assert (out / "gantt.svg").exists()
    stdout = capsys.readouterr().out
    assert "report.md" in stdout and "gantt.svg" in stdout


def test_report_runs_are_byte_identical(trace_files, tmp_path):
    trace, metrics = trace_files
    outputs = []
    for name in ("a", "b"):
        out = tmp_path / name
        assert main(["report", str(trace), "--metrics", str(metrics),
                     "--out", str(out)]) == 0
        outputs.append(((out / "report.md").read_bytes(),
                        (out / "gantt.svg").read_bytes()))
    assert outputs[0] == outputs[1]


def test_report_strict_exits_three_on_findings(dirty_trace, tmp_path):
    out = tmp_path / "report"
    assert main(["report", str(dirty_trace), "--out", str(out)]) == 0
    assert main(["report", str(dirty_trace), "--out", str(out),
                 "--strict"]) == 3


def test_summary_shows_kinds_cells_and_decisions(tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    path.write_text(synthetic_recorder().to_jsonl())
    assert main(["summary", str(path)]) == 0
    out = capsys.readouterr().out
    assert "8 records, 0 unparseable lines" in out
    assert "iteration" in out and "swap" in out
    assert "s x=0.5 seed=0" in out
    assert "decisions: 3 epochs, 2 accepted, 2 moves" in out
