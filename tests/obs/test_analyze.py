"""Tests for the trace consumption layer: loading, query, analytics, lint."""

import math

import pytest

from repro.errors import ObservabilityError
from repro.obs import ObsSession, PAYBACK_BUCKETS
from repro.obs.analyze import (TRACE_RULES, TraceSet, adaptation_overhead,
                               as_float, cell_key, decision_summary,
                               format_cell, host_utilization, lint,
                               normalize_reason, payback_distribution,
                               payback_values, rejection_breakdown,
                               time_to_first_swap, timeline)
from repro.obs.trace import TraceRecorder


# -- fixtures -----------------------------------------------------------------


def swept_session(scenario="fig4", seeds=1) -> ObsSession:
    """A real instrumented sweep: the integration-grade trace."""
    from repro.experiments.executor import execute_sweep
    from repro.experiments.scenarios import get_scenario

    session = ObsSession()
    execute_sweep(get_scenario(scenario), seeds=seeds, obs_session=session)
    return session


@pytest.fixture(scope="module")
def fig4_session() -> ObsSession:
    return swept_session()


def synthetic_recorder() -> TraceRecorder:
    """A tiny hand-built trace with every analytics-relevant kind."""
    recorder = TraceRecorder()
    recorder.set_context(scenario="s", x=0.5, seed=0, series="swap")
    recorder.emit("iteration", 10.0, iteration=1, start=1.0, end=10.0,
                  compute_end=8.0, active=[1, 2])
    recorder.emit(
        "decision", 10.0, iteration=1, accepted=True, rejected_reason="",
        moves=[{"out_host": 1, "in_host": 3, "payback": 2.0}],
        gates=[{"gate": "accepted", "accepted": True, "reason": "",
                "out_host": 1, "in_host": 3}])
    recorder.emit("swap", 12.0, iteration=1, out_host=1, in_host=3,
                  payback=2.0, start=10.0, end=12.0)
    recorder.emit("iteration", 20.0, iteration=2, start=12.0, end=20.0,
                  compute_end=18.0, active=[3, 2])
    recorder.emit("decision", 20.0, iteration=2, accepted=False,
                  rejected_reason="payback 9.00 iterations exceeds "
                                  "threshold 0.5",
                  moves=[], gates=[{"gate": "application", "accepted": False,
                                    "reason": "payback", "out_host": 2,
                                    "in_host": 4}])
    recorder.set_context(scenario="s", x=0.5, seed=0, series="cr")
    recorder.emit("decision", 15.0, iteration=1, accepted=True,
                  rejected_reason="", candidate=[5, 6], payback=float("inf"))
    recorder.emit("checkpoint", 18.0, iteration=1, new_active=[5, 6],
                  cost=3.0, start=15.0, end=18.0)
    recorder.set_context(scenario="s", x=0.5, seed=0, series="dlb")
    recorder.emit("rebalance", 5.0, iteration=1, chunks={"1": 2.0})
    return recorder


# -- as_float / round-trip ----------------------------------------------------


def test_as_float_revives_nonfinite_spellings():
    assert as_float("inf") == math.inf
    assert as_float("-inf") == -math.inf
    assert math.isnan(as_float("nan"))
    assert as_float(2.5) == 2.5
    assert as_float(3) == 3.0


@pytest.mark.parametrize("bad", ["infinity", "", None, True, [1.0]])
def test_as_float_rejects_non_trace_values(bad):
    with pytest.raises(ObservabilityError):
        as_float(bad)


def test_jsonl_round_trips_records_exactly():
    """analyze reconstructs exactly what TraceRecorder.to_jsonl wrote,
    including the non-finite float spellings."""
    recorder = TraceRecorder()
    recorder.set_context(scenario="s", x=float("inf"), seed=0, series="a")
    recorder.emit("decision", 1.0, payback=float("inf"),
                  delta=float("-inf"), noise=float("nan"),
                  nested={"deep": [float("inf"), 2.0]})
    recorder.emit("iteration", 2.0, start=1.0, end=2.0, active=[1, 2])
    ts = TraceSet.from_jsonl(recorder.to_jsonl())
    assert ts.records == recorder.records
    assert ts.records[0]["payback"] == "inf"
    assert ts.records[0]["delta"] == "-inf"
    assert ts.records[0]["noise"] == "nan"
    assert ts.records[0]["nested"]["deep"][0] == "inf"
    assert not ts.bad_lines


def test_sweep_trace_round_trips_exactly(fig4_session, tmp_path):
    path = tmp_path / "trace.jsonl"
    fig4_session.trace.write_jsonl(path)
    ts = TraceSet.load(path)
    assert ts.records == fig4_session.trace.records
    assert not ts.bad_lines


def test_unparseable_lines_are_collected_not_raised():
    text = ('{"kind":"iteration","t":1.0}\n'
            "this is not json\n"
            '{"no_kind_field":true}\n'
            "\n"
            '{"kind":"swap","t":2.0}\n')
    ts = TraceSet.from_jsonl(text)
    assert len(ts) == 2
    assert [bad.number for bad in ts.bad_lines] == [2, 3]


# -- query API ----------------------------------------------------------------


def test_filter_by_kind_cell_series_window_and_fields():
    ts = TraceSet.from_recorder(synthetic_recorder())
    assert len(ts.filter(kind="iteration")) == 2
    assert len(ts.filter(series="swap")) == 5
    assert len(ts.filter(cell=("s", 0.5, 0))) == len(ts)
    assert len(ts.filter(cell=("other", 0.5, 0))) == 0
    assert len(ts.filter(t_min=12.0, t_max=18.0)) == 3
    assert len(ts.filter(kind="decision", accepted=True)) == 2
    assert len(ts.filter(kind="decision", iteration=2)) == 1


def test_kinds_cells_series_are_deterministic():
    ts = TraceSet.from_recorder(synthetic_recorder())
    assert ts.kinds() == {"checkpoint": 1, "decision": 3, "iteration": 2,
                          "rebalance": 1, "swap": 1}
    assert ts.cells() == [("s", 0.5, 0)]
    assert ts.series_names() == ["swap", "cr", "dlb"]


def test_cell_key_and_label_of_contextless_records():
    assert cell_key({"kind": "e", "t": 0.0}) == (None, None, None)
    assert format_cell((None, None, None)) == "(no cell)"
    assert format_cell(("fig4", 0.5, 3)) == "fig4 x=0.5 seed=3"


# -- analytics ----------------------------------------------------------------


def test_host_utilization_attributes_compute_time():
    ts = TraceSet.from_recorder(synthetic_recorder())
    usage = host_utilization(ts)[(("s", 0.5, 0), "swap")]
    # Span 1.0..20.0; host 2 computed in both iterations (7 + 6 s).
    assert usage[2]["busy"] == pytest.approx(13.0)
    assert usage[2]["utilization"] == pytest.approx(13.0 / 19.0)
    # Host 1 only in iteration 1, host 3 only in iteration 2.
    assert usage[1]["busy"] == pytest.approx(7.0)
    assert usage[3]["busy"] == pytest.approx(6.0)
    assert usage[1]["idle"] == pytest.approx(12.0)


def test_timeline_orders_adaptation_events():
    ts = TraceSet.from_recorder(synthetic_recorder())
    lines = timeline(ts)
    swap_line = lines[(("s", 0.5, 0), "swap")]
    assert [e["kind"] for e in swap_line] == ["swap"]
    assert swap_line[0]["detail"] == "h1->h3"
    cr_line = lines[(("s", 0.5, 0), "cr")]
    assert cr_line[0]["detail"] == "restart -> [5, 6]"
    assert lines[(("s", 0.5, 0), "dlb")][0]["kind"] == "rebalance"


def test_rejection_breakdown_normalizes_gate_classes():
    ts = TraceSet.from_recorder(synthetic_recorder())
    assert rejection_breakdown(ts) == {"payback exceeds threshold": 1}
    raw = rejection_breakdown(ts, normalize=False)
    assert list(raw) == ["payback 9.00 iterations exceeds threshold 0.5"]


def test_normalize_reason_classes():
    assert normalize_reason("payback 9.88 iterations exceeds threshold "
                            "0.5") == "payback exceeds threshold"
    assert normalize_reason("process improvement 3.77% below threshold "
                            "20.00%") == "process improvement below threshold"
    assert normalize_reason("application improvement 0.24% below threshold "
                            "2.00%") == ("application improvement below "
                                         "threshold")
    assert normalize_reason("no application improvement") == \
        "no application improvement"


def test_payback_values_and_distribution():
    ts = TraceSet.from_recorder(synthetic_recorder())
    # One swap move (2.0) plus one accepted CR check (inf).
    assert payback_values(ts) == [2.0, math.inf]
    histogram = payback_distribution(ts)
    assert histogram.bounds == PAYBACK_BUCKETS
    assert histogram.count == 2
    assert histogram.bucket_counts[-1] == 1  # the inf overflow


def test_time_to_first_swap_and_overhead():
    ts = TraceSet.from_recorder(synthetic_recorder())
    firsts = time_to_first_swap(ts)
    assert firsts[(("s", 0.5, 0), "swap")] == pytest.approx(11.0)
    assert firsts[(("s", 0.5, 0), "dlb")] is None  # rebalances don't count
    overhead = adaptation_overhead(ts)[(("s", 0.5, 0), "swap")]
    assert overhead["overhead"] == pytest.approx(2.0)
    assert overhead["fraction"] == pytest.approx(2.0 / 19.0)


def test_decision_summary_counts_cr_checks_as_one_move():
    ts = TraceSet.from_recorder(synthetic_recorder())
    assert decision_summary(ts) == {"epochs": 3, "accepted": 2,
                                    "rejected": 1, "moves": 2}


# -- linter -------------------------------------------------------------------


def test_real_sweep_trace_lints_clean(fig4_session):
    ts = TraceSet.from_recorder(fig4_session.trace)
    assert lint(ts, fig4_session.metrics) == []


def test_rule_table_covers_all_codes():
    assert sorted(TRACE_RULES) == [f"TL00{i}" for i in range(1, 8)]


def test_tl001_flags_time_regression():
    recorder = TraceRecorder()
    recorder.set_context(scenario="s", x=0.0, seed=0, series="a")
    recorder.emit("iteration", 10.0)
    recorder.emit("iteration", 4.0)
    findings = lint(TraceSet.from_recorder(recorder))
    assert [f.code for f in findings] == ["TL001"]
    assert "precedes" in findings[0].message


def test_tl001_ignores_interleaved_rows():
    # Different series restart their clocks; only within-row order counts.
    recorder = TraceRecorder()
    recorder.set_context(scenario="s", x=0.0, seed=0, series="a")
    recorder.emit("iteration", 50.0)
    recorder.set_context(scenario="s", x=0.0, seed=0, series="b")
    recorder.emit("iteration", 3.0)
    assert lint(TraceSet.from_recorder(recorder)) == []


def test_tl002_flags_swap_without_accepting_decision():
    recorder = TraceRecorder()
    recorder.set_context(scenario="s", x=0.0, seed=0, series="a")
    recorder.emit("swap", 5.0, iteration=1, out_host=1, in_host=2)
    findings = lint(TraceSet.from_recorder(recorder))
    assert [f.code for f in findings] == ["TL002"]


def test_tl003_flags_overlapping_slices_but_not_batches():
    recorder = TraceRecorder()
    recorder.set_context(scenario="s", x=0.0, seed=0, series="a")
    recorder.emit("iteration", 10.0, start=0.0, end=10.0)
    # A batch of coincident swap slices is legitimate...
    recorder.emit("decision", 10.0, iteration=1, accepted=True,
                  rejected_reason="", candidate=[2], payback=1.0)
    recorder.emit("swap", 12.0, iteration=1, start=10.0, end=12.0)
    recorder.emit("swap", 12.0, iteration=1, start=10.0, end=12.0)
    assert lint(TraceSet.from_recorder(recorder)) == []
    # ...a genuinely overlapping slice is not.
    recorder.emit("iteration", 11.5, start=11.0, end=11.5)
    findings = lint(TraceSet.from_recorder(recorder))
    assert "TL003" in [f.code for f in findings]


def test_tl004_flags_accepted_decision_without_moves():
    recorder = TraceRecorder()
    recorder.set_context(scenario="s", x=0.0, seed=0, series="a")
    recorder.emit("decision", 1.0, accepted=True, rejected_reason="",
                  moves=[], gates=[])
    findings = lint(TraceSet.from_recorder(recorder))
    assert [f.code for f in findings] == ["TL004"]


def test_tl004_flags_prefix_not_ending_at_accepting_gate():
    recorder = TraceRecorder()
    recorder.set_context(scenario="s", x=0.0, seed=0, series="a")
    recorder.emit(
        "decision", 1.0, accepted=True, rejected_reason="",
        moves=[{"out_host": 1, "in_host": 2, "payback": 1.0}],
        gates=[{"gate": "application", "accepted": False, "reason": "r",
                "out_host": 1, "in_host": 2}])
    findings = lint(TraceSet.from_recorder(recorder))
    assert any("accepting" in f.message for f in findings)


def test_tl004_accepts_committed_prefix_with_interior_rejections():
    # decide_swaps commits a prefix whose *cumulative* gate passed even
    # if interior candidates were individually rejected.
    recorder = TraceRecorder()
    recorder.set_context(scenario="s", x=0.0, seed=0, series="a")
    recorder.emit(
        "decision", 1.0, accepted=True, rejected_reason="",
        moves=[{"out_host": 1, "in_host": 2, "payback": 1.0},
               {"out_host": 3, "in_host": 4, "payback": 1.0}],
        gates=[{"gate": "application", "accepted": False, "reason": "r",
                "out_host": 1, "in_host": 2},
               {"gate": "accepted", "accepted": True, "reason": "",
                "out_host": 3, "in_host": 4}])
    assert lint(TraceSet.from_recorder(recorder)) == []


def test_tl004_flags_cr_rejection_without_reason():
    recorder = TraceRecorder()
    recorder.set_context(scenario="s", x=0.0, seed=0, series="cr")
    recorder.emit("decision", 1.0, accepted=False, rejected_reason="",
                  candidate=[1], payback=3.0)
    findings = lint(TraceSet.from_recorder(recorder))
    assert [f.code for f in findings] == ["TL004"]


def test_tl005_flags_metrics_disagreeing_with_trace(fig4_session):
    ts = TraceSet.from_recorder(fig4_session.trace)
    payload = fig4_session.metrics.to_dict()
    payload["counters"]["decision.moves_total"] += 1.0
    findings = lint(ts, payload)
    assert [f.code for f in findings] == ["TL005"]
    assert "decision.moves_total" in findings[0].message


def test_tl005_flags_tampered_payback_histogram(fig4_session):
    ts = TraceSet.from_recorder(fig4_session.trace)
    payload = fig4_session.metrics.to_dict()
    payload["histograms"]["decision.payback_iterations"]["count"] += 1
    findings = lint(ts, payload)
    assert [f.code for f in findings] == ["TL005"]


def test_tl006_reports_unparseable_lines():
    ts = TraceSet.from_jsonl('{"kind":"e","t":1.0}\ngarbage\n')
    findings = lint(ts)
    assert [f.code for f in findings] == ["TL006"]
    assert "line 2" in findings[0].message


def test_tl007_flags_unresolved_revocation():
    recorder = TraceRecorder()
    recorder.set_context(scenario="s", x=0.0, seed=0, series="a")
    recorder.emit("fault.revocation", 5.0, host=3, until=60.0)
    findings = lint(TraceSet.from_recorder(recorder))
    assert [f.code for f in findings] == ["TL007"]
    assert "host 3" in findings[0].message


def test_tl007_accepts_stall_or_recovery():
    for resolver in ({"kind": "fault.stall", "host": 3, "stalled": 10.0,
                      "reason": "no-spare"},
                     {"kind": "fault.recovery", "action": "swap-promote",
                      "out_host": 3, "in_host": 9},
                     {"kind": "fault.recovery", "action": "cr-restart",
                      "hosts": [3], "new_active": [9]},
                     {"kind": "fault.recovery", "action": "returned",
                      "host": 3}):
        recorder = TraceRecorder()
        recorder.set_context(scenario="s", x=0.0, seed=0, series="a")
        recorder.emit("fault.revocation", 5.0, host=3, until=60.0)
        recorder.emit(resolver.pop("kind"), 6.0, **resolver)
        assert lint(TraceSet.from_recorder(recorder)) == []


def test_tl007_resolution_must_match_host():
    recorder = TraceRecorder()
    recorder.set_context(scenario="s", x=0.0, seed=0, series="a")
    recorder.emit("fault.revocation", 5.0, host=3, until=60.0)
    recorder.emit("fault.stall", 6.0, host=4, stalled=10.0,
                  reason="no-spare")
    findings = lint(TraceSet.from_recorder(recorder))
    assert [f.code for f in findings] == ["TL007"]


def test_corrupted_sweep_trace_is_caught(fig4_session, tmp_path):
    """End to end: flip one byte of a real trace; the linter notices."""
    path = tmp_path / "trace.jsonl"
    fig4_session.trace.write_jsonl(path)
    text = path.read_text()
    lines = text.splitlines()
    index = next(i for i, line in enumerate(lines) if '"swap"' in line)
    lines[index] = lines[index][:-2]  # truncate -> unparseable
    path.write_text("\n".join(lines) + "\n")
    findings = lint(TraceSet.load(path), fig4_session.metrics)
    assert findings  # at least TL006 (and TL005 via the lost record)
    assert "TL006" in {f.code for f in findings}


def test_finding_str_includes_cell_and_series():
    recorder = TraceRecorder()
    recorder.set_context(scenario="figX", x=0.25, seed=7, series="swap")
    recorder.emit("swap", 5.0, iteration=1)
    finding = lint(TraceSet.from_recorder(recorder))[0]
    assert str(finding).startswith("TL002 [figX x=0.25 seed=7 / swap]")
