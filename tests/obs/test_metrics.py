"""Tests for the metrics registry and its deterministic merge."""

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


# -- primitives -----------------------------------------------------------------

def test_counter_accumulates_and_rejects_negative():
    counter = Counter()
    counter.inc()
    counter.inc(2.5)
    assert counter.value == pytest.approx(3.5)
    with pytest.raises(ObservabilityError):
        counter.inc(-1.0)


def test_gauge_last_write_wins():
    gauge = Gauge()
    assert gauge.to_payload() is None
    gauge.set(1.0)
    gauge.set(7.0)
    assert gauge.value == 7.0


def test_histogram_buckets_and_stats():
    histogram = Histogram(bounds=(1.0, 10.0))
    for value in (0.5, 5.0, 50.0, float("inf")):
        histogram.observe(value)
    assert histogram.bucket_counts == [1, 1, 2]
    assert histogram.count == 4
    assert histogram.total == pytest.approx(55.5)  # inf excluded from sum
    assert histogram.min == 0.5
    assert histogram.max == float("inf")


def test_histogram_rejects_nan_and_bad_bounds():
    with pytest.raises(ObservabilityError):
        Histogram(bounds=())
    with pytest.raises(ObservabilityError):
        Histogram(bounds=(2.0, 1.0))
    with pytest.raises(ObservabilityError):
        Histogram().observe(float("nan"))


# -- registry -------------------------------------------------------------------

def test_registry_creates_on_demand_and_reuses():
    registry = MetricsRegistry()
    registry.counter("a").inc()
    registry.counter("a").inc()
    assert registry.counter("a").value == 2.0
    assert len(registry) == 1


def test_registry_rejects_histogram_bound_redeclaration():
    registry = MetricsRegistry()
    registry.histogram("h", bounds=(1.0, 2.0))
    with pytest.raises(ObservabilityError):
        registry.histogram("h", bounds=(1.0, 3.0))


def test_to_dict_is_key_sorted_and_json_stable():
    registry = MetricsRegistry()
    registry.counter("zeta").inc()
    registry.counter("alpha").inc(3)
    registry.gauge("g").set(float("inf"))
    registry.histogram("h").observe(4.0)
    payload = registry.to_dict()
    assert list(payload["counters"]) == ["alpha", "zeta"]
    assert payload["gauges"]["g"] == "inf"
    assert registry.to_json() == registry.to_json()


def test_merge_dict_round_trips_through_payload():
    source = MetricsRegistry()
    source.counter("c").inc(2)
    source.gauge("g").set(1.5)
    source.histogram("h", bounds=(1.0, 2.0)).observe(0.5)
    source.histogram("h", bounds=(1.0, 2.0)).observe(5.0)

    merged = MetricsRegistry()
    merged.merge_dict(source.to_dict())
    merged.merge_dict(source.to_dict())
    assert merged.counter("c").value == 4.0
    assert merged.gauge("g").value == 1.5
    histogram = merged.histogram("h", bounds=(1.0, 2.0))
    assert histogram.count == 4
    assert histogram.bucket_counts == [2, 0, 2]
    assert histogram.min == 0.5 and histogram.max == 5.0


def test_merge_handles_nonfinite_payload_spellings():
    source = MetricsRegistry()
    source.gauge("g").set(float("inf"))
    source.histogram("h").observe(float("inf"))
    merged = MetricsRegistry()
    merged.merge_dict(source.to_dict())
    assert merged.gauge("g").value == float("inf")
    assert merged.histogram("h").max == float("inf")


def test_merge_rejects_mismatched_bounds():
    left = MetricsRegistry()
    left.histogram("h", bounds=(1.0,)).observe(0.5)
    right = MetricsRegistry()
    right.histogram("h", bounds=(2.0,)).observe(0.5)
    with pytest.raises(ObservabilityError):
        left.merge(right)


def test_merge_is_order_sensitive_only_for_gauges():
    a = MetricsRegistry()
    a.counter("c").inc(1)
    a.gauge("g").set(1.0)
    b = MetricsRegistry()
    b.counter("c").inc(2)
    b.gauge("g").set(2.0)

    ab = MetricsRegistry()
    ab.merge(a)
    ab.merge(b)
    ba = MetricsRegistry()
    ba.merge(b)
    ba.merge(a)
    assert ab.counter("c").value == ba.counter("c").value == 3.0
    assert ab.gauge("g").value == 2.0  # last write wins
    assert ba.gauge("g").value == 1.0


def test_default_buckets_are_sorted():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
