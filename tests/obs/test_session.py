"""Tests for the ambient observation session and emission helpers."""

import pytest

from repro import obs
from repro.core.decision import decide_swaps, evaluate_reconfiguration
from repro.core.policy import greedy_policy


def test_no_session_by_default():
    assert obs.active() is None


def test_observing_activates_and_restores():
    session = obs.ObsSession()
    with obs.observing(session) as entered:
        assert entered is session
        assert obs.active() is session
    assert obs.active() is None


def test_observing_restores_previous_on_nesting():
    outer, inner = obs.ObsSession(), obs.ObsSession()
    with obs.observing(outer):
        with obs.observing(inner):
            assert obs.active() is inner
        assert obs.active() is outer


def test_observing_restores_on_exception():
    session = obs.ObsSession()
    with pytest.raises(RuntimeError):
        with obs.observing(session):
            raise RuntimeError()
    assert obs.active() is None


def test_helpers_are_noops_without_session():
    before = obs.emitted_total()
    obs.emit("e", 1.0)
    obs.count("c")
    obs.gauge("g", 1.0)
    obs.observe_value("h", 1.0)
    assert obs.emitted_total() == before


def test_helpers_emit_into_active_session():
    session = obs.ObsSession()
    before = obs.emitted_total()
    with obs.observing(session):
        obs.emit("e", 2.0, detail="x")
        obs.count("c", 3.0)
        obs.gauge("g", 4.0)
        obs.observe_value("h", 5.0)
    assert obs.emitted_total() == before + 1
    assert session.trace.records == [{"kind": "e", "t": 2.0, "detail": "x"}]
    assert session.metrics.counter("c").value == 3.0
    assert session.metrics.gauge("g").value == 4.0
    assert session.metrics.histogram("h").count == 1


def test_emit_decision_serializes_gate_trail():
    rates = {0: 100.0, 1: 50.0, 2: 200.0, 3: 40.0}
    decision = decide_swaps(active=[0, 1], spares=[2, 3], rates=rates,
                            chunk_flops={0: 1000.0, 1: 1000.0},
                            comm_time=0.0, swap_cost=1.0,
                            params=greedy_policy())
    session = obs.ObsSession()
    with obs.observing(session):
        obs.emit_decision(60.0, source="swap-greedy", iteration=1,
                          policy="greedy", decision=decision,
                          active=[0, 1], spares=[2, 3])
    (record,) = session.trace.records
    assert record["kind"] == "decision"
    assert record["accepted"] is True
    assert record["moves"][0]["out_host"] == 1
    assert [g["gate"] for g in record["gates"]] == ["accepted", "process"]
    counters = session.metrics.to_dict()["counters"]
    assert counters["decision.epochs_total"] == 1.0
    assert counters["decision.moves_total"] == 1.0
    assert "decision.payback_iterations" in (
        session.metrics.to_dict()["histograms"])


def test_emit_decision_counts_rejections():
    rates = {0: 100.0, 1: 90.0, 2: 50.0}
    decision = decide_swaps(active=[0, 1], spares=[2], rates=rates,
                            chunk_flops={0: 1000.0, 1: 1000.0},
                            comm_time=0.0, swap_cost=1.0,
                            params=greedy_policy())
    session = obs.ObsSession()
    with obs.observing(session):
        obs.emit_decision(60.0, source="swap-greedy", iteration=1,
                          policy="greedy", decision=decision,
                          active=[0, 1], spares=[2])
    (record,) = session.trace.records
    assert record["accepted"] is False
    assert "no faster" in record["rejected_reason"]
    counters = session.metrics.to_dict()["counters"]
    assert counters["decision.epochs_rejected_total"] == 1.0


def test_emit_check_records_cr_gate():
    check = evaluate_reconfiguration(100.0, 50.0, cost=10.0,
                                     params=greedy_policy())
    session = obs.ObsSession()
    with obs.observing(session):
        obs.emit_check(120.0, source="cr", iteration=2, policy="greedy",
                       check=check, cost=10.0, active=[0, 1],
                       candidate=[2, 3])
    (record,) = session.trace.records
    assert record["kind"] == "decision"
    assert record["accepted"] is True
    assert record["candidate"] == [2, 3]


def test_emit_helpers_are_noops_without_session_for_decisions():
    check = evaluate_reconfiguration(100.0, 50.0, cost=10.0,
                                     params=greedy_policy())
    before = obs.emitted_total()
    obs.emit_check(1.0, source="cr", iteration=1, policy="greedy",
                   check=check, cost=1.0, active=[0], candidate=[1])
    assert obs.emitted_total() == before
