"""Tests for the trace recorder and its JSONL / Chrome exports."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.trace import TraceRecorder, jsonable


# -- jsonable -------------------------------------------------------------------

def test_jsonable_passes_plain_values():
    assert jsonable(1.5) == 1.5
    assert jsonable(3) == 3
    assert jsonable("x") == "x"
    assert jsonable(None) is None
    assert jsonable(True) is True


def test_jsonable_spells_nonfinite_floats():
    assert jsonable(float("inf")) == "inf"
    assert jsonable(float("-inf")) == "-inf"
    assert jsonable(float("nan")) == "nan"


def test_jsonable_recurses_into_containers():
    assert jsonable({1: [float("inf"), (2.0,)]}) == {"1": ["inf", [2.0]]}


def test_jsonable_rejects_arbitrary_objects():
    with pytest.raises(ObservabilityError):
        jsonable(object())


# -- TraceRecorder --------------------------------------------------------------

def test_emit_records_in_order_with_context():
    recorder = TraceRecorder()
    recorder.set_context(scenario="s", x=1.0, seed=0, series="a")
    recorder.emit("decision", 3.0, accepted=True)
    recorder.emit("swap", 4.0, out_host=1, in_host=2)
    assert len(recorder) == 2
    assert recorder.records[0] == {
        "kind": "decision", "t": 3.0, "scenario": "s", "x": 1.0,
        "seed": 0, "series": "a", "accepted": True}
    assert recorder.records[1]["kind"] == "swap"


def test_context_replacement_does_not_touch_old_records():
    recorder = TraceRecorder()
    recorder.set_context(series="a")
    recorder.emit("e", 0.0)
    recorder.set_context(series="b")
    recorder.emit("e", 1.0)
    assert [r["series"] for r in recorder.records] == ["a", "b"]


def test_jsonl_is_parseable_and_byte_stable():
    def build() -> TraceRecorder:
        recorder = TraceRecorder()
        recorder.set_context(scenario="s", x=0.5, seed=1, series="swap")
        recorder.emit("decision", 60.0, payback=float("inf"),
                      gates=[{"gate": "process", "accepted": False}])
        return recorder

    text = build().to_jsonl()
    assert text == build().to_jsonl()
    lines = text.strip().split("\n")
    assert len(lines) == 1
    parsed = json.loads(lines[0])
    assert parsed["payback"] == "inf"
    assert parsed["gates"][0]["gate"] == "process"


def test_empty_recorder_exports_empty_jsonl():
    assert TraceRecorder().to_jsonl() == ""


def test_write_jsonl(tmp_path):
    recorder = TraceRecorder()
    recorder.emit("e", 1.0)
    path = tmp_path / "trace.jsonl"
    recorder.write_jsonl(path)
    assert json.loads(path.read_text())["kind"] == "e"


# -- Chrome export --------------------------------------------------------------

def _sample_recorder() -> TraceRecorder:
    recorder = TraceRecorder()
    recorder.set_context(scenario="fig4", x=0.5, seed=0, series="nothing")
    recorder.emit("iteration", 70.0, iteration=1, start=10.0, end=70.0)
    recorder.set_context(scenario="fig4", x=0.5, seed=0, series="swap-greedy")
    recorder.emit("decision", 70.0, iteration=1, accepted=False,
                  rejected_reason="no application improvement")
    recorder.set_context(scenario="fig4", x=0.7, seed=1, series="swap-greedy")
    recorder.emit("swap", 75.0, out_host=1, in_host=2, start=70.0, end=75.0)
    return recorder


def test_chrome_export_structure():
    doc = _sample_recorder().to_chrome()
    events = doc["traceEvents"]
    phases = [e["ph"] for e in events]
    # Two cells and three series -> 2 process + 3 thread metadata events.
    assert phases.count("M") == 5
    complete = [e for e in events if e["ph"] == "X"]
    assert len(complete) == 2  # iteration + swap carry start/end
    iteration = next(e for e in complete if e["cat"] == "iteration")
    assert iteration["ts"] == pytest.approx(10.0 * 1e6)
    assert iteration["dur"] == pytest.approx(60.0 * 1e6)
    instants = [e for e in events if e["ph"] == "i"]
    assert len(instants) == 1
    assert instants[0]["cat"] == "decision"
    assert instants[0]["args"]["rejected_reason"] == (
        "no application improvement")


def test_chrome_cells_get_distinct_pids_and_series_distinct_tids():
    doc = _sample_recorder().to_chrome()
    data = [e for e in doc["traceEvents"] if e["ph"] != "M"]
    pids = {e["pid"] for e in data}
    tids = {(e["pid"], e["tid"]) for e in data}
    assert len(pids) == 2
    assert len(tids) == 3


def test_chrome_json_is_valid_and_byte_stable(tmp_path):
    recorder = _sample_recorder()
    assert recorder.to_chrome_json() == _sample_recorder().to_chrome_json()
    path = tmp_path / "trace.json"
    recorder.write_chrome(path)
    doc = json.loads(path.read_text())
    assert "traceEvents" in doc and doc["displayTimeUnit"] == "ms"
