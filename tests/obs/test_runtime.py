"""Tests for the runtime telemetry plane (:mod:`repro.obs.runtime`).

Everything here is about the *wall-clock* plane, so the tests inject
fake monotonic/unix clocks throughout -- the recorder, snapshotter, and
progress ticker never sleep or read host time in this file.
"""

import io
import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import (
    RUNTIME_SCHEMA,
    MetricsSnapshotter,
    ProgressTicker,
    RunTelemetry,
    RuntimeRecorder,
    SpanSet,
    fleet_timeline,
    format_progress,
    load_metrics_series,
    percentile,
    prometheus_text,
    tail_run,
    wall_stats,
    wall_summary,
    write_fleet_timeline,
    write_prometheus,
)


class FakeClock:
    """A monotonic clock the test advances by hand."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> float:
        self.now += dt
        return self.now


def _recorder(tmp_path, *, role="coordinator", worker=None, start=100.0,
              unix=1_000_000.0):
    clock = FakeClock(start)
    rec = RuntimeRecorder(tmp_path / f"spans-{role}.jsonl", role=role,
                          worker=worker, clock=clock,
                          unix_clock=lambda: unix)
    return rec, clock


def _lines(path):
    return [json.loads(line) for line in
            path.read_text().splitlines() if line.strip()]


# -- RuntimeRecorder --------------------------------------------------------


def test_recorder_first_record_is_meta_anchor(tmp_path):
    rec, _clock = _recorder(tmp_path)
    rec.close()
    records = _lines(tmp_path / "spans-coordinator.jsonl")
    assert records[0]["kind"] == "runtime.meta"
    assert records[0]["schema"] == RUNTIME_SCHEMA
    assert records[0]["t"] == 100.0
    assert records[0]["unix"] == 1_000_000.0
    assert records[0]["seq"] == 0


def test_recorder_records_are_sequenced_and_flushed_live(tmp_path):
    rec, clock = _recorder(tmp_path)
    clock.advance(1.0)
    rec.event("lease.assign", lease=0, worker_id="w0")
    # No close(): line-buffered writes must be visible immediately.
    records = _lines(tmp_path / "spans-coordinator.jsonl")
    assert [r["seq"] for r in records] == [0, 1]
    assert records[1]["kind"] == "lease.assign"
    assert records[1]["t"] == 101.0
    assert records[1]["worker_id"] == "w0"
    rec.close()


def test_recorder_span_measures_duration(tmp_path):
    rec, clock = _recorder(tmp_path)
    with rec.span("cell.compute", x=2.0):
        clock.advance(0.25)
    rec.close()
    span = _lines(tmp_path / "spans-coordinator.jsonl")[1]
    assert span["kind"] == "cell.compute"
    assert span["t"] == 100.0
    assert span["dur"] == pytest.approx(0.25)
    assert span["x"] == 2.0


def test_recorder_identity_keys_beat_payload_fields(tmp_path):
    # A coordinator event *about* worker w3 must not masquerade as a
    # record *emitted by* w3 -- the (role, worker) identity is who wrote
    # the file, and the timeline tracks depend on it.
    rec, _clock = _recorder(tmp_path, role="coordinator")
    rec.event("worker.exit", worker="w3", role="worker", pid=-1)
    rec.close()
    record = _lines(tmp_path / "spans-coordinator.jsonl")[1]
    assert record["role"] == "coordinator"
    assert record["worker"] is None
    assert record["pid"] != -1


def test_recorder_close_is_idempotent_and_silences_events(tmp_path):
    rec, _clock = _recorder(tmp_path)
    rec.close()
    rec.close()
    rec.event("late.event")  # silently dropped, never raises
    assert len(_lines(tmp_path / "spans-coordinator.jsonl")) == 1


def test_for_worker_names_the_span_file(tmp_path):
    rec = RuntimeRecorder.for_worker(tmp_path, "w7")
    rec.event("worker.start")
    rec.close()
    records = _lines(tmp_path / "spans-worker-w7.jsonl")
    assert records[1]["role"] == "worker"
    assert records[1]["worker"] == "w7"


# -- SpanSet ----------------------------------------------------------------


def _run_dir(tmp_path):
    """A tiny two-file run: coordinator + one worker, aligned clocks."""
    coord, cclock = _recorder(tmp_path, start=100.0, unix=5000.0)
    cclock.advance(1.0)
    coord.event("lease.assign", lease=0, worker_id="w0")
    coord.close()
    # The worker's monotonic epoch differs by 900 but its unix anchor
    # matches: both files describe the same wall-clock run.
    worker, wclock = _recorder(tmp_path, role="worker", worker="w0",
                               start=1000.0, unix=5000.0)
    with worker.span("cell.compute", xi=0, si=0):
        wclock.advance(0.5)
    worker.close()
    return tmp_path


def test_spanset_loads_all_files_and_filters(tmp_path):
    spans = SpanSet.load_dir(_run_dir(tmp_path))
    assert len(spans.records) == 4
    assert spans.filter("lease.assign").records[0]["lease"] == 0
    assert len(spans.filter(role="worker").records) == 2
    assert len(spans.filter(worker="w0").records) == 2
    assert spans.kinds() == {"cell.compute": 1, "lease.assign": 1,
                             "runtime.meta": 2}
    assert spans.tracks() == [("coordinator", None), ("worker", "w0")]


def test_spanset_tolerates_torn_final_line(tmp_path):
    _run_dir(tmp_path)
    path = tmp_path / "spans-worker.jsonl"
    path.write_text(path.read_text() + '{"kind": "cell.comp')
    spans = SpanSet.load_dir(tmp_path)
    assert len(spans.records) == 4
    assert len(spans.bad_lines) == 1


def test_spanset_empty_dir_is_empty(tmp_path):
    spans = SpanSet.load_dir(tmp_path)
    assert spans.records == []
    assert spans.tracks() == []


# -- fleet timeline ---------------------------------------------------------


def test_fleet_timeline_one_track_per_source(tmp_path):
    doc = fleet_timeline(SpanSet.load_dir(_run_dir(tmp_path)))
    names = {e["args"]["name"]: e["pid"] for e in doc["traceEvents"]
             if e["ph"] == "M"}
    assert names == {"coordinator": 0, "worker w0": 1}


def test_fleet_timeline_aligns_monotonic_epochs(tmp_path):
    # Coordinator anchor: t=100 at unix 5000.  Worker anchor: t=1000 at
    # unix 5000.  The worker's cell.compute at t=1000 and the
    # coordinator's meta at t=100 are the same wall instant, so both
    # land at ts=0; the lease.assign one second later lands at 1e6 us.
    doc = fleet_timeline(SpanSet.load_dir(_run_dir(tmp_path)))
    by_name = {e["name"]: e for e in doc["traceEvents"] if e["ph"] != "M"}
    assert by_name["cell.compute"]["ts"] == pytest.approx(0.0)
    assert by_name["lease.assign"]["ts"] == pytest.approx(1e6)


def test_fleet_timeline_span_vs_instant_phases(tmp_path):
    doc = fleet_timeline(SpanSet.load_dir(_run_dir(tmp_path)))
    by_name = {e["name"]: e for e in doc["traceEvents"] if e["ph"] != "M"}
    assert by_name["cell.compute"]["ph"] == "X"
    assert by_name["cell.compute"]["dur"] == pytest.approx(0.5e6)
    assert by_name["lease.assign"]["ph"] == "i"
    assert "runtime.meta" not in by_name


def test_write_fleet_timeline_is_loadable_chrome_json(tmp_path):
    out = write_fleet_timeline(_run_dir(tmp_path))
    doc = json.loads(out.read_text())
    assert isinstance(doc["traceEvents"], list)
    phases = {e["ph"] for e in doc["traceEvents"]}
    assert phases <= {"M", "X", "i"}


# -- percentiles ------------------------------------------------------------


def test_percentile_nearest_rank():
    values = [0.1, 0.2, 0.3, 0.4, 0.5]
    assert percentile(values, 50) == 0.3
    assert percentile(values, 95) == 0.5
    assert percentile(values, 0) == 0.1
    assert percentile([], 50) == 0.0
    with pytest.raises(ObservabilityError):
        percentile(values, 101)


def test_wall_stats_and_summary(tmp_path):
    assert wall_stats([]) == {"p50": 0.0, "p95": 0.0, "max": 0.0}
    assert wall_stats([3.0, 1.0, 2.0]) == {"p50": 2.0, "p95": 3.0,
                                           "max": 3.0}
    summary = wall_summary(SpanSet.load_dir(_run_dir(tmp_path)))
    assert summary == {"cell.compute": {"count": 1, "p50": 0.5,
                                        "p95": 0.5, "max": 0.5}}


# -- Prometheus exposition --------------------------------------------------


def test_prometheus_text_counters_gauges_histograms():
    registry = MetricsRegistry()
    registry.counter("runtime.cells_done_total").inc(6)
    registry.gauge("runtime.active_workers").set(2)
    hist = registry.histogram("runtime.heartbeat_latency_seconds",
                              (0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(5.0)
    text = prometheus_text(registry.to_dict())
    lines = text.splitlines()
    assert "# TYPE repro_runtime_cells_done_total counter" in lines
    assert "repro_runtime_cells_done_total 6.0" in lines
    assert "repro_runtime_active_workers 2.0" in lines
    # Cumulative buckets plus the +Inf catch-all.
    assert 'repro_runtime_heartbeat_latency_seconds_bucket{le="0.1"} 1' \
        in lines
    assert 'repro_runtime_heartbeat_latency_seconds_bucket{le="1.0"} 2' \
        in lines
    assert 'repro_runtime_heartbeat_latency_seconds_bucket{le="+Inf"} 3' \
        in lines
    assert "repro_runtime_heartbeat_latency_seconds_count 3" in lines
    assert text.endswith("\n")


def test_prometheus_text_handles_json_inf_spellings():
    text = prometheus_text({"gauges": {"x": "inf", "y": "-inf"}})
    assert "repro_x +Inf" in text
    assert "repro_y -Inf" in text
    assert prometheus_text({}) == ""


# -- metrics snapshots ------------------------------------------------------


def test_snapshotter_respects_interval_and_sequences(tmp_path):
    clock = FakeClock(10.0)
    registry = MetricsRegistry()
    snap = MetricsSnapshotter(registry, tmp_path / "metrics.jsonl",
                              interval=1.0, clock=clock,
                              unix_clock=lambda: 777.0)
    registry.counter("runtime.ticks").inc()
    assert snap.maybe_snapshot() is True
    assert snap.maybe_snapshot() is False  # interval not yet elapsed
    clock.advance(0.5)
    assert snap.maybe_snapshot() is False
    clock.advance(0.5)
    assert snap.maybe_snapshot() is True
    series = load_metrics_series(tmp_path)
    assert [s["seq"] for s in series] == [0, 1]
    assert series[-1]["unix"] == 777.0
    assert series[-1]["metrics"]["counters"]["runtime.ticks"] == 1.0


def test_write_prometheus_exports_latest_snapshot(tmp_path):
    clock = FakeClock()
    registry = MetricsRegistry()
    snap = MetricsSnapshotter(registry, tmp_path / "metrics.jsonl",
                              clock=clock)
    registry.counter("runtime.cells").inc(3)
    snap.snapshot()
    registry.counter("runtime.cells").inc(4)
    clock.advance(5.0)
    snap.snapshot()
    out = write_prometheus(tmp_path)
    assert "repro_runtime_cells 7.0" in out.read_text()


def test_write_prometheus_without_series_writes_empty_file(tmp_path):
    out = write_prometheus(tmp_path)
    assert out.read_text() == ""


# -- progress ---------------------------------------------------------------


def test_progress_ticker_interval_and_force(tmp_path):
    clock = FakeClock()
    stream = io.StringIO()
    ticker = ProgressTicker(10, path=tmp_path / "progress.json",
                            stream=stream, interval=0.5, clock=clock,
                            unix_clock=lambda: 0.0)
    assert ticker.update(1, force=True) is True
    assert ticker.update(2) is False  # within the interval
    clock.advance(0.6)
    assert ticker.update(3, active_workers=2, stragglers=1) is True
    payload = json.loads((tmp_path / "progress.json").read_text())
    assert payload["done"] == 3
    assert payload["active_workers"] == 2
    assert payload["stragglers"] == 1
    assert payload["state"] == "running"
    assert stream.getvalue().count("[progress]") == 2


def test_progress_eta_uses_observed_rate():
    clock = FakeClock()
    ticker = ProgressTicker(10, clock=clock, unix_clock=lambda: 0.0)
    clock.advance(2.0)
    ticker.update(4, force=True)
    # 4 cells in 2s -> 2 cells/s -> 6 remaining = 3s.
    assert ticker.eta_seconds(clock()) == pytest.approx(3.0)
    assert ticker.eta_seconds(clock()) is not None


def test_progress_finish_marks_terminal_state(tmp_path):
    clock = FakeClock()
    ticker = ProgressTicker(4, path=tmp_path / "progress.json",
                            clock=clock, unix_clock=lambda: 0.0)
    ticker.finish(4)
    payload = json.loads((tmp_path / "progress.json").read_text())
    assert payload["state"] == "done"
    assert payload["done"] == 4
    ticker.finish(state="failed")
    payload = json.loads((tmp_path / "progress.json").read_text())
    assert payload["state"] == "failed"


def test_format_progress_line():
    line = format_progress({"state": "running", "done": 12, "total": 20,
                            "cache_hits": 4, "active_workers": 3,
                            "stragglers": 1, "elapsed_s": 2.1,
                            "eta_s": 1.4})
    assert line == ("[progress] 12/20 cells (60%), 4 cache hits, "
                    "3 workers, 1 stragglers, 2.1s elapsed, eta 1.4s")
    assert "done" in format_progress({"state": "done", "done": 1,
                                      "total": 1})
    assert "eta --" in format_progress({"state": "running", "done": 0,
                                        "total": 1})


def test_tail_run_prints_changes_until_terminal(tmp_path):
    path = tmp_path / "progress.json"
    states = iter([
        {"state": "running", "done": 1, "total": 2},
        {"state": "running", "done": 1, "total": 2},  # unchanged: no line
        {"state": "done", "done": 2, "total": 2},
    ])

    def fake_sleep(_interval):
        path.write_text(json.dumps(next(states)))

    fake_sleep(0)  # seed the first snapshot
    out = io.StringIO()
    rc = tail_run(tmp_path, follow=True, stream=out, sleep=fake_sleep)
    assert rc == 0
    lines = out.getvalue().splitlines()
    assert len(lines) == 2  # the duplicate snapshot printed nothing
    assert "1/2" in lines[0] and "2/2" in lines[1]


def test_tail_run_without_progress_file(tmp_path):
    out = io.StringIO()
    assert tail_run(tmp_path, stream=out) == 1
    assert out.getvalue() == ""


# -- RunTelemetry -----------------------------------------------------------


def test_run_telemetry_create_none_when_nothing_asked():
    assert RunTelemetry.create(None, progress=False) is None


def test_run_telemetry_progress_only_has_no_files(tmp_path):
    stream = io.StringIO()
    tel = RunTelemetry.create(None, progress=True, total_cells=2,
                              progress_stream=stream)
    assert tel is not None
    assert tel.recorder is None
    with tel.span("anything"):  # must be a harmless no-op
        pass
    tel.tick(1, force=True)
    tel.finalize(done=2)
    assert "[progress]" in stream.getvalue()
    assert list(tmp_path.iterdir()) == []


def test_run_telemetry_finalize_writes_all_artifacts(tmp_path):
    clock = FakeClock(50.0)
    tel = RunTelemetry(tmp_path, total_cells=3, clock=clock)
    tel.event("run.start", total=3)
    with tel.span("cell.compute", xi=0, si=0):
        clock.advance(0.1)
    tel.metrics.counter("runtime.cells_computed_total").inc(3)
    tel.tick(3, active_workers=1, force=True)
    tel.finalize(done=3)
    names = {p.name for p in tmp_path.iterdir()}
    assert names == {"spans-coordinator.jsonl", "metrics.jsonl",
                     "metrics.prom", "progress.json", "summary.json",
                     "timeline.trace.json"}
    summary = json.loads((tmp_path / "summary.json").read_text())
    assert summary["state"] == "done"
    assert "cell.compute" in summary["kinds"]
    assert summary["wall"]["cell.compute"]["count"] == 1
    assert "repro_runtime_cells_computed_total 3.0" in \
        (tmp_path / "metrics.prom").read_text()
    progress = json.loads((tmp_path / "progress.json").read_text())
    assert progress["state"] == "done" and progress["done"] == 3


def test_run_telemetry_failed_state_is_recorded(tmp_path):
    tel = RunTelemetry(tmp_path, total_cells=5, clock=FakeClock())
    tel.tick(1, force=True)
    tel.finalize(state="failed")
    progress = json.loads((tmp_path / "progress.json").read_text())
    assert progress["state"] == "failed"
    summary = json.loads((tmp_path / "summary.json").read_text())
    assert summary["state"] == "failed"
    assert "failed" in format_progress(progress)


# -- CLI subcommands --------------------------------------------------------


def _cli(*argv):
    from repro.obs.__main__ import main
    return main(list(argv))


def test_cli_timeline_and_runtime_metrics(tmp_path, capsys):
    tel = RunTelemetry(tmp_path, total_cells=1, clock=FakeClock())
    tel.metrics.counter("runtime.cells_computed_total").inc()
    tel.tick(1, force=True)
    tel.finalize(done=1)
    (tmp_path / "timeline.trace.json").unlink()
    (tmp_path / "metrics.prom").unlink()

    assert _cli("timeline", str(tmp_path)) == 0
    doc = json.loads((tmp_path / "timeline.trace.json").read_text())
    assert doc["traceEvents"]

    assert _cli("runtime-metrics", str(tmp_path)) == 0
    assert "repro_runtime_cells_computed_total" in \
        (tmp_path / "metrics.prom").read_text()

    assert _cli("runtime-summary", str(tmp_path)) == 0
    out = capsys.readouterr().out
    assert "records" in out and "run.done" in out

    assert _cli("tail", str(tmp_path)) == 0
    assert "[progress]" in capsys.readouterr().out


def test_cli_runtime_summary_empty_dir_fails(tmp_path, capsys):
    assert _cli("runtime-summary", str(tmp_path)) == 1
    assert "no runtime span files" in capsys.readouterr().err
