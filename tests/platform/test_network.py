"""Tests for the shared link: analytic formulas and fair-share flows."""

import pytest

from repro.errors import PlatformError
from repro.platform.network import FairShareLink, LinkSpec
from repro.simkernel.engine import Simulator


# -- LinkSpec ------------------------------------------------------------------

def test_spec_validation():
    with pytest.raises(PlatformError):
        LinkSpec(latency=-1.0)
    with pytest.raises(PlatformError):
        LinkSpec(bandwidth=0.0)


def test_transfer_time_is_paper_swap_time():
    # swap time = alpha + size/beta; paper example vicinity: 1 GB at 6 MB/s
    link = LinkSpec(latency=1e-3, bandwidth=6e6)
    assert link.transfer_time(1e9) == pytest.approx(1e-3 + 1e9 / 6e6)
    assert link.transfer_time(0.0) == pytest.approx(1e-3)


def test_transfer_time_negative_rejected():
    with pytest.raises(PlatformError):
        LinkSpec().transfer_time(-1.0)


def test_serialized_time_single_latency():
    link = LinkSpec(latency=0.5, bandwidth=10.0)
    assert link.serialized_time(100.0, n_messages=4) == pytest.approx(10.5)


def test_exchange_phase_scales_with_processes():
    link = LinkSpec(latency=0.0, bandwidth=1e6)
    assert link.exchange_phase_time(1e6, 4) == pytest.approx(4.0)
    assert link.exchange_phase_time(1e6, 1) == 0.0


# -- FairShareLink ----------------------------------------------------------------

def test_single_flow_timing():
    sim = Simulator()
    link = FairShareLink(sim, LinkSpec(latency=1.0, bandwidth=100.0))
    done = link.transfer(500.0)
    sim.run(until=done)
    assert sim.now == pytest.approx(6.0)  # 1 s latency + 5 s payload


def test_zero_byte_transfer_costs_latency_only():
    sim = Simulator()
    link = FairShareLink(sim, LinkSpec(latency=0.25, bandwidth=100.0))
    done = link.transfer(0.0)
    sim.run(until=done)
    assert sim.now == pytest.approx(0.25)


def test_two_equal_flows_share_bandwidth():
    sim = Simulator()
    link = FairShareLink(sim, LinkSpec(latency=0.0, bandwidth=100.0))
    a = link.transfer(500.0)
    b = link.transfer(500.0)
    sim.run(until=a)
    assert sim.now == pytest.approx(10.0)  # each got 50 B/s
    sim.run(until=b)
    assert sim.now == pytest.approx(10.0)


def test_short_flow_finishes_then_long_flow_speeds_up():
    sim = Simulator()
    link = FairShareLink(sim, LinkSpec(latency=0.0, bandwidth=100.0))
    short = link.transfer(100.0)
    long = link.transfer(300.0)
    sim.run(until=short)
    assert sim.now == pytest.approx(2.0)  # 100 B at 50 B/s
    sim.run(until=long)
    # Long flow: 100 B during sharing, then 200 B at full speed.
    assert sim.now == pytest.approx(4.0)


def test_late_joiner_slows_existing_flow():
    sim = Simulator()
    link = FairShareLink(sim, LinkSpec(latency=0.0, bandwidth=100.0))
    first = link.transfer(1000.0)

    def join_later():
        yield sim.timeout(5.0)
        done = link.transfer(100.0)
        yield done

    sim.process(join_later())
    sim.run(until=first)
    # First: 500 B alone by t=5; shares at 50 B/s while the joiner moves
    # its 100 B (t=5..7, first moves 100 B); then 400 B at full speed.
    assert sim.now == pytest.approx(11.0)


def test_total_bytes_delivered_conserved():
    sim = Simulator()
    link = FairShareLink(sim, LinkSpec(latency=0.0, bandwidth=50.0))
    for size in (100.0, 200.0, 300.0):
        link.transfer(size)
    sim.run()
    assert link.bytes_delivered == pytest.approx(600.0)
    assert link.active_flows == 0


def test_conservation_under_float_hostile_concurrency():
    # Regression guard: staggered flows with sizes chosen to leave
    # epsilon residues (1/3-ish payloads, irrational-looking shares) must
    # still deliver every byte exactly once and complete every flow
    # exactly once -- the epsilon-completion path must not double-count.
    sim = Simulator()
    link = FairShareLink(sim, LinkSpec(latency=1e-3, bandwidth=7.0))
    sizes = [100.0 / 3.0, 1e-9, 55.5555555, 1.0 / 7.0, 12345.6789,
             2.0 ** -20, 99.999999999]
    fired = {i: 0 for i in range(len(sizes))}

    def launch():
        for i, size in enumerate(sizes):
            done = link.transfer(size)
            done.add_callback(
                lambda _ev, i=i: fired.__setitem__(i, fired[i] + 1))
            yield sim.timeout(0.37)  # stagger: joins mid-flight

    sim.process(launch())
    sim.run()
    assert link.active_flows == 0
    assert link.bytes_delivered == pytest.approx(sum(sizes), rel=1e-12)
    assert all(count == 1 for count in fired.values()), fired


def test_makespan_bounded_by_serialization():
    """N concurrent equal flows finish exactly when a serialized batch
    would: fair sharing conserves work."""
    sim = Simulator()
    link = FairShareLink(sim, LinkSpec(latency=0.0, bandwidth=10.0))
    flows = [link.transfer(100.0) for _ in range(5)]
    sim.run()
    assert sim.now == pytest.approx(50.0)
    assert all(f.processed for f in flows)


def test_negative_size_rejected():
    sim = Simulator()
    link = FairShareLink(sim, LinkSpec())
    with pytest.raises(PlatformError):
        link.transfer(-5.0)
