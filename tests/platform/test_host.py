"""Tests for hosts: effective rates and compute timing."""

import numpy as np
import pytest

from repro.errors import PlatformError
from repro.load.base import ConstantLoadModel, LoadTrace
from repro.platform.host import Host, HostSpec


def host_with_trace(speed, times, values):
    host = Host(HostSpec(name="h", speed=speed,
                         load_model=ConstantLoadModel(0)),
                np.random.default_rng(0))
    host.trace = LoadTrace(times, values, beyond_horizon="hold")
    return host


def test_spec_validation():
    with pytest.raises(PlatformError):
        HostSpec(name="h", speed=0.0)
    with pytest.raises(PlatformError):
        HostSpec(name="h", speed=-1e6)


def test_unloaded_compute_time():
    host = host_with_trace(100e6, [0.0, 1000.0], [0])
    assert host.compute_time(0.0, 1e9) == pytest.approx(10.0)


def test_loaded_compute_time_doubles():
    host = host_with_trace(100e6, [0.0, 1000.0], [1])
    assert host.compute_time(0.0, 1e9) == pytest.approx(20.0)


def test_compute_across_load_change():
    # Unloaded 5 s (0.5e9 flop done), then loaded: remaining 0.5e9 takes 10 s
    host = host_with_trace(100e6, [0.0, 5.0, 1000.0], [0, 1])
    assert host.compute_finish(0.0, 1e9) == pytest.approx(15.0)


def test_negative_flops_rejected():
    host = host_with_trace(100e6, [0.0, 10.0], [0])
    with pytest.raises(PlatformError):
        host.compute_finish(0.0, -1.0)


def test_instantaneous_effective_rate():
    host = host_with_trace(200e6, [0.0, 10.0, 1000.0], [0, 3])
    assert host.effective_rate(5.0) == pytest.approx(200e6)
    assert host.effective_rate(20.0) == pytest.approx(50e6)


def test_windowed_effective_rate():
    host = host_with_trace(100e6, [0.0, 10.0, 1000.0], [0, 1])
    # Window [0, 20]: half free, half at 0.5 => 0.75 availability.
    assert host.effective_rate(20.0, window=20.0) == pytest.approx(75e6)


def test_negative_window_rejected():
    host = host_with_trace(100e6, [0.0, 10.0], [0])
    with pytest.raises(PlatformError):
        host.effective_rate(5.0, window=-1.0)


def test_measured_rate():
    host = host_with_trace(100e6, [0.0, 10.0], [0])
    assert host.measured_rate(0.0, 10.0, 5e8) == pytest.approx(5e7)
    with pytest.raises(PlatformError):
        host.measured_rate(5.0, 5.0, 1.0)


def test_host_name_and_speed_passthrough():
    host = host_with_trace(123e6, [0.0, 10.0], [0])
    assert host.name == "h"
    assert host.speed == 123e6
