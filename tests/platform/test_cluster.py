"""Tests for platform assembly."""

import pytest

from repro.errors import PlatformError
from repro.load.base import ConstantLoadModel
from repro.load.onoff import OnOffLoadModel
from repro.platform.cluster import (
    DEFAULT_STARTUP_PER_PROCESS,
    Platform,
    make_platform,
)
from repro.platform.host import Host, HostSpec
from repro.simkernel.rng import RngRegistry


def test_make_platform_basics():
    platform = make_platform(8, ConstantLoadModel(0), seed=1)
    assert len(platform) == 8
    assert len({h.name for h in platform.hosts}) == 8
    assert all(100e6 <= h.speed <= 500e6 for h in platform.hosts)
    assert platform.startup_per_process == DEFAULT_STARTUP_PER_PROCESS


def test_speeds_deterministic_per_seed():
    a = make_platform(6, ConstantLoadModel(0), seed=3)
    b = make_platform(6, ConstantLoadModel(0), seed=3)
    c = make_platform(6, ConstantLoadModel(0), seed=4)
    assert [h.speed for h in a.hosts] == [h.speed for h in b.hosts]
    assert [h.speed for h in a.hosts] != [h.speed for h in c.hosts]


def test_load_traces_deterministic_and_independent():
    a = make_platform(4, OnOffLoadModel(0.3, 0.1), seed=5)
    b = make_platform(4, OnOffLoadModel(0.3, 0.1), seed=5)
    for ha, hb in zip(a.hosts, b.hosts):
        assert ha.trace.segments() == hb.trace.segments()
    # Different hosts get different load streams.
    assert a.hosts[0].trace.segments() != a.hosts[1].trace.segments()


def test_load_model_factory_per_host():
    platform = make_platform(
        3, lambda i: ConstantLoadModel(i), seed=0)
    assert [h.trace.value_at(10.0) for h in platform.hosts] == [0, 1, 2]


def test_startup_time_formula():
    platform = make_platform(5, ConstantLoadModel(0), seed=0)
    assert platform.startup_time(10) == pytest.approx(7.5)
    assert platform.startup_time(0) == 0.0
    with pytest.raises(PlatformError):
        platform.startup_time(-1)


def test_effective_rates_respects_indices():
    platform = make_platform(6, ConstantLoadModel(0), seed=0)
    rates = platform.effective_rates(0.0, indices=[1, 3])
    assert set(rates) == {1, 3}
    assert rates[1] == pytest.approx(platform.host(1).speed)


def test_invalid_configs_rejected():
    with pytest.raises(PlatformError):
        make_platform(0, ConstantLoadModel(0))
    with pytest.raises(PlatformError):
        make_platform(2, ConstantLoadModel(0), speed_range=(0.0, 1e6))
    with pytest.raises(PlatformError):
        make_platform(2, ConstantLoadModel(0), speed_range=(2e6, 1e6))


def test_duplicate_host_names_rejected():
    spec = HostSpec(name="same", speed=1e6, load_model=ConstantLoadModel(0))
    rng = RngRegistry(0)
    hosts = [Host(spec, rng.stream("a")), Host(spec, rng.stream("b"))]
    with pytest.raises(PlatformError):
        Platform(hosts=hosts)


def test_empty_platform_rejected():
    with pytest.raises(PlatformError):
        Platform(hosts=[])


def test_host_indices_assigned():
    platform = make_platform(4, ConstantLoadModel(0), seed=0)
    assert [h.index for h in platform.hosts] == [0, 1, 2, 3]
