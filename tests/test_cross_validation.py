"""Cross-validation between the two simulation levels.

The figures run on the fast iteration-level strategy simulator
(:mod:`repro.strategies`); the mechanism runs on the discrete-event MPI
runtime (:mod:`repro.swap`).  On controlled scenarios the two must agree:
they model the same physics (trace-driven compute, shared link, policy
decisions), differing only in protocol details (control messages, probe
staleness, the manager's extra rank).
"""

import pytest

from repro.app.iterative import ApplicationSpec
from repro.app.workloads import paper_application, particle_dynamics_application
from repro.core.policy import greedy_policy, safe_policy
from repro.load.base import ConstantLoadModel, LoadTrace
from repro.platform.cluster import make_platform
from repro.strategies.nothing import NothingStrategy
from repro.strategies.swapstrat import SwapStrategy
from repro.swap.runtime import SwapRuntime
from repro.units import MB


def homogeneous(n, seed=0):
    return make_platform(n, ConstantLoadModel(0), seed=seed,
                         speed_range=(100e6, 100e6 + 1e-6))


def test_quiescent_makespans_agree():
    """No load, no swaps: both levels reduce to startup + N iterations."""
    app = ApplicationSpec(n_processes=2, iterations=8,
                          flops_per_iteration=2e9, state_bytes=1 * MB)
    level1 = SwapStrategy(greedy_policy()).run(homogeneous(4), app)

    runtime = SwapRuntime(homogeneous(4), n_active=2,
                          policy=greedy_policy(), chunk_flops=1e9)
    level2 = runtime.run_iterative(iterations=8, state_bytes=1 * MB)

    assert level1.swap_count == level2.swap_count == 0
    # The DES job launches one extra rank (the manager): 0.75 s more.
    assert level2.makespan == pytest.approx(level1.makespan + 0.75, rel=0.02)


def test_persistent_load_same_escape_decision():
    """One active host degrades permanently: both levels swap off it and
    end within a few percent of each other."""

    def build():
        platform = homogeneous(4)
        return platform

    app = ApplicationSpec(n_processes=1, iterations=10,
                          flops_per_iteration=1e9, state_bytes=1 * MB)

    platform1 = build()
    probe1 = SwapStrategy(greedy_policy())
    victim = 0  # equal speeds: scheduler picks host 0
    platform1.hosts[victim].trace = LoadTrace([0.0, 15.0, 1e12], [0, 3],
                                              beyond_horizon="hold")
    level1 = probe1.run(platform1, app)

    platform2 = build()
    platform2.hosts[victim].trace = LoadTrace([0.0, 15.0, 1e12], [0, 3],
                                              beyond_horizon="hold")
    runtime = SwapRuntime(platform2, n_active=1, policy=greedy_policy(),
                          chunk_flops=1e9)
    level2 = runtime.run_iterative(iterations=10, state_bytes=1 * MB)

    assert level1.swap_count >= 1
    assert level2.swap_count >= 1
    assert victim not in level1.final_active
    assert victim not in level2.manager.final_active
    assert level2.makespan == pytest.approx(level1.makespan, rel=0.10)


def test_frozen_policy_matches_nothing_baseline():
    """A policy that cannot pass its gates turns the DES runtime into the
    NOTHING strategy (modulo over-allocation startup)."""
    app = ApplicationSpec(n_processes=2, iterations=6,
                          flops_per_iteration=2e9, state_bytes=1 * MB)
    nothing = NothingStrategy().run(homogeneous(5), app)

    frozen = safe_policy().with_overrides(payback_threshold=1e-9)
    runtime = SwapRuntime(homogeneous(5), n_active=2, policy=frozen,
                          chunk_flops=1e9)
    des = runtime.run_iterative(iterations=6, state_bytes=1 * MB)

    extra_startup = (5 + 1 - 2) * 0.75  # spares + manager vs N processes
    assert des.makespan == pytest.approx(nothing.makespan + extra_startup,
                                         rel=0.02)


def test_paper_rule_of_thumb_swap_time_vs_iteration_time():
    """Section 7.1: "As a general rule, for SWAP to be beneficial the
    swap time should be shorter than the application iteration time."

    The particle-dynamics preset has ~0.3 s iterations but a 16 MB image
    (~2.7 s on the wire): swapping must not help it.  The coarse paper
    app (60 s iterations, 1 MB image) must benefit on the same platform.
    """
    from repro.load.onoff import OnOffLoadModel

    # The rule presupposes a *changing* environment (with permanent load
    # even an expensive swap amortizes: "we cannot hope to realize the
    # increased performance benefit forever" is the whole point of the
    # payback metric).  Each app gets churn on its own iteration scale.
    fine = particle_dynamics_application(n_processes=4, iterations=600)
    fine_platform = make_platform(
        8, OnOffLoadModel(p=0.5, q=0.5, step=1.0), seed=3,
        speed_range=(250e6, 350e6))
    # swap time 2.7 s (16 MB) vs iteration ~0.4 s and ~2 s load dwell:
    # by the time the image lands, the environment has moved on.
    swap_time = fine_platform.link.transfer_time(fine.state_bytes)
    assert swap_time > fine.chunk_flops / 300e6
    nothing = NothingStrategy().run(fine_platform, fine)
    swap = SwapStrategy(greedy_policy()).run(fine_platform, fine)
    assert swap.makespan / nothing.makespan > 0.98

    coarse = paper_application(n_processes=4, iterations=30)
    coarse_platform = make_platform(
        8, OnOffLoadModel(p=0.02, q=0.05, step=10.0), seed=3,
        speed_range=(250e6, 350e6))
    # swap time 0.17 s (1 MB) vs ~60 s iterations and ~200 s dwells.
    swap_time = coarse_platform.link.transfer_time(coarse.state_bytes)
    assert swap_time < coarse.chunk_flops / 300e6
    nothing = NothingStrategy().run(coarse_platform, coarse)
    swap = SwapStrategy(greedy_policy()).run(coarse_platform, coarse)
    assert swap.makespan / nothing.makespan < 0.95
