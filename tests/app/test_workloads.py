"""Tests for workload generators against the paper's stated ranges."""

import numpy as np
import pytest

from repro.app.workloads import (
    paper_application,
    random_application,
    scaled_iteration_minutes,
)
from repro.errors import StrategyError
from repro.units import GB, KB, MINUTE


def test_scaled_iteration_minutes():
    # 2-minute iterations on a 300 MFLOP/s host for each of 4 processes.
    flops = scaled_iteration_minutes(2.0, 4)
    assert flops / 4 / 300e6 == pytest.approx(2 * MINUTE)


def test_scaled_iteration_validation():
    with pytest.raises(StrategyError):
        scaled_iteration_minutes(0.0, 4)
    with pytest.raises(StrategyError):
        scaled_iteration_minutes(1.0, 4, reference_speed=0.0)


def test_paper_application_defaults():
    app = paper_application()
    assert app.n_processes == 4
    assert app.state_bytes == pytest.approx(1e6)
    # ~1 minute per iteration on a mid-range host.
    assert app.chunk_flops / 300e6 == pytest.approx(60.0)


def test_random_application_within_paper_ranges():
    rng = np.random.default_rng(0)
    for _ in range(50):
        app = random_application(rng)
        minutes = app.chunk_flops / 300e6 / MINUTE
        assert 1.0 <= minutes <= 5.0
        assert 1 * KB <= app.bytes_per_process <= 1 * GB
        assert 1 * KB <= app.state_bytes <= 1 * GB


def test_random_application_deterministic_per_stream():
    a = random_application(np.random.default_rng(5))
    b = random_application(np.random.default_rng(5))
    assert a == b


def test_particle_dynamics_preset():
    from repro.app.workloads import particle_dynamics_application
    from repro.units import MB

    app = particle_dynamics_application(n_processes=4)
    # 250k particles x 64 B = 16 MB of state per process.
    assert app.state_bytes == pytest.approx(16 * MB)
    # Boundary exchange is a small fraction of the state.
    assert app.bytes_per_process < 0.1 * app.state_bytes
    # A chunk is ~0.4 s on a mid-range host: a fine-grained iterative code.
    assert app.chunk_flops / 300e6 < 5.0
    with pytest.raises(StrategyError):
        particle_dynamics_application(particles_per_process=0)
