"""Tests for progress recording (the Fig. 1 machinery)."""

import pytest

from repro.app.progress import ProgressRecorder
from repro.errors import StrategyError


def test_curve_accumulates():
    rec = ProgressRecorder()
    rec.record(0.0, 0, "startup")
    rec.record(10.0, 1, "iteration")
    rec.record(20.0, 2, "iteration")
    times, iters = rec.curve()
    assert times == [0.0, 10.0, 20.0]
    assert iters == [0, 1, 2]


def test_time_must_be_monotone():
    rec = ProgressRecorder()
    rec.record(10.0, 1, "iteration")
    with pytest.raises(StrategyError):
        rec.record(5.0, 2, "iteration")


def test_pauses_found():
    rec = ProgressRecorder()
    rec.record(10.0, 1, "iteration")
    rec.record(15.0, 1, "swap")
    rec.record(25.0, 2, "iteration")
    rec.record(30.0, 2, "checkpoint")
    assert rec.pauses() == [(10.0, 15.0, "swap"), (25.0, 30.0, "checkpoint")]


def test_zero_length_pause_ignored():
    rec = ProgressRecorder()
    rec.record(10.0, 1, "iteration")
    rec.record(10.0, 1, "swap")
    assert rec.pauses() == []


def test_time_of_iteration():
    rec = ProgressRecorder()
    rec.record(10.0, 1, "iteration")
    rec.record(20.0, 2, "iteration")
    assert rec.time_of_iteration(2) == 20.0
    assert rec.time_of_iteration(3) is None


def test_payback_point_detects_catch_up():
    """A run that pauses for a swap, then speeds up, catches the baseline
    at the payback point -- the Fig. 1 semantics."""
    baseline = ProgressRecorder()
    swapped = ProgressRecorder()
    # Baseline: one iteration per 10 s.
    for k in range(1, 11):
        baseline.record(10.0 * k, k, "iteration")
    # Swapped: one normal iteration, 10 s pause, then 5 s iterations.
    swapped.record(10.0, 1, "iteration")
    swapped.record(20.0, 1, "swap")
    t = 20.0
    for k in range(2, 11):
        t += 5.0
        swapped.record(t, k, "iteration")
    catch = swapped.payback_point(baseline)
    # Progress first matches at iteration 3: both runs reach it at t=30.
    assert catch == pytest.approx(30.0)


def test_payback_point_none_when_never_caught():
    baseline = ProgressRecorder()
    slow = ProgressRecorder()
    for k in range(1, 5):
        baseline.record(10.0 * k, k, "iteration")
        slow.record(20.0 * k, k, "iteration")
    assert slow.payback_point(baseline) is None
