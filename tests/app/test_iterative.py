"""Tests for the application specification."""

import pytest

from repro.app.iterative import ApplicationSpec
from repro.errors import StrategyError


def spec(**overrides):
    defaults = dict(n_processes=4, iterations=10, flops_per_iteration=4e9)
    defaults.update(overrides)
    return ApplicationSpec(**defaults)


def test_validation():
    with pytest.raises(StrategyError):
        spec(n_processes=0)
    with pytest.raises(StrategyError):
        spec(iterations=0)
    with pytest.raises(StrategyError):
        spec(flops_per_iteration=0.0)
    with pytest.raises(StrategyError):
        spec(bytes_per_process=-1.0)
    with pytest.raises(StrategyError):
        spec(state_bytes=-1.0)


def test_chunk_flops_equal_partition():
    assert spec().chunk_flops == pytest.approx(1e9)


def test_equal_chunks_mapping():
    chunks = spec().equal_chunks([7, 2, 9, 4])
    assert set(chunks) == {7, 2, 9, 4}
    assert all(v == pytest.approx(1e9) for v in chunks.values())


def test_equal_chunks_wrong_count_rejected():
    with pytest.raises(StrategyError):
        spec().equal_chunks([1, 2])


def test_proportional_chunks_balance_iteration_times():
    rates = {0: 100.0, 1: 300.0}
    app = spec(n_processes=2)
    chunks = app.proportional_chunks(rates)
    assert sum(chunks.values()) == pytest.approx(app.flops_per_iteration)
    assert chunks[0] / rates[0] == pytest.approx(chunks[1] / rates[1])


def test_proportional_chunks_validation():
    with pytest.raises(StrategyError):
        spec(n_processes=2).proportional_chunks({0: 1.0})
    with pytest.raises(StrategyError):
        spec(n_processes=1).proportional_chunks({0: 0.0})


def test_unloaded_iteration_time():
    app = spec(n_processes=2, flops_per_iteration=2e9)
    assert app.unloaded_iteration_time([1e9, 0.5e9]) == pytest.approx(2.0)
    with pytest.raises(StrategyError):
        app.unloaded_iteration_time([1e9])


def test_describe_mentions_shape():
    text = spec(name="lattice").describe()
    assert "lattice" in text and "N=4" in text
