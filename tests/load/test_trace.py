"""Tests for LoadTrace: validation, queries, exact integration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LoadModelError
from repro.load.base import ConstantLoadModel, LoadTrace


def make_trace(segments, **kwargs):
    """Build a trace from (duration, value) pairs."""
    times = [0.0]
    values = []
    for duration, value in segments:
        times.append(times[-1] + duration)
        values.append(value)
    return LoadTrace(times, values, **kwargs)


# -- validation ---------------------------------------------------------------

def test_must_start_at_zero():
    with pytest.raises(LoadModelError):
        LoadTrace([1.0, 2.0], [0])


def test_breakpoints_strictly_increasing():
    with pytest.raises(LoadModelError):
        LoadTrace([0.0, 1.0, 1.0], [0, 1])


def test_negative_counts_rejected():
    with pytest.raises(LoadModelError):
        LoadTrace([0.0, 1.0], [-1])


def test_length_mismatch_rejected():
    with pytest.raises(LoadModelError):
        LoadTrace([0.0, 1.0, 2.0], [0])


def test_unknown_beyond_horizon_mode_rejected():
    with pytest.raises(LoadModelError):
        LoadTrace([0.0, 1.0], [0], beyond_horizon="explode")


# -- queries -------------------------------------------------------------------

def test_value_at_segment_boundaries():
    trace = make_trace([(10.0, 0), (10.0, 1), (10.0, 2)])
    assert trace.value_at(0.0) == 0
    assert trace.value_at(9.999) == 0
    assert trace.value_at(10.0) == 1
    assert trace.value_at(20.0) == 2


def test_availability_is_fair_share():
    trace = make_trace([(10.0, 0), (10.0, 3)])
    assert trace.availability_at(5.0) == 1.0
    assert trace.availability_at(15.0) == pytest.approx(0.25)


def test_negative_time_rejected():
    trace = make_trace([(10.0, 0)])
    with pytest.raises(LoadModelError):
        trace.value_at(-1.0)


def test_hold_mode_extends_final_value():
    trace = make_trace([(10.0, 2)], beyond_horizon="hold")
    assert trace.value_at(1000.0) == 2


def test_error_mode_raises_past_horizon():
    trace = make_trace([(10.0, 2)], beyond_horizon="error")
    with pytest.raises(LoadModelError):
        trace.value_at(11.0)


def test_integrate_availability_hand_computed():
    # 10 s unloaded (10 units) + 10 s with n=1 (5 units)
    trace = make_trace([(10.0, 0), (10.0, 1)])
    assert trace.integrate_availability(0.0, 20.0) == pytest.approx(15.0)
    assert trace.integrate_availability(5.0, 15.0) == pytest.approx(7.5)


def test_mean_availability_point_query():
    trace = make_trace([(10.0, 1)])
    assert trace.mean_availability(3.0, 3.0) == pytest.approx(0.5)


def test_empty_integration_window_rejected():
    trace = make_trace([(10.0, 0)])
    with pytest.raises(LoadModelError):
        trace.integrate_availability(5.0, 4.0)


def test_integrate_availability_negative_start_rejected():
    # Regression: a negative t0 used to be silently accepted (bisect
    # wraps to the first segment), integrating over time that does not
    # exist in the trace.
    trace = make_trace([(10.0, 0), (10.0, 1)])
    with pytest.raises(LoadModelError):
        trace.integrate_availability(-5.0, 5.0)
    with pytest.raises(LoadModelError):
        trace.mean_availability(-5.0, 5.0)


# -- advance_work ----------------------------------------------------------------

def test_advance_work_unloaded_is_identity():
    trace = make_trace([(100.0, 0)])
    assert trace.advance_work(0.0, 30.0) == pytest.approx(30.0)


def test_advance_work_loaded_is_scaled():
    trace = make_trace([(100.0, 1)])
    assert trace.advance_work(0.0, 30.0) == pytest.approx(60.0)


def test_advance_work_across_segments():
    # 10 s at avail 1.0 covers 10 units; the other 10 at avail 0.5 take 20 s
    trace = make_trace([(10.0, 0), (100.0, 1)])
    assert trace.advance_work(0.0, 20.0) == pytest.approx(30.0)


def test_advance_work_zero_demand():
    trace = make_trace([(10.0, 0)])
    assert trace.advance_work(4.0, 0.0) == 4.0


def test_advance_work_negative_demand_rejected():
    trace = make_trace([(10.0, 0)])
    with pytest.raises(LoadModelError):
        trace.advance_work(0.0, -1.0)


def test_advance_work_negative_start_rejected():
    trace = make_trace([(10.0, 0)])
    with pytest.raises(LoadModelError):
        trace.advance_work(-1.0, 5.0)


def test_advance_work_extends_lazily_past_horizon():
    trace = make_trace([(1.0, 1)], beyond_horizon="hold")
    finish = trace.advance_work(0.0, 10.0)
    assert finish == pytest.approx(20.0)  # all at availability 0.5


def test_append_segment_merges_equal_values():
    trace = make_trace([(10.0, 1)])
    trace.append_segment(20.0, 1)
    assert trace.n_segments == 1
    trace.append_segment(30.0, 2)
    assert trace.n_segments == 2


def test_append_segment_must_extend():
    trace = make_trace([(10.0, 1)])
    with pytest.raises(LoadModelError):
        trace.append_segment(5.0, 0)


def test_constant_model_builds_extensible_trace():
    trace = ConstantLoadModel(2).build(None, horizon=10.0)
    assert trace.value_at(1e6) == 2
    assert trace.mean_availability(0.0, 100.0) == pytest.approx(1 / 3)


# -- property-based invariants ------------------------------------------------

segment_lists = st.lists(
    st.tuples(st.floats(min_value=0.1, max_value=100.0),
              st.integers(min_value=0, max_value=5)),
    min_size=1, max_size=12)


@given(segment_lists, st.floats(min_value=0.0, max_value=0.99))
@settings(max_examples=80)
def test_integral_bounded_by_window(segments, frac):
    trace = make_trace(segments)
    t1 = trace.horizon * max(frac, 0.01)
    integral = trace.integrate_availability(0.0, t1)
    max_load = max(v for _d, v in segments)
    assert 0.0 <= integral <= t1 + 1e-9
    assert integral >= t1 / (1.0 + max_load) - 1e-9


@given(segment_lists, st.floats(min_value=0.1, max_value=50.0))
@settings(max_examples=80)
def test_advance_work_inverts_integration(segments, demand):
    trace = make_trace(segments, beyond_horizon="hold")
    finish = trace.advance_work(0.0, demand)
    assert trace.integrate_availability(0.0, finish) == pytest.approx(
        demand, rel=1e-9, abs=1e-9)


@given(segment_lists, st.floats(min_value=0.1, max_value=20.0),
       st.floats(min_value=0.1, max_value=20.0))
@settings(max_examples=80)
def test_advance_work_is_additive(segments, first, second):
    trace = make_trace(segments, beyond_horizon="hold")
    direct = trace.advance_work(0.0, first + second)
    mid = trace.advance_work(0.0, first)
    chained = trace.advance_work(mid, second)
    assert chained == pytest.approx(direct, rel=1e-9, abs=1e-6)


@given(segment_lists, st.floats(min_value=0.1, max_value=20.0))
@settings(max_examples=80)
def test_advance_work_strictly_moves_forward(segments, demand):
    trace = make_trace(segments, beyond_horizon="hold")
    assert trace.advance_work(0.0, demand) >= demand - 1e-12
