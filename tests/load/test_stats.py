"""Tests for trace statistics on hand-built traces."""

import pytest

from repro.errors import LoadModelError
from repro.load.base import LoadTrace
from repro.load.stats import availability_series, load_series, trace_stats


@pytest.fixture
def alternating():
    # 0..10 idle, 10..30 n=1, 30..40 idle, 40..50 n=2
    return LoadTrace([0.0, 10.0, 30.0, 40.0, 50.0], [0, 1, 0, 2])


def test_mean_load(alternating):
    stats = trace_stats(alternating, 0.0, 50.0)
    assert stats.mean_load == pytest.approx((20 * 1 + 10 * 2) / 50.0)


def test_mean_availability(alternating):
    stats = trace_stats(alternating, 0.0, 50.0)
    expected = (10 * 1.0 + 20 * 0.5 + 10 * 1.0 + 10 * (1 / 3)) / 50.0
    assert stats.mean_availability == pytest.approx(expected)


def test_busy_fraction_and_max(alternating):
    stats = trace_stats(alternating, 0.0, 50.0)
    assert stats.busy_fraction == pytest.approx(30.0 / 50.0)
    assert stats.max_load == 2


def test_transition_rate(alternating):
    stats = trace_stats(alternating, 0.0, 50.0)
    assert stats.transition_rate == pytest.approx(3 / 50.0)


def test_mean_busy_interval(alternating):
    stats = trace_stats(alternating, 0.0, 50.0)
    assert stats.mean_busy_interval == pytest.approx((20.0 + 10.0) / 2)


def test_subwindow_statistics(alternating):
    stats = trace_stats(alternating, 10.0, 30.0)
    assert stats.busy_fraction == pytest.approx(1.0)
    assert stats.mean_load == pytest.approx(1.0)
    assert stats.transition_rate == 0.0


def test_busy_interval_open_at_window_end():
    trace = LoadTrace([0.0, 10.0, 100.0], [0, 1])
    stats = trace_stats(trace, 0.0, 50.0)
    assert stats.mean_busy_interval == pytest.approx(40.0)


def test_never_busy_interval_is_zero():
    trace = LoadTrace([0.0, 100.0], [0])
    assert trace_stats(trace, 0.0, 100.0).mean_busy_interval == 0.0


def test_empty_window_rejected(alternating):
    with pytest.raises(LoadModelError):
        trace_stats(alternating, 10.0, 10.0)


def test_availability_series_shape(alternating):
    times, values = availability_series(alternating, 0.0, 50.0, n_points=11)
    assert len(times) == len(values) == 11
    assert values[0] == pytest.approx(1.0)
    assert min(values) == pytest.approx(1 / 3)


def test_load_series_values(alternating):
    times, values = load_series(alternating, 0.0, 50.0, n_points=51)
    assert set(values) <= {0, 1, 2}


def test_series_need_two_points(alternating):
    with pytest.raises(LoadModelError):
        availability_series(alternating, 0.0, 50.0, n_points=1)
    with pytest.raises(LoadModelError):
        load_series(alternating, 0.0, 50.0, n_points=1)
