"""Kernel vs. scalar-reference cross-checks (the float-identity contract).

The compiled :class:`~repro.load.kernels.TraceKernel` path must be
**bit-for-bit** identical to the pure-Python scalar reference kept in the
same module -- not approximately equal.  Every comparison here is ``==``
on raw floats, over randomized lazily-extended traces, including
``beyond_horizon="hold"`` growth and extender appends that merge into the
final segment (the edge cases around ``_ensure``).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LoadModelError
from repro.load.base import ConstantExtender, LoadTrace
from repro.load.kernels import (
    HostBatch,
    advance_work_many,
    advance_work_scalar,
    compile_trace,
    extend_kernel,
    integrate_availability_many,
    integrate_availability_scalar,
    value_at_scalar,
)
from repro.platform.host import Host, HostSpec


def make_trace(segments, **kwargs):
    """Build a trace from (duration, value) pairs."""
    times = [0.0]
    values = []
    for duration, value in segments:
        times.append(times[-1] + duration)
        values.append(value)
    return LoadTrace(times, values, **kwargs)


class CyclingExtender:
    """Deterministic extender cycling through a value pattern.

    Patterns that repeat the trace's final value exercise the
    equal-value *merge* path of ``append_segment`` (the final breakpoint
    moves instead of a segment being added), which is the subtle case
    for incremental kernel extension.
    """

    def __init__(self, pattern, step=3.0):
        self.pattern = list(pattern)
        self.step = step
        self._i = 0

    def __call__(self, trace, new_horizon):
        while trace.horizon < new_horizon:
            trace.append_segment(trace.horizon + self.step,
                                 self.pattern[self._i % len(self.pattern)])
            self._i += 1


segment_lists = st.lists(
    st.tuples(st.floats(min_value=0.1, max_value=50.0),
              st.integers(min_value=0, max_value=4)),
    min_size=1, max_size=10)

patterns = st.lists(st.integers(min_value=0, max_value=3),
                    min_size=1, max_size=4)


def twin_traces(segments, extension):
    """Two identically-configured traces (kernel path vs. scalar ref).

    Both must materialize the same segments under lazy extension, so
    the scalar reference runs on its own twin rather than sharing state.
    """
    if extension == "hold":
        kwargs_a = kwargs_b = {"beyond_horizon": "hold"}
    else:
        kwargs_a = {"extender": CyclingExtender(extension)}
        kwargs_b = {"extender": CyclingExtender(extension)}
    return make_trace(segments, **kwargs_a), make_trace(segments, **kwargs_b)


extensions = st.one_of(st.just("hold"), patterns)


# -- bit-identity of the query operations ------------------------------------

@given(segment_lists, extensions,
       st.floats(min_value=0.0, max_value=400.0),
       st.floats(min_value=0.0, max_value=400.0))
@settings(max_examples=150, deadline=None)
def test_integrate_availability_matches_scalar_bitwise(segments, extension,
                                                       a, b):
    t0, t1 = min(a, b), max(a, b)
    fast, ref = twin_traces(segments, extension)
    expected = integrate_availability_scalar(ref, t0, t1)
    got = fast.integrate_availability(t0, t1)
    assert got == expected  # exact: no approx
    # Both paths must also materialize identical trace states.
    assert fast._times == ref._times
    assert fast._values == ref._values


@given(segment_lists, extensions,
       st.floats(min_value=0.0, max_value=100.0),
       st.floats(min_value=0.0, max_value=300.0))
@settings(max_examples=150, deadline=None)
def test_advance_work_matches_scalar_bitwise(segments, extension, t0, demand):
    fast, ref = twin_traces(segments, extension)
    expected = advance_work_scalar(ref, t0, demand)
    got = fast.advance_work(t0, demand)
    assert got == expected
    assert fast._times == ref._times
    assert fast._values == ref._values


@given(segment_lists, extensions, st.floats(min_value=0.0, max_value=500.0))
@settings(max_examples=100, deadline=None)
def test_value_at_matches_scalar(segments, extension, t):
    fast, ref = twin_traces(segments, extension)
    assert fast.value_at(t) == value_at_scalar(ref, t)


@given(segment_lists, extensions,
       st.lists(st.tuples(st.floats(min_value=0.0, max_value=80.0),
                          st.floats(min_value=0.0, max_value=40.0)),
                min_size=1, max_size=8))
@settings(max_examples=100, deadline=None)
def test_interleaved_query_sequence_matches_scalar(segments, extension,
                                                   queries):
    """Mixed integrate/advance sequences keep the twin states in lockstep
    (each query may trigger lazy extension visible to the next one)."""
    fast, ref = twin_traces(segments, extension)
    for i, (a, b) in enumerate(queries):
        if i % 2 == 0:
            t0, t1 = min(a, a + b), max(a, a + b)
            assert (fast.integrate_availability(t0, t1)
                    == integrate_availability_scalar(ref, t0, t1))
        else:
            assert fast.advance_work(a, b) == advance_work_scalar(ref, a, b)
        assert fast._times == ref._times


# -- incremental kernel extension --------------------------------------------

@given(segment_lists,
       st.lists(st.tuples(st.floats(min_value=0.1, max_value=20.0),
                          st.integers(min_value=0, max_value=3)),
                min_size=1, max_size=6))
@settings(max_examples=100, deadline=None)
def test_extend_kernel_bit_identical_to_full_recompile(segments, growth):
    """Tail extension resumes the prefix sum exactly where a full
    recompile would arrive -- including equal-value merges that *move*
    the old final breakpoint instead of appending."""
    trace = make_trace(segments, beyond_horizon="hold")
    old = trace.kernel()
    for duration, value in growth:
        trace.append_segment(trace.horizon + duration, value)
    incremental = extend_kernel(old, trace._epoch, trace._times,
                                trace._values)
    full = compile_trace(trace._epoch, trace._times, trace._values)
    assert incremental.times_list == full.times_list
    assert incremental.den_list == full.den_list
    assert incremental.cum_list == full.cum_list
    # The trace's own cached-kernel path must take the incremental route
    # and agree too.
    cached = trace.kernel()
    assert cached.cum_list == full.cum_list


def test_long_trace_numpy_compile_matches_list_compile():
    """Traces past the 256-segment threshold compile through numpy;
    np.cumsum must reproduce the sequential fold bit-for-bit."""
    times = [0.0]
    values = []
    for i in range(600):
        times.append(times[-1] + 0.1 + (i % 7) * 0.31)
        values.append(i % 5)
    long_kernel = compile_trace(0, times, values)
    acc = 0.0
    expected = [0.0]
    for i, v in enumerate(values):
        acc += (times[i + 1] - times[i]) / (1.0 + v)
        expected.append(acc)
    assert long_kernel.cum_list == expected


# -- batch entry points ------------------------------------------------------

@given(st.lists(segment_lists, min_size=1, max_size=4),
       st.floats(min_value=0.0, max_value=60.0),
       st.floats(min_value=0.0, max_value=60.0))
@settings(max_examples=60, deadline=None)
def test_batch_entry_points_match_per_trace_calls(trace_segments, a, span):
    t0, t1 = a, a + span
    fast = [make_trace(segs, beyond_horizon="hold")
            for segs in trace_segments]
    ref = [make_trace(segs, beyond_horizon="hold")
           for segs in trace_segments]
    integrals = integrate_availability_many(fast, t0, t1)
    for i, trace in enumerate(ref):
        assert integrals[i] == integrate_availability_scalar(trace, t0, t1)
    demands = [1.0 + 3.0 * i for i in range(len(fast))]
    finishes = advance_work_many(fast, t0, demands)
    for i, trace in enumerate(ref):
        assert finishes[i] == advance_work_scalar(trace, t0, demands[i])


@given(st.lists(segment_lists, min_size=1, max_size=3),
       st.lists(st.tuples(st.floats(min_value=0.0, max_value=50.0),
                          st.floats(min_value=0.0, max_value=20.0)),
                min_size=1, max_size=6))
@settings(max_examples=60, deadline=None)
def test_host_batch_matches_host_methods(trace_segments, queries):
    """HostBatch's cursor-hinted loops == Host.effective_rate /
    compute_finish, over arbitrary (non-monotonic) query sequences."""
    def build(segs_list):
        hosts = []
        for i, segs in enumerate(segs_list):
            spec = HostSpec(name=f"h{i}", speed=1e6 * (i + 1))
            host = Host(spec, rng=None, index=i)
            host.trace = make_trace(segs, beyond_horizon="hold")
            hosts.append(host)
        return hosts

    fast_hosts = build(trace_segments)
    ref_hosts = build(trace_segments)
    batch = HostBatch(fast_hosts)
    for qi, (t, extra) in enumerate(queries):
        window = extra if qi % 2 == 0 else 0.0
        rates = batch.rates_map(t, window)
        for i, host in enumerate(ref_hosts):
            assert rates[i] == host.effective_rate(t, window)
        chunks = {i: 1e5 * (qi + 1) for i in range(len(ref_hosts))}
        end = batch.compute_end(chunks, t)
        expected = max(host.compute_finish(t, chunks[i])
                       for i, host in enumerate(ref_hosts))
        assert end == expected


def test_host_batch_survives_external_trace_mutation():
    """The mutation-counter coherence check: a trace mutated *outside*
    the batch (another strategy's lazy extension) must invalidate the
    cached kernel table, not serve stale rates."""
    spec = HostSpec(name="h0", speed=1e6)
    host = Host(spec, rng=None)
    host.trace = make_trace([(10.0, 0)], beyond_horizon="hold")
    batch = HostBatch([host])
    assert batch.rates_map(5.0)[0] == 1e6
    host.trace.append_segment(20.0, 3)
    assert batch.rates_map(12.0)[0] == host.effective_rate(12.0)
    assert batch.rates_map(12.0)[0] == 0.25e6


# -- failed-extension regression (LoadModelError, not a silent hold) ---------

class BrokenExtender:
    """Claims to extend but appends nothing (a buggy load model)."""

    def __call__(self, trace, new_horizon):
        pass


def test_value_at_raises_on_failed_extension():
    trace = make_trace([(10.0, 1)], extender=BrokenExtender())
    with pytest.raises(LoadModelError):
        trace.value_at(50.0)


def test_integrate_availability_raises_on_failed_extension():
    trace = make_trace([(10.0, 1)], extender=BrokenExtender())
    with pytest.raises(LoadModelError):
        trace.integrate_availability(0.0, 50.0)


def test_advance_work_raises_on_failed_extension():
    trace = make_trace([(10.0, 1)], extender=BrokenExtender())
    with pytest.raises(LoadModelError):
        trace.advance_work(50.0, 1.0)


def test_kernel_index_of_out_of_range_raises():
    kernel = make_trace([(10.0, 1)]).kernel()
    with pytest.raises(LoadModelError):
        kernel.index_of(10.0)
    with pytest.raises(LoadModelError):
        kernel.index_of(-0.5)


def test_constant_extender_merge_keeps_one_segment():
    trace = make_trace([(10.0, 2)], extender=ConstantExtender(2))
    trace.integrate_availability(0.0, 1000.0)
    assert trace.n_segments == 1
    kernel = trace.kernel()
    assert kernel.cum_list[-1] == trace._times[-1] / 3.0
