"""Tests for the ON/OFF Markov load model against its analytics."""

import numpy as np
import pytest

from repro.errors import LoadModelError
from repro.load.onoff import AggregatedOnOffLoadModel, OnOffLoadModel
from repro.load.stats import trace_stats


def build(p, q, seed=0, horizon=50_000.0, **kwargs):
    model = OnOffLoadModel(p=p, q=q, **kwargs)
    return model.build(np.random.default_rng(seed), horizon), model


def test_probability_validation():
    with pytest.raises(LoadModelError):
        OnOffLoadModel(p=1.5, q=0.1)
    with pytest.raises(LoadModelError):
        OnOffLoadModel(p=0.1, q=-0.1)
    with pytest.raises(LoadModelError):
        OnOffLoadModel(p=0.1, q=0.1, step=0.0)
    with pytest.raises(LoadModelError):
        OnOffLoadModel(p=0.1, q=0.1, n_when_on=0)
    with pytest.raises(LoadModelError):
        OnOffLoadModel(p=0.1, q=0.1, start="confused")


def test_stationary_probability_formula():
    assert OnOffLoadModel(0.3, 0.08).stationary_on_probability == pytest.approx(
        0.3 / 0.38)
    assert OnOffLoadModel(0.0, 0.0).stationary_on_probability == 0.0


def test_values_are_binary():
    trace, _ = build(0.3, 0.08)
    assert {v for _s, _e, v in trace.segments()} <= {0, 1}


def test_busy_fraction_matches_stationary(seeded_averaging_tolerance=0.03):
    # Average over several seeds: the ON fraction converges to p/(p+q).
    p, q = 0.3, 0.08
    fractions = []
    for seed in range(8):
        trace, model = build(p, q, seed=seed)
        fractions.append(trace_stats(trace, 0, 50_000.0).busy_fraction)
    assert np.mean(fractions) == pytest.approx(
        p / (p + q), abs=seeded_averaging_tolerance)


def test_mean_on_dwell_matches_geometric():
    # Mean ON dwell = step / q.
    q = 0.05
    dwells = []
    for seed in range(8):
        trace, _ = build(0.5, q, seed=seed)
        stats = trace_stats(trace, 0, 50_000.0)
        dwells.append(stats.mean_busy_interval)
    assert np.mean(dwells) == pytest.approx(10.0 / q, rel=0.1)


def test_p_zero_never_loads():
    trace, _ = build(0.0, 0.5, seed=3, horizon=5_000.0)
    # Stationary start with p=0 means OFF forever.
    assert trace_stats(trace, 0, 5_000.0).busy_fraction == 0.0


def test_q_zero_sticks_on():
    model = OnOffLoadModel(p=1.0, q=0.0, start="off")
    trace = model.build(np.random.default_rng(0), 5_000.0)
    # Switches ON after one step and never leaves.
    assert trace.value_at(4_999.0) == 1
    assert trace_stats(trace, 0, 5_000.0).busy_fraction > 0.99


def test_forced_start_states():
    on = OnOffLoadModel(0.1, 0.1, start="on").build(
        np.random.default_rng(0), 100.0)
    off = OnOffLoadModel(0.1, 0.1, start="off").build(
        np.random.default_rng(0), 100.0)
    assert on.value_at(0.0) == 1
    assert off.value_at(0.0) == 0


def test_transitions_align_to_step_multiples():
    trace, model = build(0.3, 0.3, seed=5, horizon=2_000.0, step=10.0)
    for start, _end, _v in trace.segments()[1:]:
        assert start % 10.0 == pytest.approx(0.0, abs=1e-9)


def test_deterministic_given_seed():
    a, _ = build(0.25, 0.1, seed=42, horizon=3_000.0)
    b, _ = build(0.25, 0.1, seed=42, horizon=3_000.0)
    assert a.segments() == b.segments()


def test_lazy_extension_consistent_with_eager():
    """Querying far ahead must give the same trace as building far ahead."""
    lazy, _ = build(0.2, 0.1, seed=9, horizon=100.0)
    eager, _ = build(0.2, 0.1, seed=9, horizon=10_000.0)
    for t in (50.0, 500.0, 5_000.0):
        assert lazy.value_at(t) == eager.value_at(t)


def test_n_when_on_scales_value():
    model = OnOffLoadModel(1.0, 0.0, start="on", n_when_on=3)
    trace = model.build(np.random.default_rng(0), 100.0)
    assert trace.value_at(50.0) == 3


def test_aggregated_sum_of_sources():
    model = AggregatedOnOffLoadModel.homogeneous(4, p=1.0, q=0.0)
    # All four sources stick ON once they flip, so the aggregate tends to 4.
    trace = model.build(np.random.default_rng(2), 2_000.0)
    assert trace.value_at(1_900.0) == 4


def test_aggregated_needs_sources():
    with pytest.raises(LoadModelError):
        AggregatedOnOffLoadModel([])
    with pytest.raises(LoadModelError):
        AggregatedOnOffLoadModel.homogeneous(0, 0.1, 0.1)


def test_aggregated_bounded_by_source_count():
    model = AggregatedOnOffLoadModel.homogeneous(3, p=0.4, q=0.2)
    trace = model.build(np.random.default_rng(7), 5_000.0)
    stats = trace_stats(trace, 0, 5_000.0)
    assert 0 <= stats.max_load <= 3


def test_describe_mentions_parameters():
    text = OnOffLoadModel(0.3, 0.08).describe()
    assert "0.3" in text and "0.08" in text
