"""Tests for the owner-reclamation load model (extension)."""

import numpy as np
import pytest

from repro.errors import LoadModelError
from repro.load.base import ConstantLoadModel
from repro.load.onoff import OnOffLoadModel
from repro.load.owner import OwnerActivityModel
from repro.load.stats import trace_stats


def test_validation():
    with pytest.raises(LoadModelError):
        OwnerActivityModel(presence_fraction=1.0, mean_presence=60.0)
    with pytest.raises(LoadModelError):
        OwnerActivityModel(presence_fraction=-0.1, mean_presence=60.0)
    with pytest.raises(LoadModelError):
        OwnerActivityModel(presence_fraction=0.5, mean_presence=0.0)
    with pytest.raises(LoadModelError):
        OwnerActivityModel(presence_fraction=0.5, mean_presence=60.0,
                           owner_weight=0)


def test_zero_presence_reduces_to_base():
    model = OwnerActivityModel(presence_fraction=0.0, mean_presence=600.0,
                               base=ConstantLoadModel(2))
    trace = model.build(np.random.default_rng(0), 5_000.0)
    assert trace_stats(trace, 0, 5_000.0).max_load == 2


def test_presence_throttles_to_owner_weight():
    model = OwnerActivityModel(presence_fraction=0.5, mean_presence=300.0,
                               owner_weight=49)
    trace = model.build(np.random.default_rng(1), 20_000.0)
    stats = trace_stats(trace, 0, 20_000.0)
    assert stats.max_load == 49
    # While revoked, the guest gets at most 1/50 of the CPU.
    revoked_avail = 1.0 / (1.0 + 49)
    assert revoked_avail == pytest.approx(0.02)


def test_presence_fraction_converges():
    model = OwnerActivityModel(presence_fraction=0.3, mean_presence=300.0)
    fractions = []
    for seed in range(8):
        trace = model.build(np.random.default_rng(seed), 100_000.0)
        stats = trace_stats(trace, 0, 100_000.0)
        fractions.append(stats.busy_fraction)
    assert np.mean(fractions) == pytest.approx(0.3, abs=0.05)


def test_base_load_overlays_presence():
    model = OwnerActivityModel(presence_fraction=0.5, mean_presence=300.0,
                               base=ConstantLoadModel(1), owner_weight=10)
    trace = model.build(np.random.default_rng(3), 20_000.0)
    values = {v for _s, _e, v in trace.segments()}
    # Either just the base competitor (owner away) or base + owner.
    assert values <= {1, 11}
    assert 11 in values and 1 in values


def test_is_revoked_helper():
    model = OwnerActivityModel(presence_fraction=0.5, mean_presence=300.0,
                               owner_weight=20)
    trace = model.build(np.random.default_rng(5), 20_000.0)
    revoked_any = any(model.is_revoked(trace, t)
                      for t in np.linspace(0, 20_000, 200))
    free_any = any(not model.is_revoked(trace, t)
                   for t in np.linspace(0, 20_000, 200))
    assert revoked_any and free_any


def test_deterministic_given_stream():
    model = OwnerActivityModel(presence_fraction=0.4, mean_presence=200.0,
                               base=OnOffLoadModel(0.1, 0.1))
    a = model.build(np.random.default_rng(7), 5_000.0)
    b = model.build(np.random.default_rng(7), 5_000.0)
    assert a.segments() == b.segments()


def test_describe():
    text = OwnerActivityModel(0.25, 600.0).describe()
    assert "25%" in text and "600" in text
