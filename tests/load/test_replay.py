"""Tests for the trace-replay load model."""

import pytest

from repro.errors import LoadModelError
from repro.load.trace import ReplayLoadModel


def test_validation():
    with pytest.raises(LoadModelError):
        ReplayLoadModel([], [])
    with pytest.raises(LoadModelError):
        ReplayLoadModel([1.0], [0])  # must start at 0
    with pytest.raises(LoadModelError):
        ReplayLoadModel([0.0, 0.0], [0, 1])  # not increasing
    with pytest.raises(LoadModelError):
        ReplayLoadModel([0.0], [-1])
    with pytest.raises(LoadModelError):
        ReplayLoadModel([0.0, 5.0], [0, 1], duration=4.0)


def test_basic_replay():
    model = ReplayLoadModel([0.0, 10.0, 20.0], [0, 2, 1], duration=30.0,
                            cycle=False)
    trace = model.build(None, 100.0)
    assert trace.value_at(5.0) == 0
    assert trace.value_at(15.0) == 2
    assert trace.value_at(25.0) == 1
    assert trace.value_at(99.0) == 1  # hold-last


def test_cyclic_replay_repeats():
    model = ReplayLoadModel([0.0, 10.0], [0, 3], duration=20.0, cycle=True)
    trace = model.build(None, 200.0)
    for cycle_start in (0.0, 20.0, 40.0, 140.0):
        assert trace.value_at(cycle_start + 5.0) == 0
        assert trace.value_at(cycle_start + 15.0) == 3


def test_cyclic_integral_periodicity():
    model = ReplayLoadModel([0.0, 10.0], [0, 1], duration=20.0, cycle=True)
    trace = model.build(None, 500.0)
    first = trace.integrate_availability(0.0, 20.0)
    later = trace.integrate_availability(100.0, 120.0)
    assert first == pytest.approx(later)
    assert first == pytest.approx(15.0)  # 10 free + 10 at half


def test_from_availability_roundtrip():
    model = ReplayLoadModel.from_availability(
        [0.0, 10.0, 20.0], [1.0, 0.5, 0.25], duration=30.0, cycle=False)
    assert model.values == [0, 1, 3]


def test_from_availability_validation():
    with pytest.raises(LoadModelError):
        ReplayLoadModel.from_availability([0.0], [0.0])
    with pytest.raises(LoadModelError):
        ReplayLoadModel.from_availability([0.0], [1.5])


def test_default_duration_extends_past_last_sample():
    model = ReplayLoadModel([0.0, 10.0], [1, 2])
    assert model.duration > 10.0


def test_describe_mentions_mode():
    assert "cyclic" in ReplayLoadModel([0.0], [1], duration=5.0).describe()
    assert "hold" in ReplayLoadModel([0.0], [1], duration=5.0,
                                     cycle=False).describe()


# -- diurnal preset --------------------------------------------------------------

def test_diurnal_busy_fraction():
    from repro.load.stats import trace_stats

    model = ReplayLoadModel.diurnal()
    trace = model.build(None, 3 * 86400.0)
    stats = trace_stats(trace, 0.0, 3 * 86400.0)
    # 8 working hours minus a 1-hour lunch = 7/24 of the day busy.
    assert stats.busy_fraction == pytest.approx(7.0 / 24.0, abs=1e-6)
    assert stats.max_load == 1


def test_diurnal_schedule_spot_checks():
    model = ReplayLoadModel.diurnal()
    trace = model.build(None, 2 * 86400.0)
    hour = 3600.0
    day = 86400.0
    assert trace.value_at(day + 10 * hour) == 1   # mid-morning
    assert trace.value_at(day + 13 * hour) == 0   # lunch
    assert trace.value_at(day + 15 * hour) == 1   # afternoon
    assert trace.value_at(day + 20 * hour) == 0   # evening
    assert trace.value_at(day + 3 * hour) == 0    # night


def test_diurnal_phase_wraps_midnight():
    from repro.load.stats import trace_stats

    model = ReplayLoadModel.diurnal(phase_hours=10.0)  # night-shift owner
    trace = model.build(None, 3 * 86400.0)
    stats = trace_stats(trace, 0.0, 3 * 86400.0)
    assert stats.busy_fraction == pytest.approx(7.0 / 24.0, abs=1e-6)
    hour = 3600.0
    # Work starts at 19:00; at 01:00 the (wrapped) afternoon block runs.
    assert trace.value_at(86400.0 + 20 * hour) == 1
    assert trace.value_at(86400.0 + 1 * hour) == 1
    assert trace.value_at(86400.0 + 10 * hour) == 0


def test_diurnal_validation():
    with pytest.raises(LoadModelError):
        ReplayLoadModel.diurnal(busy_hours=0.5, lunch_hours=1.0)
    with pytest.raises(LoadModelError):
        ReplayLoadModel.diurnal(busy_hours=25.0)


def test_diurnal_custom_load_level():
    model = ReplayLoadModel.diurnal(work_load=3)
    trace = model.build(None, 86400.0)
    assert trace.value_at(10 * 3600.0) == 3
