"""Tests for the degenerate hyperexponential load model."""

import numpy as np
import pytest

from repro.errors import LoadModelError
from repro.load.hyperexp import HyperexponentialLoadModel
from repro.load.stats import trace_stats


def test_parameter_validation():
    with pytest.raises(LoadModelError):
        HyperexponentialLoadModel(mean_lifetime=0.0)
    with pytest.raises(LoadModelError):
        HyperexponentialLoadModel(mean_lifetime=10.0, utilization=-0.1)
    with pytest.raises(LoadModelError):
        HyperexponentialLoadModel(mean_lifetime=10.0, branch_prob=0.0)
    with pytest.raises(LoadModelError):
        HyperexponentialLoadModel(mean_lifetime=10.0, branch_prob=1.5)


def test_arrival_rate_keeps_offered_load_constant():
    short = HyperexponentialLoadModel(mean_lifetime=10.0, utilization=0.5)
    long = HyperexponentialLoadModel(mean_lifetime=1000.0, utilization=0.5)
    assert short.arrival_rate * 10.0 == pytest.approx(0.5)
    assert long.arrival_rate * 1000.0 == pytest.approx(0.5)


def test_cv_squared_formula():
    assert HyperexponentialLoadModel(10.0, branch_prob=0.1).cv_squared == (
        pytest.approx(19.0))
    assert HyperexponentialLoadModel(10.0, branch_prob=1.0).cv_squared == (
        pytest.approx(1.0))


def test_zero_utilization_is_idle_forever():
    model = HyperexponentialLoadModel(mean_lifetime=60.0, utilization=0.0)
    trace = model.build(np.random.default_rng(0), 1_000.0)
    assert trace.value_at(100_000.0) == 0


def test_mean_load_converges_to_utilization():
    # M/G/inf: the long-run mean number in system equals the offered rho,
    # insensitively to the service distribution.
    rho = 0.6
    model = HyperexponentialLoadModel(mean_lifetime=120.0, utilization=rho,
                                      branch_prob=0.2)
    means = []
    for seed in range(8):
        trace = model.build(np.random.default_rng(seed), 200_000.0)
        means.append(trace_stats(trace, 0, 200_000.0).mean_load)
    assert np.mean(means) == pytest.approx(rho, rel=0.15)


def test_multiple_simultaneous_processes_occur():
    model = HyperexponentialLoadModel(mean_lifetime=600.0, utilization=1.5,
                                      branch_prob=0.5)
    trace = model.build(np.random.default_rng(3), 50_000.0)
    assert trace_stats(trace, 0, 50_000.0).max_load >= 2


def test_lifetime_sampling_matches_mean():
    model = HyperexponentialLoadModel(mean_lifetime=100.0, branch_prob=0.1)
    rng = np.random.default_rng(0)
    samples = [model._lifetime(rng) for _ in range(20_000)]
    assert np.mean(samples) == pytest.approx(100.0, rel=0.1)
    # Degenerate branch: most samples are exactly zero.
    zero_fraction = np.mean([s == 0.0 for s in samples])
    assert zero_fraction == pytest.approx(0.9, abs=0.02)


def test_heavy_tail_vs_plain_exponential():
    heavy = HyperexponentialLoadModel(100.0, branch_prob=0.1)
    plain = HyperexponentialLoadModel(100.0, branch_prob=1.0)
    rng_h = np.random.default_rng(1)
    rng_p = np.random.default_rng(1)
    h = [heavy._lifetime(rng_h) for _ in range(20_000)]
    p = [plain._lifetime(rng_p) for _ in range(20_000)]
    assert np.std(h) > 2.0 * np.std(p)


def test_deterministic_given_seed():
    model = HyperexponentialLoadModel(60.0, utilization=0.5)
    a = model.build(np.random.default_rng(5), 10_000.0)
    b = model.build(np.random.default_rng(5), 10_000.0)
    assert a.segments() == b.segments()


def test_lazy_extension_consistent_with_eager():
    model = HyperexponentialLoadModel(60.0, utilization=0.5)
    lazy = model.build(np.random.default_rng(8), 100.0)
    eager = model.build(np.random.default_rng(8), 50_000.0)
    for t in (50.0, 1_000.0, 20_000.0):
        assert lazy.value_at(t) == eager.value_at(t)


def test_counts_never_negative():
    model = HyperexponentialLoadModel(30.0, utilization=0.8, branch_prob=0.3)
    trace = model.build(np.random.default_rng(11), 20_000.0)
    assert all(v >= 0 for _s, _e, v in trace.segments())


def test_describe_mentions_parameters():
    text = HyperexponentialLoadModel(60.0, utilization=0.4).describe()
    assert "60" in text and "0.4" in text
