"""Property-based protocol correctness of the DES swap runtime.

Over randomly drawn small configurations the protocol must always
terminate, conserve work (exactly N logical processes complete exactly
the requested number of iterations, wherever their state travelled),
and leave a consistent final active set.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policy import friendly_policy, greedy_policy, safe_policy
from repro.load.onoff import OnOffLoadModel
from repro.platform.cluster import make_platform
from repro.swap.runtime import SwapRuntime
from repro.units import MB

configs = st.tuples(
    st.floats(min_value=0.0, max_value=0.6),   # p
    st.floats(min_value=0.05, max_value=0.6),  # q
    st.integers(min_value=2, max_value=5),     # hosts
    st.integers(min_value=1, max_value=3),     # actives
    st.integers(min_value=1, max_value=4),     # iterations
    st.integers(min_value=0, max_value=49),    # seed
    st.sampled_from(["greedy", "safe", "friendly"]),
)

POLICIES = {"greedy": greedy_policy, "safe": safe_policy,
            "friendly": friendly_policy}


@given(configs)
@settings(max_examples=40, deadline=None)
def test_protocol_terminates_and_conserves_work(config):
    p, q, n_hosts, n_active, iterations, seed, policy_name = config
    n_active = min(n_active, n_hosts)
    platform = make_platform(n_hosts, OnOffLoadModel(p=p, q=q, step=5.0),
                             seed=seed, speed_range=(100e6, 300e6))
    runtime = SwapRuntime(platform, n_active=n_active,
                          policy=POLICIES[policy_name](),
                          chunk_flops=5e8)

    def body(rank, iteration, state):
        state = dict(state)
        state["count"] += 1
        state["trail"].append(rank)
        return state

    result = runtime.run_iterative(
        iterations=iterations, exchange_bytes=1e3, state_bytes=1 * MB,
        body=body, initial_state=lambda r: {"count": 0, "trail": []})

    # Exactly N logical processes completed, each with exactly the
    # requested number of iterations -- regardless of how many swaps
    # moved their state around.
    finals = [r for r in result.rank_results if r is not None]
    assert len(finals) == n_active
    assert all(s["count"] == iterations for s in finals)
    # Work happened on at least as many hosts as the trails claim.
    for state in finals:
        assert len(state["trail"]) == iterations
        assert set(state["trail"]) <= set(range(n_hosts))

    # The manager's final active set is consistent.
    assert len(result.manager.final_active) == n_active
    assert len(set(result.manager.final_active)) == n_active

    # Makespan covers at least startup plus one unloaded iteration.
    assert result.makespan >= result.startup_time
