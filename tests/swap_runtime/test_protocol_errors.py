"""Error paths of the swap protocol: corrupted or misrouted messages."""

import pytest

from repro.core.policy import greedy_policy
from repro.errors import SwapError
from repro.load.base import ConstantLoadModel
from repro.platform.cluster import make_platform
from repro.swap import protocol
from repro.swap.context import SwapContext
from repro.swap.runtime import SwapRuntime


def homogeneous(n):
    return make_platform(n, ConstantLoadModel(0), seed=0,
                         speed_range=(100e6, 100e6 + 1e-6))


def test_active_process_rejects_foreign_verdict():
    """An active process receiving a SwapIn (a spare's command) fails
    loudly instead of deadlocking."""
    runtime = SwapRuntime(homogeneous(2), n_active=1,
                          policy=greedy_policy(), chunk_flops=1e9)
    captured = {}

    def main(rank, ctx: SwapContext):
        if ctx.role == "active":
            # Inject a bogus command ahead of the manager's verdict.
            ctx.from_handler.put(protocol.SwapIn(iteration=0, partner=1,
                                                 active=(1,)))
            try:
                yield from ctx.mpi_swap(0, None)
            except SwapError as exc:
                captured["error"] = str(exc)
                yield from ctx.finish()
                return None
        iteration, state = yield from ctx.mpi_swap(0, None)
        del iteration, state
        return None

    job = runtime.launch(main)
    # The run cannot fully complete (the protocol was sabotaged); drive
    # the sim only until the active process observed the failure.
    sim = runtime.sim
    for _ in range(100_000):
        if "error" in captured or sim.peek() == float("inf"):
            break
        sim.step()
    assert "unexpected" in captured["error"]


def test_spare_process_rejects_proceed():
    runtime = SwapRuntime(homogeneous(2), n_active=1,
                          policy=greedy_policy(), chunk_flops=1e9)
    captured = {}

    def main(rank, ctx: SwapContext):
        if ctx.role == "spare":
            ctx.from_handler.put(protocol.Proceed(iteration=0, active=(0,)))
            try:
                yield from ctx.mpi_swap(0, None)
            except SwapError as exc:
                captured["error"] = str(exc)
                return None
        iteration, state = yield from ctx.mpi_swap(0, None)
        if iteration is not None:
            yield from ctx.finish()
        return state

    job = runtime.launch(main)
    sim = runtime.sim
    for _ in range(100_000):
        if "error" in captured or sim.peek() == float("inf"):
            break
        sim.step()
    assert "unexpected" in captured["error"]


def test_manager_rejects_unknown_payload():
    """Unknown control traffic crashes the manager deterministically."""
    runtime = SwapRuntime(homogeneous(2), n_active=1,
                          policy=greedy_policy(), chunk_flops=1e9)

    def main(rank, ctx: SwapContext):
        if ctx.role == "active":
            manager_local = runtime.control_comm.rank_of(runtime.manager_rank)
            yield from rank.send(manager_local, nbytes=64.0,
                                 payload={"kind": "garbage"},
                                 comm=runtime.control_comm)
        iteration, state = yield from ctx.mpi_swap(0, None)
        if iteration is not None:
            yield from ctx.finish()
        return state

    job = runtime.launch(main)
    with pytest.raises(SwapError, match="unexpected message"):
        runtime.sim.run()
    del job
