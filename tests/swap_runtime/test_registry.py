"""Tests for the swap_register() state registry."""

import pytest

from repro.errors import SwapError
from repro.swap.registry import StateRegistry


def test_register_and_total():
    registry = StateRegistry()
    registry.register("grid", 1e6)
    registry.register("halo", 2e5)
    assert registry.total_bytes == pytest.approx(1.2e6)
    assert set(registry.names) == {"grid", "halo"}
    assert "grid" in registry and len(registry) == 2


def test_duplicate_name_rejected():
    registry = StateRegistry()
    registry.register("grid", 1.0)
    with pytest.raises(SwapError):
        registry.register("grid", 2.0)


def test_invalid_blocks_rejected():
    registry = StateRegistry()
    with pytest.raises(SwapError):
        registry.register("", 1.0)
    with pytest.raises(SwapError):
        registry.register("x", -1.0)


def test_unregister():
    registry = StateRegistry()
    registry.register("tmp", 5.0)
    registry.unregister("tmp")
    assert registry.total_bytes == 0.0
    with pytest.raises(SwapError):
        registry.unregister("tmp")


def test_zero_size_block_allowed():
    registry = StateRegistry()
    registry.register("marker", 0.0)
    assert registry.total_bytes == 0.0
