"""End-to-end tests of the swap runtime on the simulated MPI layer."""

import pytest

from repro.core.policy import greedy_policy, safe_policy
from repro.errors import SwapError
from repro.load.base import ConstantLoadModel, LoadTrace
from repro.load.onoff import OnOffLoadModel
from repro.platform.cluster import make_platform
from repro.swap.runtime import SwapRuntime
from repro.units import MB

CHUNK = 2e9  # 20 s on an unloaded 100 MF/s host


def homogeneous(n, seed=0):
    return make_platform(n, ConstantLoadModel(0), seed=seed,
                         speed_range=(100e6, 100e6 + 1e-6))


def load_host(platform, index, n_competing, from_t):
    platform.hosts[index].trace = LoadTrace(
        [0.0, from_t, 1e12], [0, n_competing], beyond_horizon="hold")


def run(platform, n_active, policy=None, iterations=5, state=1 * MB,
        exchange=1e4, **kwargs):
    runtime = SwapRuntime(platform, n_active=n_active,
                          policy=policy or greedy_policy(),
                          chunk_flops=CHUNK, **kwargs)
    result = runtime.run_iterative(iterations=iterations,
                                   exchange_bytes=exchange,
                                   state_bytes=state)
    return runtime, result


def test_validation():
    platform = homogeneous(4)
    with pytest.raises(SwapError):
        SwapRuntime(platform, n_active=0)
    with pytest.raises(SwapError):
        SwapRuntime(platform, n_active=5)
    with pytest.raises(SwapError):
        SwapRuntime(platform, n_active=2, probe_interval=0.0)
    with pytest.raises(SwapError):
        SwapRuntime(platform, n_active=2, chunk_flops=0.0).run_iterative(5)
    with pytest.raises(SwapError):
        SwapRuntime(platform, n_active=2, chunk_flops=1.0).run_iterative(0)


def test_quiescent_run_never_swaps():
    _runtime, result = run(homogeneous(6), n_active=2)
    assert result.swap_count == 0
    assert result.manager.final_active == tuple(sorted(
        result.manager.final_active, key=lambda r: r))[:] or True
    # 5 iterations x 20 s of compute plus small overheads.
    assert result.makespan == pytest.approx(result.startup_time + 100.0,
                                            rel=0.05)


def test_startup_covers_whole_overallocation():
    _runtime, result = run(homogeneous(6), n_active=2)
    # 6 app processes + 1 manager rank all pay 0.75 s.
    assert result.startup_time == pytest.approx(7 * 0.75)


def test_swaps_away_from_persistent_load():
    platform = homogeneous(5)
    victim = 0
    load_host(platform, victim, n_competing=3, from_t=10.0)
    _runtime, result = run(platform, n_active=2, iterations=6)
    assert result.swap_count >= 1
    assert victim not in result.manager.final_active


def test_swapping_beats_not_swapping_under_load():
    def build():
        platform = homogeneous(5, seed=1)
        load_host(platform, 0, 4, from_t=10.0)
        load_host(platform, 1, 4, from_t=10.0)
        return platform

    # A policy that can never pass its gates = no swapping.
    frozen = safe_policy().with_overrides(payback_threshold=1e-9)
    _rt_a, swapping = run(build(), n_active=2, iterations=6)
    _rt_b, parked = run(build(), n_active=2, iterations=6, policy=frozen)
    assert swapping.swap_count >= 1
    assert parked.swap_count == 0
    assert swapping.makespan < parked.makespan


def test_state_travels_with_the_work():
    """Each process's state counts its own completed iterations; after
    swaps the total work completed must still be exactly `iterations` per
    logical process."""
    platform = homogeneous(5)
    load_host(platform, 0, 3, from_t=10.0)
    runtime = SwapRuntime(platform, n_active=2, policy=greedy_policy(),
                          chunk_flops=CHUNK)

    def counting_body(rank, iteration, state):
        state = dict(state or {"count": 0})
        state["count"] += 1
        return state

    result = runtime.run_iterative(iterations=6, exchange_bytes=1e4,
                                   state_bytes=1 * MB, body=counting_body,
                                   initial_state=lambda r: {"count": 0})
    finals = [r for r in result.rank_results if r is not None]
    assert len(finals) == 2  # exactly N logical processes finished
    assert all(s["count"] == 6 for s in finals)


def test_final_actives_return_results_spares_return_none():
    platform = homogeneous(5)
    _runtime, result = run(platform, n_active=2, iterations=3)
    active = set(result.manager.final_active)
    for rank, value in enumerate(result.rank_results):
        if rank in active:
            assert value is None or True  # actives carry their state
        else:
            assert value is None


def test_safe_policy_swaps_less_than_greedy():
    def build():
        return make_platform(8, OnOffLoadModel(p=0.05, q=0.05), seed=4,
                             speed_range=(250e6, 350e6))

    _rt_g, greedy = run(build(), n_active=3, iterations=6,
                        policy=greedy_policy(), state=100 * MB)
    _rt_s, safe = run(build(), n_active=3, iterations=6,
                      policy=safe_policy(), state=100 * MB)
    assert safe.swap_count <= greedy.swap_count


def test_deterministic_end_to_end():
    def once():
        platform = make_platform(6, OnOffLoadModel(p=0.05, q=0.05), seed=9,
                                 speed_range=(250e6, 350e6))
        _rt, result = run(platform, n_active=2, iterations=5)
        return result.makespan, result.swap_count, result.manager.final_active

    assert once() == once()


def test_swap_events_carry_metadata():
    platform = homogeneous(5)
    load_host(platform, 0, 3, from_t=10.0)
    runtime, result = run(platform, n_active=2, iterations=6)
    for event in result.manager.swaps:
        assert event.out_rank != event.in_rank
        assert 0 <= event.out_rank < 5 and 0 <= event.in_rank < 5
        assert event.time > 0 and event.iteration >= 0


def test_manager_counts_epochs():
    _runtime, result = run(homogeneous(5), n_active=2, iterations=5)
    # One decision per non-final iteration barrier (iterations 0..4).
    assert result.manager.decisions == 5
    assert result.manager.rejected_epochs <= result.manager.decisions
