"""Edge cases of the swap runtime: degenerate pools and workloads."""

import pytest

from repro.core.policy import greedy_policy
from repro.load.base import ConstantLoadModel, LoadTrace
from repro.platform.cluster import make_platform
from repro.swap.runtime import SwapRuntime
from repro.units import MB


def homogeneous(n, seed=0):
    return make_platform(n, ConstantLoadModel(0), seed=seed,
                         speed_range=(100e6, 100e6 + 1e-6))


def test_no_spares_pool():
    """n_active == pool size: over-allocation of zero, swapping inert."""
    runtime = SwapRuntime(homogeneous(3), n_active=3,
                          policy=greedy_policy(), chunk_flops=1e9)
    result = runtime.run_iterative(iterations=4, state_bytes=1 * MB)
    assert result.swap_count == 0
    assert set(result.manager.final_active) == {0, 1, 2}
    assert all(r is not None or True for r in result.rank_results)


def test_single_host_single_process():
    runtime = SwapRuntime(homogeneous(1), n_active=1,
                          policy=greedy_policy(), chunk_flops=1e9)
    result = runtime.run_iterative(iterations=3, state_bytes=1 * MB)
    assert result.swap_count == 0
    # startup: 1 app process + 1 manager rank
    assert result.startup_time == pytest.approx(2 * 0.75)
    assert result.makespan >= result.startup_time + 3 * 10.0


def test_single_iteration():
    runtime = SwapRuntime(homogeneous(4), n_active=2,
                          policy=greedy_policy(), chunk_flops=1e9)
    result = runtime.run_iterative(iterations=1, state_bytes=1 * MB)
    assert result.manager.decisions <= 1
    assert result.makespan > result.startup_time


def test_zero_state_swap_is_nearly_free():
    platform = homogeneous(4)
    victim_rt = SwapRuntime(platform, n_active=1, policy=greedy_policy(),
                            chunk_flops=1e9)
    victim = victim_rt.initial_active[0]
    platform.hosts[victim].trace = LoadTrace([0.0, 5.0, 1e12], [0, 4],
                                             beyond_horizon="hold")
    result = victim_rt.run_iterative(iterations=5, state_bytes=0.0)
    assert result.swap_count >= 1


def test_huge_state_discourages_or_survives_swaps():
    """A 1 GB image on the 6 MB/s link: the run must still terminate and
    account every transfer."""
    platform = homogeneous(3)
    runtime = SwapRuntime(platform, n_active=1, policy=greedy_policy(),
                          chunk_flops=1e9)
    victim = runtime.initial_active[0]
    platform.hosts[victim].trace = LoadTrace([0.0, 5.0, 1e12], [0, 4],
                                             beyond_horizon="hold")
    result = runtime.run_iterative(iterations=3, state_bytes=1000 * MB)
    assert result.makespan > 0
    if result.swap_count:
        # Each transfer takes ~167 s on the wire; the makespan must show it.
        assert result.makespan > result.startup_time + 167.0


def test_all_actives_swapped_in_one_epoch():
    """Every active host degrades at once; the whole set migrates."""
    platform = homogeneous(6)
    runtime = SwapRuntime(platform, n_active=2, policy=greedy_policy(),
                          chunk_flops=1e9)
    originals = list(runtime.initial_active)
    for victim in originals:
        platform.hosts[victim].trace = LoadTrace([0.0, 5.0, 1e12], [0, 9],
                                                 beyond_horizon="hold")
    result = runtime.run_iterative(iterations=5, state_bytes=1 * MB)
    assert set(result.manager.final_active).isdisjoint(originals)
    # Both replacements can land in the same decision epoch.
    iterations_with_swaps = {e.iteration for e in result.manager.swaps}
    assert len(iterations_with_swaps) <= result.manager.decisions


def test_probe_interval_affects_reaction_lag():
    """With a very long probe interval the manager's picture of spares is
    stale, but the protocol still terminates correctly."""
    platform = homogeneous(4)
    runtime = SwapRuntime(platform, n_active=2, policy=greedy_policy(),
                          chunk_flops=1e9, probe_interval=1e6)
    result = runtime.run_iterative(iterations=3, state_bytes=1 * MB)
    assert result.makespan > 0
