"""Unit-level tests of SwapContext behaviour inside a live runtime."""

import pytest

from repro.core.policy import greedy_policy, safe_policy
from repro.errors import SwapError
from repro.load.base import ConstantLoadModel
from repro.platform.cluster import make_platform
from repro.swap.context import SwapContext
from repro.swap.runtime import SwapRuntime
from repro.units import MB


def homogeneous(n, seed=0):
    return make_platform(n, ConstantLoadModel(0), seed=seed,
                         speed_range=(100e6, 100e6 + 1e-6))


def launch(platform, n_active, user_main, policy=None):
    runtime = SwapRuntime(platform, n_active=n_active,
                          policy=policy or greedy_policy(), chunk_flops=1e9)
    job = runtime.launch(user_main)
    return runtime, job.run_to_completion()


def test_register_after_first_swap_rejected():
    failures = []

    def main(rank, ctx: SwapContext):
        ctx.register("a", 1.0)
        iteration, state = yield from ctx.mpi_swap(0, None)
        if iteration is None:
            return None
        try:
            ctx.register("late", 1.0)
        except SwapError:
            failures.append(rank.world_rank)
        yield from ctx.finish()
        return state

    runtime, _results = launch(homogeneous(3), 2, main)
    assert sorted(failures) == sorted(runtime.initial_active)


def test_duplicate_registration_rejected():
    def main(rank, ctx: SwapContext):
        ctx.register("a", 1.0)
        with pytest.raises(SwapError):
            ctx.register("a", 2.0)
        iteration, state = yield from ctx.mpi_swap(0, None)
        if iteration is None:
            return None
        yield from ctx.finish()
        return state

    launch(homogeneous(3), 2, main)


def test_exchange_passes_ring_payloads():
    received = {}

    def main(rank, ctx: SwapContext):
        ctx.register("a", 1.0)
        iteration, state = yield from ctx.mpi_swap(0, None)
        if iteration is None:
            return None
        payload = yield from ctx.exchange(8.0, payload=rank.world_rank)
        received[rank.world_rank] = payload
        yield from ctx.finish()
        return state

    runtime, _ = launch(homogeneous(4), 3, main)
    ring = list(runtime.initial_active)
    for i, member in enumerate(ring):
        predecessor = ring[(i - 1) % len(ring)]
        assert received[member] == predecessor


def test_spare_cannot_exchange_or_finish():
    violations = []

    def main(rank, ctx: SwapContext):
        if ctx.role == "spare":
            with pytest.raises(SwapError):
                # exchange is a generator; the check fires on first resume
                gen = ctx.exchange(1.0)
                yield from gen
            try:
                yield from ctx.finish()
            except SwapError:
                violations.append(rank.world_rank)
        iteration, state = yield from ctx.mpi_swap(0, None)
        if iteration is None:
            return None
        yield from ctx.finish()
        return state

    runtime, _ = launch(homogeneous(3), 2, main)
    spares = [r for r in range(3) if r not in runtime.initial_active]
    assert violations == spares


def test_single_active_exchange_is_noop():
    def main(rank, ctx: SwapContext):
        ctx.register("a", 1.0)
        iteration, state = yield from ctx.mpi_swap(0, None)
        if iteration is None:
            return None
        echoed = yield from ctx.exchange(8.0, payload="mine")
        yield from ctx.finish()
        return echoed

    runtime, results = launch(homogeneous(2), 1, main)
    active = runtime.initial_active[0]
    assert results[active] == "mine"


def test_context_counters_track_roles():
    from repro.load.base import LoadTrace

    platform = homogeneous(3)
    victim = None

    def main(rank, ctx: SwapContext):
        ctx.register("a", 1 * MB)
        iteration, state = 0, None
        while True:
            iteration, state = yield from ctx.mpi_swap(iteration, state)
            if iteration is None:
                return None
            if iteration >= 4:
                yield from ctx.finish()
                return state
            yield from rank.compute(1e9)
            iteration += 1

    runtime = SwapRuntime(platform, n_active=1, policy=greedy_policy(),
                          chunk_flops=1e9)
    victim = runtime.initial_active[0]
    platform.hosts[victim].trace = LoadTrace([0.0, 5.0, 1e12], [0, 4],
                                             beyond_horizon="hold")
    job = runtime.launch(main)
    job.run_to_completion()
    out_ctx = runtime.contexts[victim]
    assert out_ctx.swaps_out >= 1
    new_active = runtime.contexts[
        [r for r in range(3) if runtime.contexts[r].role == "active"][0]]
    assert new_active.swaps_in >= 1
