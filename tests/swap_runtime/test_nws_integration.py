"""Tests for the NWS bank plugged into the swap manager."""

import pytest

from repro.core.policy import greedy_policy
from repro.load.base import ConstantLoadModel, LoadTrace
from repro.platform.cluster import make_platform
from repro.swap.runtime import SwapRuntime
from repro.units import MB


def homogeneous(n, seed=0):
    return make_platform(n, ConstantLoadModel(0), seed=seed,
                         speed_range=(100e6, 100e6 + 1e-6))


def test_bank_backed_manager_runs_clean():
    runtime = SwapRuntime(homogeneous(5), n_active=2,
                          policy=greedy_policy(), chunk_flops=1e9,
                          use_nws_bank=True)
    result = runtime.run_iterative(iterations=5, state_bytes=1 * MB)
    assert result.swap_count == 0
    assert result.makespan > result.startup_time


def test_bank_backed_manager_still_escapes_load():
    platform = homogeneous(5)
    runtime = SwapRuntime(platform, n_active=2, policy=greedy_policy(),
                          chunk_flops=1e9, use_nws_bank=True)
    victim = runtime.initial_active[0]
    platform.hosts[victim].trace = LoadTrace([0.0, 10.0, 1e12], [0, 3],
                                             beyond_horizon="hold")
    result = runtime.run_iterative(iterations=6, state_bytes=1 * MB)
    assert result.swap_count >= 1
    assert victim not in result.manager.final_active


def test_bank_and_window_agree_on_easy_scenario():
    def run(use_bank):
        platform = homogeneous(5, seed=3)
        runtime = SwapRuntime(platform, n_active=2, policy=greedy_policy(),
                              chunk_flops=1e9, use_nws_bank=use_bank)
        victim = runtime.initial_active[0]
        platform.hosts[victim].trace = LoadTrace(
            [0.0, 10.0, 1e12], [0, 3], beyond_horizon="hold")
        return runtime.run_iterative(iterations=6, state_bytes=1 * MB)

    window = run(False)
    bank = run(True)
    assert bank.makespan == pytest.approx(window.makespan, rel=0.05)
