"""Tests for performance history and forecasters."""

import pytest

from repro.core.history import (
    AdaptiveForecaster,
    EwmaForecaster,
    LastValueForecaster,
    PerformanceHistory,
    PerformanceMonitor,
    WindowedMeanForecaster,
    WindowedMedianForecaster,
)
from repro.errors import PolicyError


def filled(window, samples):
    history = PerformanceHistory(window)
    for t, v in samples:
        history.record(t, v)
    return history


# -- history window --------------------------------------------------------------

def test_negative_window_rejected():
    with pytest.raises(PolicyError):
        PerformanceHistory(-1.0)


def test_zero_window_keeps_only_last():
    history = filled(0.0, [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)])
    assert history.values() == [3.0]


def test_window_trims_old_samples():
    history = filled(10.0, [(0.0, 1.0), (5.0, 2.0), (12.0, 3.0)])
    assert history.values() == [2.0, 3.0]


def test_trim_against_query_time():
    history = filled(10.0, [(0.0, 1.0), (5.0, 2.0)])
    assert history.values(now=20.0) == [2.0]  # newest survives trimming


def test_newest_sample_always_kept():
    history = filled(1.0, [(0.0, 7.0)])
    assert history.values(now=1e9) == [7.0]


def test_reads_are_not_destructive():
    # Regression: samples()/values() used to trim storage against the
    # query time, so probing at a late ``now`` permanently discarded
    # samples that an earlier-or-equal later read should still see.
    history = filled(10.0, [(0.0, 1.0), (5.0, 2.0), (8.0, 3.0)])
    assert history.values(now=20.0) == [3.0]  # late probe: windowed view
    assert history.values(now=8.0) == [1.0, 2.0, 3.0]  # nothing was lost
    assert history.samples() == [(0.0, 1.0), (5.0, 2.0), (8.0, 3.0)]
    assert len(history) == 3


def test_repeated_reads_are_idempotent():
    history = filled(10.0, [(0.0, 1.0), (5.0, 2.0)])
    first = history.values(now=30.0)
    assert history.values(now=30.0) == first
    assert history.values(now=30.0) == first


def test_out_of_order_samples_rejected():
    history = filled(10.0, [(5.0, 1.0)])
    with pytest.raises(PolicyError):
        history.record(4.0, 2.0)


def test_last_property():
    history = filled(10.0, [(0.0, 1.0), (1.0, 9.0)])
    assert history.last == 9.0
    with pytest.raises(PolicyError):
        PerformanceHistory(1.0).last


# -- forecasters --------------------------------------------------------------------

SAMPLES = [(0.0, 10.0), (10.0, 20.0), (20.0, 60.0)]


def test_last_value_forecaster():
    history = filled(100.0, SAMPLES)
    assert LastValueForecaster().predict(history, 20.0) == 60.0


def test_windowed_mean():
    history = filled(100.0, SAMPLES)
    assert WindowedMeanForecaster().predict(history, 20.0) == pytest.approx(30.0)


def test_windowed_median():
    history = filled(100.0, SAMPLES)
    assert WindowedMedianForecaster().predict(history, 20.0) == pytest.approx(20.0)


def test_mean_respects_window():
    history = filled(15.0, SAMPLES)
    # Window of 15 s at t=20 keeps samples at t=10 and t=20.
    assert WindowedMeanForecaster().predict(history, 20.0) == pytest.approx(40.0)


def test_ewma_weights_recent_more():
    history = filled(100.0, SAMPLES)
    ewma = EwmaForecaster(alpha=0.5).predict(history, 20.0)
    assert 20.0 < ewma < 60.0
    heavy = EwmaForecaster(alpha=0.9).predict(history, 20.0)
    assert heavy > ewma  # more weight on the latest (largest) sample


def test_ewma_alpha_validation():
    with pytest.raises(PolicyError):
        EwmaForecaster(alpha=0.0)
    with pytest.raises(PolicyError):
        EwmaForecaster(alpha=1.5)


def test_forecasters_reject_empty_history():
    empty = PerformanceHistory(10.0)
    for forecaster in (WindowedMeanForecaster(), WindowedMedianForecaster(),
                       EwmaForecaster(), AdaptiveForecaster()):
        with pytest.raises(PolicyError):
            forecaster.predict(empty, 0.0)


def test_adaptive_single_sample_passthrough():
    history = filled(100.0, [(0.0, 5.0)])
    assert AdaptiveForecaster().predict(history, 0.0) == 5.0


def test_adaptive_picks_last_value_on_trend():
    # A strictly increasing series: last-value has the lowest one-step
    # error, so the adaptive forecaster should track it.
    samples = [(float(t), float(t)) for t in range(10)]
    history = filled(1000.0, samples)
    prediction = AdaptiveForecaster().predict(history, 9.0)
    assert prediction == pytest.approx(
        LastValueForecaster().predict(history, 9.0))


def test_adaptive_needs_children():
    with pytest.raises(PolicyError):
        AdaptiveForecaster(children=[])


class _CountingChild(LastValueForecaster):
    """Child forecaster that tallies its predict() calls."""

    def __init__(self):
        self.calls = 0

    def predict(self, history, now):
        self.calls += 1
        return super().predict(history, now)


def test_adaptive_scoring_is_incremental():
    # Benchmark guard for the O(n^2)->O(n) fix: each recorded sample is
    # scored exactly once, so interleaving n records with n predictions
    # makes O(n) child calls, not a full replay per prediction.
    child = _CountingChild()
    forecaster = AdaptiveForecaster(children=[child])
    history = PerformanceHistory(window=1e9)
    n = 200
    for t in range(n):
        history.record(float(t), float(t))
        forecaster.predict(history, float(t))
    # Scoring: one call per sample after the first (n - 1).  Final
    # prediction delegation: one call per predict with >= 2 samples.
    assert child.calls <= 2 * n
    # The O(n^2) replay would have cost ~n^2/2 scoring calls.
    assert child.calls < n * n / 4


def test_adaptive_scores_each_sample_once_across_predictions():
    child = _CountingChild()
    forecaster = AdaptiveForecaster(children=[child])
    history = filled(1e9, [(float(t), 1.0) for t in range(50)])
    forecaster.predict(history, 49.0)
    after_first = child.calls
    forecaster.predict(history, 49.0)
    # No new samples: only the delegation call, no re-scoring.
    assert child.calls == after_first + 1


# -- monitor ----------------------------------------------------------------------

def test_monitor_records_per_resource():
    monitor = PerformanceMonitor(window=100.0)
    monitor.record("a", 0.0, 10.0)
    monitor.record("b", 0.0, 99.0)
    monitor.record("a", 1.0, 20.0)
    assert monitor.predict("a", 1.0) == pytest.approx(15.0)
    assert monitor.predict("b", 1.0) == pytest.approx(99.0)
    assert set(monitor.known_resources()) == {"a", "b"}


def test_monitor_unknown_resource_raises():
    with pytest.raises(PolicyError):
        PerformanceMonitor().predict("ghost", 0.0)


def test_monitor_zero_window_defaults_to_last_value():
    monitor = PerformanceMonitor(window=0.0)
    monitor.record("a", 0.0, 1.0)
    monitor.record("a", 1.0, 5.0)
    assert monitor.predict("a", 1.0) == 5.0


def test_monitor_windowed_defaults_to_mean():
    monitor = PerformanceMonitor(window=100.0)
    monitor.record("a", 0.0, 1.0)
    monitor.record("a", 1.0, 5.0)
    assert monitor.predict("a", 1.0) == pytest.approx(3.0)
