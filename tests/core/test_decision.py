"""Tests for the swap decision engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decision import decide_swaps, evaluate_reconfiguration
from repro.core.policy import (
    PolicyParams,
    friendly_policy,
    greedy_policy,
    safe_policy,
)
from repro.errors import PolicyError


def equal_chunks(hosts, chunk=1e9):
    return {h: chunk for h in hosts}


# -- evaluate_reconfiguration -----------------------------------------------------

def test_gate_accepts_clear_win():
    check = evaluate_reconfiguration(100.0, 50.0, cost=10.0,
                                     params=greedy_policy())
    assert check.accepted
    assert check.app_improvement == pytest.approx(1.0)
    assert check.payback == pytest.approx(0.2)


def test_gate_rejects_no_improvement():
    check = evaluate_reconfiguration(100.0, 100.0, cost=0.0,
                                     params=greedy_policy())
    assert not check.accepted
    assert "no application improvement" in check.reason


def test_gate_rejects_below_app_threshold():
    params = PolicyParams(name="x", min_app_improvement=0.10)
    check = evaluate_reconfiguration(100.0, 95.0, cost=0.0, params=params)
    assert not check.accepted
    assert "below" in check.reason


def test_gate_rejects_long_payback():
    params = PolicyParams(name="x", payback_threshold=0.5)
    # Saves 1 s/iteration but costs 10 s -> payback 10 iterations.
    check = evaluate_reconfiguration(100.0, 99.0, cost=10.0, params=params)
    assert not check.accepted
    assert "payback" in check.reason


def test_gate_validates_iteration_times():
    with pytest.raises(PolicyError):
        evaluate_reconfiguration(0.0, 1.0, 0.0, greedy_policy())


# -- decide_swaps -----------------------------------------------------------------

def test_greedy_swaps_slowest_for_fastest():
    rates = {0: 100.0, 1: 50.0, 2: 200.0, 3: 80.0}
    decision = decide_swaps(active=[0, 1], spares=[2, 3], rates=rates,
                            chunk_flops=equal_chunks([0, 1], 1000.0),
                            comm_time=0.0, swap_cost=1.0,
                            params=greedy_policy())
    assert decision.should_swap
    first = decision.moves[0]
    assert first.out_host == 1 and first.in_host == 2


def test_greedy_chains_multiple_swaps():
    rates = {0: 100.0, 1: 50.0, 2: 400.0, 3: 300.0}
    decision = decide_swaps(active=[0, 1], spares=[2, 3], rates=rates,
                            chunk_flops=equal_chunks([0, 1], 1000.0),
                            comm_time=0.0, swap_cost=0.1,
                            params=greedy_policy())
    # Swap 1->2, then 0 is the slowest and 3 still improves it.
    assert [(m.out_host, m.in_host) for m in decision.moves] == [(1, 2), (0, 3)]
    assert decision.active_set_after([0, 1]) == [3, 2]


def test_no_swap_when_spares_slower():
    rates = {0: 100.0, 1: 90.0, 2: 50.0}
    decision = decide_swaps(active=[0, 1], spares=[2], rates=rates,
                            chunk_flops=equal_chunks([0, 1], 1000.0),
                            comm_time=0.0, swap_cost=1.0,
                            params=greedy_policy())
    assert not decision.should_swap
    assert "no faster" in decision.rejected_reason


def test_no_swap_without_spares():
    rates = {0: 100.0, 1: 90.0}
    decision = decide_swaps(active=[0, 1], spares=[], rates=rates,
                            chunk_flops=equal_chunks([0, 1], 1000.0),
                            comm_time=0.0, swap_cost=1.0,
                            params=greedy_policy())
    assert not decision.should_swap


def test_safe_requires_20_percent_process_gain():
    # 10% faster spare: greedy swaps, safe does not.
    rates = {0: 120.0, 1: 100.0, 2: 110.0}
    kwargs = dict(active=[0, 1], spares=[2],
                  chunk_flops=equal_chunks([0, 1], 1000.0),
                  comm_time=0.0, swap_cost=0.001, rates=rates)
    assert decide_swaps(params=greedy_policy(), **kwargs).should_swap
    safe = decide_swaps(params=safe_policy(), **kwargs)
    assert not safe.should_swap
    assert "process improvement" in safe.rejected_reason


def test_safe_payback_threshold_blocks_expensive_swaps():
    # Large gain but cost of 100 s vs 1 s saved per iteration.
    rates = {0: 100.0, 1: 50.0, 2: 65.0}
    decision = decide_swaps(active=[0, 1], spares=[2], rates=rates,
                            chunk_flops=equal_chunks([0, 1], 100.0),
                            comm_time=0.0, swap_cost=100.0,
                            params=safe_policy())
    assert not decision.should_swap


def test_friendly_needs_application_level_gain():
    # The slowest active barely improves: app gain under 2%.
    rates = {0: 100.0, 1: 99.0, 2: 100.5}
    decision = decide_swaps(active=[0, 1], spares=[2], rates=rates,
                            chunk_flops=equal_chunks([0, 1], 1000.0),
                            comm_time=0.0, swap_cost=0.001,
                            params=friendly_policy())
    assert not decision.should_swap
    assert "application improvement" in decision.rejected_reason


def test_friendly_accepts_meaningful_gain():
    rates = {0: 100.0, 1: 50.0, 2: 100.0}
    decision = decide_swaps(active=[0, 1], spares=[2], rates=rates,
                            chunk_flops=equal_chunks([0, 1], 1000.0),
                            comm_time=0.0, swap_cost=0.001,
                            params=friendly_policy())
    assert decision.should_swap


def test_comm_time_dilutes_app_improvement():
    # Compute halves, but communication dominates the iteration.
    rates = {0: 100.0, 1: 200.0}
    params = PolicyParams(name="x", min_app_improvement=0.10)
    without_comm = decide_swaps(active=[0], spares=[1], rates=rates,
                                chunk_flops={0: 1000.0}, comm_time=0.0,
                                swap_cost=0.001, params=params)
    with_comm = decide_swaps(active=[0], spares=[1], rates=rates,
                             chunk_flops={0: 1000.0}, comm_time=100.0,
                             swap_cost=0.001, params=params)
    assert without_comm.should_swap
    assert not with_comm.should_swap


def test_swapped_in_host_inherits_chunk():
    # Unequal chunks: host 1 has the big chunk; its replacement gets it.
    rates = {0: 100.0, 1: 100.0, 2: 150.0}
    chunks = {0: 100.0, 1: 1000.0}
    decision = decide_swaps(active=[0, 1], spares=[2], rates=rates,
                            chunk_flops=chunks, comm_time=0.0,
                            swap_cost=0.001, params=greedy_policy())
    assert decision.moves[0].out_host == 1
    assert decision.new_iteration_time == pytest.approx(1000.0 / 150.0)


def test_max_swaps_cap():
    rates = {0: 10.0, 1: 20.0, 2: 30.0, 3: 100.0, 4: 100.0, 5: 100.0}
    params = greedy_policy().with_overrides(max_swaps_per_decision=1)
    decision = decide_swaps(active=[0, 1, 2], spares=[3, 4, 5], rates=rates,
                            chunk_flops=equal_chunks([0, 1, 2], 100.0),
                            comm_time=0.0, swap_cost=0.001, params=params)
    assert len(decision.moves) == 1
    uncapped = decide_swaps(active=[0, 1, 2], spares=[3, 4, 5], rates=rates,
                            chunk_flops=equal_chunks([0, 1, 2], 100.0),
                            comm_time=0.0, swap_cost=0.001,
                            params=greedy_policy())
    assert len(uncapped.moves) == 3


def test_tied_actives_swap_as_a_batch():
    """Replacing one of several equally slow processors gains nothing
    alone; the batch decision replaces them together."""
    rates = {0: 10.0, 1: 10.0, 2: 10.0, 3: 100.0, 4: 100.0, 5: 100.0}
    decision = decide_swaps(active=[0, 1, 2], spares=[3, 4, 5], rates=rates,
                            chunk_flops=equal_chunks([0, 1, 2], 100.0),
                            comm_time=0.0, swap_cost=0.001,
                            params=greedy_policy())
    assert len(decision.moves) == 3
    assert decision.new_iteration_time == pytest.approx(1.0)


def test_input_validation():
    with pytest.raises(PolicyError):
        decide_swaps(active=[], spares=[], rates={}, chunk_flops={},
                     comm_time=0.0, swap_cost=0.0, params=greedy_policy())
    with pytest.raises(PolicyError):
        decide_swaps(active=[0], spares=[1], rates={0: 1.0},
                     chunk_flops={0: 1.0}, comm_time=0.0, swap_cost=0.0,
                     params=greedy_policy())
    with pytest.raises(PolicyError):
        decide_swaps(active=[0], spares=[], rates={0: 0.0},
                     chunk_flops={0: 1.0}, comm_time=0.0, swap_cost=0.0,
                     params=greedy_policy())


# -- dead / revoked spares --------------------------------------------------------
#
# The caller (the SWAP strategy under fault injection) excises revoked
# hosts from the spare list before deciding.  These pin the behaviors
# that excision relies on.

def test_excised_spare_falls_through_to_next_fastest():
    # Host 2 is the fastest spare but revoked: with it filtered out the
    # decision must promote the next-fastest spare, not give up.
    rates = {0: 100.0, 1: 50.0, 2: 400.0, 3: 200.0}
    decision = decide_swaps(active=[0, 1], spares=[3],  # 2 excised
                            rates=rates, chunk_flops=equal_chunks([0, 1]),
                            comm_time=0.0, swap_cost=1.0,
                            params=greedy_policy())
    assert [(m.out_host, m.in_host) for m in decision.moves] == [(1, 3)]


def test_all_spares_revoked_means_no_swap_not_an_error():
    rates = {0: 100.0, 1: 50.0}
    decision = decide_swaps(active=[0, 1], spares=[], rates=rates,
                            chunk_flops=equal_chunks([0, 1]),
                            comm_time=0.0, swap_cost=1.0,
                            params=greedy_policy())
    assert not decision.should_swap
    assert not decision.moves
    assert decision.rejected_reason == ""  # pool exhausted, nothing gated


def test_unfiltered_dead_spare_without_rate_is_rejected():
    # A dead spare the caller forgot to excise has no predicted rate;
    # that must surface as a loud error, not a silent bad decision.
    rates = {0: 100.0, 1: 50.0, 3: 200.0}
    with pytest.raises(PolicyError):
        decide_swaps(active=[0, 1], spares=[2, 3], rates=rates,
                     chunk_flops=equal_chunks([0, 1]), comm_time=0.0,
                     swap_cost=1.0, params=greedy_policy())


def test_zero_rate_dead_spare_is_rejected():
    # Likewise a "present but dead" spare reported at rate 0.
    rates = {0: 100.0, 1: 50.0, 2: 0.0}
    with pytest.raises(PolicyError):
        decide_swaps(active=[0, 1], spares=[2], rates=rates,
                     chunk_flops=equal_chunks([0, 1]), comm_time=0.0,
                     swap_cost=1.0, params=greedy_policy())


# -- rejected_reason / gate trail -------------------------------------------------

def test_rejection_after_committed_prefix_keeps_its_reason():
    """Regression: a rejection that follows an accepted move used to be
    reported as "" because acceptance reset the reason and the restore
    path only ran when nothing had been committed yet."""
    rates = {0: 100.0, 1: 50.0, 2: 200.0, 3: 40.0}
    decision = decide_swaps(active=[0, 1], spares=[2, 3], rates=rates,
                            chunk_flops=equal_chunks([0, 1], 1000.0),
                            comm_time=0.0, swap_cost=1.0,
                            params=greedy_policy())
    assert [(m.out_host, m.in_host) for m in decision.moves] == [(1, 2)]
    assert "no faster" in decision.rejected_reason


def test_rejected_reason_process_threshold_after_commit():
    params = greedy_policy().with_overrides(min_process_improvement=0.5)
    rates = {0: 100.0, 1: 50.0, 2: 200.0, 3: 120.0}
    decision = decide_swaps(active=[0, 1], spares=[2, 3], rates=rates,
                            chunk_flops=equal_chunks([0, 1], 1000.0),
                            comm_time=0.0, swap_cost=1.0, params=params)
    assert len(decision.moves) == 1
    assert "process improvement" in decision.rejected_reason
    assert "below" in decision.rejected_reason


def test_rejected_reason_payback_after_commit():
    # First swap saves 10 s for a cost of 9 s (payback 0.9); the second
    # brings cumulative cost to 18 s against 10.9 s saved (payback 1.65).
    params = PolicyParams(name="x", payback_threshold=1.0)
    rates = {0: 100.0, 1: 50.0, 2: 200.0, 3: 110.0}
    decision = decide_swaps(active=[0, 1], spares=[2, 3], rates=rates,
                            chunk_flops=equal_chunks([0, 1], 1000.0),
                            comm_time=0.0, swap_cost=9.0, params=params)
    assert [(m.out_host, m.in_host) for m in decision.moves] == [(1, 2)]
    assert "payback" in decision.rejected_reason


def test_rejected_reason_app_threshold_on_first_proposal():
    rates = {0: 100.0, 1: 99.0, 2: 100.5}
    decision = decide_swaps(active=[0, 1], spares=[2], rates=rates,
                            chunk_flops=equal_chunks([0, 1], 1000.0),
                            comm_time=0.0, swap_cost=0.001,
                            params=friendly_policy())
    assert not decision.should_swap
    assert "application improvement" in decision.rejected_reason
    assert "below" in decision.rejected_reason


def test_rejected_reason_empty_when_spares_run_out_accepted():
    rates = {0: 100.0, 1: 50.0, 2: 200.0}
    decision = decide_swaps(active=[0, 1], spares=[2], rates=rates,
                            chunk_flops=equal_chunks([0, 1], 1000.0),
                            comm_time=0.0, swap_cost=1.0,
                            params=greedy_policy())
    assert decision.should_swap
    assert decision.rejected_reason == ""


def test_gate_trail_records_every_proposal():
    rates = {0: 100.0, 1: 50.0, 2: 200.0, 3: 40.0}
    decision = decide_swaps(active=[0, 1], spares=[2, 3], rates=rates,
                            chunk_flops=equal_chunks([0, 1], 1000.0),
                            comm_time=0.0, swap_cost=1.0,
                            params=greedy_policy())
    assert [g.gate for g in decision.gates] == ["accepted", "process"]
    accepted, rejected = decision.gates
    assert accepted.accepted and accepted.reason == ""
    assert accepted.app_improvement == pytest.approx(1.0)
    assert accepted.payback is not None
    # The process gate fails before the application gates run.
    assert not rejected.accepted
    assert rejected.app_improvement is None and rejected.payback is None
    assert rejected.process_improvement == pytest.approx(40.0 / 100.0 - 1.0)


def test_gate_trail_application_rejection_carries_numbers():
    params = PolicyParams(name="x", payback_threshold=1.0)
    rates = {0: 100.0, 1: 50.0, 2: 200.0, 3: 110.0}
    decision = decide_swaps(active=[0, 1], spares=[2, 3], rates=rates,
                            chunk_flops=equal_chunks([0, 1], 1000.0),
                            comm_time=0.0, swap_cost=9.0, params=params)
    assert [g.gate for g in decision.gates] == ["accepted", "application"]
    rejected = decision.gates[1]
    assert rejected.payback == pytest.approx(18.0 / (20.0 - 1000.0 / 110.0))
    record = rejected.to_record()
    assert record["gate"] == "application"
    assert record["reason"] == rejected.reason


def test_gate_trail_all_accepted_chain():
    rates = {0: 100.0, 1: 50.0, 2: 400.0, 3: 300.0}
    decision = decide_swaps(active=[0, 1], spares=[2, 3], rates=rates,
                            chunk_flops=equal_chunks([0, 1], 1000.0),
                            comm_time=0.0, swap_cost=0.1,
                            params=greedy_policy())
    assert [g.gate for g in decision.gates] == ["accepted", "accepted"]
    assert decision.rejected_reason == ""


# -- properties -------------------------------------------------------------------

rate_lists = st.lists(st.floats(min_value=1.0, max_value=1e4),
                      min_size=3, max_size=12)


@given(rate_lists, st.integers(min_value=1, max_value=4))
@settings(max_examples=80)
def test_decision_never_worsens_prediction(rates_list, n_active):
    n_active = min(n_active, len(rates_list) - 1)
    hosts = list(range(len(rates_list)))
    rates = dict(enumerate(rates_list))
    active, spares = hosts[:n_active], hosts[n_active:]
    decision = decide_swaps(active=active, spares=spares, rates=rates,
                            chunk_flops=equal_chunks(active, 100.0),
                            comm_time=0.0, swap_cost=0.01,
                            params=greedy_policy())
    assert decision.new_iteration_time <= decision.old_iteration_time + 1e-9
    assert len(decision.moves) <= len(spares)
    after = decision.active_set_after(active)
    assert len(after) == len(active)
    assert len(set(after)) == len(after)


@given(rate_lists)
@settings(max_examples=80)
def test_stricter_policy_swaps_no_more_than_greedy(rates_list):
    hosts = list(range(len(rates_list)))
    rates = dict(enumerate(rates_list))
    active, spares = hosts[:2], hosts[2:]
    kwargs = dict(active=active, spares=spares, rates=rates,
                  chunk_flops=equal_chunks(active, 100.0),
                  comm_time=0.0, swap_cost=0.01)
    greedy = decide_swaps(params=greedy_policy(), **kwargs)
    strict = decide_swaps(params=safe_policy(), **kwargs)
    assert len(strict.moves) <= len(greedy.moves)
