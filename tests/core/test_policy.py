"""Tests for policy parameters and the paper's three named policies."""

import pytest

from repro.core.policy import (
    PolicyParams,
    friendly_policy,
    greedy_policy,
    named_policy,
    safe_policy,
)
from repro.errors import PolicyError
from repro.units import MINUTE


def test_greedy_matches_paper():
    """'Infinite payback threshold, no minimum process improvement
    threshold, no minimum application improvement threshold, and uses no
    performance history.'"""
    policy = greedy_policy()
    assert policy.payback_threshold == float("inf")
    assert policy.min_process_improvement == 0.0
    assert policy.min_app_improvement == 0.0
    assert policy.history_window == 0.0


def test_safe_matches_paper():
    """'A low payback threshold (0.5 iterations), a high minimum
    improvement threshold (20%) ... a large amount of performance history
    (5 minutes).'"""
    policy = safe_policy()
    assert policy.payback_threshold == 0.5
    assert policy.min_process_improvement == pytest.approx(0.20)
    assert policy.min_app_improvement == 0.0
    assert policy.history_window == pytest.approx(5 * MINUTE)


def test_friendly_matches_paper():
    """'No minimum process improvement threshold, a slight overall
    application improvement threshold (2%), and ... 1 minute [history].'"""
    policy = friendly_policy()
    assert policy.min_process_improvement == 0.0
    assert policy.min_app_improvement == pytest.approx(0.02)
    assert policy.history_window == pytest.approx(1 * MINUTE)
    assert policy.payback_threshold == float("inf")


def test_named_lookup():
    assert named_policy("greedy").name == "greedy"
    assert named_policy("safe").name == "safe"
    assert named_policy("friendly").name == "friendly"
    with pytest.raises(PolicyError):
        named_policy("reckless")


def test_validation():
    with pytest.raises(PolicyError):
        PolicyParams(name="x", payback_threshold=0.0)
    with pytest.raises(PolicyError):
        PolicyParams(name="x", min_process_improvement=-0.1)
    with pytest.raises(PolicyError):
        PolicyParams(name="x", min_app_improvement=-0.1)
    with pytest.raises(PolicyError):
        PolicyParams(name="x", history_window=-1.0)
    with pytest.raises(PolicyError):
        PolicyParams(name="x", max_swaps_per_decision=0)


def test_with_overrides_creates_variant():
    base = safe_policy()
    variant = base.with_overrides(payback_threshold=2.0, name="safe-ish")
    assert variant.payback_threshold == 2.0
    assert variant.min_process_improvement == base.min_process_improvement
    assert base.payback_threshold == 0.5  # original untouched


def test_frozen():
    with pytest.raises(Exception):
        greedy_policy().payback_threshold = 1.0


def test_describe_readable():
    text = safe_policy().describe()
    assert "safe" in text and "20%" in text and "300" in text
