"""Tests for the payback algebra, anchored to the paper's worked example."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.payback import (
    EQUAL_PERFORMANCE_RTOL,
    iterations_to_break_even,
    payback_distance,
    swap_time,
)
from repro.errors import PolicyError


# -- swap_time ------------------------------------------------------------------

def test_swap_time_formula():
    assert swap_time(6e6, latency=0.5, bandwidth=6e6) == pytest.approx(1.5)


def test_swap_time_zero_state_is_latency():
    assert swap_time(0.0, latency=0.2, bandwidth=1e6) == pytest.approx(0.2)


def test_swap_time_validation():
    with pytest.raises(PolicyError):
        swap_time(-1.0, 0.0, 1.0)
    with pytest.raises(PolicyError):
        swap_time(1.0, -0.1, 1.0)
    with pytest.raises(PolicyError):
        swap_time(1.0, 0.0, 0.0)


# -- payback distance -----------------------------------------------------------

def test_paper_example_doubling():
    """Iteration and swap time both 10 s, performance doubles -> 2 iters."""
    assert payback_distance(10.0, 10.0, 1.0, 2.0) == pytest.approx(2.0)


def test_paper_example_quadrupling():
    """Performance x4 -> payback 1 1/3 iterations."""
    assert payback_distance(10.0, 10.0, 1.0, 4.0) == pytest.approx(4.0 / 3.0)


def test_equal_performance_never_pays_back():
    assert payback_distance(10.0, 10.0, 1.0, 1.0) == float("inf")


def test_performance_drop_gives_negative():
    assert payback_distance(10.0, 10.0, 2.0, 1.0) < 0.0


def test_near_equal_performance_returns_inf_not_noise():
    """Regression: only an exact 0.0 denominator mapped to inf, so a
    rounding-level performance blip produced an astronomically large (or
    large *negative*) payback instead of "never pays back"."""
    assert payback_distance(10.0, 10.0, 1.0, 1.0 + 1e-14) == float("inf")
    assert payback_distance(10.0, 10.0, 1.0, 1.0 - 1e-14) == float("inf")
    third = 1.0 / 3.0
    assert payback_distance(10.0, 10.0, third, 3.0 * third * third) == (
        float("inf"))


def test_just_outside_tolerance_is_finite_and_signed():
    gain = payback_distance(10.0, 10.0, 1.0, 1.0 + 1e-9)
    loss = payback_distance(10.0, 10.0, 1.0, 1.0 - 1e-9)
    assert 0.0 < gain < float("inf")
    assert float("-inf") < loss < 0.0


def test_negative_zero_denominator_returns_positive_inf():
    # The denominator guard must treat -0.0 (underflow from a ratio an
    # ulp above 1.0) the same as +0.0.
    assert 10.0 * (1.0 - (1.0 + 1e-17) / 1.0) == 0.0
    assert payback_distance(10.0, 10.0, 1.0, 1.0 + 1e-17) == float("inf")


def test_nonlinearity_in_performance_gain():
    """Payback is by definition not linearly proportional to the gain."""
    d2 = payback_distance(10.0, 10.0, 1.0, 2.0)
    d4 = payback_distance(10.0, 10.0, 1.0, 4.0)
    d8 = payback_distance(10.0, 10.0, 1.0, 8.0)
    assert d2 > d4 > d8
    assert d2 / d4 != pytest.approx(2.0)


def test_validation():
    with pytest.raises(PolicyError):
        payback_distance(-1.0, 10.0, 1.0, 2.0)
    with pytest.raises(PolicyError):
        payback_distance(1.0, 0.0, 1.0, 2.0)
    with pytest.raises(PolicyError):
        payback_distance(1.0, 1.0, 0.0, 2.0)
    with pytest.raises(PolicyError):
        payback_distance(1.0, 1.0, 1.0, -2.0)


def test_break_even_helper_matches_rate_form():
    assert iterations_to_break_even(10.0, 10.0, 5.0) == pytest.approx(
        payback_distance(10.0, 10.0, 1.0 / 10.0, 1.0 / 5.0))


def test_break_even_simple_difference_form():
    # cost / (old_iter - new_iter)
    assert iterations_to_break_even(6.0, 10.0, 7.0) == pytest.approx(2.0)


# -- properties -------------------------------------------------------------------

positive = st.floats(min_value=1e-3, max_value=1e6)


@given(positive, positive, positive, positive)
@settings(max_examples=100)
def test_sign_matches_gain_direction(cost, old_iter, old_perf, new_perf):
    distance = payback_distance(cost, old_iter, old_perf, new_perf)
    if math.isclose(old_perf, new_perf, rel_tol=EQUAL_PERFORMANCE_RTOL,
                    abs_tol=0.0):
        # The documented near-equal band: never recouped, regardless of
        # which side of equality the rounding landed on.
        assert distance == float("inf")
    elif new_perf > old_perf:
        assert distance >= 0.0
    else:
        assert distance <= 0.0


@given(positive, positive, positive,
       st.floats(min_value=1.01, max_value=100.0))
@settings(max_examples=100)
def test_larger_gain_smaller_payback(cost, old_iter, old_perf, factor):
    small_gain = payback_distance(cost, old_iter, old_perf, old_perf * factor)
    big_gain = payback_distance(cost, old_iter, old_perf,
                                old_perf * factor * 2.0)
    assert big_gain <= small_gain


@given(positive, positive, positive,
       st.floats(min_value=1.01, max_value=100.0))
@settings(max_examples=100)
def test_payback_scales_linearly_with_cost(cost, old_iter, old_perf, factor):
    new_perf = old_perf * factor
    single = payback_distance(cost, old_iter, old_perf, new_perf)
    double = payback_distance(2.0 * cost, old_iter, old_perf, new_perf)
    assert double == pytest.approx(2.0 * single, rel=1e-9)


@given(positive, positive, st.floats(min_value=1e-3, max_value=0.999))
@settings(max_examples=100)
def test_break_even_definition_holds(cost, old_iter, shrink):
    """After `payback` iterations at the new rate, the time saved equals
    the swap cost -- the definition of breaking even."""
    new_iter = old_iter * shrink
    payback = iterations_to_break_even(cost, old_iter, new_iter)
    time_saved = payback * (old_iter - new_iter)
    assert time_saved == pytest.approx(cost, rel=1e-6)
