"""Tests for the discrete-event loop: clock, ordering, run modes."""

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.simkernel.engine import Simulator
from repro.simkernel.events import NORMAL, URGENT


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_clock_custom_start():
    assert Simulator(start_time=5.0).now == 5.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(3.5)
    sim.run()
    assert sim.now == 3.5


def test_run_until_time_stops_early():
    sim = Simulator()
    sim.timeout(10.0)
    sim.run(until=4.0)
    assert sim.now == 4.0


def test_run_until_time_with_no_events_advances_clock():
    sim = Simulator()
    sim.run(until=7.0)
    assert sim.now == 7.0


def test_run_until_event_returns_value():
    sim = Simulator()
    timeout = sim.timeout(2.0, value="ready")
    assert sim.run(until=timeout) == "ready"
    assert sim.now == 2.0


def test_run_until_past_event_returns_immediately():
    sim = Simulator()
    timeout = sim.timeout(1.0, value=42)
    sim.run()
    assert sim.run(until=timeout) == 42


def test_run_until_event_that_never_fires_raises():
    sim = Simulator()
    orphan = sim.event()
    sim.timeout(1.0)
    with pytest.raises(SimulationError):
        sim.run(until=orphan)


def test_run_until_past_time_raises():
    sim = Simulator()
    sim.run(until=5.0)
    with pytest.raises(SchedulingError):
        sim.run(until=2.0)


def test_step_with_empty_heap_raises():
    with pytest.raises(SimulationError):
        Simulator().step()


def test_same_time_events_run_in_schedule_order():
    sim = Simulator()
    order = []
    for i in range(5):
        sim.timeout(1.0).add_callback(lambda _e, i=i: order.append(i))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_urgent_priority_runs_before_normal():
    sim = Simulator()
    order = []
    normal = sim.event()
    normal._ok, normal._value = True, None
    sim._schedule(normal, priority=NORMAL, delay=1.0)
    normal.add_callback(lambda _e: order.append("normal"))
    urgent = sim.event()
    urgent._ok, urgent._value = True, None
    sim._schedule(urgent, priority=URGENT, delay=1.0)
    urgent.add_callback(lambda _e: order.append("urgent"))
    sim.run()
    assert order == ["urgent", "normal"]


def test_peek_reports_next_event_time():
    sim = Simulator()
    sim.timeout(2.0)
    sim.timeout(1.0)
    assert sim.peek() == 1.0


def test_peek_empty_heap_is_infinite():
    assert Simulator().peek() == float("inf")


def test_processed_event_counter():
    sim = Simulator()
    for _ in range(3):
        sim.timeout(1.0)
    sim.run()
    assert sim.processed_events == 3


def test_double_schedule_rejected():
    sim = Simulator()
    event = sim.event()
    event.succeed()
    with pytest.raises(Exception):
        sim._schedule(event)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SchedulingError):
        sim.timeout(-1.0)


def test_nested_timeouts_from_callbacks():
    sim = Simulator()
    seen = []

    def chain(_event, depth=0):
        seen.append(sim.now)
        if depth < 3:
            sim.timeout(1.0).add_callback(lambda e: chain(e, depth + 1))

    sim.timeout(1.0).add_callback(chain)
    sim.run()
    assert seen == [1.0, 2.0, 3.0, 4.0]


def test_failed_event_without_defuse_propagates():
    sim = Simulator()
    event = sim.event()
    event.fail(ValueError("boom"))
    with pytest.raises(ValueError, match="boom"):
        sim.run()


def test_failed_event_with_defuse_is_silent():
    sim = Simulator()
    event = sim.event()
    event.fail(ValueError("boom"))
    event.defuse()
    sim.run()  # no raise
    assert not event.ok


def test_nan_delay_rejected():
    """NaN slips through every `<` comparison; the engine must reject it
    before it corrupts heap ordering (the sanitizer's SZ102 hazard)."""
    sim = Simulator()
    with pytest.raises(SchedulingError):
        sim.timeout(float("nan"))
    assert sim.peek() == float("inf")  # nothing entered the heap


def test_infinite_delay_rejected():
    sim = Simulator()
    with pytest.raises(SchedulingError):
        sim.timeout(float("inf"))
    with pytest.raises(SchedulingError):
        sim.timeout(float("-inf"))


def test_nan_delay_rejected_on_raw_schedule():
    sim = Simulator()
    event = sim.event()
    event._ok, event._value = True, None
    with pytest.raises(SchedulingError):
        sim._schedule(event, delay=float("nan"))
    assert len(sim._heap) == 0


def test_events_processed_total_tracks_all_simulators():
    from repro.simkernel.engine import events_processed_total

    before = events_processed_total()
    for _ in range(2):
        sim = Simulator()
        sim.timeout(1.0)
        sim.timeout(2.0)
        sim.run()
        assert sim.processed_events == 2
    assert events_processed_total() - before == 4
