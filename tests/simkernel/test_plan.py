"""Tests for the scenario-lowering pass (repro.simkernel.plan)."""

import pytest

from repro import obs
from repro.app.iterative import ApplicationSpec
from repro.core.policy import greedy_policy
from repro.errors import StrategyError
from repro.load.base import ConstantExtender, ConstantLoadModel, LoadTrace
from repro.load.onoff import OnOffLoadModel
from repro.platform.cluster import make_platform
from repro.simkernel.plan import (
    disable_lowering,
    lower,
    lower_spec,
    lowering_enabled,
)
from repro.strategies.nothing import NothingStrategy
from repro.strategies.swapstrat import SwapStrategy
from repro.units import MB


def app(n, iters=5, flops=4e8, state=1 * MB):
    return ApplicationSpec(n_processes=n, iterations=iters,
                           flops_per_iteration=flops, state_bytes=state)


def constant_platform(n=4, n_competing=0, seed=0):
    return make_platform(n, ConstantLoadModel(n_competing), seed=seed)


def onoff_platform(n=6, seed=0):
    return make_platform(n, OnOffLoadModel(p=0.3, q=0.3), seed=seed)


# -- pass firing -------------------------------------------------------------

def test_all_passes_fire_on_quiet_constant_platform():
    plan = lower(constant_platform())
    assert plan.lowered
    assert plan.passes == ("fault-elim", "obs-elim", "constant-load",
                           "batch-kernel")
    assert plan.fault_free
    assert not plan.obs_on
    assert plan.describe()["constant_load"]


def test_constant_load_pass_declines_stochastic_traces():
    plan = lower(onoff_platform())
    assert "constant-load" not in plan.passes
    assert "batch-kernel" in plan.passes
    assert not plan.describe()["constant_load"]


def test_constant_load_proof_inspects_traces_not_specs():
    # A non-constant trace swapped in behind a constant spec (the
    # standard test rig) must decline the closed form.
    platform = constant_platform()
    platform.hosts[1].trace = LoadTrace([0.0, 5.0, 1e9], [0, 2],
                                        beyond_horizon="hold")
    plan = lower(platform)
    assert "constant-load" not in plan.passes


def test_constant_load_proof_requires_matching_extender():
    # One held segment extended by a *different* value is not constant.
    platform = constant_platform()
    platform.hosts[0].trace = LoadTrace([0.0, 1e3], [0],
                                        extender=ConstantExtender(2))
    assert "constant-load" not in lower(platform).passes
    # ...but a matching extender keeps the proof.
    platform.hosts[0].trace = LoadTrace([0.0, 1e3], [2],
                                        extender=ConstantExtender(2))
    platform.hosts[1].trace = LoadTrace([0.0, 1e3], [0],
                                        extender=ConstantExtender(0))
    assert "constant-load" in lower(platform).passes


def test_obs_pass_keeps_emission_under_active_session():
    with obs.observing(obs.ObsSession()):
        plan = lower(constant_platform())
    assert plan.obs_on
    assert "obs-elim" not in plan.passes


def test_fault_pass_keeps_hooks_with_fault_plan():
    from repro.faults.plan import FaultModel

    platform = make_platform(4, ConstantLoadModel(0), seed=0,
                             fault_model=FaultModel(revocation_rate=8.0,
                                                    mean_downtime=300.0))
    plan = lower(platform)
    assert not plan.fault_free
    assert "fault-elim" not in plan.passes


# -- disable_lowering --------------------------------------------------------

def test_disable_lowering_suspends_pipeline():
    assert lowering_enabled()
    with disable_lowering():
        assert not lowering_enabled()
        plan = lower(constant_platform())
        with disable_lowering():  # re-entrant
            assert not lowering_enabled()
        assert not lowering_enabled()
    assert lowering_enabled()
    assert not plan.lowered
    assert plan.passes == ()
    assert plan.describe()["constant_load"] is False


# -- float identity: lowered == generic --------------------------------------

def test_plan_bindings_match_generic_path_constant():
    platform = constant_platform(n_competing=1)
    lowered = lower(platform)
    with disable_lowering():
        generic = lower(platform)
    chunks = {0: 3e8, 2: 5e8}
    assert (lowered.iteration(chunks, 7.0, 0.5)
            == generic.iteration(chunks, 7.0, 0.5))
    for window in (0.0, 30.0):
        assert (lowered.predicted_rates(50.0, window)
                == generic.predicted_rates(50.0, window))


def test_plan_bindings_match_generic_path_stochastic():
    lowered_platform = onoff_platform()
    generic_platform = onoff_platform()  # same seed: identical traces
    lowered = lower(lowered_platform)
    with disable_lowering():
        generic = lower(generic_platform)
    t = 0.0
    for i in range(40):
        chunks = {h: 2e8 + 1e7 * h for h in range(0, 6, 2)}
        fast = lowered.iteration(chunks, t, 1.0)
        ref = generic.iteration(chunks, t, 1.0)
        assert fast == ref
        assert (lowered.predicted_rates(fast[1], 20.0)
                == generic.predicted_rates(ref[1], 20.0))
        t = fast[1]


@pytest.mark.parametrize("strategy_factory", [
    lambda: NothingStrategy(),
    lambda: SwapStrategy(greedy_policy()),
])
def test_strategy_makespans_identical_lowered_vs_unlowered(strategy_factory):
    """The regression oracle: full runs are float-identical whichever
    lowering fires."""
    lowered_result = strategy_factory().run(onoff_platform(seed=3),
                                            app(3, iters=12))
    with disable_lowering():
        generic_result = strategy_factory().run(onoff_platform(seed=3),
                                                app(3, iters=12))
    assert lowered_result.makespan == generic_result.makespan
    assert ([r.end for r in lowered_result.records]
            == [r.end for r in generic_result.records])


def test_strategy_makespans_identical_on_constant_load():
    lowered_result = NothingStrategy().run(constant_platform(n_competing=2),
                                           app(2, iters=8))
    with disable_lowering():
        generic_result = NothingStrategy().run(
            constant_platform(n_competing=2), app(2, iters=8))
    assert lowered_result.makespan == generic_result.makespan


# -- plan guards -------------------------------------------------------------

def test_iteration_rejects_empty_chunks_every_binding():
    for build in (lambda: lower(constant_platform()),
                  lambda: lower(onoff_platform())):
        plan = build()
        with pytest.raises(StrategyError):
            plan.iteration({}, 0.0, 1.0)
    with disable_lowering():
        plan = lower(constant_platform())
    with pytest.raises(StrategyError):
        plan.iteration({}, 0.0, 1.0)


def test_lower_spec_reports_per_variant_passes():
    from repro.experiments.scenarios import get_scenario

    report = lower_spec(get_scenario("fig4"))
    assert report["scenario"] == "fig4"
    assert report["variants"]
    for described in report["variants"].values():
        assert described["lowered"]
        assert "batch-kernel" in described["passes"]
