"""Tests for events: triggering, callbacks, composition."""

import pytest

from repro.errors import ProcessError, SchedulingError
from repro.simkernel.engine import Simulator
from repro.simkernel.events import AllOf, AnyOf, Event, Timeout


def test_fresh_event_is_pending(sim):
    event = sim.event()
    assert not event.triggered
    assert not event.processed


def test_value_before_trigger_raises(sim):
    with pytest.raises(ProcessError):
        sim.event().value


def test_succeed_delivers_value(sim):
    event = sim.event().succeed("payload")
    sim.run()
    assert event.processed and event.ok
    assert event.value == "payload"


def test_double_succeed_raises(sim):
    event = sim.event().succeed()
    with pytest.raises(ProcessError):
        event.succeed()


def test_fail_requires_exception(sim):
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_fail_carries_exception(sim):
    event = sim.event()
    exc = RuntimeError("x")
    event.fail(exc)
    event.defuse()
    sim.run()
    assert not event.ok
    assert event.value is exc


def test_callback_after_processed_runs_immediately(sim):
    event = sim.event().succeed(1)
    sim.run()
    seen = []
    event.add_callback(lambda e: seen.append(e.value))
    assert seen == [1]


def test_trigger_copies_state(sim):
    a = sim.event()
    b = sim.event()
    a.add_callback(b.trigger)
    a.succeed("v")
    sim.run()
    assert b.value == "v"


def test_timeout_negative_rejected(sim):
    with pytest.raises(SchedulingError):
        Timeout(sim, -0.5)


def test_timeout_zero_fires_now(sim):
    t = sim.timeout(0.0, value="now")
    sim.run()
    assert sim.now == 0.0 and t.value == "now"


def test_anyof_fires_on_first(sim):
    slow = sim.timeout(10.0, value="slow")
    fast = sim.timeout(1.0, value="fast")
    any_of = AnyOf(sim, [slow, fast])
    sim.run(until=any_of)
    assert sim.now == 1.0
    assert any_of.value == {fast: "fast"}


def test_allof_waits_for_all(sim):
    a = sim.timeout(1.0, value="a")
    b = sim.timeout(3.0, value="b")
    all_of = AllOf(sim, [a, b])
    sim.run(until=all_of)
    assert sim.now == 3.0
    assert all_of.value == {a: "a", b: "b"}


def test_empty_condition_fires_immediately(sim):
    all_of = AllOf(sim, [])
    sim.run()
    assert all_of.processed and all_of.value == {}


def test_condition_rejects_foreign_events(sim):
    other = Simulator()
    with pytest.raises(SchedulingError):
        AnyOf(sim, [sim.timeout(1.0), other.timeout(1.0)])


def test_anyof_with_already_processed_member(sim):
    done = sim.timeout(0.0, value=1)
    sim.run()
    any_of = AnyOf(sim, [done, sim.timeout(5.0)])
    sim.run(until=any_of)
    assert sim.now == 0.0


def test_condition_propagates_failure(sim):
    bad = sim.event()
    cond = AllOf(sim, [bad, sim.timeout(1.0)])
    bad.fail(ValueError("inner"))
    cond.defuse()
    sim.run()
    assert not cond.ok
    assert isinstance(cond.value, ValueError)


def test_allof_many_members(sim):
    events = [sim.timeout(float(i)) for i in range(10)]
    all_of = AllOf(sim, events)
    sim.run(until=all_of)
    assert sim.now == 9.0
