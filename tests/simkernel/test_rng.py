"""Tests for reproducible named random streams."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simkernel.rng import RngRegistry, derive_seed


def test_same_key_same_stream():
    a = RngRegistry(42).stream("load", "host", 3)
    b = RngRegistry(42).stream("load", "host", 3)
    assert np.array_equal(a.random(10), b.random(10))


def test_different_keys_differ():
    reg = RngRegistry(42)
    a = reg.stream("load", "host", 3).random(10)
    b = reg.stream("load", "host", 4).random(10)
    assert not np.array_equal(a, b)


def test_different_roots_differ():
    a = RngRegistry(1).stream("x").random(10)
    b = RngRegistry(2).stream("x").random(10)
    assert not np.array_equal(a, b)


def test_creation_order_irrelevant():
    reg1 = RngRegistry(9)
    first = reg1.stream("a").random(5)
    reg1.stream("b")
    reg2 = RngRegistry(9)
    reg2.stream("b")
    second = reg2.stream("a").random(5)
    assert np.array_equal(first, second)


def test_spawn_matches_direct_derivation():
    root = RngRegistry(77)
    spawned = root.spawn("sub")
    assert spawned.seed_for("x") == derive_seed(root.seed_for("sub"), "x")


def test_key_separator_prevents_concatenation_collisions():
    assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")
    assert derive_seed(0, "ab") != derive_seed(0, "a", "b")


def test_int_and_str_keys_are_equivalent_when_equal_text():
    # ints are stringified: stable across Python runs, and 3 == "3".
    assert derive_seed(5, 3) == derive_seed(5, "3")


@given(st.integers(min_value=0, max_value=2**63 - 1),
       st.lists(st.integers(min_value=0, max_value=1000), max_size=4))
@settings(max_examples=50)
def test_derive_seed_in_64bit_range(root, key):
    seed = derive_seed(root, *key)
    assert 0 <= seed < 2**64


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=50)
def test_derive_seed_deterministic(root):
    assert derive_seed(root, "k") == derive_seed(root, "k")
