"""Tests for coroutine processes: lifecycle, values, interrupts."""

import pytest

from repro.errors import ProcessError
from repro.simkernel.engine import Simulator
from repro.simkernel.process import Interrupt


def test_process_return_value(sim):
    def proc():
        yield sim.timeout(1.0)
        return "result"

    p = sim.process(proc())
    sim.run()
    assert p.value == "result"
    assert not p.is_alive


def test_process_receives_event_value(sim):
    def proc():
        got = yield sim.timeout(2.0, value="tick")
        return got

    p = sim.process(proc())
    sim.run()
    assert p.value == "tick"


def test_process_requires_generator(sim):
    with pytest.raises(ProcessError):
        sim.process(lambda: None)


def test_sequential_waits_accumulate_time(sim):
    def proc():
        yield sim.timeout(1.0)
        yield sim.timeout(2.0)
        yield sim.timeout(3.0)

    p = sim.process(proc())
    sim.run(until=p)
    assert sim.now == 6.0


def test_process_exception_fails_event(sim):
    def proc():
        yield sim.timeout(1.0)
        raise RuntimeError("inside")

    p = sim.process(proc())
    p.defuse()
    sim.run()
    assert not p.ok
    assert isinstance(p.value, RuntimeError)


def test_process_waiting_on_process(sim):
    def child():
        yield sim.timeout(5.0)
        return 10

    def parent():
        value = yield sim.process(child())
        return value * 2

    p = sim.process(parent())
    sim.run()
    assert p.value == 20
    assert sim.now == 5.0


def test_yield_non_event_raises_inside_process(sim):
    def proc():
        try:
            yield "not an event"
        except ProcessError:
            return "caught"

    p = sim.process(proc())
    sim.run()
    assert p.value == "caught"


def test_yield_foreign_event_fails_process(sim):
    other = Simulator()

    def proc():
        yield other.timeout(1.0)

    p = sim.process(proc())
    p.defuse()
    sim.run()
    assert not p.ok


def test_interrupt_delivers_cause(sim):
    def victim():
        try:
            yield sim.timeout(100.0)
        except Interrupt as interrupt:
            return interrupt.cause

    p = sim.process(victim())

    def interrupter():
        yield sim.timeout(1.0)
        p.interrupt("reason")

    sim.process(interrupter())
    sim.run(until=p)
    assert p.value == "reason"
    assert sim.now == 1.0


def test_uncaught_interrupt_fails_process(sim):
    def victim():
        yield sim.timeout(100.0)

    p = sim.process(victim())

    def interrupter():
        yield sim.timeout(1.0)
        p.interrupt()

    sim.process(interrupter())
    p.defuse()
    sim.run()
    assert not p.ok
    assert isinstance(p.value, Interrupt)


def test_interrupt_terminated_process_raises(sim):
    def quick():
        return "done"
        yield

    p = sim.process(quick())
    sim.run()
    with pytest.raises(ProcessError):
        p.interrupt()


def test_interrupted_process_can_rewait(sim):
    timer = sim.timeout(10.0, value="late")

    def victim():
        try:
            got = yield timer
        except Interrupt:
            got = yield timer  # re-wait on the same event
        return got

    p = sim.process(victim())

    def interrupter():
        yield sim.timeout(1.0)
        p.interrupt()

    sim.process(interrupter())
    sim.run(until=p)
    assert p.value == "late"
    assert sim.now == 10.0


def test_process_is_event_for_conditions(sim):
    from repro.simkernel.events import AllOf

    def worker(duration):
        yield sim.timeout(duration)
        return duration

    ps = [sim.process(worker(d)) for d in (1.0, 4.0, 2.0)]
    done = AllOf(sim, ps)
    sim.run(until=done)
    assert sim.now == 4.0
    assert [p.value for p in ps] == [1.0, 4.0, 2.0]
