"""Tests for Resource / Store / Mailbox synchronization primitives."""

import pytest

from repro.errors import SimulationError
from repro.simkernel.resources import Mailbox, Resource, Store


# -- Resource ----------------------------------------------------------------

def test_resource_capacity_validation(sim):
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_resource_grants_up_to_capacity(sim):
    res = Resource(sim, capacity=2)
    a, b, c = res.request(), res.request(), res.request()
    sim.run()
    assert a.processed and b.processed
    assert not c.triggered
    assert res.in_use == 2 and res.queue_length == 1


def test_resource_release_grants_next_fifo(sim):
    res = Resource(sim, capacity=1)
    first = res.request()
    second = res.request()
    third = res.request()
    sim.run()
    assert first.processed and not second.triggered
    res.release()
    sim.run()
    assert second.processed and not third.triggered


def test_resource_release_without_request_raises(sim):
    with pytest.raises(SimulationError):
        Resource(sim).release()


def test_resource_request_cancel(sim):
    res = Resource(sim, capacity=1)
    res.request()
    waiting = res.request()
    waiting.cancel()
    res.release()
    sim.run()
    assert not waiting.triggered
    assert res.in_use == 0


def test_resource_serializes_processes(sim):
    res = Resource(sim, capacity=1)
    spans = []

    def worker(duration):
        request = res.request()
        yield request
        start = sim.now
        yield sim.timeout(duration)
        res.release()
        spans.append((start, sim.now))

    for d in (2.0, 3.0, 1.0):
        sim.process(worker(d))
    sim.run()
    assert spans == [(0.0, 2.0), (2.0, 5.0), (5.0, 6.0)]


# -- Store ---------------------------------------------------------------------

def test_store_put_then_get(sim):
    store = Store(sim)
    store.put("x")
    got = store.get()
    sim.run()
    assert got.value == "x"
    assert len(store) == 0


def test_store_get_blocks_until_put(sim):
    store = Store(sim)
    got = store.get()

    def producer():
        yield sim.timeout(5.0)
        store.put(99)

    sim.process(producer())
    sim.run()
    assert got.processed and got.value == 99


def test_store_fifo_order(sim):
    store = Store(sim)
    for i in range(3):
        store.put(i)
    values = []
    for _ in range(3):
        event = store.get()
        event.add_callback(lambda e: values.append(e.value))
    sim.run()
    assert values == [0, 1, 2]


# -- Mailbox ---------------------------------------------------------------------

def test_mailbox_predicate_matching(sim):
    box = Mailbox(sim)
    box.put({"tag": 1, "body": "one"})
    box.put({"tag": 2, "body": "two"})
    got = box.get(lambda m: m["tag"] == 2)
    sim.run()
    assert got.value["body"] == "two"
    assert len(box) == 1  # the unmatched message stays queued


def test_mailbox_unmatched_messages_wait(sim):
    box = Mailbox(sim)
    got = box.get(lambda m: m == "wanted")
    box.put("other")
    sim.run()
    assert not got.triggered
    box.put("wanted")
    sim.run()
    assert got.value == "wanted"


def test_mailbox_getter_fifo_among_matches(sim):
    box = Mailbox(sim)
    first = box.get()
    second = box.get()
    box.put("a")
    box.put("b")
    sim.run()
    assert first.value == "a" and second.value == "b"


def test_mailbox_peek_count(sim):
    box = Mailbox(sim)
    for tag in (1, 2, 2, 3):
        box.put({"tag": tag})
    assert box.peek_count() == 4
    assert box.peek_count(lambda m: m["tag"] == 2) == 2


def test_mailbox_selective_getters_dont_steal(sim):
    """A getter for tag A must not consume a tag-B message even if posted
    first -- the MPI unexpected-message-queue behaviour."""
    box = Mailbox(sim)
    got_a = box.get(lambda m: m["tag"] == "a")
    got_b = box.get(lambda m: m["tag"] == "b")
    box.put({"tag": "b"})
    sim.run()
    assert got_b.processed and got_b.value["tag"] == "b"
    assert not got_a.triggered
