"""Smoke tests: every example script must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout, check=False)


def test_examples_directory_complete():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert names >= {"quickstart.py", "retrofit_smoother.py",
                     "policy_shootout.py", "load_model_explorer.py",
                     "desktop_grid.py"}


def test_quickstart_runs():
    proc = run_example("quickstart.py", "3")
    assert proc.returncode == 0, proc.stderr
    assert "vs NOTHING" in proc.stdout
    assert "swap-greedy" in proc.stdout
    assert "host occupancy" in proc.stdout


def test_retrofit_smoother_runs_and_verifies_numerics():
    proc = run_example("retrofit_smoother.py", "1")
    assert proc.returncode == 0, proc.stderr
    assert "numerical result identical across both runs: True" in proc.stdout
    assert "speedup" in proc.stdout


def test_policy_shootout_runs():
    proc = run_example("policy_shootout.py", "1")
    assert proc.returncode == 0, proc.stderr
    assert "recommended policy per regime" in proc.stdout
    assert "greedy" in proc.stdout and "safe" in proc.stdout


def test_load_model_explorer_runs():
    proc = run_example("load_model_explorer.py", "2")
    assert proc.returncode == 0, proc.stderr
    assert "hyperexponential" in proc.stdout
    assert "30s compute chunk" in proc.stdout


def test_desktop_grid_runs():
    proc = run_example("desktop_grid.py", "1", "0.3")
    assert proc.returncode == 0, proc.stderr
    assert "owner-occupied" in proc.stdout
    assert "migrations" in proc.stdout


@pytest.mark.parametrize("name", ["quickstart.py", "desktop_grid.py"])
def test_examples_deterministic(name):
    first = run_example(name, "7")
    second = run_example(name, "7")
    assert first.stdout == second.stdout
