"""Shared fixtures for the repro test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.load.base import ConstantLoadModel
from repro.load.onoff import OnOffLoadModel
from repro.platform.cluster import make_platform
from repro.simkernel.engine import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def quiet_platform():
    """Four dedicated (never loaded) hosts on the default link."""
    return make_platform(4, ConstantLoadModel(0), seed=7)


@pytest.fixture
def loaded_platform():
    """Eight hosts with moderate persistent ON/OFF load."""
    return make_platform(8, OnOffLoadModel(p=0.02, q=0.02), seed=11,
                         speed_range=(250e6, 350e6))
