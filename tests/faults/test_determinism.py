"""Fault-injected runs are deterministic: same seed, same bytes.

The ext-faults sweep must produce byte-identical traces across reruns,
worker counts, and cache states -- the executor's contract extended to
the fault subsystem (plans are realized lazily per cell, so this is a
real property, not a tautology).
"""

from repro import obs
from repro.experiments.executor import execute_sweep
from repro.experiments.scenarios import EXT_FAULTS, FAULT_RATE_GRID


def traced_sweep(jobs=1, cache_dir=None):
    session = obs.ObsSession()
    result, _timing = execute_sweep(EXT_FAULTS, seeds=1, jobs=jobs,
                                    cache_dir=cache_dir, obs_session=session)
    return result, session


def test_rerun_is_byte_identical():
    result_a, session_a = traced_sweep()
    result_b, session_b = traced_sweep()
    assert session_a.trace.to_jsonl() == session_b.trace.to_jsonl()
    assert result_a.to_dict() == result_b.to_dict()


def test_parallel_matches_serial():
    result_serial, session_serial = traced_sweep(jobs=1)
    result_parallel, session_parallel = traced_sweep(jobs=2)
    assert session_serial.trace.to_jsonl() == session_parallel.trace.to_jsonl()
    assert result_serial.to_dict() == result_parallel.to_dict()


def test_warm_cache_matches_cold(tmp_path):
    _cold, session_cold = traced_sweep(cache_dir=tmp_path)
    _warm, session_warm = traced_sweep(cache_dir=tmp_path)
    assert session_cold.trace.to_jsonl() == session_warm.trace.to_jsonl()


def test_fault_trace_passes_lint():
    _result, session = traced_sweep()
    findings = obs.lint(obs.TraceSet(session.trace.records))
    assert findings == [], [str(f) for f in findings]


def test_swap_recovers_while_nothing_degrades():
    # The scenario's acceptance shape at the heaviest revocation rate.
    result, _session = traced_sweep()
    assert FAULT_RATE_GRID[0] == 0.0
    nothing = result.series["nothing"].mean
    swap = result.series["swap-greedy"].mean
    assert nothing[-1] > 2.0 * nothing[0]
    assert swap[-1] < 2.0 * swap[0]
    assert swap[-1] < nothing[-1]


def test_context_changes_fingerprint():
    stripped = EXT_FAULTS.__class__(
        name=EXT_FAULTS.name, title=EXT_FAULTS.title,
        xlabel=EXT_FAULTS.xlabel, x_values=EXT_FAULTS.x_values,
        build=EXT_FAULTS.build, paper_claim=EXT_FAULTS.paper_claim,
        default_seeds=EXT_FAULTS.default_seeds, context=())
    assert EXT_FAULTS.context, "ext-faults must content-address its plans"
    assert stripped.fingerprint() != EXT_FAULTS.fingerprint()
