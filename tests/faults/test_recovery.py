"""Tests for the shared recovery mechanics (repro.faults.recovery)."""

import pytest

from repro.faults.plan import FaultModel
from repro.faults.recovery import (
    TransferSequencer,
    alive,
    attempt_transfer,
    compute_finish,
    promote_spares,
)
from repro.load.base import ConstantLoadModel
from repro.platform.cluster import make_platform
from repro.simkernel.rng import RngRegistry


class _ScriptedPlan:
    """Stands in for FaultPlan with a scripted failure pattern."""

    def __init__(self, failures, retries=3):
        self._failures = set(failures)
        self.max_transfer_retries = retries

    def transfer_fails(self, seq):
        return seq in self._failures


def test_sequencer_counts_monotonically():
    seq = TransferSequencer()
    assert [seq.next() for _ in range(4)] == [0, 1, 2, 3]


def test_attempt_transfer_first_try_success():
    elapsed, ok, attempts = attempt_transfer(_ScriptedPlan([]),
                                             TransferSequencer(), 10.0)
    assert (elapsed, ok, attempts) == (10.0, True, 1)


def test_attempt_transfer_retries_pay_full_cost_each():
    plan = _ScriptedPlan({0, 1}, retries=3)
    elapsed, ok, attempts = attempt_transfer(plan, TransferSequencer(), 10.0)
    assert (elapsed, ok, attempts) == (30.0, True, 3)


def test_attempt_transfer_gives_up_after_retry_budget():
    plan = _ScriptedPlan(set(range(100)), retries=2)
    seq = TransferSequencer()
    elapsed, ok, attempts = attempt_transfer(plan, seq, 5.0)
    assert not ok
    assert attempts == 3  # first try + 2 retries
    assert elapsed == pytest.approx(15.0)
    # The sequence numbers are consumed: a later transfer continues on.
    assert seq.seq == 3


def test_attempt_transfer_zero_retries():
    plan = _ScriptedPlan({0}, retries=0)
    elapsed, ok, attempts = attempt_transfer(plan, TransferSequencer(), 7.0)
    assert (ok, attempts) == (False, 1)
    assert elapsed == pytest.approx(7.0)


# -- promote_spares -----------------------------------------------------------

def test_promote_spares_pairs_fastest_with_lowest_victim():
    rates = {10: 1.0, 11: 3.0, 12: 2.0}
    promotions, unfilled = promote_spares([5, 2], [10, 11, 12], rates)
    assert promotions == [(2, 11), (5, 12)]
    assert unfilled == []


def test_promote_spares_rate_tie_breaks_by_index():
    rates = {20: 2.0, 7: 2.0}
    promotions, _ = promote_spares([0], [20, 7], rates)
    assert promotions == [(0, 7)]


def test_promote_spares_reports_unfilled():
    promotions, unfilled = promote_spares([1, 2, 3], [9], {9: 1.0})
    assert promotions == [(1, 9)]
    assert unfilled == [2, 3]


def test_promote_spares_no_spares():
    promotions, unfilled = promote_spares([4], [], {})
    assert promotions == []
    assert unfilled == [4]


# -- alive / compute_finish ---------------------------------------------------

def test_alive_without_plan_returns_all():
    assert alive(None, [3, 1, 2], 0.0) == [3, 1, 2]


def test_alive_filters_revoked():
    plan = FaultModel(revocation_rate=6.0).build(RngRegistry(3), 4)
    start, end = plan.revocations_in(0, 0.0, 1e5)[0]
    mid = (start + end) / 2
    assert 0 not in alive(plan, range(4), mid)
    assert 0 in alive(plan, range(4), end)


def test_compute_finish_matches_host_walk_without_plan():
    platform = make_platform(2, ConstantLoadModel(0), seed=5)
    host = platform.host(0)
    assert compute_finish(platform, 0, 3.0, 1e9) \
        == host.compute_finish(3.0, 1e9)


def test_compute_finish_pauses_under_plan():
    model = FaultModel(revocation_rate=6.0)
    platform = make_platform(2, ConstantLoadModel(0), seed=5,
                             fault_model=model)
    plan = platform.faults
    start, end = plan.revocations_in(0, 0.0, 1e5)[0]
    host = platform.host(0)
    flops = host.speed * 20.0  # 20 dedicated seconds
    plain = host.compute_finish(start - 10.0, flops)
    paused = compute_finish(platform, 0, start - 10.0, flops)
    assert paused == pytest.approx(plain + (end - start))
