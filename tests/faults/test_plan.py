"""Tests for FaultModel / FaultPlan: validation, determinism, queries."""

import pytest

from repro.errors import FaultError
from repro.faults.plan import PLAN_VERSION, FaultModel, FaultPlan
from repro.load.base import ConstantLoadModel, LoadTrace
from repro.simkernel.rng import RngRegistry


def make_plan(seed=7, n_hosts=4, **model_kwargs) -> FaultPlan:
    defaults = dict(revocation_rate=2.0, mean_downtime=120.0)
    defaults.update(model_kwargs)
    return FaultModel(**defaults).build(RngRegistry(seed), n_hosts)


def flat_trace(horizon=1e7, value=0) -> LoadTrace:
    return ConstantLoadModel(value).build(None, horizon)


# -- model validation ---------------------------------------------------------

def test_negative_revocation_rate_rejected():
    with pytest.raises(FaultError):
        FaultModel(revocation_rate=-1.0)


def test_nonpositive_downtime_rejected():
    with pytest.raises(FaultError):
        FaultModel(mean_downtime=0.0)
    with pytest.raises(FaultError):
        FaultModel(min_downtime=-1.0)


def test_transfer_failure_prob_range():
    with pytest.raises(FaultError):
        FaultModel(transfer_failure_prob=1.0)
    with pytest.raises(FaultError):
        FaultModel(transfer_failure_prob=-0.1)
    FaultModel(transfer_failure_prob=0.0)  # boundary is valid


def test_store_outage_validation():
    with pytest.raises(FaultError):
        FaultModel(store_outage_rate=-0.5)
    with pytest.raises(FaultError):
        FaultModel(store_outage_rate=1.0, mean_store_outage=0.0)


def test_negative_retries_rejected():
    with pytest.raises(FaultError):
        FaultModel(max_transfer_retries=-1)


def test_build_needs_hosts():
    with pytest.raises(FaultError):
        FaultModel().build(RngRegistry(1), 0)


# -- fingerprint --------------------------------------------------------------

def test_fingerprint_stable_and_parameter_sensitive():
    a = FaultModel(revocation_rate=2.0)
    assert a.fingerprint() == FaultModel(revocation_rate=2.0).fingerprint()
    assert a.fingerprint() != FaultModel(revocation_rate=3.0).fingerprint()
    assert a.fingerprint() != FaultModel(revocation_rate=2.0,
                                         mean_downtime=60.0).fingerprint()


def test_fingerprint_embeds_plan_version():
    # The realization algorithm is versioned: the version constant exists
    # and a model's fingerprint is a function of it (16 hex chars).
    assert PLAN_VERSION >= 1
    fp = FaultModel().fingerprint()
    assert len(fp) == 16
    int(fp, 16)


# -- determinism and lazy extension ------------------------------------------

def test_same_seed_same_realization():
    a, b = make_plan(seed=13), make_plan(seed=13)
    probes = [10.0, 500.0, 3333.3, 7200.0, 20000.0]
    for h in range(4):
        for t in probes:
            assert a.is_revoked(h, t) == b.is_revoked(h, t)
            assert a.return_time(h, t) == b.return_time(h, t)


def test_different_seeds_differ():
    a, b = make_plan(seed=1, revocation_rate=8.0), \
        make_plan(seed=2, revocation_rate=8.0)
    probes = [t * 50.0 for t in range(1, 400)]
    assert any(a.is_revoked(0, t) != b.is_revoked(0, t) for t in probes)


def test_query_order_does_not_change_realization():
    # Realized intervals are a pure function of the stream: probing far
    # ahead first, or probing one host and not another, must not shift
    # what a later query observes.
    early = make_plan(seed=42)
    late = make_plan(seed=42)
    late.is_revoked(0, 1e6)  # materialize host 0 far ahead first
    late.revocations_in(2, 0.0, 5e5)  # and host 2 partway
    for h in range(4):
        assert (early.revocations_in(h, 0.0, 1e5)
                == late.revocations_in(h, 0.0, 1e5))


def test_zero_rate_plan_is_fault_free():
    plan = make_plan(revocation_rate=0.0)
    assert not plan.is_revoked(0, 1e5)
    assert plan.return_time(0, 1e5) == 1e5
    assert plan.next_onset(0, 0.0, 1e6) is None
    assert plan.earliest_onset(range(4), 0.0, 1e6) is None
    assert plan.revocations_in(0, 0.0, 1e6) == []
    assert plan.revoked_seconds(0, 0.0, 1e6) == 0.0
    assert plan.store_available(123.0)
    assert not plan.transfer_fails(0)


# -- interval queries ---------------------------------------------------------

def test_intervals_are_half_open():
    plan = make_plan(seed=3, revocation_rate=6.0)
    start, end = plan.revocations_in(0, 0.0, 1e5)[0]
    assert plan.is_revoked(0, start)          # revoked at onset
    assert not plan.is_revoked(0, end)        # back at return time
    assert plan.return_time(0, start) == end
    assert plan.return_time(0, (start + end) / 2) == end


def test_next_onset_excludes_t0_includes_t1():
    plan = make_plan(seed=3, revocation_rate=6.0)
    start, _end = plan.revocations_in(0, 0.0, 1e5)[0]
    assert plan.next_onset(0, start, start + 1.0) is None  # (t0, t1]
    assert plan.next_onset(0, start - 1.0, start) == start
    assert plan.next_onset(0, 0.0, start) == start


def test_earliest_onset_picks_minimum_and_ties():
    plan = make_plan(seed=9, revocation_rate=6.0, n_hosts=8)
    onsets = {h: plan.next_onset(h, 0.0, 1e5) for h in range(8)}
    best = min(v for v in onsets.values() if v is not None)
    got = plan.earliest_onset(range(8), 0.0, 1e5)
    assert got is not None
    t, victims = got
    assert t == best
    assert victims == [h for h in range(8) if onsets[h] == best]


def test_revoked_seconds_matches_intervals():
    plan = make_plan(seed=5, revocation_rate=8.0)
    t0, t1 = 100.0, 50000.0
    expected = sum(min(e, t1) - max(s, t0)
                   for s, e in plan.revocations_in(0, t0, t1)
                   if min(e, t1) > max(s, t0))
    assert plan.revoked_seconds(0, t0, t1) == pytest.approx(expected)


def test_empty_windows_rejected():
    plan = make_plan()
    with pytest.raises(FaultError):
        plan.revocations_in(0, 10.0, 5.0)
    with pytest.raises(FaultError):
        plan.revoked_seconds(0, 10.0, 5.0)


# -- advance_paused -----------------------------------------------------------

def test_advance_paused_no_stream_is_plain_walk():
    plan = make_plan(revocation_rate=0.0)
    trace = flat_trace()
    assert plan.advance_paused(0, trace, 5.0, 100.0) \
        == trace.advance_work(5.0, 100.0)


def test_advance_paused_validation():
    plan = make_plan()
    trace = flat_trace()
    with pytest.raises(FaultError):
        plan.advance_paused(0, trace, 0.0, -1.0)
    assert plan.advance_paused(0, trace, 7.0, 0.0) == 7.0


def test_advance_paused_adds_exactly_the_downtime():
    # On an unloaded host, work started just before a revocation finishes
    # exactly one downtime later than the fault-free walk.
    plan = make_plan(seed=3, revocation_rate=6.0)
    start, end = plan.revocations_in(0, 0.0, 1e5)[0]
    nxt = plan.next_onset(0, end, 1e7)
    trace = flat_trace()
    t0, demand = start - 10.0, 20.0  # spans the revocation, ends before nxt
    finish = plan.advance_paused(0, trace, t0, demand)
    assert finish == pytest.approx(t0 + demand + (end - start))
    assert nxt is None or finish <= nxt


def test_advance_paused_started_inside_downtime_waits():
    plan = make_plan(seed=3, revocation_rate=6.0)
    start, end = plan.revocations_in(0, 0.0, 1e5)[0]
    trace = flat_trace()
    mid = (start + end) / 2
    finish = plan.advance_paused(0, trace, mid, 5.0)
    assert finish >= end + 5.0 - 1e-9


def test_advance_paused_matches_manual_two_phase_split():
    # demand split at the onset by integrate_availability must agree with
    # the one-shot walk, including under external load.
    plan = make_plan(seed=11, revocation_rate=4.0)
    trace = ConstantLoadModel(1).build(None, 1e7)  # availability 1/2
    start, end = plan.revocations_in(0, 0.0, 1e6)[0]
    t0 = max(0.0, start - 30.0)
    demand = trace.integrate_availability(t0, start) + 8.0
    finish = plan.advance_paused(0, trace, t0, demand)
    manual = trace.advance_work(end, 8.0)
    assert finish == pytest.approx(manual)


# -- checkpoint store ---------------------------------------------------------

def test_store_outages_realized():
    plan = make_plan(revocation_rate=0.0, store_outage_rate=10.0,
                     mean_store_outage=60.0)
    probes = [t * 30.0 for t in range(1, 2000)]
    down = [t for t in probes if not plan.store_available(t)]
    assert down, "expected at least one outage over ~16 hours at 10/h"
    t = down[0]
    ready = plan.store_ready_time(t)
    assert ready > t
    assert plan.store_available(ready)


# -- transfer failures --------------------------------------------------------

def test_transfer_failures_keyed_by_sequence():
    a = make_plan(seed=17, transfer_failure_prob=0.3)
    b = make_plan(seed=17, transfer_failure_prob=0.3)
    pattern_a = [a.transfer_fails(i) for i in range(200)]
    # Query order must not matter: read b's pattern backwards.
    pattern_b = [b.transfer_fails(i) for i in reversed(range(200))][::-1]
    assert pattern_a == pattern_b
    frac = sum(pattern_a) / len(pattern_a)
    assert 0.15 < frac < 0.45  # loose two-sided check around p=0.3
