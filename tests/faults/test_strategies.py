"""Strategy-level fault behavior: stalls, promotion, restart, repartition.

Each test runs one strategy on a faulty platform under an ObsSession and
checks the recovery semantics through the emitted ``fault.*`` records
plus the execution result.  A shared invariant: a platform built with a
zero-rate fault model behaves bit-for-bit like a fault-free platform.
"""

import pytest

from repro import obs
from repro.app.workloads import paper_application
from repro.core.policy import greedy_policy
from repro.faults.plan import FaultModel
from repro.load.onoff import OnOffLoadModel
from repro.platform.cluster import make_platform
from repro.strategies.cr import CrStrategy
from repro.strategies.dlb import DlbStrategy
from repro.strategies.nothing import NothingStrategy
from repro.strategies.swapstrat import SwapStrategy
from repro.units import MB

#: High enough that every seed sees several revocations inside a 50 x
#: 60 s run: ~8 per host-hour with 5-minute outages.
FAULTY = FaultModel(revocation_rate=8.0, mean_downtime=300.0)


def small_app(n_processes=4, iterations=50):
    return paper_application(n_processes=n_processes, iterations=iterations,
                             iteration_minutes=1.0,
                             bytes_per_process=100e3, state_bytes=1 * MB)


def faulty_platform(seed, model=FAULTY, n_hosts=16):
    return make_platform(n_hosts, OnOffLoadModel(p=0.02, q=0.02), seed=seed,
                         speed_range=(250e6, 350e6), fault_model=model)


def traced_run(strategy, platform, app):
    session = obs.ObsSession()
    with obs.observing(session):
        result = strategy.run(platform, app)
    return result, session


def records_of(session, kind):
    return [r for r in session.trace.records if r["kind"] == kind]


ALL_STRATEGIES = [NothingStrategy(), SwapStrategy(greedy_policy()),
                  DlbStrategy(), CrStrategy()]


# -- zero-rate plan is a no-op ------------------------------------------------

@pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.name)
def test_zero_rate_plan_matches_fault_free_run(strategy):
    app = small_app()
    plain = strategy.run(
        make_platform(16, OnOffLoadModel(p=0.02, q=0.02), seed=23,
                      speed_range=(250e6, 350e6)), app)
    gated = strategy.run(
        faulty_platform(23, model=FaultModel(revocation_rate=0.0)), app)
    assert gated.makespan == plain.makespan
    assert gated.swap_count == plain.swap_count
    assert gated.restart_count == plain.restart_count
    assert gated.final_active == plain.final_active


# -- NOTHING: stalls ----------------------------------------------------------

def test_nothing_declares_stall_per_revocation():
    result, session = traced_run(NothingStrategy(), faulty_platform(1),
                                 small_app())
    revocations = records_of(session, "fault.revocation")
    stalls = records_of(session, "fault.stall")
    assert revocations, "expected revocations at 8/host-hour over ~1 h"
    assert len(stalls) == len(revocations)
    assert all(s["reason"] == "no-adaptation" for s in stalls)
    counters = session.metrics.to_dict()["counters"]
    assert counters["faults.stalls_total"] == len(stalls)
    assert counters["faults.revocations_total"] == len(revocations)


def test_nothing_makespan_degrades_with_faults():
    app = small_app()
    plain = NothingStrategy().run(
        make_platform(16, OnOffLoadModel(p=0.02, q=0.02), seed=1,
                      speed_range=(250e6, 350e6)), app)
    faulty = NothingStrategy().run(faulty_platform(1), app)
    assert faulty.makespan > plain.makespan


# -- SWAP: spare promotion ----------------------------------------------------

def test_swap_promotes_spare_on_revocation():
    result, session = traced_run(SwapStrategy(greedy_policy()),
                                 faulty_platform(1), small_app())
    promotions = [r for r in records_of(session, "fault.recovery")
                  if r["action"] == "swap-promote"]
    assert promotions, "expected at least one spare promotion"
    for p in promotions:
        assert p["out_host"] != p["in_host"]
        assert p["end"] > p["start"]  # the transfer cost was paid
    counters = session.metrics.to_dict()["counters"]
    assert counters["faults.recoveries_total"] >= len(promotions)


def test_swap_recovers_better_than_nothing():
    # The acceptance shape of the tentpole: under heavy revocations SWAP
    # keeps running on promoted spares while NOTHING waits out downtimes.
    app = small_app()
    worse = 0
    for seed in (1, 2, 3):
        nothing = NothingStrategy().run(faulty_platform(seed), app)
        swap = SwapStrategy(greedy_policy()).run(faulty_platform(seed), app)
        worse += nothing.makespan > swap.makespan
    assert worse >= 2, "SWAP should beat NOTHING on most faulty seeds"


# -- CR: checkpoint restart ---------------------------------------------------

def test_cr_restarts_after_revocation():
    result, session = traced_run(CrStrategy(), faulty_platform(1),
                                 small_app())
    restarts = [r for r in records_of(session, "fault.recovery")
                if r["action"] == "cr-restart"]
    assert restarts, "expected at least one checkpoint restart"
    for r in restarts:
        assert r["cost"] > 0.0  # re-read the checkpoint + startup
        assert len(r["new_active"]) == 4
    assert result.restart_count >= len(restarts)


# -- DLB: repartition ---------------------------------------------------------

def test_dlb_repartitions_over_survivors():
    result, session = traced_run(DlbStrategy(), faulty_platform(1),
                                 small_app(n_processes=4))
    repartitions = [r for r in records_of(session, "fault.recovery")
                    if r["action"] == "dlb-repartition"]
    assert repartitions, "expected at least one membership drop"
    returns = records_of(session, "fault.return")
    assert returns, "returned hosts should rejoin the membership"


# -- trace hygiene ------------------------------------------------------------

@pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.name)
def test_fault_traces_satisfy_tl_invariants(strategy):
    _result, session = traced_run(strategy, faulty_platform(7), small_app())
    findings = obs.lint(obs.TraceSet(session.trace.records))
    assert findings == [], [str(f) for f in findings]
