"""Tests for simulated MPI collectives."""

import pytest

from repro.load.base import ConstantLoadModel
from repro.platform.cluster import make_platform
from repro.platform.network import LinkSpec
from repro.simkernel.engine import Simulator
from repro.smpi.runtime import MpiRuntime


def run_collective(n, main, latency=0.0, bandwidth=1e9):
    sim = Simulator()
    platform = make_platform(n, ConstantLoadModel(0), seed=0,
                             speed_range=(100e6, 100e6 + 1e-6))
    runtime = MpiRuntime(sim, platform.hosts,
                         link=LinkSpec(latency=latency, bandwidth=bandwidth),
                         startup_per_process=0.0)
    job = runtime.launch([main] * n)
    return job.run_to_completion()


@pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
def test_barrier_synchronizes(n):
    def main(rank):
        # Stagger arrivals; everyone must leave at the latest arrival.
        yield from rank.sleep(float(rank.world_rank))
        yield from rank.barrier()
        return rank.now

    results = run_collective(n, main)
    assert all(t == pytest.approx(results[0]) for t in results)
    assert results[0] >= n - 1


@pytest.mark.parametrize("n", [1, 2, 4, 7])
@pytest.mark.parametrize("root", [0, "last"])
def test_bcast_delivers_root_value(n, root):
    root_rank = n - 1 if root == "last" else 0

    def main(rank):
        value = f"secret{rank.world_rank}" if rank.world_rank == root_rank \
            else None
        result = yield from rank.bcast(value, nbytes=10.0, root=root_rank)
        return result

    results = run_collective(n, main)
    assert results == [f"secret{root_rank}"] * n


@pytest.mark.parametrize("n", [1, 2, 5])
def test_gather_collects_in_rank_order(n):
    def main(rank):
        result = yield from rank.gather(rank.world_rank * 10, root=0)
        return result

    results = run_collective(n, main)
    assert results[0] == [i * 10 for i in range(n)]
    assert all(r is None for r in results[1:])


@pytest.mark.parametrize("n", [1, 3, 6])
def test_scatter_distributes(n):
    def main(rank):
        values = [f"item{i}" for i in range(n)] if rank.world_rank == 0 \
            else None
        result = yield from rank.scatter(values, root=0)
        return result

    results = run_collective(n, main)
    assert results == [f"item{i}" for i in range(n)]


def test_scatter_requires_full_list():
    def main(rank):
        if rank.world_rank == 0:
            try:
                yield from rank.scatter([1], root=0)
            except Exception as exc:
                return type(exc).__name__
        else:
            return None

    results = run_collective(3, main)
    assert results[0] == "MpiError"


@pytest.mark.parametrize("n", [1, 2, 5])
def test_reduce_folds_at_root(n):
    def main(rank):
        result = yield from rank.reduce(rank.world_rank + 1,
                                        op=lambda a, b: a + b, root=0)
        return result

    results = run_collective(n, main)
    assert results[0] == n * (n + 1) // 2


@pytest.mark.parametrize("n", [1, 2, 4, 6])
def test_allreduce_everyone_gets_total(n):
    def main(rank):
        result = yield from rank.allreduce(rank.world_rank + 1,
                                           op=lambda a, b: a + b)
        return result

    results = run_collective(n, main)
    assert results == [n * (n + 1) // 2] * n


@pytest.mark.parametrize("n", [1, 2, 5])
def test_allgather(n):
    def main(rank):
        result = yield from rank.allgather(chr(ord("a") + rank.world_rank))
        return result

    results = run_collective(n, main)
    expected = [chr(ord("a") + i) for i in range(n)]
    assert results == [expected] * n


def test_successive_collectives_do_not_cross_talk():
    def main(rank):
        first = yield from rank.allreduce(1, op=lambda a, b: a + b)
        second = yield from rank.allreduce(10, op=lambda a, b: a + b)
        return (first, second)

    results = run_collective(4, main)
    assert results == [(4, 40)] * 4


def test_bcast_time_scales_with_payload():
    def main(rank):
        value = "data" if rank.world_rank == 0 else None
        yield from rank.bcast(value, nbytes=1e6, root=0)
        return rank.now

    fast = run_collective(4, main, bandwidth=1e9)
    slow = run_collective(4, main, bandwidth=1e6)
    assert max(slow) > max(fast)


def test_collectives_with_compute_interleaved():
    def main(rank):
        yield from rank.compute(1e7 * (rank.world_rank + 1))
        total = yield from rank.allreduce(rank.world_rank,
                                          op=lambda a, b: a + b)
        yield from rank.barrier()
        return total

    results = run_collective(3, main)
    assert results == [3, 3, 3]


@pytest.mark.parametrize("n", [1, 2, 4, 6])
def test_alltoall_personalized_exchange(n):
    def main(rank):
        values = [f"{rank.world_rank}->{j}" for j in range(n)]
        result = yield from rank.alltoall(values, nbytes=10.0)
        return result

    results = run_collective(n, main)
    for receiver in range(n):
        assert results[receiver] == [f"{i}->{receiver}" for i in range(n)]


def test_alltoall_requires_full_list():
    def main(rank):
        if rank.world_rank == 0:
            try:
                yield from rank.alltoall([1], nbytes=1.0)
            except Exception as exc:
                return type(exc).__name__
        else:
            return None

    results = run_collective(3, main)
    assert results[0] == "MpiError"


def test_alltoall_then_allreduce_no_crosstalk():
    def main(rank):
        mine = yield from rank.alltoall(
            [rank.world_rank * 10 + j for j in range(3)])
        total = yield from rank.allreduce(sum(mine), op=lambda a, b: a + b)
        return total

    results = run_collective(3, main)
    assert len(set(results)) == 1
