"""Tests for the MPI runtime wiring (launch, jobs, validation)."""

import pytest

from repro.errors import MpiError
from repro.load.base import ConstantLoadModel
from repro.platform.cluster import make_platform
from repro.simkernel.engine import Simulator
from repro.smpi.runtime import MpiJob, MpiRuntime


def hosts(n):
    return make_platform(n, ConstantLoadModel(0), seed=0,
                         speed_range=(100e6, 100e6 + 1e-6)).hosts


def test_validation():
    sim = Simulator()
    with pytest.raises(MpiError):
        MpiRuntime(sim, [])
    with pytest.raises(MpiError):
        MpiRuntime(sim, hosts(2), startup_per_process=-1.0)


def test_world_communicator_shape():
    runtime = MpiRuntime(Simulator(), hosts(3))
    assert runtime.size == 3
    assert runtime.world.size == 3
    assert runtime.world.name == "MPI_COMM_WORLD"


def test_host_of_bounds():
    runtime = MpiRuntime(Simulator(), hosts(2))
    assert runtime.host_of(1).name == "host001"
    with pytest.raises(MpiError):
        runtime.host_of(2)
    with pytest.raises(MpiError):
        runtime.host_of(-1)


def test_launch_requires_one_main_per_rank():
    runtime = MpiRuntime(Simulator(), hosts(3))

    def main(rank):
        return rank.world_rank
        yield

    with pytest.raises(MpiError):
        runtime.launch([main, main])


def test_results_before_completion_raises():
    sim = Simulator()
    runtime = MpiRuntime(sim, hosts(2), startup_per_process=1.0)

    def main(rank):
        yield from rank.sleep(10.0)
        return rank.world_rank

    job = runtime.launch([main, main])
    with pytest.raises(MpiError):
        job.results()
    assert job.run_to_completion() == [0, 1]
    assert isinstance(job, MpiJob)


def test_launch_args_forwarded():
    runtime = MpiRuntime(Simulator(), hosts(2), startup_per_process=0.0)

    def main(rank, factor, offset):
        return rank.world_rank * factor + offset
        yield

    job = runtime.launch([main, main], 10, 5)
    assert job.run_to_completion() == [5, 15]


def test_message_counter_increments():
    sim = Simulator()
    runtime = MpiRuntime(sim, hosts(2), startup_per_process=0.0)

    def sender(rank):
        yield from rank.send(1, nbytes=10.0)

    def receiver(rank):
        yield from rank.recv(source=0)

    runtime.launch([sender, receiver]).run_to_completion()
    assert runtime.messages_delivered == 1
