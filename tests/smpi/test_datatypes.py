"""Tests for message envelopes and matching."""

import pytest

from repro.errors import MpiError
from repro.smpi.datatypes import ANY_SOURCE, ANY_TAG, Message, Status, match


def envelope(**overrides):
    defaults = dict(source=0, dest=1, tag=5, comm_id=9, nbytes=100.0,
                    payload="x")
    defaults.update(overrides)
    return Message(**defaults)


def test_message_validation():
    with pytest.raises(MpiError):
        envelope(tag=-1)
    with pytest.raises(MpiError):
        envelope(nbytes=-1.0)


def test_match_requires_comm():
    assert match(envelope(), comm_id=9, source=0, tag=5)
    assert not match(envelope(), comm_id=8, source=0, tag=5)


def test_match_wildcards():
    assert match(envelope(), comm_id=9, source=ANY_SOURCE, tag=5)
    assert match(envelope(), comm_id=9, source=0, tag=ANY_TAG)
    assert match(envelope(), comm_id=9, source=ANY_SOURCE, tag=ANY_TAG)


def test_match_specific_mismatches():
    assert not match(envelope(), comm_id=9, source=1, tag=5)
    assert not match(envelope(), comm_id=9, source=0, tag=6)


def test_status_set_from():
    status = Status()
    status.set_from(envelope())
    assert status.source == 0
    assert status.tag == 5
    assert status.nbytes == 100.0
