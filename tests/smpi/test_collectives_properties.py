"""Property-based tests of the simulated MPI collectives."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.load.base import ConstantLoadModel
from repro.platform.cluster import make_platform
from repro.platform.network import LinkSpec
from repro.simkernel.engine import Simulator
from repro.smpi.runtime import MpiRuntime


def run_collective(n, main):
    sim = Simulator()
    platform = make_platform(n, ConstantLoadModel(0), seed=0,
                             speed_range=(100e6, 100e6 + 1e-6))
    runtime = MpiRuntime(sim, platform.hosts,
                         link=LinkSpec(latency=1e-4, bandwidth=1e9),
                         startup_per_process=0.0)
    return runtime.launch([main] * n).run_to_completion()


@given(st.integers(min_value=1, max_value=9),
       st.integers(min_value=0, max_value=8),
       st.integers(min_value=-1000, max_value=1000))
@settings(max_examples=30, deadline=None)
def test_bcast_any_root_any_size(n, root, value):
    root = root % n

    def main(rank):
        payload = value if rank.world_rank == root else None
        result = yield from rank.bcast(payload, nbytes=8.0, root=root)
        return result

    assert run_collective(n, main) == [value] * n


@given(st.integers(min_value=1, max_value=9),
       st.integers(min_value=0, max_value=8))
@settings(max_examples=30, deadline=None)
def test_gather_then_scatter_roundtrip(n, root):
    root = root % n

    def main(rank):
        gathered = yield from rank.gather(rank.world_rank ** 2, root=root)
        mine = yield from rank.scatter(gathered, root=root)
        return mine

    assert run_collective(n, main) == [i ** 2 for i in range(n)]


@given(st.lists(st.integers(min_value=-100, max_value=100),
                min_size=1, max_size=8))
@settings(max_examples=30, deadline=None)
def test_allreduce_sum_equals_python_sum(values):
    n = len(values)

    def main(rank):
        result = yield from rank.allreduce(values[rank.world_rank],
                                           op=lambda a, b: a + b)
        return result

    assert run_collective(n, main) == [sum(values)] * n


@given(st.integers(min_value=1, max_value=8),
       st.integers(min_value=1, max_value=4))
@settings(max_examples=20, deadline=None)
def test_repeated_barriers_stay_matched(n, repeats):
    def main(rank):
        for _ in range(repeats):
            yield from rank.barrier()
        return rank.world_rank

    assert run_collective(n, main) == list(range(n))


@given(st.integers(min_value=2, max_value=8))
@settings(max_examples=20, deadline=None)
def test_allgather_order_is_rank_order(n):
    def main(rank):
        result = yield from rank.allgather(rank.world_rank * 3)
        return result

    expected = [i * 3 for i in range(n)]
    assert run_collective(n, main) == [expected] * n
