"""Tests for simulated MPI point-to-point messaging."""

import pytest

from repro.errors import MpiError
from repro.load.base import ConstantLoadModel
from repro.platform.cluster import make_platform
from repro.platform.network import LinkSpec
from repro.simkernel.engine import Simulator
from repro.smpi.datatypes import ANY_SOURCE, ANY_TAG, Status
from repro.smpi.runtime import MpiRuntime


def make_runtime(n=2, latency=0.0, bandwidth=1e6, startup=0.0):
    sim = Simulator()
    platform = make_platform(n, ConstantLoadModel(0), seed=0,
                             speed_range=(100e6, 100e6 + 1e-6))
    runtime = MpiRuntime(sim, platform.hosts,
                         link=LinkSpec(latency=latency, bandwidth=bandwidth),
                         startup_per_process=startup)
    return sim, runtime


def run_mains(runtime, mains, *args):
    job = runtime.launch(mains, *args)
    return job.run_to_completion()


def test_send_recv_payload():
    sim, runtime = make_runtime()

    def sender(rank):
        yield from rank.send(1, nbytes=100.0, payload={"x": 1}, tag=3)

    def receiver(rank):
        message = yield from rank.recv(source=0, tag=3)
        return message.payload

    results = run_mains(runtime, [sender, receiver])
    assert results[1] == {"x": 1}


def test_transfer_time_matches_link():
    sim, runtime = make_runtime(latency=0.5, bandwidth=100.0)

    def sender(rank):
        yield from rank.send(1, nbytes=50.0)

    def receiver(rank):
        yield from rank.recv(source=0)
        return rank.now

    results = run_mains(runtime, [sender, receiver])
    assert results[1] == pytest.approx(0.5 + 0.5)


def test_startup_cost_delays_everyone():
    sim, runtime = make_runtime(startup=0.75)

    def main(rank):
        return rank.now
        yield

    results = run_mains(runtime, [main, main])
    assert results == [1.5, 1.5]


def test_tag_matching_out_of_order():
    sim, runtime = make_runtime()

    def sender(rank):
        yield from rank.send(1, payload="first", tag=1)
        yield from rank.send(1, payload="second", tag=2)

    def receiver(rank):
        second = yield from rank.recv(source=0, tag=2)
        first = yield from rank.recv(source=0, tag=1)
        return (second.payload, first.payload)

    results = run_mains(runtime, [sender, receiver])
    assert results[1] == ("second", "first")


def test_any_source_any_tag_with_status():
    sim, runtime = make_runtime(n=3)

    def sender(rank):
        yield from rank.send(2, payload=f"from{rank.world_rank}",
                             tag=rank.world_rank)

    def receiver(rank):
        got = []
        for _ in range(2):
            status = Status()
            message = yield from rank.recv(source=ANY_SOURCE, tag=ANY_TAG,
                                           status=status)
            got.append((status.source, status.tag, message.payload))
        return sorted(got)

    results = run_mains(runtime, [sender, sender, receiver])
    assert results[2] == [(0, 0, "from0"), (1, 1, "from1")]


def test_isend_overlaps_with_compute():
    sim, runtime = make_runtime(latency=0.0, bandwidth=100.0)

    def sender(rank):
        pending = rank.isend(1, nbytes=100.0)   # 1 s on the wire
        yield from rank.compute(1e8)            # 1 s of compute
        yield pending
        return rank.now

    def receiver(rank):
        yield from rank.recv(source=0)
        return rank.now

    results = run_mains(runtime, [sender, receiver])
    assert results[0] == pytest.approx(1.0)  # overlapped, not 2 s


def test_communicator_isolation():
    sim, runtime = make_runtime(n=2)
    sub = runtime.world.sub([0, 1], name="private")

    def sender(rank):
        yield from rank.send(1, payload="world", tag=0)
        yield from rank.send(1, payload="private", tag=0, comm=sub)

    def receiver(rank):
        private = yield from rank.recv(source=0, tag=0, comm=sub)
        world = yield from rank.recv(source=0, tag=0)
        return (private.payload, world.payload)

    results = run_mains(runtime, [sender, receiver])
    assert results[1] == ("private", "world")


def test_probe_counts_queued_messages():
    sim, runtime = make_runtime()

    def sender(rank):
        yield from rank.send(1, tag=4)
        yield from rank.send(1, tag=4)

    def receiver(rank):
        yield from rank.sleep(1.0)
        return rank.probe(source=0, tag=4)

    results = run_mains(runtime, [sender, receiver])
    assert results[1] == 2


def test_rank_outside_comm_rejected():
    sim, runtime = make_runtime(n=3)
    sub = runtime.world.sub([0, 1])

    def outsider(rank):
        if rank.world_rank == 2:
            with pytest.raises(MpiError):
                rank.irecv(comm=sub)
        return None
        yield

    run_mains(runtime, [outsider, outsider, outsider])


def test_user_tag_space_enforced():
    sim, runtime = make_runtime()

    def main(rank):
        if rank.world_rank == 0:
            with pytest.raises(MpiError):
                yield from rank.send(1, tag=1 << 21)
        return None

    def other(rank):
        return None
        yield

    run_mains(runtime, [main, other])


def test_compute_respects_host_load():
    sim = Simulator()
    platform = make_platform(1, ConstantLoadModel(1), seed=0,
                             speed_range=(100e6, 100e6 + 1e-6))
    runtime = MpiRuntime(sim, platform.hosts, startup_per_process=0.0)

    def main(rank):
        yield from rank.compute(1e8)
        return rank.now

    results = run_mains(runtime, [main])
    assert results[0] == pytest.approx(2.0)  # halved by the competitor


def test_waitall_collects_in_order():
    sim, runtime = make_runtime(n=3)

    def sender(rank):
        yield from rank.send(2, payload="a", tag=1)
        yield from rank.send(2, payload="b", tag=2)

    def other(rank):
        return None
        yield

    def receiver(rank):
        pending = [rank.irecv(source=0, tag=2), rank.irecv(source=0, tag=1)]
        messages = yield from rank.waitall(pending)
        return [m.payload for m in messages]

    results = run_mains(runtime, [sender, other, receiver])
    assert results[2] == ["b", "a"]


def test_waitall_empty_is_noop():
    sim, runtime = make_runtime(n=2)

    def main(rank):
        values = yield from rank.waitall([])
        return values

    def other(rank):
        return None
        yield

    results = run_mains(runtime, [main, other])
    assert results[0] == []
