"""Tests for MPI groups and communicators."""

import pytest

from repro.errors import CommunicatorError
from repro.smpi.comm import Communicator, Group


def test_group_rank_mapping():
    group = Group([5, 2, 9])
    assert group.size == 3
    assert group.rank_of(5) == 0
    assert group.rank_of(9) == 2
    assert group.world_rank(1) == 2
    assert group.contains(2) and not group.contains(3)


def test_group_validation():
    with pytest.raises(CommunicatorError):
        Group([1, 1])
    with pytest.raises(CommunicatorError):
        Group([-1])
    with pytest.raises(CommunicatorError):
        Group([0, 1]).rank_of(5)
    with pytest.raises(CommunicatorError):
        Group([0, 1]).world_rank(2)


def test_communicator_context_ids_unique():
    group = Group([0, 1])
    a, b = Communicator(group), Communicator(group)
    assert a.context_id != b.context_id


def test_sub_communicator_reindexes():
    world = Communicator(Group(range(6)), name="world")
    sub = world.sub([4, 1])
    assert sub.size == 2
    assert sub.rank_of(4) == 0
    assert sub.rank_of(1) == 1
    assert sub.context_id != world.context_id


def test_sub_requires_membership():
    world = Communicator(Group([0, 1, 2]))
    with pytest.raises(CommunicatorError):
        world.sub([0, 7])
