"""Tests for unit constants and formatting helpers."""

from repro.units import (
    GB,
    KB,
    MB,
    MINUTE,
    format_bytes,
    format_duration,
)


def test_byte_constants_decimal():
    assert KB == 1_000
    assert MB == 1_000_000
    assert GB == 1_000_000_000


def test_format_bytes():
    assert format_bytes(512) == "512 B"
    assert format_bytes(2_500) == "2.5 KB"
    assert format_bytes(250_000_000) == "250.0 MB"
    assert format_bytes(3 * GB) == "3.0 GB"


def test_format_duration_ranges():
    assert format_duration(12.345) == "12.35s"
    assert format_duration(90.0) == "1m30.0s"
    assert format_duration(3700.0) == "1h01m40s"
    assert format_duration(-90.0) == "-1m30.0s"


def test_minute_constant():
    assert 5 * MINUTE == 300.0
