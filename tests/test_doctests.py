"""Run the doctest examples embedded in module docstrings."""

import doctest

import pytest

import repro
import repro.simkernel.engine
import repro.simkernel.rng


@pytest.mark.parametrize("module", [
    repro.simkernel.engine,
    repro.simkernel.rng,
    repro,
], ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module.__name__} has no doctests to run"
    assert result.failed == 0
