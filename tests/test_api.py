"""Tests for the package's top-level surface."""

import repro


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quick_comparison_shape():
    table = repro.quick_comparison(load_probability=0.1, seed=2,
                                   n_hosts=8, n_processes=2, iterations=5)
    assert set(table) == {"nothing", "swap-greedy", "dlb", "cr"}
    assert all(v > 0 for v in table.values())


def test_quick_comparison_deterministic():
    a = repro.quick_comparison(seed=5, n_hosts=8, n_processes=2, iterations=5)
    b = repro.quick_comparison(seed=5, n_hosts=8, n_processes=2, iterations=5)
    assert a == b


def test_error_hierarchy():
    from repro import errors

    subclasses = [errors.SimulationError, errors.PlatformError,
                  errors.LoadModelError, errors.MpiError, errors.SwapError,
                  errors.PolicyError, errors.StrategyError,
                  errors.ExperimentError]
    for exc in subclasses:
        assert issubclass(exc, errors.ReproError)
    assert issubclass(errors.CommunicatorError, errors.MpiError)
    assert issubclass(errors.SchedulingError, errors.SimulationError)
