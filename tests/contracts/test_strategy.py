"""Tests for contract-triggered swapping."""

import pytest

from repro.app.iterative import ApplicationSpec
from repro.contracts.strategy import ContractSwapStrategy
from repro.core.policy import greedy_policy
from repro.load.base import ConstantLoadModel, LoadTrace
from repro.load.onoff import OnOffLoadModel
from repro.platform.cluster import make_platform
from repro.strategies.nothing import NothingStrategy
from repro.strategies.swapstrat import SwapStrategy
from repro.units import MB


def app(n, iters=8, flops=4e8, state=1 * MB):
    return ApplicationSpec(n_processes=n, iterations=iters,
                           flops_per_iteration=flops, state_bytes=state)


def homogeneous(n, seed=0):
    return make_platform(n, ConstantLoadModel(0), seed=seed,
                         speed_range=(100e6, 100e6 + 1e-6))


def load_host(platform, index, n_competing, from_t):
    platform.hosts[index].trace = LoadTrace(
        [0.0, from_t, 1e12], [0, n_competing], beyond_horizon="hold")


def test_quiescent_run_never_evaluates_policy():
    strategy = ContractSwapStrategy(greedy_policy())
    result = strategy.run(homogeneous(6), app(2))
    assert result.swap_count == 0
    assert strategy.decision_evaluations == 0
    assert strategy.contract_monitor.violations == 0


def test_violation_triggers_migration():
    platform = homogeneous(6)
    load_host(platform, 0, 3, from_t=5.0)
    load_host(platform, 1, 3, from_t=5.0)
    strategy = ContractSwapStrategy(greedy_policy(), violation_window=2)
    result = strategy.run(platform, app(2, iters=10))
    assert result.swap_count >= 1
    assert set(result.final_active).isdisjoint({0, 1})
    assert strategy.decision_evaluations >= 1


def test_renegotiation_accepts_unavoidable_slowdown():
    """All hosts degrade equally: the monitor fires once, the policy
    finds nothing better, the contract renegotiates, and no further
    evaluations happen."""
    platform = homogeneous(4)
    for h in range(4):
        load_host(platform, h, 1, from_t=5.0)
    strategy = ContractSwapStrategy(greedy_policy(), violation_window=1)
    result = strategy.run(platform, app(2, iters=10))
    assert result.swap_count == 0
    assert strategy.decision_evaluations == 1


def test_fewer_evaluations_than_plain_swap():
    """On a dynamic platform the contract gate evaluates the policy far
    less often than once per iteration, at a modest makespan cost."""
    def build():
        return make_platform(16, OnOffLoadModel(p=0.03, q=0.03), seed=7,
                             speed_range=(250e6, 350e6))

    a = ApplicationSpec(n_processes=4, iterations=30,
                        flops_per_iteration=4 * 1.8e10, state_bytes=1 * MB)
    contract = ContractSwapStrategy(greedy_policy())
    gated = contract.run(build(), a)
    plain = SwapStrategy(greedy_policy()).run(build(), a)
    nothing = NothingStrategy().run(build(), a)

    assert contract.decision_evaluations < a.iterations - 1
    assert gated.swap_count <= plain.swap_count
    # Still clearly better than doing nothing.
    assert gated.makespan < nothing.makespan
    # And within a modest factor of always-on swapping.
    assert gated.makespan < 1.25 * plain.makespan


def test_name_and_defaults():
    strategy = ContractSwapStrategy()
    assert strategy.name == "swap-contract-greedy"
    assert strategy.tolerance == pytest.approx(0.2)
