"""Tests for performance contracts and violation detection."""

import pytest

from repro.contracts.monitor import ContractMonitor, PerformanceContract
from repro.errors import StrategyError


def test_contract_validation():
    with pytest.raises(StrategyError):
        PerformanceContract(expected_iteration_time=0.0)
    with pytest.raises(StrategyError):
        PerformanceContract(expected_iteration_time=1.0, tolerance=-0.1)
    with pytest.raises(StrategyError):
        PerformanceContract(expected_iteration_time=1.0, violation_window=0)


def test_threshold():
    contract = PerformanceContract(expected_iteration_time=10.0,
                                   tolerance=0.2)
    assert contract.threshold == pytest.approx(12.0)


def test_violation_needs_consecutive_overruns():
    monitor = ContractMonitor(PerformanceContract(10.0, tolerance=0.2,
                                                  violation_window=3))
    assert not monitor.observe(13.0)
    assert not monitor.observe(13.0)
    assert monitor.observe(13.0)       # third consecutive fires
    assert monitor.violations == 1


def test_good_iteration_resets_counter():
    monitor = ContractMonitor(PerformanceContract(10.0, tolerance=0.2,
                                                  violation_window=2))
    assert not monitor.observe(13.0)
    assert not monitor.observe(9.0)    # reset
    assert not monitor.observe(13.0)
    assert monitor.observe(13.0)


def test_counter_resets_after_firing():
    monitor = ContractMonitor(PerformanceContract(10.0, violation_window=2))
    monitor.observe(13.0)
    assert monitor.observe(13.0)
    assert not monitor.observe(13.0)   # starts a new window
    assert monitor.observe(13.0)
    assert monitor.violations == 2


def test_exact_threshold_is_not_an_overrun():
    monitor = ContractMonitor(PerformanceContract(10.0, tolerance=0.2,
                                                  violation_window=1))
    assert not monitor.observe(12.0)
    assert monitor.observe(12.0001)


def test_renegotiation_updates_budget():
    monitor = ContractMonitor(PerformanceContract(10.0, tolerance=0.2,
                                                  violation_window=1))
    monitor.renegotiate(20.0)
    assert not monitor.observe(23.0)
    assert monitor.observe(25.0)
    assert monitor.contract.tolerance == pytest.approx(0.2)


def test_invalid_measurement_rejected():
    monitor = ContractMonitor(PerformanceContract(10.0))
    with pytest.raises(StrategyError):
        monitor.observe(0.0)


def test_observation_counting():
    monitor = ContractMonitor(PerformanceContract(10.0, violation_window=1))
    for value in (9.0, 11.0, 13.0, 9.0):
        monitor.observe(value)
    assert monitor.observations == 4
