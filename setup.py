"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
that ``python setup.py develop`` works on minimal environments that lack
the ``wheel`` package (PEP 660 editable installs need it, the legacy
develop command does not).
"""

from setuptools import setup

setup()
