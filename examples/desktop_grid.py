#!/usr/bin/env python3
"""Desktop grid: process swapping under owner reclamation.

The paper's related work sketches combining swapping with the eviction
mechanisms of desktop computing systems (Condor, XtremWeb, Entropia):
when a workstation owner comes back, the guest process should leave --
and with swapping policies it can *also* leave for performance.  This
demo puts an iterative application on a pool of personal workstations
whose owners come and go, and shows each technique's fate.

Run:  python examples/desktop_grid.py [seed] [owner_presence]
"""

import sys

from repro import (
    CrStrategy,
    DlbStrategy,
    NothingStrategy,
    SwapStrategy,
    greedy_policy,
    make_platform,
    paper_application,
)
from repro.load.onoff import OnOffLoadModel
from repro.load.owner import OwnerActivityModel
from repro.load.stats import trace_stats
from repro.units import format_duration


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    presence = float(sys.argv[2]) if len(sys.argv) > 2 else 0.35

    # 24 personal workstations: owners are present `presence` of the
    # time in ~10-minute sessions; light background load otherwise.
    model = OwnerActivityModel(presence_fraction=presence,
                               mean_presence=600.0,
                               base=OnOffLoadModel(p=0.01, q=0.02))
    platform = make_platform(24, model, seed=seed,
                             speed_range=(250e6, 350e6))
    app = paper_application(n_processes=4, iterations=40)

    print(f"desktop grid: 24 workstations, owner presence "
          f"{presence:.0%} (10-minute sessions), seed {seed}")
    revoked_now = sum(
        1 for host in platform.hosts
        if host.trace.value_at(0.0) >= 49)
    print(f"at t=0, {revoked_now} of 24 machines are owner-occupied")
    print(f"app: {app.describe()}")
    print()

    strategies = [NothingStrategy(), SwapStrategy(greedy_policy()),
                  DlbStrategy(), CrStrategy()]
    results = {s.name: s.run(platform, app) for s in strategies}
    baseline = results["nothing"].makespan

    print(f"{'technique':>12} | {'makespan':>10} | {'vs NOTHING':>10} | "
          f"{'migrations':>10}")
    print("-" * 52)
    for name, result in results.items():
        print(f"{name:>12} | {format_duration(result.makespan):>10} | "
              f"{result.makespan / baseline:>9.2f}x | "
              f"{result.swap_count + result.restart_count:>10d}")

    # How often did the swapping run sit on an owner-occupied machine?
    swap_result = results["swap-greedy"]
    occupied_time = 0.0
    for record in swap_result.records:
        for host in record.active:
            stats = trace_stats(platform.host(host).trace,
                                record.start, record.end)
            if stats.max_load >= 49:
                occupied_time += record.duration
                break
    fraction = occupied_time / swap_result.makespan
    print()
    print(f"swapping run spent {fraction:.0%} of its wall-clock with at "
          f"least one process on an owner-occupied machine")
    print("(each such iteration triggers an eviction-migration at the "
          "next swap point)")


if __name__ == "__main__":
    main()
