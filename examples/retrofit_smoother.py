#!/usr/bin/env python3
"""Retrofit a real iterative MPI code with process swapping.

This is the paper's headline use case: take an existing iterative MPI
application and make it swappable with three kinds of source changes --

1. the import (the paper's ``#include "mpi_swap.h"``),
2. ``swap.register(...)`` for the state to move on a swap,
3. one ``swap.mpi_swap(...)`` call at the top of the iteration loop.

The application here is a periodic 1-D upwind smoother: each of N
processes owns a segment of a ring-shaped field and repeatedly relaxes
it against the boundary value received from its left neighbour.  The
numerics run for real (numpy), while compute *time* follows the host's
simulated speed and external load.

The demo runs the solver twice on identical platforms -- once with
swapping enabled (greedy policy) and once with a policy that can never
pass its gates -- and shows that (a) swapping preserves the numerical
result bit-for-bit, because the state image travels with the work, and
(b) it finishes substantially earlier once external load hits the
original processors.

Run:  python examples/retrofit_smoother.py [seed]
"""

import sys

import numpy as np

from repro.core.policy import greedy_policy, safe_policy
from repro.load.base import LoadTrace
from repro.load.onoff import OnOffLoadModel
from repro.platform.cluster import make_platform
from repro.swap.context import SwapContext          # change 1: the import
from repro.swap.runtime import SwapRuntime
from repro.units import MB, format_duration

N_ACTIVE = 3
N_HOSTS = 8
ITERATIONS = 12
CELLS_PER_PROCESS = 1_000
CHUNK_FLOPS = 2.5e9          # ~10 s on an unloaded 250 MF/s workstation
STATE_BYTES = 8 * MB


def smoother_main(rank, swap: SwapContext):
    """The retrofitted application: one MPI process of the smoother."""
    swap.register("field", STATE_BYTES)               # change 2: register

    iteration = 0
    state = None  # lazily initialized below once we know our slot

    while True:
        iteration, state = yield from swap.mpi_swap(iteration, state)
        # ^ change 3: the swap point.  Everything below is ordinary code.
        if iteration is None:
            return None                    # we are a spare; job finished
        if iteration >= ITERATIONS:
            yield from swap.finish()
            return state
        if state is None:
            slot = swap.current_active.index(rank.world_rank)
            rng = np.random.default_rng(slot)
            state = {"field": rng.random(CELLS_PER_PROCESS), "slot": slot}

        # Compute phase: simulated time tracks the host's effective
        # speed; the numerics themselves are exact.
        yield from rank.compute(CHUNK_FLOPS)
        field = state["field"]
        field[1:] = 0.5 * (field[1:] + field[:-1])

        # Communication phase: pass our right boundary around the ring
        # and relax our first cell against the neighbour's boundary.
        left_boundary = yield from swap.exchange(
            nbytes=8.0, payload=float(field[-1]))
        field[0] = 0.5 * (field[0] + left_boundary)

        iteration += 1


def build_platform(seed):
    platform = make_platform(N_HOSTS, OnOffLoadModel(p=0.0, q=0.0),
                             seed=seed, speed_range=(250e6, 350e6))
    # Deterministic drama: the three initially fastest hosts get slammed
    # by external load 30 s into the run and never recover.
    from repro.strategies.scheduler import initial_schedule
    for victim in initial_schedule(platform, N_ACTIVE):
        platform.hosts[victim].trace = LoadTrace(
            [0.0, 30.0, 1e12], [0, 3], beyond_horizon="hold")
    return platform


def run(seed, policy):
    runtime = SwapRuntime(build_platform(seed), n_active=N_ACTIVE,
                          policy=policy, chunk_flops=CHUNK_FLOPS)
    job = runtime.launch(smoother_main)
    results = job.run_to_completion()
    manager = results[runtime.manager_rank]
    fields = sorted((r["slot"], r["field"]) for r in results[:N_HOSTS]
                    if r is not None)
    return runtime.sim.now, manager, [f for _slot, f in fields]


def main():
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0

    frozen = safe_policy().with_overrides(name="frozen",
                                          payback_threshold=1e-9)
    t_swap, mgr_swap, fields_swap = run(seed, greedy_policy())
    t_stay, mgr_stay, fields_stay = run(seed, frozen)

    print("periodic 1-D upwind smoother, "
          f"{N_ACTIVE} processes x {CELLS_PER_PROCESS} cells, "
          f"{ITERATIONS} iterations, {STATE_BYTES / MB:.0f} MB state/proc")
    print()
    print(f"  with swapping   : {format_duration(t_swap):>9}  "
          f"({mgr_swap.swap_count} swaps, final hosts "
          f"{mgr_swap.final_active})")
    print(f"  without swapping: {format_duration(t_stay):>9}  "
          f"(stuck on the loaded hosts)")
    print(f"  speedup         : {t_stay / t_swap:.2f}x")
    print()
    for event in mgr_swap.swaps:
        print(f"  swap at t={event.time:6.1f}s (iteration "
              f"{event.iteration}): host {event.out_rank} -> "
              f"host {event.in_rank}")

    identical = all(np.array_equal(a, b)
                    for a, b in zip(fields_swap, fields_stay))
    print()
    print(f"numerical result identical across both runs: {identical}")
    if not identical:
        raise SystemExit("state did not travel with the work!")


if __name__ == "__main__":
    main()
