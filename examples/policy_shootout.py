#!/usr/bin/env python3
"""Policy shootout: which swapping policy fits which regime?

Sweeps the greedy / safe / friendly policies (Section 4.2 of the paper)
over environment dynamism and over process state size, then prints a
recommendation matrix.  This reproduces the qualitative takeaways of the
paper's Figs. 7-8: greedy has the best upside and the worst downside;
safe never hurts; friendly is a reasonable middle ground until the
environment gets chaotic or the state gets heavy.

Run:  python examples/policy_shootout.py [n_seeds]
"""

import sys

import numpy as np

from repro.core.policy import friendly_policy, greedy_policy, safe_policy
from repro.experiments.scenarios import DYNAMISM, EVALUATION_SPEED_RANGE
from repro.app.workloads import paper_application
from repro.platform.cluster import make_platform
from repro.strategies.nothing import NothingStrategy
from repro.strategies.swapstrat import SwapStrategy
from repro.units import GB, KB, MB, format_bytes

DYNAMISM_POINTS = (0.2, 0.5, 0.85)
STATE_SIZES = (1 * MB, 100 * MB, 1 * GB)
POLICIES = (greedy_policy, safe_policy, friendly_policy)


def run_cell(dynamism, state_bytes, n_seeds):
    """Mean makespan ratio vs NOTHING for each policy at one cell."""
    ratios = {p().name: [] for p in POLICIES}
    for seed in range(n_seeds):
        platform = make_platform(32, DYNAMISM.model(dynamism), seed=seed,
                                 speed_range=EVALUATION_SPEED_RANGE)
        app = paper_application(n_processes=4, iterations=40,
                                bytes_per_process=100 * KB,
                                state_bytes=state_bytes)
        baseline = NothingStrategy().run(platform, app).makespan
        for policy_factory in POLICIES:
            policy = policy_factory()
            makespan = SwapStrategy(policy).run(platform, app).makespan
            ratios[policy.name].append(makespan / baseline)
    return {name: float(np.mean(values)) for name, values in ratios.items()}


def main():
    n_seeds = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    names = [p().name for p in POLICIES]

    print("mean makespan relative to NOTHING (lower is better, "
          f"{n_seeds} seeds per cell)")
    print()
    header = f"{'state / dynamism':>18} |" + "".join(
        f"{f'd={d:g}':>26} |" for d in DYNAMISM_POINTS)
    print(header)
    sub = f"{'':>18} |" + "".join(
        "".join(f"{n[:6]:>8}" for n in names) + "  |"
        for _ in DYNAMISM_POINTS)
    print(sub)
    print("-" * len(header))

    best = {}
    for state in STATE_SIZES:
        row = [f"{format_bytes(state):>18} |"]
        for d in DYNAMISM_POINTS:
            cell = run_cell(d, state, n_seeds)
            best[(state, d)] = min(cell, key=cell.get)
            row.append("".join(f"{cell[n]:>8.2f}" for n in names) + "  |")
        print("".join(row))

    print()
    print("recommended policy per regime:")
    for state in STATE_SIZES:
        picks = ", ".join(f"d={d:g}: {best[(state, d)]}"
                          for d in DYNAMISM_POINTS)
        print(f"  state {format_bytes(state):>9}: {picks}")

    print()
    print("paper's guidance: greedy for maximum benefit when swaps are "
          "cheap; safe when the")
    print("process image is large or the environment chaotic; friendly "
          "when sharing the")
    print("platform with other applications matters.")


if __name__ == "__main__":
    main()
