#!/usr/bin/env python3
"""Quickstart: compare the paper's four techniques on one platform.

Builds a 32-workstation shared LAN with moderately dynamic ON/OFF load,
runs the same iterative application under NOTHING, SWAP (greedy), DLB
and CR, and prints what each technique achieved.

Run:  python examples/quickstart.py [seed]
"""

import sys

from repro import (
    CrStrategy,
    DlbStrategy,
    NothingStrategy,
    OnOffLoadModel,
    SwapStrategy,
    greedy_policy,
    make_platform,
    paper_application,
)
from repro.units import format_duration


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0

    # The paper's environment: 32 time-shared workstations on a 6 MB/s
    # LAN.  p/q give persistent load events on roughly half the hosts.
    platform = make_platform(
        n_hosts=32,
        load_model_factory=OnOffLoadModel(p=0.015, q=0.02, step=10.0),
        seed=seed,
        speed_range=(250e6, 350e6),
    )

    # An iterative application: 4 processes, 50 iterations of ~1 minute,
    # 1 MB of process state to move on a swap.
    app = paper_application(n_processes=4, iterations=50)

    print(f"platform : 32 hosts, seed {seed}")
    print(f"app      : {app.describe()}")
    print()

    strategies = [
        NothingStrategy(),
        SwapStrategy(greedy_policy()),
        DlbStrategy(),
        CrStrategy(),
    ]
    results = {s.name: s.run(platform, app) for s in strategies}
    baseline = results["nothing"].makespan

    print(f"{'technique':>14} | {'makespan':>10} | {'vs NOTHING':>10} | "
          f"{'swaps/restarts':>14} | {'overhead':>9}")
    print("-" * 70)
    for name, result in results.items():
        events = result.swap_count + result.restart_count
        print(f"{name:>14} | {format_duration(result.makespan):>10} | "
              f"{result.makespan / baseline:>9.2f}x | {events:>14d} | "
              f"{format_duration(result.overhead_time):>9}")

    swap_result = results["swap-greedy"]
    print()
    print("swap timeline (iteration -> processor exchanges):")
    for event in swap_result.progress.events:
        if event.kind == "swap":
            print(f"  t={event.time:8.1f}s  after iteration "
                  f"{event.iterations_done:3d}: {event.detail}")
    if swap_result.swap_count == 0:
        print("  (the environment never warranted a swap)")

    from repro.experiments.timeline import ascii_timeline
    print()
    print(ascii_timeline(swap_result, n_hosts=len(platform)))


if __name__ == "__main__":
    main()
