#!/usr/bin/env python3
"""Explore the CPU load models and their effect on iteration times.

Renders one trace from each load model (ON/OFF, aggregated ON/OFF,
hyperexponential, replayed recording), prints its statistics, and shows
how the same compute chunk stretches under each load signal -- the
quantity every swapping decision ultimately reacts to.

Run:  python examples/load_model_explorer.py [seed]
"""

import sys

from repro.experiments.illustrations import ascii_load_strip
from repro.load.base import ConstantLoadModel
from repro.load.hyperexp import HyperexponentialLoadModel
from repro.load.onoff import AggregatedOnOffLoadModel, OnOffLoadModel
from repro.load.stats import trace_stats
from repro.load.trace import ReplayLoadModel
from repro.platform.host import Host, HostSpec
from repro.simkernel.rng import RngRegistry

WINDOW = 600.0
SPEED = 300e6          # a mid-range paper workstation
CHUNK = 0.5 * 60 * SPEED  # 30 s of dedicated compute


def models(seed):
    yield "dedicated workstation", ConstantLoadModel(0)
    yield "ON/OFF (paper Fig. 2: p=0.3, q=0.08)", OnOffLoadModel(
        p=0.3, q=0.08, step=10.0)
    yield "3 aggregated ON/OFF sources", AggregatedOnOffLoadModel.homogeneous(
        3, p=0.1, q=0.1)
    yield "hyperexponential (paper Fig. 3)", HyperexponentialLoadModel(
        mean_lifetime=60.0, utilization=1.2, branch_prob=0.3)
    yield "replayed recording (cyclic)", ReplayLoadModel(
        times=[0.0, 60.0, 90.0, 180.0, 240.0],
        values=[0, 2, 1, 0, 1],
        duration=300.0, cycle=True)


def main():
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    registry = RngRegistry(seed)

    for index, (title, model) in enumerate(models(seed)):
        host = Host(HostSpec(name=f"ws{index}", speed=SPEED,
                             load_model=model),
                    registry.stream("explorer", index), horizon=WINDOW)
        stats = trace_stats(host.trace, 0.0, WINDOW)
        print("=" * 76)
        print(f"{title}   [{model.describe()}]")
        print(ascii_load_strip(host.trace, 0.0, WINDOW))
        print(f"  mean load {stats.mean_load:.2f}  "
              f"mean availability {stats.mean_availability:.2f}  "
              f"busy {stats.busy_fraction:.0%}  "
              f"transitions/min {stats.transition_rate * 60:.2f}")

        # The same 30 s compute chunk, started every 2 minutes:
        durations = [host.compute_time(t0, CHUNK)
                     for t0 in (0.0, 120.0, 240.0, 360.0)]
        rendered = ", ".join(f"{d:.1f}s" for d in durations)
        print(f"  30s compute chunk started at t=0/120/240/360: {rendered}")
        print()


if __name__ == "__main__":
    main()
