"""Ablation benches for the Section 4.1 policy parameters.

The paper motivates each knob qualitatively; these sweeps quantify them
one at a time on a fixed environment.
"""


def test_ablation_payback_threshold(run_figure):
    """Smaller payback thresholds = more risk-aversion (fewer swaps)."""
    result = run_figure("ablation-payback", seeds=4)
    swap = result.series["swap"]
    # Swap volume grows (weakly) with a more permissive threshold.
    assert swap.swap_counts[0] <= swap.swap_counts[-1]
    # A strict threshold never performs dramatically worse than NOTHING.
    ratios = result.ratio_to("swap")
    assert ratios[0] < 1.3


def test_ablation_history_window(run_figure):
    """More history damps swap frequency."""
    result = run_figure("ablation-history", seeds=4)
    swap = result.series["swap"]
    assert swap.swap_counts[-1] <= swap.swap_counts[0]
    # In this fairly dynamic environment (d=0.7) some damping helps or at
    # least does not hurt much: the best window is not the largest one
    # necessarily, but the undamped extreme should not dominate all.
    ratios = result.ratio_to("swap")
    assert min(ratios) <= ratios[0] + 1e-9


def test_ablation_min_improvement(run_figure):
    """Higher minimum process improvement = swapping stiction."""
    result = run_figure("ablation-improvement", seeds=4)
    swap = result.series["swap"]
    assert swap.swap_counts[-1] <= swap.swap_counts[0]
    # At an absurd 80% threshold swapping (almost) never triggers, so the
    # makespan approaches NOTHING's.
    ratios = result.ratio_to("swap")
    assert abs(ratios[-1] - 1.0) < 0.1


def test_ablation_max_swaps_per_decision(run_figure):
    """Allowing plural swaps per epoch ('processor(s)') must not hurt."""
    result = run_figure("ablation-maxswaps", seeds=4)
    ratios = result.ratio_to("swap")
    # With 8 active processes, a cap of 1 exchange per epoch reacts more
    # slowly than a cap of 8.
    assert ratios[-1] <= ratios[0] + 0.05
