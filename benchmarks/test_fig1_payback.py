"""Fig. 1: the payback-distance concept, measured from simulated runs.

The figure shows application progress against time: the swap pauses the
application (flat segment), then the steeper post-swap slope erases the
cost; the time to catch the no-swap baseline is the payback distance.
We regenerate it from two actual runs and check that the Section 5
algebra predicts the observed catch-up point.
"""

import pytest

from repro.experiments.illustrations import ascii_progress, fig1_payback


def test_fig1(benchmark, capsys):
    illustration = benchmark.pedantic(fig1_payback, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("=" * 78)
        print(ascii_progress(illustration))
        print(f"analytic payback distance: "
              f"{illustration.analytic_payback_iterations:.2f} iterations "
              f"(swap cost {illustration.swap_cost:.1f}s, iteration "
              f"{illustration.old_iteration_time:.0f}s -> "
              f"{illustration.new_iteration_time:.0f}s)")
        print("=" * 78)

    # The pause length equals the modelled swap cost.
    start, end = illustration.swap_pause
    assert end - start == pytest.approx(illustration.swap_cost, rel=0.05)

    # The run catches the baseline, and does so within the analytic
    # payback distance (rounded up to whole iterations: progress is
    # compared at iteration boundaries).
    assert illustration.empirical_payback_time is not None
    import math
    allowed = (end + (math.ceil(illustration.analytic_payback_iterations) + 1)
               * illustration.new_iteration_time)
    assert illustration.empirical_payback_time <= allowed

    # Post-swap slope is steeper: new iteration time < old.
    assert illustration.new_iteration_time < illustration.old_iteration_time
