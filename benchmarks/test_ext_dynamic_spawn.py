"""Extension: over-allocation vs MPI-2 dynamic process spawning.

The paper flags over-allocation's fixed cost ("an over-allocation of 30
processors adds approximately 20 seconds to the application startup
time", hurting short runs) and points at MPI-2 dynamic process
management as the fix.  This bench quantifies the trade-off by sweeping
the application length.
"""


def test_ext_spawn(run_figure):
    result = run_figure("ext-spawn", seeds=5)
    overalloc = result.ratio_to("swap-overalloc")
    spawn = result.ratio_to("swap-spawn")

    # Short runs: over-allocation's 28 x 0.75 s of extra startup wipes
    # out the benefit (the paper's Section 7.1 limitation)...
    assert overalloc[0] > 0.97
    # ...which dynamic spawning avoids.
    assert spawn[0] < overalloc[0] - 0.03

    # Long runs: the startup difference amortizes away; both designs
    # deliver the same steady-state benefit.
    assert abs(spawn[-1] - overalloc[-1]) < 0.03
    assert overalloc[-1] < 0.75

    # Spawning is never substantially worse than over-allocation here
    # (its extra per-swap 0.75 s is tiny next to the 1 MB transfer +
    # iteration times).
    for s, o in zip(spawn, overalloc):
        assert s < o + 0.03
