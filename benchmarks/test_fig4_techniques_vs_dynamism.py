"""Fig. 4: execution time of NOTHING / SWAP / DLB / CR vs environment
dynamism (4 active of 32, 1 MB state).

Paper shape: little difference at the quiescent left, convergence at the
chaotic right, and in the moderately dynamic middle SWAP/DLB/CR beat
NOTHING by up to ~40%; DLB does not perform well in dynamic environments.
"""

from conftest import middle_band


def test_fig4(run_figure):
    result = run_figure("fig4", seeds=5)
    band = middle_band(result)

    # Quiescent left: all four techniques within a few percent.
    for name in ("swap-greedy", "dlb", "cr"):
        assert abs(result.ratio_to(name)[0] - 1.0) < 0.05

    # Moderately dynamic middle: adaptive techniques clearly win.
    swap_band = [result.ratio_to("swap-greedy")[i] for i in band]
    assert min(swap_band) < 0.75, "SWAP should gain >25% somewhere"
    assert result.best_improvement("swap-greedy") > 0.25
    assert result.best_improvement("cr") > 0.2
    assert result.best_improvement("dlb") > 0.1

    # DLB is the weakest adaptive technique in the dynamic band.
    dlb_band = [result.ratio_to("dlb")[i] for i in band]
    assert min(dlb_band) > min(swap_band), (
        "DLB should not beat SWAP's best case")

    # Chaotic right: SWAP no longer helps (converges, may slightly hurt).
    assert result.ratio_to("swap-greedy")[-1] > 0.9

    # NOTHING's execution time grows as the environment degrades.
    nothing = result.mean_of("nothing")
    assert max(nothing) > 1.5 * nothing[0]
