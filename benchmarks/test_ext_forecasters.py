"""Extension: forecast accuracy of the NWS predictor bank.

The paper's history-window parameter is a single fixed smoother; NWS
(which the paper cites as its measurement substrate) instead races many
methods online.  This bench measures each method's one-step-ahead MAE on
availability series sampled from the paper's two load models, and checks
that dynamic selection tracks the best single method.
"""

import numpy as np

from repro.load.hyperexp import HyperexponentialLoadModel
from repro.load.onoff import OnOffLoadModel
from repro.nws.forecasting import ForecasterBank
from repro.nws.sensors import CpuSensor
from repro.platform.host import Host, HostSpec


def availability_series(model, seed, horizon=20_000.0, period=10.0):
    host = Host(HostSpec(name="h", speed=300e6, load_model=model),
                np.random.default_rng(seed), horizon=horizon)
    host.trace = model.build(np.random.default_rng(seed), horizon)
    sensor = CpuSensor(host, period=period)
    return sensor.sample_range(0.0, horizon).values


def bank_study(model, n_seeds=4):
    """Aggregate per-method MAE plus the bank winner's MAE."""
    per_method: "dict[str, list[float]]" = {}
    winner_maes = []
    for seed in range(n_seeds):
        bank = ForecasterBank()
        for value in availability_series(model, seed):
            bank.update(value)
        for name, mae in bank.leaderboard():
            per_method.setdefault(name, []).append(mae)
        winner_maes.append(bank.leaderboard()[0][1])
    summary = {name: float(np.mean(values))
               for name, values in per_method.items()}
    return summary, float(np.mean(winner_maes))


def test_forecaster_bank_study(benchmark, capsys):
    def run():
        onoff = bank_study(OnOffLoadModel(p=0.05, q=0.05))
        hyper = bank_study(HyperexponentialLoadModel(mean_lifetime=120.0,
                                                     utilization=0.8))
        return onoff, hyper

    (onoff_summary, onoff_winner), (hyper_summary, hyper_winner) = (
        benchmark.pedantic(run, rounds=1, iterations=1))

    with capsys.disabled():
        print()
        print("=" * 70)
        print("one-step-ahead MAE of CPU availability forecasts")
        print(f"{'method':>16} | {'ON/OFF':>8} | {'hyperexp':>8}")
        print("-" * 40)
        for name in sorted(onoff_summary):
            print(f"{name:>16} | {onoff_summary[name]:>8.4f} | "
                  f"{hyper_summary[name]:>8.4f}")
        print(f"{'bank winner':>16} | {onoff_winner:>8.4f} | "
              f"{hyper_winner:>8.4f}")
        print("=" * 70)

    for summary, winner in ((onoff_summary, onoff_winner),
                            (hyper_summary, hyper_winner)):
        best_single = min(summary.values())
        # Dynamic selection is within 20% of the best fixed method...
        assert winner <= best_single * 1.2 + 1e-6
        # ...and much better than the worst one.
        assert winner < max(summary.values())

    # Persistent ON/OFF load rewards reactive methods over long means.
    assert onoff_summary["last"] < onoff_summary["running-mean"]
