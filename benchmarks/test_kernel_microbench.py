"""Micro-benchmarks of the simulation substrate itself.

Not a paper figure: these track the throughput of the hot paths that
every experiment sweep exercises -- the event loop, trace-segment
walking, fair-share flow completion, and the decision engine -- so
regressions in the substrate show up before they distort study runtimes.
"""

import numpy as np

from repro.app.iterative import ApplicationSpec
from repro.core.decision import decide_swaps
from repro.core.policy import greedy_policy
from repro.load.kernels import advance_work_many, integrate_availability_many
from repro.load.onoff import OnOffLoadModel
from repro.platform.cluster import make_platform
from repro.platform.network import FairShareLink, LinkSpec
from repro.simkernel.engine import Simulator
from repro.simkernel.plan import disable_lowering
from repro.strategies.swapstrat import SwapStrategy
from repro.units import MB


def test_event_loop_throughput(benchmark):
    """Chained timeouts: pure heap push/pop plus callback dispatch."""

    def run():
        sim = Simulator()
        count = 0

        def chain(_event):
            nonlocal count
            count += 1
            if count < 10_000:
                sim.timeout(1.0).add_callback(chain)

        sim.timeout(1.0).add_callback(chain)
        sim.run()
        return count

    assert benchmark(run) == 10_000


def test_coroutine_process_throughput(benchmark):
    """Generator processes yielding timeouts."""

    def run():
        sim = Simulator()

        def worker():
            for _ in range(2_000):
                yield sim.timeout(0.5)
            return True

        processes = [sim.process(worker()) for _ in range(5)]
        sim.run()
        return all(p.value for p in processes)

    assert benchmark(run)


def test_trace_advance_work_throughput(benchmark):
    """The strategy simulators' innermost loop: trace-segment walking."""
    trace = OnOffLoadModel(p=0.3, q=0.2).build(
        np.random.default_rng(0), 500_000.0)

    def run():
        t = 0.0
        for _ in range(2_000):
            t = trace.advance_work(t, 60.0)
        return t

    final = benchmark(run)
    assert final > 2_000 * 60.0 - 1.0


def test_fair_share_link_throughput(benchmark):
    """Many overlapping flows joining and completing."""

    def run():
        sim = Simulator()
        link = FairShareLink(sim, LinkSpec(latency=1e-4, bandwidth=6e6))

        def producer():
            for _ in range(200):
                done = link.transfer(100_000.0)
                yield done

        processes = [sim.process(producer()) for _ in range(4)]
        sim.run()
        return all(p.processed for p in processes)

    assert benchmark(run)


def test_decision_engine_throughput(benchmark):
    """decide_swaps over a 32-host pool, the per-iteration policy cost."""
    rng = np.random.default_rng(7)
    rates = {i: float(r) for i, r in
             enumerate(rng.uniform(100e6, 500e6, size=32))}
    active = list(range(8))
    spares = list(range(8, 32))
    chunks = {h: 1.8e10 for h in active}
    params = greedy_policy()

    def run():
        decisions = 0
        for _ in range(500):
            decision = decide_swaps(active, spares, rates, chunks,
                                    comm_time=0.1, swap_cost=0.3,
                                    params=params)
            decisions += len(decision.moves)
        return decisions

    benchmark(run)


# -- the vectorized kernels (docs/PERFORMANCE.md "numpy load-trace
# kernels" section gets its numbers from the three benches below) -----------


def test_batch_integration_throughput(benchmark):
    """integrate/advance across a 32-host pool in one batch call each --
    the per-decision-epoch pattern the batch entry points serve."""
    rng = np.random.default_rng(11)
    model = OnOffLoadModel(p=0.3, q=0.2)
    traces = [model.build(np.random.default_rng(int(s)), 200_000.0)
              for s in rng.integers(0, 2**31, size=32)]
    demands = [60.0] * len(traces)

    def run():
        total = 0.0
        t = 0.0
        for _ in range(500):
            total += float(integrate_availability_many(
                traces, t, t + 120.0).sum())
            t = float(advance_work_many(traces, t, demands).max())
        return total

    assert benchmark(run) > 0.0


def test_prefix_sum_invalidation_cost(benchmark):
    """append_segment + kernel() recompile: the mutation side of the
    cache.  Incremental tail extension keeps this O(appended segments),
    not O(trace length) -- the number to watch here."""
    base = OnOffLoadModel(p=0.3, q=0.2).build(
        np.random.default_rng(3), 500_000.0)
    times = list(base._times)
    values = list(base._values)

    def run():
        from repro.load.base import LoadTrace

        trace = LoadTrace([0.0] + times[1:1000],
                          values[:999], beyond_horizon="hold")
        trace.kernel()  # compile once; the loop pays only extension
        total = 0.0
        for i in range(2_000):
            trace.append_segment(trace.horizon + 5.0, i % 3)
            total += trace.kernel().cum_list[-1]
        return total

    assert benchmark(run) > 0.0


def _lowering_workload():
    platform = make_platform(10, OnOffLoadModel(p=0.3, q=0.3), seed=5)
    app = ApplicationSpec(n_processes=4, iterations=400,
                          flops_per_iteration=4e8, state_bytes=1 * MB)
    return platform, app


def test_lowered_scenario_throughput(benchmark):
    """Full SWAP run with the lowering pipeline on (the production path;
    compare against test_unlowered_scenario_throughput)."""

    def run():
        platform, app = _lowering_workload()
        return SwapStrategy(greedy_policy()).run(platform, app).makespan

    lowered = benchmark(run)
    with disable_lowering():
        platform, app = _lowering_workload()
        reference = SwapStrategy(greedy_policy()).run(platform, app).makespan
    assert lowered == reference  # float-identity contract


def test_unlowered_scenario_throughput(benchmark):
    """The same run with every binding on the generic per-host chain."""

    def run():
        with disable_lowering():
            platform, app = _lowering_workload()
            return SwapStrategy(greedy_policy()).run(platform, app).makespan

    assert benchmark(run) > 0.0
