"""Fig. 6: effect of process size on SWAP and CR (1 MB vs 1 GB state).

Paper shape: NOTHING and DLB do not depend on process size.  SWAP and CR
transition from beneficial at 1 MB to harmful at 1 GB, where the swap
time exceeds the application iteration time ("the application spends all
its time swapping, chasing an unobtainable performance").
"""

from conftest import middle_band


def test_fig6(run_figure):
    result = run_figure("fig6", seeds=4)
    band = middle_band(result)

    small_swap = result.ratio_to("swap-1MB")
    small_cr = result.ratio_to("cr-1MB")
    large_swap = result.ratio_to("swap-1GB")
    large_cr = result.ratio_to("cr-1GB")

    # 1 MB state: beneficial in the dynamic middle.
    assert min(small_swap[i] for i in band) < 0.8
    assert min(small_cr[i] for i in band) < 0.8

    # 1 GB state: harmful wherever there is load to chase.
    assert all(large_swap[i] > 1.0 for i in band)
    assert all(large_cr[i] > 1.0 for i in band)
    assert max(large_swap) > 2.0
    assert max(large_cr) > 2.0

    # At every dynamism level the 1 GB variant is no better than 1 MB.
    for i in range(len(result.x_values)):
        assert large_swap[i] >= small_swap[i] - 1e-9
        assert large_cr[i] >= small_cr[i] - 1e-9

    # Quiescent environment: state size is irrelevant (no swaps happen).
    assert abs(large_swap[0] - small_swap[0]) < 0.02
