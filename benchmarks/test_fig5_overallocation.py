"""Fig. 5: execution time vs over-allocation (8 active processes,
moderately dynamic environment, 1 MB state).

Paper shape: SWAP and CR improve as spares are added, with substantial
benefit needing ~100% over-allocation; DLB consistently outperforms
NOTHING; at substantial over-allocation SWAP's gain roughly doubles
DLB's; NOTHING/DLB improve only slightly (more initial-placement
options).
"""


def test_fig5(run_figure):
    result = run_figure("fig5", seeds=5)
    swap = result.ratio_to("swap-greedy")
    cr = result.ratio_to("cr")
    dlb = result.ratio_to("dlb")

    # Zero over-allocation: nothing to swap to, CR cannot move either.
    assert swap[0] == 1.0
    assert cr[0] == 1.0

    # SWAP and CR improve with more spares (front vs back of the sweep).
    assert min(swap[-2:]) < min(swap[:2]) - 0.05
    assert min(cr[-2:]) < min(cr[:2])

    # Substantial benefit arrives around 100% over-allocation.
    idx_100 = result.x_values.index(100.0)
    assert swap[idx_100] < 0.93

    # DLB consistently beats NOTHING but barely changes with pool size.
    assert all(r < 1.0 for r in dlb)
    assert max(dlb) - min(dlb) < 0.15

    # At substantial over-allocation SWAP's gain dwarfs DLB's (paper:
    # "double the performance gain of DLB").
    swap_gain = 1.0 - swap[-1]
    dlb_gain = 1.0 - dlb[-1]
    assert swap_gain > 1.5 * dlb_gain

    # NOTHING itself drifts down only slightly (scheduler has options).
    nothing = result.mean_of("nothing")
    assert nothing[-1] < nothing[0]
    assert nothing[-1] > 0.75 * nothing[0]
