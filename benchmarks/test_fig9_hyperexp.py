"""Fig. 9: the four techniques under the hyperexponential load model,
swept over the mean competing-process lifetime (4 active of 32, 1 MB
state).

Paper shape: "swapping remains viable under this CPU load model.  In
fact, the larger percentage of long-running jobs created under the
hyperexponential model increases the dynamism range over which swapping
is beneficial."
"""


def test_fig9(run_figure):
    result = run_figure("fig9", seeds=5)
    swap = result.ratio_to("swap-greedy")
    cr = result.ratio_to("cr")
    dlb = result.ratio_to("dlb")

    # Swapping is beneficial across the *entire* lifetime sweep -- the
    # heavy-tailed lifetimes always leave persistent load to escape.
    assert all(r < 1.0 for r in swap)
    assert result.best_improvement("swap-greedy") > 0.25

    # CR tracks SWAP closely; both beat DLB's best.
    assert all(r < 1.0 for r in cr)
    assert min(swap) < min(dlb)

    # NOTHING suffers most where lifetimes are short-but-heavy-tailed
    # (many arrivals, some of which last very long).
    nothing = result.mean_of("nothing")
    assert nothing[0] > nothing[-1]
