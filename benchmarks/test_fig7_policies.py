"""Fig. 7: the greedy / safe / friendly policies vs dynamism
(4 active of 32, 100 MB state).

Paper shape: greedy provides the largest boost; friendly "does
surprisingly well in moderately chaotic environments, almost keeping
pace with the greedy policy" but collapses in chaos; safe gains less but
outperforms greedy in the most chaotic environments.
"""

from conftest import middle_band


def test_fig7(run_figure):
    result = run_figure("fig7", seeds=5)
    band = middle_band(result)
    greedy = result.ratio_to("swap-greedy")
    safe = result.ratio_to("swap-safe")
    friendly = result.ratio_to("swap-friendly")

    # Greedy has the single largest gain of the three policies.
    assert min(greedy) <= min(safe) + 1e-9
    assert min(greedy) <= min(friendly) + 0.02
    assert result.best_improvement("swap-greedy") > 0.15

    # Friendly nearly keeps pace with greedy in the moderate band.
    gap = max(friendly[i] - greedy[i] for i in band)
    assert gap < 0.12

    # ... but collapses in the most chaotic environments, as does greedy.
    assert max(greedy[-2:]) > 1.1
    assert max(friendly[-2:]) > 1.05

    # Safe is risk-averse: never much worse than NOTHING anywhere...
    assert max(safe) < 1.1
    # ...and beats greedy at the chaotic end.
    assert safe[-1] < greedy[-1]
    assert safe[-2] < greedy[-2]

    # Safe's benefit is real but smaller than greedy's in the middle.
    assert min(safe[i] for i in band) < 1.0
    assert min(safe[i] for i in band) > min(greedy[i] for i in band)
