"""Overhead of the observability layer (repro.obs).

Not a paper figure: these guard the acceptance criterion that tracing
costs nothing when it is off.  With no active session the strategies'
emit helpers reduce to one module-global read, and the kernel takes the
``hooks is None`` fast path -- an uninstrumented sweep must therefore
emit exactly zero records.  A traced run of the same sweep is timed
alongside for the perf trajectory.
"""

from repro import obs
from repro.experiments.executor import execute_sweep
from repro.experiments.scenarios import get_scenario


def test_disabled_tracing_emits_zero_events(benchmark):
    """The hard guarantee: no session, no records, no counter bumps."""
    spec = get_scenario("fig4")

    def run():
        before = obs.emitted_total()
        execute_sweep(spec, seeds=1)
        return obs.emitted_total() - before

    assert benchmark.pedantic(run, rounds=1, iterations=1) == 0
    assert obs.active() is None


def test_traced_sweep_emits_and_stays_deterministic(benchmark):
    """The instrumented counterpart: every cell contributes records."""
    spec = get_scenario("fig4")

    def run():
        session = obs.ObsSession()
        execute_sweep(spec, seeds=1, obs_session=session)
        return session

    session = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(session.trace) > 0
    kinds = {r["kind"] for r in session.trace.records}
    assert "decision" in kinds and "iteration" in kinds
    counters = session.metrics.to_dict()["counters"]
    assert counters["decision.epochs_total"] > 0
