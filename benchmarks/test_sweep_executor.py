"""Benchmarks of the sweep executor itself (not a paper figure).

Tracks the three execution modes of :mod:`repro.experiments.executor` on
the fig4 sweep: the serial reference path, the process-pool fan-out, and
a warm content-addressed cache.  On a multi-core runner the parallel
bench should approach ``1/jobs`` of the serial wall time; the warm-cache
bench must compute zero cells regardless of core count.  All three land
in ``benchmarks/BENCH_sweeps.json`` via the conftest session hook.
"""

import json

from repro.experiments.executor import execute_sweep
from repro.experiments.scenarios import get_scenario

SEEDS = 3


def test_fig4_sweep_serial(run_figure):
    run_figure("fig4", seeds=SEEDS, jobs=1)


def test_fig4_sweep_parallel_4_workers(run_figure):
    result = run_figure("fig4", seeds=SEEDS, jobs=4)
    serial = execute_sweep(get_scenario("fig4"), seeds=SEEDS, jobs=1)[0]
    assert (json.dumps(result.to_dict(), sort_keys=True)
            == json.dumps(serial.to_dict(), sort_keys=True))


def test_fig4_sweep_warm_cache(benchmark, tmp_path):
    spec = get_scenario("fig4")
    cold, cold_timing = execute_sweep(spec, seeds=SEEDS, cache_dir=tmp_path)
    assert cold_timing.cells_computed == cold_timing.cells_total

    def warm():
        result, timing = execute_sweep(spec, seeds=SEEDS, cache_dir=tmp_path)
        assert timing.cells_computed == 0
        assert timing.cache_hits == timing.cells_total
        return result

    result = benchmark.pedantic(warm, rounds=1, iterations=1)
    assert (json.dumps(result.to_dict(), sort_keys=True)
            == json.dumps(cold.to_dict(), sort_keys=True))
