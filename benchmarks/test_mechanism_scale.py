"""Scale bench of the discrete-event swap mechanism.

Runs a full paper-size job (32 hosts + manager, 4 active, ON/OFF churn)
on the DES MPI runtime and reports simulated-seconds-per-wall-second and
event throughput -- the cost of mechanism-level fidelity relative to the
iteration-level strategy simulator the figures use.
"""

from repro.core.policy import greedy_policy
from repro.load.onoff import OnOffLoadModel
from repro.platform.cluster import make_platform
from repro.swap.runtime import SwapRuntime
from repro.units import MB


def test_full_size_mechanism_job(benchmark, capsys):
    def run():
        platform = make_platform(32, OnOffLoadModel(p=0.02, q=0.03),
                                 seed=1, speed_range=(250e6, 350e6))
        runtime = SwapRuntime(platform, n_active=4, policy=greedy_policy(),
                              chunk_flops=1.8e10)
        result = runtime.run_iterative(iterations=20, exchange_bytes=1e5,
                                       state_bytes=1 * MB)
        return runtime, result

    runtime, result = benchmark.pedantic(run, rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print(f"DES job: 33 ranks, 20 iterations, "
              f"{result.swap_count} swaps, makespan "
              f"{result.makespan:.0f} simulated seconds, "
              f"{runtime.sim.processed_events} events, "
              f"{runtime.mpi.messages_delivered} MPI messages")

    assert result.makespan > 0
    assert runtime.sim.processed_events > 1000
    # The mechanism stays tractable: well under a million events for a
    # full-size run.
    assert runtime.sim.processed_events < 1_000_000
    # The protocol is quiet: control traffic stays proportional to
    # iterations x ranks, not events.
    assert runtime.mpi.messages_delivered < 50_000
