"""Fig. 8: policies with a large (1 GB) process state, where the swap
time is about twice the iteration time (2 active of 32).

Paper shape: "When the process size becomes large, only the safe policy
is appropriate."  Greedy (and friendly, in dynamic regimes) keep paying
huge transfers for gains the environment revokes before they amortize --
"the application spends all its time swapping".
"""

from conftest import middle_band


def test_fig8(run_figure):
    result = run_figure("fig8", seeds=5)
    band = middle_band(result, lo=0.4, hi=0.85)
    greedy = result.ratio_to("swap-greedy")
    safe = result.ratio_to("swap-safe")
    friendly = result.ratio_to("swap-friendly")

    # Safe effectively refuses to swap: indistinguishable from NOTHING.
    assert all(abs(r - 1.0) < 0.05 for r in safe)

    # Greedy is harmful across the loaded portion of the sweep and
    # catastrophically so somewhere.
    assert all(greedy[i] > 1.0 for i in band)
    assert max(greedy) > 2.0

    # Friendly also thrashes once the environment is dynamic enough.
    assert max(friendly[i] for i in band) > 1.2

    # Safe is the best policy at every dynamic point -- the figure's
    # headline.
    for i in band:
        assert safe[i] <= greedy[i]
        assert safe[i] <= friendly[i]
