"""Fig. 2: an example ON/OFF CPU load trace (p=0.3, q=0.08).

Regenerates the exemplar trace and checks its statistics against the
chain's analytics: stationary ON fraction p/(p+q), geometric ON dwell of
step/q seconds, and the binary competing-process count.
"""

import numpy as np
import pytest

from repro.experiments.illustrations import ascii_load_strip, fig2_onoff_trace
from repro.load.stats import trace_stats


def test_fig2(benchmark, capsys):
    exemplar = benchmark.pedantic(fig2_onoff_trace, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("=" * 78)
        print(f"Fig. 2 exemplar: {exemplar.description}")
        print(ascii_load_strip(exemplar.trace, 0.0, exemplar.window))
        print(exemplar.stats)
        print("=" * 78)

    # Binary load: 0 or 1 competing process.
    assert exemplar.stats.max_load <= 1

    # Long-run statistics (averaged over seeds) match the chain.
    fractions, dwells = [], []
    for seed in range(10):
        trace = fig2_onoff_trace(seed=seed, window=50_000.0).trace
        stats = trace_stats(trace, 0.0, 50_000.0)
        fractions.append(stats.busy_fraction)
        dwells.append(stats.mean_busy_interval)
    assert np.mean(fractions) == pytest.approx(0.3 / 0.38, abs=0.05)
    assert np.mean(dwells) == pytest.approx(10.0 / 0.08, rel=0.15)
