"""Fig. 3: an example hyperexponential CPU load trace.

Unlike the ON/OFF exemplar, multiple competing processes may overlap and
lifetimes are heavy-tailed (degenerate hyperexponential).
"""

import numpy as np
import pytest

from repro.experiments.illustrations import (
    ascii_load_strip,
    fig3_hyperexp_trace,
)
from repro.load.stats import trace_stats


def test_fig3(benchmark, capsys):
    exemplar = benchmark.pedantic(fig3_hyperexp_trace, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("=" * 78)
        print(f"Fig. 3 exemplar: {exemplar.description}")
        print(ascii_load_strip(exemplar.trace, 0.0, exemplar.window))
        print(exemplar.stats)
        print("=" * 78)

    # Overlapping competing processes occur somewhere in the exemplars.
    max_loads = [fig3_hyperexp_trace(seed=s, window=5_000.0).stats.max_load
                 for s in range(6)]
    assert max(max_loads) >= 2

    # Long-run mean load converges to the offered utilization (M/G/inf
    # insensitivity), here 1.2.
    means = []
    for seed in range(6):
        trace = fig3_hyperexp_trace(seed=seed, window=100_000.0).trace
        means.append(trace_stats(trace, 0.0, 100_000.0).mean_load)
    assert np.mean(means) == pytest.approx(1.2, rel=0.2)
