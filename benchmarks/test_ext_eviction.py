"""Extension: the four techniques under desktop-grid owner reclamation.

The paper's Section 2 sketches (but does not evaluate) combining the
swapping policies with Condor-style eviction: "a process might also be
evicted and migrated for application performance reasons."  This bench
realizes that study: workstation owners reclaim their machines for
10-minute sessions; a revoked guest process receives at most 2% of the
CPU until it migrates or the owner leaves.
"""


def test_ext_eviction(run_figure):
    result = run_figure("ext-eviction", seeds=4)
    swap = result.ratio_to("swap-greedy")
    cr = result.ratio_to("cr")
    dlb = result.ratio_to("dlb")
    nothing = result.mean_of("nothing")

    # NOTHING collapses as reclamations grow: stalled processes dominate.
    assert nothing[-1] > 4.0 * nothing[0]

    # Swapping absorbs reclamations: its advantage *grows* with presence.
    assert swap[-1] < swap[0]
    assert min(swap) < 0.5

    # Migration-capable techniques (SWAP, CR) beat pure rebalancing (DLB)
    # once reclamation is common: DLB is stuck feeding crumbs to revoked
    # hosts it can never leave.
    assert swap[-1] < dlb[-1]
    assert cr[-1] < dlb[-1]

    # Everyone still beats NOTHING everywhere with load present.
    for series in (swap, cr, dlb):
        assert all(r < 1.0 for r in series[1:])
