"""Extension: GrADS-style contract-gated swapping.

The paper's conclusion mentions ongoing integration of process swapping
into the GrADS architecture, whose contract monitor gates rescheduling.
This bench compares every-iteration policy evaluation (the paper's
runtime) against contract-triggered evaluation across dynamism.
"""


def test_ext_contracts(run_figure):
    result = run_figure("ext-contracts", seeds=4)
    every = result.ratio_to("swap-every-iter")
    gated = result.ratio_to("swap-contract")

    # The contract gate keeps most of the benefit in the moderate band...
    assert min(gated) < 0.8
    # ...but reacts more slowly than per-iteration evaluation, so it
    # gives up part of the gain where the environment moves fast.
    for e, g in zip(every, gated):
        assert g >= e - 0.02

    # Quiescent end: both inert and equal to each other.
    assert abs(gated[0] - every[0]) < 0.01

    # Both still beat NOTHING across the beneficial middle.
    mid = [i for i, x in enumerate(result.x_values) if 0.2 <= x <= 0.7]
    assert all(gated[i] < 0.95 for i in mid)
