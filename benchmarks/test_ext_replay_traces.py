"""Extension: replayed diurnal office traces (the paper's future work).

"Augmenting the simulation with CPU load traces that better reflect
actual environments will help ensure our policies are beneficial."
The platform mimics the paper's validation environment (an HP intranet
of personal workstations): owners keep jittered 9-to-5 hours, a quarter
of the machines are ownerless lab boxes, and the application's start
hour is swept across the day.
"""


def test_ext_replay(run_figure):
    result = run_figure("ext-replay", seeds=4)
    swap = result.ratio_to("swap-greedy")
    cr = result.ratio_to("cr")
    nothing = result.mean_of("nothing")
    hours = result.x_values

    def at(hour):
        return hours.index(hour)

    # Off-hours starts (night/evening): a ~45-minute run sees a static
    # environment; all techniques equal and swapping never fires.
    for hour in (2.0, 6.0, 20.0):
        assert abs(swap[at(hour)] - 1.0) < 0.03
        assert abs(cr[at(hour)] - 1.0) < 0.03

    # Starting just before the offices fill (8am): NOTHING gets caught by
    # arriving owners; migration to the lab machines pays.
    assert swap[at(8.0)] < 0.93
    assert cr[at(8.0)] < 0.93

    # Mid-day starts: the initial scheduler already avoids busy machines,
    # so there is nothing left to escape -- but NOTHING's *absolute* time
    # is worse than at night (the free pool is smaller and slower).
    assert nothing[at(10.0)] > nothing[at(2.0)]
    assert abs(swap[at(10.0)] - 1.0) < 0.03

    # The 8am start is the worst moment for NOTHING across the day.
    assert nothing[at(8.0)] == max(nothing)
