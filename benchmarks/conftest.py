"""Shared helpers for the figure-regenerating benchmarks.

Every benchmark (a) re-runs the full sweep behind one of the paper's
figures, (b) prints the regenerated series next to the paper's claim, and
(c) asserts the claim's *shape* (who wins, by roughly what factor, where
the crossovers fall).  Timings come from pytest-benchmark; since one
sweep is already a replicated experiment, each bench runs a single round.

Each sweep executed through :func:`run_figure` also records a
:class:`~repro.experiments.executor.SweepTiming`; at session end they are
folded into ``benchmarks/BENCH_sweeps.json`` (wall time, cells computed
vs. cache hits, events/sec) -- the perf-trajectory artifact described in
docs/PERFORMANCE.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.executor import append_bench_record, execute_sweep
from repro.experiments.report import ascii_chart, format_table, shape_summary
from repro.experiments.runner import SweepResult
from repro.experiments.scenarios import get_scenario

#: Timing records collected this session, written out at session finish.
_SWEEP_TIMINGS: "list" = []

#: Where the perf-trajectory records land.
BENCH_SWEEPS_PATH = Path(__file__).parent / "BENCH_sweeps.json"


@pytest.fixture
def run_figure(benchmark, capsys):
    """Run one scenario under the benchmark timer and print its report."""

    def runner(name: str, seeds: int | None = None, chart: bool = False,
               jobs: int = 1, cache_dir=None) -> SweepResult:
        spec = get_scenario(name)

        def once() -> SweepResult:
            result, timing = execute_sweep(spec, seeds=seeds, jobs=jobs,
                                           cache_dir=cache_dir)
            _SWEEP_TIMINGS.append(timing)
            return result

        result = benchmark.pedantic(once, rounds=1, iterations=1)
        with capsys.disabled():
            print()
            print("=" * 78)
            print(format_table(result, baseline="nothing"
                               if "nothing" in result.series else None))
            if "nothing" in result.series:
                print()
                print(shape_summary(result, baseline="nothing"))
            if chart:
                print()
                print(ascii_chart(result))
            print("=" * 78)
        return result

    return runner


def pytest_sessionfinish(session, exitstatus):
    """Fold every sweep timing of this session into BENCH_sweeps.json."""
    for timing in _SWEEP_TIMINGS:
        append_bench_record(BENCH_SWEEPS_PATH, timing)


def middle_band(result: SweepResult, lo: float = 0.25,
                hi: float = 0.8) -> "list[int]":
    """Indices of x values inside the moderately-dynamic band."""
    return [i for i, x in enumerate(result.x_values) if lo <= x <= hi]
