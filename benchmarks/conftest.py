"""Shared helpers for the figure-regenerating benchmarks.

Every benchmark (a) re-runs the full sweep behind one of the paper's
figures, (b) prints the regenerated series next to the paper's claim, and
(c) asserts the claim's *shape* (who wins, by roughly what factor, where
the crossovers fall).  Timings come from pytest-benchmark; since one
sweep is already a replicated experiment, each bench runs a single round.
"""

from __future__ import annotations

import pytest

from repro.experiments.report import ascii_chart, format_table, shape_summary
from repro.experiments.runner import SweepResult, run_sweep
from repro.experiments.scenarios import get_scenario


@pytest.fixture
def run_figure(benchmark, capsys):
    """Run one scenario under the benchmark timer and print its report."""

    def runner(name: str, seeds: int | None = None,
               chart: bool = False) -> SweepResult:
        spec = get_scenario(name)
        result = benchmark.pedantic(
            lambda: run_sweep(spec, seeds=seeds), rounds=1, iterations=1)
        with capsys.disabled():
            print()
            print("=" * 78)
            print(format_table(result, baseline="nothing"
                               if "nothing" in result.series else None))
            if "nothing" in result.series:
                print()
                print(shape_summary(result, baseline="nothing"))
            if chart:
                print()
                print(ascii_chart(result))
            print("=" * 78)
        return result

    return runner


def middle_band(result: SweepResult, lo: float = 0.25,
                hi: float = 0.8) -> "list[int]":
    """Indices of x values inside the moderately-dynamic band."""
    return [i for i, x in enumerate(result.x_values) if lo <= x <= hi]
