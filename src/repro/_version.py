"""Single source of the package version."""

__version__ = "1.1.0"
