"""Checkpoint/restart (the paper's "CR" technique).

"At each iteration, the execution rate is analyzed.  If performance can
be increased by using another set of processors, based on the same
criteria used to evaluate process swapping decisions, the application is
checkpointed. ... application state information is written to a central
location.  Upon application restart, the checkpoint is read by each
process, and execution resumes.  Our simulations account for the overhead
of writing and reading the checkpoint" plus the MPI startup of the
restarted processes.

Unlike SWAP, CR is not restricted to pairwise exchanges: a restart may
move the whole application to the ``N`` currently-fastest hosts of the
pool.  It pays for that freedom with a much larger reconfiguration cost
(2 x N state images over the shared link, plus startup).
"""

from __future__ import annotations

from repro import obs
from repro.app.iterative import ApplicationSpec
from repro.core.decision import evaluate_reconfiguration
from repro.core.policy import PolicyParams, greedy_policy
from repro.platform.cluster import Platform
from repro.strategies.base import ExecutionResult, IterationRecord, Strategy
from repro.strategies.scheduler import initial_schedule


class CrStrategy(Strategy):
    """Whole-set migration via checkpoint/restart, policy-gated."""

    name = "cr"

    def __init__(self, policy: PolicyParams | None = None) -> None:
        self.policy = policy or greedy_policy()
        if self.policy.name != "greedy":
            self.name = f"cr-{self.policy.name}"

    def restart_cost(self, platform: Platform, app: ApplicationSpec) -> float:
        """Checkpoint write + MPI restart + checkpoint read."""
        n = app.n_processes
        write = platform.link.serialized_time(n * app.state_bytes, n)
        read = platform.link.serialized_time(n * app.state_bytes, n)
        return write + platform.startup_time(n) + read

    def run(self, platform: Platform, app: ApplicationSpec) -> ExecutionResult:
        self.check_fit(platform, app)
        result = ExecutionResult(strategy=self.name, app=app)

        active = initial_schedule(platform, app.n_processes, t=0.0)
        comm_time = self.comm_time(platform, app)
        cost = self.restart_cost(platform, app)
        chunk = app.chunk_flops

        t = platform.startup_time(app.n_processes)
        result.startup_time = t
        result.progress.record(t, 0, "startup")

        for i in range(1, app.iterations + 1):
            iter_start = t
            ran_on = tuple(active)
            chunks = {h: chunk for h in active}
            compute_end, iter_end = self.run_iteration(platform, chunks, t,
                                                       comm_time)
            t = iter_end
            result.progress.record(t, i, "iteration")
            obs.emit("iteration", iter_end, source=self.name, iteration=i,
                     start=iter_start, end=iter_end,
                     compute_end=compute_end, active=ran_on)
            obs.count("strategy.iterations_total")

            overhead = 0.0
            event = ""
            if i < app.iterations:
                rates = self.predicted_rates(platform, t,
                                             self.policy.history_window)
                candidate = initial_schedule(platform, app.n_processes, t=t,
                                             window=self.policy.history_window)
                if set(candidate) != set(active):
                    old_iter = max(chunk / rates[h] for h in active) + comm_time
                    new_iter = max(chunk / rates[h] for h in candidate) + comm_time
                    check = evaluate_reconfiguration(old_iter, new_iter, cost,
                                                     self.policy)
                    obs.emit_check(t, source=self.name, iteration=i,
                                   policy=self.policy.name, check=check,
                                   cost=cost, active=active,
                                   candidate=candidate)
                    if check.accepted:
                        overhead = cost
                        event = "checkpoint"
                        active = candidate
                        result.restart_count += 1
                        result.overhead_time += overhead
                        t += overhead
                        result.progress.record(t, i, "checkpoint")
                        obs.emit("checkpoint", t, source=self.name,
                                 iteration=i, new_active=active,
                                 cost=cost, start=iter_end, end=t)
                        obs.count("cr.restarts_total")

            result.records.append(IterationRecord(
                index=i, start=iter_start, compute_end=compute_end,
                end=iter_end, active=ran_on, overhead_after=overhead,
                event=event))

        result.makespan = t
        result.final_active = tuple(active)
        return result
