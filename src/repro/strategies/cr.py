"""Checkpoint/restart (the paper's "CR" technique).

"At each iteration, the execution rate is analyzed.  If performance can
be increased by using another set of processors, based on the same
criteria used to evaluate process swapping decisions, the application is
checkpointed. ... application state information is written to a central
location.  Upon application restart, the checkpoint is read by each
process, and execution resumes.  Our simulations account for the overhead
of writing and reading the checkpoint" plus the MPI startup of the
restarted processes.

Unlike SWAP, CR is not restricted to pairwise exchanges: a restart may
move the whole application to the ``N`` currently-fastest hosts of the
pool.  It pays for that freedom with a much larger reconfiguration cost
(2 x N state images over the shared link, plus startup).

Under fault injection the checkpoint doubles as the recovery mechanism:
when an active host is revoked, CR re-reads the last checkpoint from the
central store (waiting out a store outage first, if one is in progress)
and restarts on the ``N`` fastest *surviving* hosts -- paying the read
plus MPI startup, but not the write (the checkpoint already exists; the
interrupted iteration's partial work is lost and re-runs).  Performance
restarts are additionally gated on store availability: a migration whose
checkpoint write would hit an outage is deferred to a later epoch.
"""

from __future__ import annotations

from repro import obs
from repro.app.iterative import ApplicationSpec
from repro.core.decision import evaluate_reconfiguration
from repro.core.policy import PolicyParams, greedy_policy
from repro.faults import recovery
from repro.platform.cluster import Platform
from repro.simkernel.plan import lower
from repro.strategies.base import ExecutionResult, IterationRecord, Strategy
from repro.strategies.scheduler import initial_schedule


class CrStrategy(Strategy):
    """Whole-set migration via checkpoint/restart, policy-gated."""

    name = "cr"

    def __init__(self, policy: PolicyParams | None = None) -> None:
        self.policy = policy or greedy_policy()
        if self.policy.name != "greedy":
            self.name = f"cr-{self.policy.name}"

    def restart_cost(self, platform: Platform, app: ApplicationSpec) -> float:
        """Checkpoint write + MPI restart + checkpoint read."""
        n = app.n_processes
        write = platform.link.serialized_time(n * app.state_bytes, n)
        read = platform.link.serialized_time(n * app.state_bytes, n)
        return write + platform.startup_time(n) + read

    def recovery_cost(self, platform: Platform, app: ApplicationSpec) -> float:
        """Fault restart: checkpoint read + MPI startup (no write -- the
        checkpoint already sits in the central store)."""
        n = app.n_processes
        read = platform.link.serialized_time(n * app.state_bytes, n)
        return read + platform.startup_time(n)

    def run(self, platform: Platform, app: ApplicationSpec) -> ExecutionResult:
        self.check_fit(platform, app)
        result = ExecutionResult(strategy=self.name, app=app)
        plan = platform.faults
        splan = lower(platform, app)

        active = initial_schedule(platform, app.n_processes, t=0.0)
        comm_time = self.comm_time(platform, app)
        cost = self.restart_cost(platform, app)
        chunk = app.chunk_flops

        t = platform.startup_time(app.n_processes)
        result.startup_time = t
        result.progress.record(t, 0, "startup")

        progress_record = result.progress.record
        records_append = result.records.append
        iteration = splan.iteration
        obs_on = splan.obs_on
        n_processes = app.n_processes
        history_window = self.policy.history_window
        predicted_rates = splan.predicted_rates

        # The active set only changes on a restart, so the per-iteration
        # tuple/chunk-map rebuilds are cached on the list's identity.
        ran_for: "list[int] | None" = None
        ran_on: "tuple[int, ...]" = ()
        chunks: "dict[int, float]" = {}

        i = 1
        while i <= app.iterations:
            if plan is not None:
                victims = plan.revoked_at(t, active)
                if victims:
                    t, active = self._fault_restart(plan, platform, app,
                                                    result, t, i, victims)
            iter_start = t
            if active is not ran_for:
                ran_on = tuple(active)
                chunks = {h: chunk for h in active}
                ran_for = active
            if splan.fault_free:
                compute_end, iter_end = iteration(chunks, t, comm_time)
            else:
                compute_end = max(
                    recovery.compute_finish(platform, h, t, flops)
                    for h, flops in sorted(chunks.items()))
                onset = plan.earliest_onset(active, t, compute_end)
                if onset is not None:
                    # Mid-iteration interruption: partial work is lost;
                    # restart from the last checkpoint and re-run i.
                    onset_t, hit = onset
                    t, active = self._fault_restart(plan, platform, app,
                                                    result, onset_t, i, hit)
                    continue
                iter_end = compute_end + comm_time
            t = iter_end
            progress_record(t, i, "iteration")
            if obs_on:
                obs.emit("iteration", iter_end, source=self.name, iteration=i,
                         start=iter_start, end=iter_end,
                         compute_end=compute_end, active=ran_on)
                obs.count("strategy.iterations_total")

            overhead = 0.0
            event = ""
            if i < app.iterations:
                rates = predicted_rates(t, history_window)
                if plan is None:
                    # The candidate ranking uses the same (t, window)
                    # rates just predicted; reuse them instead of a
                    # second full-platform pass (same sort, same set).
                    # ``rates`` iterates hosts in ascending index order
                    # and a reverse sort is stable, so this matches the
                    # ``(-rate, index)`` ranking without per-key tuples.
                    candidate = sorted(rates, key=rates.__getitem__,
                                       reverse=True)[:n_processes]
                else:
                    candidate = self._candidate_set(platform, app, t, plan)
                if candidate is not None and set(candidate) != set(active):
                    # ``max(chunk / r)`` is the division by the minimal
                    # rate -- same operation on the same operands.
                    old_iter = chunk / min(map(rates.__getitem__,
                                               active)) + comm_time
                    new_iter = chunk / min(map(rates.__getitem__,
                                               candidate)) + comm_time
                    check = evaluate_reconfiguration(old_iter, new_iter, cost,
                                                     self.policy)
                    if obs_on:
                        obs.emit_check(t, source=self.name, iteration=i,
                                       policy=self.policy.name, check=check,
                                       cost=cost, active=active,
                                       candidate=candidate)
                    if check.accepted and plan is not None \
                            and not plan.store_available(t):
                        # The checkpoint write would hit the outage:
                        # defer the migration to a later epoch.
                        obs.emit("fault.store_outage", t, source=self.name,
                                 iteration=i, action="deferred",
                                 until=plan.store_ready_time(t))
                        obs.count("faults.store_outage_deferrals_total")
                    elif check.accepted:
                        overhead = cost
                        event = "checkpoint"
                        active = candidate
                        result.restart_count += 1
                        result.overhead_time += overhead
                        t += overhead
                        progress_record(t, i, "checkpoint")
                        obs.emit("checkpoint", t, source=self.name,
                                 iteration=i, new_active=active,
                                 cost=cost, start=iter_end, end=t)
                        obs.count("cr.restarts_total")

            records_append(IterationRecord(i, iter_start, compute_end,
                                           iter_end, ran_on, overhead, event))
            i += 1

        result.makespan = t
        result.final_active = tuple(active)
        return result

    # -- helpers -----------------------------------------------------------

    def _candidate_set(self, platform, app, t, plan):
        """The ``N`` fastest hosts eligible for a performance restart.

        With faults in play, revoked hosts are not eligible; returns
        ``None`` when fewer than ``N`` hosts are alive.
        """
        if plan is None:
            return initial_schedule(platform, app.n_processes, t=t,
                                    window=self.policy.history_window)
        alive = [h for h in range(len(platform)) if not plan.is_revoked(h, t)]
        if len(alive) < app.n_processes:
            return None
        rates = platform.effective_rates(t, window=self.policy.history_window,
                                         indices=alive)
        return sorted(alive, key=lambda h: (-rates[h], h))[:app.n_processes]

    def _fault_restart(self, plan, platform, app, result, t, iteration,
                       victims):
        """Recover from revoked actives: re-read the checkpoint, restart.

        Waits out checkpoint-store outages (and, if fewer than ``N``
        hosts survive, host returns) before paying the recovery cost.
        Returns the advanced ``(t, new_active)``.
        """
        for h in sorted(victims):
            obs.emit("fault.revocation", t, source=self.name,
                     iteration=iteration, host=h,
                     until=plan.return_time(h, t))
            obs.count("faults.revocations_total")
        n = app.n_processes
        pool = range(len(platform))
        while True:
            alive = [h for h in pool if not plan.is_revoked(h, t)]
            if len(alive) >= n:
                break
            # Not enough survivors: a declared stall until a host returns.
            ret = min(plan.return_time(h, t) for h in pool
                      if plan.is_revoked(h, t))
            for h in sorted(victims):
                obs.emit("fault.stall", t, source=self.name,
                         iteration=iteration, host=h, stalled=ret - t,
                         reason="insufficient-hosts")
                obs.count("faults.stalls_total")
                obs.count("faults.stall_seconds_total", ret - t)
            result.overhead_time += ret - t
            t = ret
        ready = plan.store_ready_time(t)
        if ready > t:
            obs.emit("fault.store_outage", t, source=self.name,
                     iteration=iteration, action="waited", until=ready,
                     waited=ready - t)
            obs.count("faults.store_outage_waits_total")
            result.overhead_time += ready - t
            t = ready
        rates = platform.effective_rates(t, window=self.policy.history_window,
                                         indices=alive)
        candidate = sorted(alive, key=lambda h: (-rates[h], h))[:n]
        cost = self.recovery_cost(platform, app)
        start = t
        t += cost
        result.restart_count += 1
        result.overhead_time += cost
        obs.emit("fault.recovery", t, source=self.name, iteration=iteration,
                 action="cr-restart", hosts=sorted(victims),
                 new_active=list(candidate), cost=cost, start=start, end=t)
        obs.count("faults.recoveries_total")
        result.progress.record(t, iteration - 1, "checkpoint",
                               "fault restart")
        return t, candidate
