"""Swapping via dynamic process spawning (the paper's MPI-2 alternative).

Section 3: "MPI-2 has support for adding and removing processors during
application execution ... the latest Grid-enabled implementation of MPI,
MPICH-G, supports the dynamic addition and removal of processes as
specified in the MPI-2 standard; this could remove the need for
over-allocation."  And Section 7.1 notes the cost that motivates it:
"for very short-running applications, the additional cost of
over-allocation causes SWAP to perform worse than other techniques.  An
over-allocation of 30 processors adds approximately 20 seconds to the
application startup time."

:class:`SpawnSwapStrategy` evaluates that design point: the application
launches only its ``N`` working processes (no spare processes idle on
the pool), and each accepted swap additionally pays one process *spawn*
(0.75 s of MPI startup) on the incoming host before the state transfer.
Decision-making is identical to :class:`SwapStrategy` -- the platform's
monitoring infrastructure still observes every host.
"""

from __future__ import annotations

from repro.app.iterative import ApplicationSpec
from repro.core.decision import decide_swaps
from repro.core.policy import PolicyParams, greedy_policy
from repro.platform.cluster import Platform
from repro.strategies.base import ExecutionResult, IterationRecord, Strategy
from repro.strategies.scheduler import initial_schedule


class SpawnSwapStrategy(Strategy):
    """Process swapping without over-allocation: spawn spares on demand."""

    name = "swap-spawn"

    def __init__(self, policy: PolicyParams | None = None) -> None:
        self.policy = policy or greedy_policy()
        self.name = f"swap-spawn-{self.policy.name}"

    def run(self, platform: Platform, app: ApplicationSpec) -> ExecutionResult:
        self.check_fit(platform, app)
        result = ExecutionResult(strategy=self.name, app=app)

        pool = list(range(len(platform)))
        active = initial_schedule(platform, app.n_processes, t=0.0)
        chunks = app.equal_chunks(active)
        comm_time = self.comm_time(platform, app)
        swap_cost_one = platform.link.transfer_time(app.state_bytes)
        spawn_cost_one = platform.startup_per_process

        # No over-allocation: only the N working processes launch.
        t = platform.startup_time(app.n_processes)
        result.startup_time = t
        result.progress.record(t, 0, "startup")

        for i in range(1, app.iterations + 1):
            iter_start = t
            ran_on = tuple(active)
            compute_end, iter_end = self.run_iteration(platform, chunks, t,
                                                       comm_time)
            t = iter_end
            result.progress.record(t, i, "iteration")

            overhead = 0.0
            event = ""
            if i < app.iterations:
                spares = [h for h in pool if h not in active]
                rates = self.predicted_rates(platform, t,
                                             self.policy.history_window)
                # The spawn adds to the cost a policy must pay back.
                decision = decide_swaps(active, spares, rates, chunks,
                                        comm_time,
                                        swap_cost_one + spawn_cost_one,
                                        self.policy)
                if decision.should_swap:
                    n_moves = len(decision.moves)
                    # Spawns proceed concurrently on distinct hosts;
                    # state images then serialize on the shared link.
                    overhead = spawn_cost_one + platform.link.serialized_time(
                        n_moves * app.state_bytes, n_moves)
                    event = "swap"
                    detail = ", ".join(f"{m.out_host}->{m.in_host}"
                                       for m in decision.moves)
                    active = decision.active_set_after(active)
                    chunks = {h: app.chunk_flops for h in active}
                    result.swap_count += n_moves
                    result.overhead_time += overhead
                    t += overhead
                    result.progress.record(t, i, "swap", detail)

            result.records.append(IterationRecord(
                index=i, start=iter_start, compute_end=compute_end,
                end=iter_end, active=ran_on, overhead_after=overhead,
                event=event))

        result.makespan = t
        result.final_active = tuple(active)
        return result
