"""MPI process swapping (the paper's "SWAP" technique).

The application over-allocates the *entire* platform pool (``N`` active
plus ``M = P - N`` spares, each costing 0.75 s of MPI startup), runs on
the ``N`` fastest hosts, and after every iteration lets the swap manager
apply the configured policy: exchange the slowest active processor(s) for
the fastest spare(s) if the policy's gates pass.  A swap pauses the whole
application while the process state images cross the shared link
("data redistribution is not allowed", so the incoming process inherits
the outgoing process's chunk unchanged).

Under fault injection the spare pool doubles as a fault-tolerance
mechanism: when an active host is revoked, SWAP *forces* a promotion of
the fastest surviving spare, paying the normal ``alpha + size/beta`` swap
cost per state image with retry gating for transient transfer failures
(each failed attempt times out after a full transfer duration).  A
revocation detected mid-iteration interrupts the iteration at its onset:
the partial work is lost and the iteration re-runs on the repaired set.
If no live spare remains -- or the retries are exhausted -- the stall is
*declared* (a ``fault.stall`` record) and the application waits for the
host to return, exactly like NOTHING.
"""

from __future__ import annotations

from repro import obs
from repro.app.iterative import ApplicationSpec
from repro.core.decision import decide_swaps
from repro.core.policy import PolicyParams, greedy_policy
from repro.faults import recovery
from repro.faults.recovery import (TransferSequencer, attempt_transfer,
                                   promote_spares)
from repro.platform.cluster import Platform
from repro.simkernel.plan import lower
from repro.strategies.base import ExecutionResult, IterationRecord, Strategy
from repro.strategies.scheduler import initial_schedule


class SwapStrategy(Strategy):
    """Process swapping with a pluggable policy (greedy by default)."""

    name = "swap"

    def __init__(self, policy: PolicyParams | None = None) -> None:
        self.policy = policy or greedy_policy()
        self.name = f"swap-{self.policy.name}"

    def run(self, platform: Platform, app: ApplicationSpec) -> ExecutionResult:
        self.check_fit(platform, app)
        result = ExecutionResult(strategy=self.name, app=app)
        plan = platform.faults
        splan = lower(platform, app)
        sequencer = TransferSequencer()
        declared_until: "dict[int, float]" = {}

        pool = list(range(len(platform)))
        active = initial_schedule(platform, app.n_processes, t=0.0)
        chunks = app.equal_chunks(active)
        comm_time = self.comm_time(platform, app)
        swap_cost_one = platform.link.transfer_time(app.state_bytes)

        # Over-allocation: every process in the pool is launched up front.
        t = platform.startup_time(len(pool))
        result.startup_time = t
        result.progress.record(t, 0, "startup")

        # Spare pool cache: the complement of ``active`` in ``pool`` only
        # changes when the active set does (keyed by the iteration's
        # ``ran_on`` tuple), so most epochs skip the membership scan.
        spares_key: "tuple[int, ...] | None" = None
        spares_base: "list[int]" = []

        progress_record = result.progress.record
        records_append = result.records.append
        iteration = splan.iteration
        obs_on = splan.obs_on
        policy = self.policy
        history_window = policy.history_window
        predicted_rates = splan.predicted_rates
        iterations = app.iterations

        # ``tuple(active)`` cached on the list's identity: every path
        # that changes the active set rebinds it to a fresh list.
        ran_for: "list[int] | None" = None
        ran_on: "tuple[int, ...]" = ()

        i = 1
        while i <= iterations:
            if plan is not None:
                # Boundary recovery: replace actives revoked right now
                # (skipping hosts whose stall was already declared).
                victims = [h for h in plan.revoked_at(t, active)
                           if declared_until.get(h, -1.0) <= t]
                if victims:
                    t, active, chunks = self._recover(
                        plan, platform, result, sequencer, t, i, pool,
                        active, chunks, victims, swap_cost_one,
                        declared_until)
            iter_start = t
            if active is not ran_for:
                ran_on = tuple(active)
                ran_for = active
            if splan.fault_free:
                compute_end, iter_end = iteration(chunks, t, comm_time)
            else:
                compute_end = max(
                    recovery.compute_finish(platform, h, t, flops)
                    for h, flops in sorted(chunks.items()))
                watch = [h for h in active if not plan.is_revoked(h, t)]
                onset = plan.earliest_onset(watch, t, compute_end)
                if onset is not None:
                    # Mid-iteration interruption: the attempt's partial
                    # work is lost; recover at the onset and re-run i.
                    onset_t, hit = onset
                    t, active, chunks = self._recover(
                        plan, platform, result, sequencer, onset_t, i,
                        pool, active, chunks, hit, swap_cost_one,
                        declared_until)
                    continue
                iter_end = compute_end + comm_time
            t = iter_end
            progress_record(t, i, "iteration")
            if obs_on:
                obs.emit("iteration", iter_end, source=self.name, iteration=i,
                         start=iter_start, end=iter_end,
                         compute_end=compute_end, active=ran_on)
                obs.count("strategy.iterations_total")

            overhead = 0.0
            event = ""
            if i < iterations:  # no point swapping after the last one
                if ran_on != spares_key:
                    spares_base = [h for h in pool if h not in active]
                    spares_key = ran_on
                spares = spares_base
                if plan is not None:
                    # A revoked spare is not a viable swap-in candidate.
                    spares = [h for h in spares if not plan.is_revoked(h, t)]
                rates = predicted_rates(t, history_window)
                decision = decide_swaps(active, spares, rates, chunks,
                                        comm_time, swap_cost_one, policy)
                if obs_on and obs.active() is not None:
                    obs.emit_decision(t, source=self.name, iteration=i,
                                      policy=self.policy.name,
                                      decision=decision,
                                      active=active, spares=spares)
                if decision.should_swap:
                    if plan is None:
                        moves = decision.moves
                        n_moves = len(moves)
                        # Transfers of all swapped state images serialize
                        # on the single shared link.
                        overhead = platform.link.serialized_time(
                            n_moves * app.state_bytes, n_moves)
                        active = decision.active_set_after(active)
                    else:
                        moves, overhead = self._attempt_moves(
                            plan, sequencer, decision.moves, platform.link,
                            app.state_bytes, t, i)
                        for move in moves:
                            active = [move.in_host if h == move.out_host
                                      else h for h in active]
                    if moves:
                        event = "swap"
                        detail = ", ".join(f"{m.out_host}->{m.in_host}"
                                           for m in moves)
                        chunks = {h: app.chunk_flops for h in active}
                        result.swap_count += len(moves)
                        result.overhead_time += overhead
                        t += overhead
                        progress_record(t, i, "swap", detail)
                        for move in moves:
                            obs.emit("swap", t, source=self.name, iteration=i,
                                     out_host=move.out_host,
                                     in_host=move.in_host,
                                     process_improvement=move.process_improvement,
                                     app_improvement=move.app_improvement,
                                     payback=move.payback,
                                     start=iter_end, end=t)
                    elif overhead > 0.0:
                        # Every accepted move failed its transfer; the
                        # pause was still paid.
                        result.overhead_time += overhead
                        t += overhead

            records_append(IterationRecord(i, iter_start, compute_end,
                                           iter_end, ran_on, overhead, event))
            i += 1

        result.makespan = t
        result.final_active = tuple(active)
        return result

    # -- fault recovery ----------------------------------------------------

    def _recover(self, plan, platform, result, sequencer, t, iteration,
                 pool, active, chunks, victims, swap_cost_one,
                 declared_until):
        """Forced promotion of the fastest surviving spares.

        Emits one ``fault.revocation`` per victim, then resolves each:
        a successful promotion emits ``fault.recovery`` (and counts as a
        swap), a failed or impossible one a declared ``fault.stall``.
        Returns the advanced ``(t, active, chunks)``.
        """
        for h in sorted(victims):
            obs.emit("fault.revocation", t, source=self.name,
                     iteration=iteration, host=h,
                     until=plan.return_time(h, t))
            obs.count("faults.revocations_total")
        spares = [h for h in pool
                  if h not in active and not plan.is_revoked(h, t)]
        rates = self.predicted_rates(platform, t, self.policy.history_window,
                                     indices=spares)
        promotions, unfilled = promote_spares(victims, spares, rates)
        for out_host, in_host in promotions:
            start = t
            elapsed, ok, attempts = attempt_transfer(plan, sequencer,
                                                     swap_cost_one)
            t += elapsed
            result.overhead_time += elapsed
            if attempts > 1:
                obs.count("faults.transfer_failures_total", attempts - 1)
            if ok:
                active = [in_host if h == out_host else h for h in active]
                # The rebuild deliberately preserves the active-slot
                # order so the promoted host inherits the outgoing
                # host's position (and its chunk) deterministically.
                chunks = {in_host if h == out_host else h: f
                          for h, f in chunks.items()}  # simflow: disable=SF003
                result.swap_count += 1
                obs.emit("fault.recovery", t, source=self.name,
                         iteration=iteration, action="swap-promote",
                         out_host=out_host, in_host=in_host,
                         attempts=attempts, start=start, end=t)
                obs.count("faults.recoveries_total")
                result.progress.record(t, iteration - 1, "swap",
                                       f"promote {out_host}->{in_host}")
            else:
                self._declare_stall(plan, result, t, iteration, out_host,
                                    "transfer-failed", declared_until)
        for h in unfilled:
            self._declare_stall(plan, result, t, iteration, h, "no-spare",
                                declared_until)
        return t, active, chunks

    def _declare_stall(self, plan, result, t, iteration, host, reason,
                       declared_until) -> None:
        """Give up on recovering ``host`` until its revocation ends."""
        until = plan.return_time(host, t)
        if until <= t:
            # The host returned while we were retrying: resolved by wait.
            obs.emit("fault.recovery", t, source=self.name,
                     iteration=iteration, action="returned", host=host)
            obs.count("faults.recoveries_total")
            return
        declared_until[host] = until
        obs.emit("fault.stall", t, source=self.name, iteration=iteration,
                 host=host, stalled=until - t, reason=reason)
        obs.count("faults.stalls_total")
        obs.count("faults.stall_seconds_total", until - t)
        result.progress.record(t, iteration - 1, "stall",
                               f"host{host} revoked ({reason})")

    def _attempt_moves(self, plan, sequencer, moves, link, state_bytes, t,
                       iteration):
        """Run each accepted performance move through transfer retries.

        Returns ``(applied_moves, total_overhead)``.  Failed moves are
        dropped (the outgoing process keeps running) but their timed-out
        attempts still cost link time: all attempt payloads -- successful
        or not -- serialize on the shared link with one pipelined latency,
        the exact batch formula of the fault-free path.  With every move
        succeeding on its first attempt the overhead is therefore
        bit-identical to ``serialized_time(n_moves * state_bytes,
        n_moves)``.
        """
        applied = []
        attempts_total = 0
        overhead = 0.0
        for move in moves:
            # Cost 0 here: the whole batch is priced once, below.
            _elapsed, ok, attempts = attempt_transfer(plan, sequencer, 0.0)
            attempts_total += attempts
            overhead = link.serialized_time(attempts_total * state_bytes,
                                            attempts_total)
            if attempts > 1:
                obs.count("faults.transfer_failures_total", attempts - 1)
            if ok:
                applied.append(move)
            else:
                obs.emit("fault.transfer_failed", t + overhead,
                         source=self.name, iteration=iteration,
                         out_host=move.out_host, in_host=move.in_host,
                         attempts=attempts)
                obs.count("faults.transfer_aborts_total")
        return applied, overhead
