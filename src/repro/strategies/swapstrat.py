"""MPI process swapping (the paper's "SWAP" technique).

The application over-allocates the *entire* platform pool (``N`` active
plus ``M = P - N`` spares, each costing 0.75 s of MPI startup), runs on
the ``N`` fastest hosts, and after every iteration lets the swap manager
apply the configured policy: exchange the slowest active processor(s) for
the fastest spare(s) if the policy's gates pass.  A swap pauses the whole
application while the process state images cross the shared link
("data redistribution is not allowed", so the incoming process inherits
the outgoing process's chunk unchanged).
"""

from __future__ import annotations

from repro import obs
from repro.app.iterative import ApplicationSpec
from repro.core.decision import decide_swaps
from repro.core.policy import PolicyParams, greedy_policy
from repro.platform.cluster import Platform
from repro.strategies.base import ExecutionResult, IterationRecord, Strategy
from repro.strategies.scheduler import initial_schedule


class SwapStrategy(Strategy):
    """Process swapping with a pluggable policy (greedy by default)."""

    name = "swap"

    def __init__(self, policy: PolicyParams | None = None) -> None:
        self.policy = policy or greedy_policy()
        self.name = f"swap-{self.policy.name}"

    def run(self, platform: Platform, app: ApplicationSpec) -> ExecutionResult:
        self.check_fit(platform, app)
        result = ExecutionResult(strategy=self.name, app=app)

        pool = list(range(len(platform)))
        active = initial_schedule(platform, app.n_processes, t=0.0)
        chunks = app.equal_chunks(active)
        comm_time = self.comm_time(platform, app)
        swap_cost_one = platform.link.transfer_time(app.state_bytes)

        # Over-allocation: every process in the pool is launched up front.
        t = platform.startup_time(len(pool))
        result.startup_time = t
        result.progress.record(t, 0, "startup")

        for i in range(1, app.iterations + 1):
            iter_start = t
            ran_on = tuple(active)
            compute_end, iter_end = self.run_iteration(platform, chunks, t,
                                                       comm_time)
            t = iter_end
            result.progress.record(t, i, "iteration")
            obs.emit("iteration", iter_end, source=self.name, iteration=i,
                     start=iter_start, end=iter_end,
                     compute_end=compute_end, active=ran_on)
            obs.count("strategy.iterations_total")

            overhead = 0.0
            event = ""
            if i < app.iterations:  # no point swapping after the last one
                spares = [h for h in pool if h not in active]
                rates = self.predicted_rates(platform, t,
                                             self.policy.history_window)
                decision = decide_swaps(active, spares, rates, chunks,
                                        comm_time, swap_cost_one, self.policy)
                if obs.active() is not None:
                    obs.emit_decision(t, source=self.name, iteration=i,
                                      policy=self.policy.name,
                                      decision=decision,
                                      active=active, spares=spares)
                if decision.should_swap:
                    n_moves = len(decision.moves)
                    # Transfers of all swapped state images serialize on
                    # the single shared link.
                    overhead = platform.link.serialized_time(
                        n_moves * app.state_bytes, n_moves)
                    event = "swap"
                    detail = ", ".join(f"{m.out_host}->{m.in_host}"
                                       for m in decision.moves)
                    active = decision.active_set_after(active)
                    chunks = {h: app.chunk_flops for h in active}
                    result.swap_count += n_moves
                    result.overhead_time += overhead
                    t += overhead
                    result.progress.record(t, i, "swap", detail)
                    for move in decision.moves:
                        obs.emit("swap", t, source=self.name, iteration=i,
                                 out_host=move.out_host,
                                 in_host=move.in_host,
                                 process_improvement=move.process_improvement,
                                 app_improvement=move.app_improvement,
                                 payback=move.payback,
                                 start=iter_end, end=t)

            result.records.append(IterationRecord(
                index=i, start=iter_start, compute_end=compute_end,
                end=iter_end, active=ran_on, overhead_after=overhead,
                event=event))

        result.makespan = t
        result.final_active = tuple(active)
        return result
