"""Dynamic load balancing (the paper's "DLB" technique).

"The DLB strategy redistributes work at each iteration so that the
iteration times of all the processors are perfectly balanced given their
respective performance. ... We do not account for the overhead of doing
the actual load balancing ... Consequently, the application execution
times we obtain in our simulation for DLB are lower bounds on what could
be obtained in practice."

The partition uses each host's performance *observed at the start of the
iteration*; if the environment shifts mid-iteration the application "is
left computing a lot of work on a (suddenly) slow processor" -- the
behaviour behind DLB's poor showing in dynamic environments (Fig. 4).
"""

from __future__ import annotations

from repro import obs
from repro.app.iterative import ApplicationSpec
from repro.platform.cluster import Platform
from repro.strategies.base import ExecutionResult, IterationRecord, Strategy
from repro.strategies.scheduler import initial_schedule


class DlbStrategy(Strategy):
    """Perfect per-iteration repartitioning at zero redistribution cost."""

    name = "dlb"

    def __init__(self, measurement_window: float = 0.0) -> None:
        """``measurement_window``: seconds of history behind the rate
        estimates used for partitioning (0 = instantaneous, the paper's
        model)."""
        if measurement_window < 0:
            raise ValueError("measurement_window must be >= 0")
        self.measurement_window = float(measurement_window)

    def run(self, platform: Platform, app: ApplicationSpec) -> ExecutionResult:
        self.check_fit(platform, app)
        result = ExecutionResult(strategy=self.name, app=app)

        active = initial_schedule(platform, app.n_processes, t=0.0)
        comm_time = self.comm_time(platform, app)

        t = platform.startup_time(app.n_processes)
        result.startup_time = t
        result.progress.record(t, 0, "startup")

        for i in range(1, app.iterations + 1):
            rates = self.predicted_rates(platform, t, self.measurement_window,
                                         indices=active)
            chunks = app.proportional_chunks(rates)
            if obs.active() is not None:
                obs.emit("rebalance", t, source=self.name, iteration=i,
                         chunks={str(h): chunks[h] for h in active},
                         rates={str(h): rates[h] for h in active})
                obs.count("dlb.rebalances_total")
            compute_end, iter_end = self.run_iteration(platform, chunks, t,
                                                       comm_time)
            result.records.append(IterationRecord(
                index=i, start=t, compute_end=compute_end, end=iter_end,
                active=tuple(active)))
            obs.emit("iteration", iter_end, source=self.name, iteration=i,
                     start=t, end=iter_end, compute_end=compute_end,
                     active=tuple(active))
            obs.count("strategy.iterations_total")
            t = iter_end
            result.progress.record(t, i, "iteration")

        result.makespan = t
        result.final_active = tuple(active)
        return result
