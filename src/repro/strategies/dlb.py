"""Dynamic load balancing (the paper's "DLB" technique).

"The DLB strategy redistributes work at each iteration so that the
iteration times of all the processors are perfectly balanced given their
respective performance. ... We do not account for the overhead of doing
the actual load balancing ... Consequently, the application execution
times we obtain in our simulation for DLB are lower bounds on what could
be obtained in practice."

The partition uses each host's performance *observed at the start of the
iteration*; if the environment shifts mid-iteration the application "is
left computing a lot of work on a (suddenly) slow processor" -- the
behaviour behind DLB's poor showing in dynamic environments (Fig. 4).

Under fault injection DLB shrinks onto the survivors: it allocates no
spares, so when one of its members is revoked it repartitions the full
iteration workload over the members still standing (at the same zero
redistribution cost as its regular rebalances -- a lower bound, as the
paper's DLB model is throughout).  A mid-iteration revocation interrupts
the iteration at its onset (partial work lost, re-run on the survivors);
a returning member rejoins the partition at the next boundary.  If every
member is revoked at once the run stalls -- declared per member -- until
the first one returns.
"""

from __future__ import annotations

from repro import obs
from repro.app.iterative import ApplicationSpec
from repro.faults import recovery
from repro.platform.cluster import Platform
from repro.simkernel.plan import lower
from repro.strategies.base import ExecutionResult, IterationRecord, Strategy
from repro.strategies.scheduler import initial_schedule


class DlbStrategy(Strategy):
    """Perfect per-iteration repartitioning at zero redistribution cost."""

    name = "dlb"

    def __init__(self, measurement_window: float = 0.0) -> None:
        """``measurement_window``: seconds of history behind the rate
        estimates used for partitioning (0 = instantaneous, the paper's
        model)."""
        if measurement_window < 0:
            raise ValueError("measurement_window must be >= 0")
        self.measurement_window = float(measurement_window)

    def run(self, platform: Platform, app: ApplicationSpec) -> ExecutionResult:
        self.check_fit(platform, app)
        result = ExecutionResult(strategy=self.name, app=app)
        plan = platform.faults
        splan = lower(platform, app)

        members = initial_schedule(platform, app.n_processes, t=0.0)
        down: "set[int]" = set()
        comm_time = self.comm_time(platform, app)

        t = platform.startup_time(app.n_processes)
        result.startup_time = t
        result.progress.record(t, 0, "startup")

        i = 1
        while i <= app.iterations:
            if splan.fault_free:
                active = members
            else:
                t = self._sync_membership(plan, members, down, t, i, result)
                active = [h for h in members if h not in down]
            rates = splan.predicted_rates(t, self.measurement_window,
                                          indices=active)
            if splan.fault_free:
                chunks = app.proportional_chunks(rates)
            else:
                total_rate = sum(rates.values())
                chunks = {h: app.flops_per_iteration * rates[h] / total_rate
                          for h in active}
            if splan.obs_on and obs.active() is not None:
                obs.emit("rebalance", t, source=self.name, iteration=i,
                         chunks={str(h): chunks[h] for h in active},
                         rates={str(h): rates[h] for h in active})
                obs.count("dlb.rebalances_total")
            if splan.fault_free:
                compute_end, iter_end = splan.iteration(chunks, t, comm_time)
            else:
                compute_end = max(
                    recovery.compute_finish(platform, h, t, flops)
                    for h, flops in sorted(chunks.items()))
                onset = plan.earliest_onset(active, t, compute_end)
                if onset is not None:
                    # Mid-iteration interruption: drop the victims and
                    # re-run the iteration on the survivors.
                    onset_t, hit = onset
                    for h in sorted(hit):
                        self._drop_member(plan, down, onset_t, i, h, result)
                    t = onset_t
                    continue
                iter_end = compute_end + comm_time
            result.records.append(IterationRecord(
                index=i, start=t, compute_end=compute_end, end=iter_end,
                active=tuple(active)))
            if splan.obs_on:
                obs.emit("iteration", iter_end, source=self.name, iteration=i,
                         start=t, end=iter_end, compute_end=compute_end,
                         active=tuple(active))
                obs.count("strategy.iterations_total")
            t = iter_end
            result.progress.record(t, i, "iteration")
            i += 1

        result.makespan = t
        result.final_active = tuple(h for h in members if h not in down)
        return result

    # -- fault handling ----------------------------------------------------

    def _drop_member(self, plan, down, t, iteration, host, result) -> None:
        """Declare ``host`` revoked and repartition over the survivors."""
        obs.emit("fault.revocation", t, source=self.name, iteration=iteration,
                 host=host, until=plan.return_time(host, t))
        obs.count("faults.revocations_total")
        down.add(host)
        obs.emit("fault.recovery", t, source=self.name, iteration=iteration,
                 action="dlb-repartition", hosts=[host], cost=0.0)
        obs.count("faults.recoveries_total")
        result.progress.record(t, iteration - 1, "stall",
                               f"host{host} revoked, repartition")

    def _sync_membership(self, plan, members, down, t, i, result) -> float:
        """Boundary membership update: drop newly revoked members, rejoin
        returned ones; if nobody is left, stall until the first return."""
        for h in members:
            if plan.is_revoked(h, t):
                if h not in down:
                    self._drop_member(plan, down, t, i, h, result)
            elif h in down:
                down.discard(h)
                obs.emit("fault.return", t, source=self.name, iteration=i,
                         host=h)
                obs.count("faults.returns_total")
        while all(h in down for h in members):
            ret = min(plan.return_time(h, t) for h in members)
            for h in sorted(members):
                obs.emit("fault.stall", t, source=self.name, iteration=i,
                         host=h, stalled=ret - t, reason="all-revoked")
                obs.count("faults.stalls_total")
                obs.count("faults.stall_seconds_total", ret - t)
            result.overhead_time += ret - t
            t = ret
            for h in members:
                if not plan.is_revoked(h, t) and h in down:
                    down.discard(h)
                    obs.emit("fault.return", t, source=self.name, iteration=i,
                             host=h)
                    obs.count("faults.returns_total")
        return t
