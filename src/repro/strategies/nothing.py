"""The do-nothing baseline (the paper's "NOTHING" technique).

Allocate exactly ``N`` processors (the fastest at startup), partition the
data equally, and run every iteration on them regardless of external load.

Under fault injection NOTHING cannot adapt either: a revoked active host
stalls the whole application (the BSP barrier waits) until the host is
returned, and every such stall is *declared* -- a ``fault.stall`` trace
record per revocation -- so the TL007 lint rule can check that no
revocation of an active host goes unaccounted.
"""

from __future__ import annotations

from repro import obs
from repro.app.iterative import ApplicationSpec
from repro.faults import recovery
from repro.platform.cluster import Platform
from repro.simkernel.plan import lower
from repro.strategies.base import ExecutionResult, IterationRecord, Strategy
from repro.strategies.scheduler import initial_schedule


class NothingStrategy(Strategy):
    """Never adapt: the reference point every figure is measured against."""

    name = "nothing"

    def run(self, platform: Platform, app: ApplicationSpec) -> ExecutionResult:
        self.check_fit(platform, app)
        result = ExecutionResult(strategy=self.name, app=app)
        plan = platform.faults
        splan = lower(platform, app)

        active = initial_schedule(platform, app.n_processes, t=0.0)
        chunks = app.equal_chunks(active)
        comm_time = self.comm_time(platform, app)

        t = platform.startup_time(app.n_processes)
        result.startup_time = t
        result.progress.record(t, 0, "startup")

        # NOTHING's active set never changes: hoist the per-iteration
        # constants out of the loop.
        active_t = tuple(active)
        records_append = result.records.append
        progress_record = result.progress.record
        iteration = splan.iteration
        obs_on = splan.obs_on

        for i in range(1, app.iterations + 1):
            if splan.fault_free:
                compute_end, iter_end = iteration(chunks, t, comm_time)
            else:
                # Revoked hosts pause; the barrier stalls until they return.
                compute_end = max(
                    recovery.compute_finish(platform, h, t, flops)
                    for h, flops in sorted(chunks.items()))
                iter_end = compute_end + comm_time
                self._declare_stalls(plan, active, t, compute_end, i, result)
            records_append(IterationRecord(i, t, compute_end, iter_end,
                                           active_t))
            if obs_on:
                obs.emit("iteration", iter_end, source=self.name, iteration=i,
                         start=t, end=iter_end, compute_end=compute_end,
                         active=active_t)
                obs.count("strategy.iterations_total")
            t = iter_end
            progress_record(t, i, "iteration")

        result.makespan = t
        result.final_active = tuple(active)
        return result

    def _declare_stalls(self, plan, active, start, compute_end, iteration,
                        result) -> None:
        """Emit a revocation + declared stall per revocation overlapping
        the compute phase (NOTHING's only possible reaction).

        Events are sorted by time across hosts so the trace row stays
        monotonic (TL001).
        """
        events = []
        for h in active:
            for onset, until in plan.revocations_in(h, start, compute_end):
                stalled = min(until, compute_end) - max(onset, start)
                if stalled > 0.0:
                    events.append((max(onset, start), h, onset, until, stalled))
        for detect, h, onset, until, stalled in sorted(events):
            obs.emit("fault.revocation", detect, source=self.name,
                     iteration=iteration, host=h, onset=onset, until=until)
            obs.count("faults.revocations_total")
            obs.emit("fault.stall", detect, source=self.name,
                     iteration=iteration, host=h, stalled=stalled,
                     reason="no-adaptation")
            obs.count("faults.stalls_total")
            obs.count("faults.stall_seconds_total", stalled)
            result.progress.record(detect, iteration, "stall",
                                   f"host{h} revoked")
