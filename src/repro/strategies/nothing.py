"""The do-nothing baseline (the paper's "NOTHING" technique).

Allocate exactly ``N`` processors (the fastest at startup), partition the
data equally, and run every iteration on them regardless of external load.
"""

from __future__ import annotations

from repro import obs
from repro.app.iterative import ApplicationSpec
from repro.platform.cluster import Platform
from repro.strategies.base import ExecutionResult, IterationRecord, Strategy
from repro.strategies.scheduler import initial_schedule


class NothingStrategy(Strategy):
    """Never adapt: the reference point every figure is measured against."""

    name = "nothing"

    def run(self, platform: Platform, app: ApplicationSpec) -> ExecutionResult:
        self.check_fit(platform, app)
        result = ExecutionResult(strategy=self.name, app=app)

        active = initial_schedule(platform, app.n_processes, t=0.0)
        chunks = app.equal_chunks(active)
        comm_time = self.comm_time(platform, app)

        t = platform.startup_time(app.n_processes)
        result.startup_time = t
        result.progress.record(t, 0, "startup")

        for i in range(1, app.iterations + 1):
            compute_end, iter_end = self.run_iteration(platform, chunks, t,
                                                       comm_time)
            result.records.append(IterationRecord(
                index=i, start=t, compute_end=compute_end, end=iter_end,
                active=tuple(active)))
            obs.emit("iteration", iter_end, source=self.name, iteration=i,
                     start=t, end=iter_end, compute_end=compute_end,
                     active=tuple(active))
            obs.count("strategy.iterations_total")
            t = iter_end
            result.progress.record(t, i, "iteration")

        result.makespan = t
        result.final_active = tuple(active)
        return result
