"""Execution strategies: the four techniques of the paper's Section 6.

* :class:`~repro.strategies.nothing.NothingStrategy` -- run on the initial
  processors, never adapt (the paper's "do nothing" baseline).
* :class:`~repro.strategies.swapstrat.SwapStrategy` -- MPI process
  swapping with a pluggable :class:`~repro.core.policy.PolicyParams`.
* :class:`~repro.strategies.dlb.DlbStrategy` -- dynamic load balancing:
  perfect per-iteration repartitioning at zero redistribution cost (the
  paper's stated lower bound for DLB).
* :class:`~repro.strategies.cr.CrStrategy` -- checkpoint/restart migration
  of the whole processor set, gated by the same policy criteria.

All strategies run on the *same* :class:`~repro.platform.Platform`
instance (same load traces), giving the back-to-back reproducible
comparisons the paper built its simulator for.
"""

from repro.strategies.base import ExecutionResult, IterationRecord, Strategy
from repro.strategies.scheduler import initial_schedule
from repro.strategies.nothing import NothingStrategy
from repro.strategies.dlb import DlbStrategy
from repro.strategies.swapstrat import SwapStrategy
from repro.strategies.spawnswap import SpawnSwapStrategy
from repro.strategies.cr import CrStrategy

__all__ = [
    "CrStrategy",
    "DlbStrategy",
    "ExecutionResult",
    "IterationRecord",
    "NothingStrategy",
    "SpawnSwapStrategy",
    "Strategy",
    "SwapStrategy",
    "initial_schedule",
]
