"""Strategy interface and shared BSP iteration machinery.

All strategies simulate the same application model: a bulk-synchronous
iteration is a parallel compute phase (each active process burns its chunk
at its host's time-varying effective speed, computed exactly from the load
trace) followed by a communication phase on the shared link.  The
iteration ends at ``max(compute finishes) + comm_time`` -- the full
barrier the paper's ``MPI_Swap()`` call relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, NamedTuple

from repro.app.iterative import ApplicationSpec
from repro.app.progress import ProgressRecorder
from repro.errors import StrategyError
from repro.platform.cluster import Platform


class IterationRecord(NamedTuple):
    """Timing of one simulated iteration.

    A NamedTuple: every strategy appends one per iteration, so creation
    cost sits on the sweep hot path.
    """

    index: int
    """1-based iteration number."""
    start: float
    compute_end: float
    end: float
    active: "tuple[int, ...]"
    """Platform indices of the hosts that ran this iteration."""
    overhead_after: float = 0.0
    """Adaptation pause charged after this iteration (swap/checkpoint)."""
    event: str = ""
    """What the pause was: ``"swap"``, ``"checkpoint"``, or ``""``."""

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def compute_time(self) -> float:
        return self.compute_end - self.start


@dataclass
class ExecutionResult:
    """Complete account of one simulated application run."""

    strategy: str
    app: ApplicationSpec
    makespan: float = 0.0
    """Total wall-clock time, startup through last iteration + overheads."""
    startup_time: float = 0.0
    records: "list[IterationRecord]" = field(default_factory=list)
    swap_count: int = 0
    """Individual process exchanges performed."""
    restart_count: int = 0
    """Checkpoint/restart migrations performed."""
    overhead_time: float = 0.0
    """Total time spent paused for swaps/checkpoints."""
    progress: ProgressRecorder = field(default_factory=ProgressRecorder)
    final_active: "tuple[int, ...]" = ()

    @property
    def iteration_count(self) -> int:
        return len(self.records)

    @property
    def mean_iteration_time(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.duration for r in self.records) / len(self.records)

    def summary(self) -> str:
        return (f"{self.strategy}: makespan={self.makespan:.1f}s "
                f"(startup={self.startup_time:.1f}s, "
                f"overhead={self.overhead_time:.1f}s, "
                f"swaps={self.swap_count}, restarts={self.restart_count})")


class Strategy:
    """Interface: simulate one application run on a platform."""

    name = "strategy"

    def run(self, platform: Platform, app: ApplicationSpec) -> ExecutionResult:
        """Simulate the full run and return its :class:`ExecutionResult`."""
        raise NotImplementedError

    # -- shared machinery -------------------------------------------------

    @staticmethod
    def check_fit(platform: Platform, app: ApplicationSpec) -> None:
        if app.n_processes > len(platform):
            raise StrategyError(
                f"application wants {app.n_processes} processes but the "
                f"platform has only {len(platform)} hosts")

    @staticmethod
    def comm_time(platform: Platform, app: ApplicationSpec) -> float:
        """Duration of one iteration's communication phase."""
        return platform.link.exchange_phase_time(app.bytes_per_process,
                                                 app.n_processes)

    @staticmethod
    def run_iteration(platform: Platform, chunks: Mapping[int, float],
                      start: float, comm_time: float) -> "tuple[float, float]":
        """Simulate one BSP iteration; returns (compute_end, iteration_end).

        ``chunks`` maps active host index -> flops of that process's chunk.
        """
        if not chunks:
            raise StrategyError("no active hosts")
        compute_end = max(
            platform.host(h).compute_finish(start, flops)
            for h, flops in chunks.items())
        return compute_end, compute_end + comm_time

    @staticmethod
    def predicted_rates(platform: Platform, t: float, window: float,
                        indices=None) -> "dict[int, float]":
        """History-window-averaged effective rates, as the swap handlers
        and manager would measure them."""
        return platform.effective_rates(t, window=window, indices=indices)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"
