"""The pre-execution scheduler.

Section 6, "Initial schedule": "For all simulated application runs we must
compute an initial application schedule. ... The initial schedule always
uses the fastest performing processors at the time of application
startup."  Equal-size chunks for all techniques; DLB partitions
proportionally to balance iteration times (handled by
:meth:`ApplicationSpec.proportional_chunks`).
"""

from __future__ import annotations

from repro.errors import StrategyError
from repro.platform.cluster import Platform


def rank_hosts(platform: Platform, t: float = 0.0,
               window: float = 0.0) -> "list[int]":
    """All host indices, fastest effective rate first (ties by index)."""
    rates = platform.effective_rates(t, window=window)
    return sorted(rates, key=lambda h: (-rates[h], h))


def initial_schedule(platform: Platform, n: int, t: float = 0.0,
                     window: float = 0.0) -> "list[int]":
    """The ``n`` fastest hosts at time ``t`` -- the paper's initial schedule.

    With more over-allocation the pool is larger, so "the pre-execution
    scheduler has more options for initial process placement" (the paper's
    explanation of the slight NOTHING/DLB improvement in its Fig. 5).
    """
    if n < 1:
        raise StrategyError(f"need n >= 1, got {n}")
    if n > len(platform):
        raise StrategyError(
            f"cannot schedule {n} processes on {len(platform)} hosts")
    return rank_hosts(platform, t, window)[:n]
