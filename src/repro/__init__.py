"""repro: a full reproduction of "Policies for Swapping MPI Processes"
(Otto Sievert and Henri Casanova, HPDC 2003).

The package contains:

* the paper's core contribution -- the payback algebra and the greedy /
  safe / friendly swap policies (:mod:`repro.core`);
* every substrate the evaluation depends on -- a discrete-event simulation
  kernel (:mod:`repro.simkernel`), a heterogeneous shared-LAN platform
  model (:mod:`repro.platform`), the ON/OFF and hyperexponential CPU load
  models (:mod:`repro.load`), a simulated MPI subset (:mod:`repro.smpi`)
  and the process-swapping runtime built on it (:mod:`repro.swap`);
* the four execution strategies the paper compares
  (:mod:`repro.strategies`) and the experiment harness regenerating every
  figure (:mod:`repro.experiments`).

Quickstart
----------

>>> from repro import quick_comparison
>>> table = quick_comparison(load_probability=0.2, seed=1)
>>> sorted(table)   # doctest: +ELLIPSIS
['cr', 'dlb', 'nothing', 'swap-greedy']
"""

from repro._version import __version__
from repro.app import ApplicationSpec, paper_application
from repro.core import (
    PolicyParams,
    decide_swaps,
    friendly_policy,
    greedy_policy,
    named_policy,
    payback_distance,
    safe_policy,
    swap_time,
)
from repro.load import (
    ConstantLoadModel,
    HyperexponentialLoadModel,
    LoadTrace,
    OnOffLoadModel,
    ReplayLoadModel,
)
from repro.platform import LinkSpec, Platform, make_platform
from repro.strategies import (
    CrStrategy,
    DlbStrategy,
    ExecutionResult,
    NothingStrategy,
    Strategy,
    SwapStrategy,
)

__all__ = [
    "ApplicationSpec",
    "ConstantLoadModel",
    "CrStrategy",
    "DlbStrategy",
    "ExecutionResult",
    "HyperexponentialLoadModel",
    "LinkSpec",
    "LoadTrace",
    "NothingStrategy",
    "OnOffLoadModel",
    "Platform",
    "PolicyParams",
    "ReplayLoadModel",
    "Strategy",
    "SwapStrategy",
    "__version__",
    "decide_swaps",
    "friendly_policy",
    "greedy_policy",
    "make_platform",
    "named_policy",
    "paper_application",
    "payback_distance",
    "quick_comparison",
    "safe_policy",
    "swap_time",
]


def quick_comparison(load_probability: float = 0.2, seed: int = 0,
                     n_hosts: int = 32, n_processes: int = 4,
                     iterations: int = 30) -> "dict[str, float]":
    """Run the paper's four techniques once and return their makespans.

    A convenience wrapper around the full experiment harness for a first
    contact with the package; see :mod:`repro.experiments` for the real
    figure sweeps.
    """
    app = paper_application(n_processes=n_processes, iterations=iterations)
    platform = make_platform(
        n_hosts, OnOffLoadModel(p=load_probability, q=0.08), seed=seed)
    strategies = [NothingStrategy(), SwapStrategy(greedy_policy()),
                  DlbStrategy(), CrStrategy()]
    return {s.name: s.run(platform, app).makespan for s in strategies}
