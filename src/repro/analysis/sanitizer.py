"""The simulation sanitizer: runtime checks the static linter cannot do.

:class:`SanitizedSimulator` is a drop-in :class:`~repro.simkernel.engine.
Simulator` that watches a run the way a race detector watches threads.
It detects, with codes mirroring the ``SL...`` lint codes:

* **SZ101** -- same-``(time, priority)`` event ties: their relative order
  is decided solely by insertion sequence, so a refactor that reorders
  scheduling calls silently reorders the simulation.  Reported as
  warnings (ties are common and *currently* deterministic; the report
  tells you where reproducibility hangs by the sequence number alone).
* **SZ102** -- negative, NaN or infinite delays.  The engine already
  rejects negative delays, but ``NaN`` slips through every ``<``
  comparison and silently corrupts heap ordering.
* **SZ103** -- events scheduled after the run drained (a completed
  ``run()`` with an empty heap): such events will never fire.
* **SZ104** -- a process that terminates while still holding a
  :class:`~repro.simkernel.resources.Resource` slot (the DES analog of a
  leaked lock).
* **SZ105** -- RNG draws during the run that bypass
  :class:`~repro.simkernel.rng.RngRegistry` (module-level ``random.*`` /
  ``numpy.random.*``), which desynchronize the paper's back-to-back
  strategy comparisons.

In ``strict`` mode error-severity findings raise :class:`SanitizerError`
at the offending point; otherwise they are collected on
:attr:`SanitizedSimulator.findings` and summarized by :meth:`report`.

The simulator also keeps a byte-stable :attr:`event_log` (one line per
processed event) so two runs with the same root seed can be compared for
*identical* event orderings -- the determinism smoke test in
``tests/analysis`` does exactly that.
"""

from __future__ import annotations

import contextlib
import math
import sys
from dataclasses import dataclass, field
from typing import Any

from repro.errors import SimulationError
from repro.simkernel.engine import Simulator
from repro.simkernel.events import NORMAL, Event
from repro.simkernel.process import Process
from repro.simkernel.resources import Request, Resource

#: Severity of each sanitizer check.
_SEVERITIES = {"SZ101": "warning", "SZ102": "error", "SZ103": "error",
               "SZ104": "error", "SZ105": "error"}

#: code -> (name, summary) catalogue for the ``rules`` subcommand.
SANITIZER_RULES = {
    "SZ101": ("event-tie", "same-(time, priority) event ties whose order "
                           "is decided by insertion sequence alone"),
    "SZ102": ("bad-delay", "negative, NaN, or infinite event delays"),
    "SZ103": ("post-drain-schedule", "events scheduled after the run "
                                     "drained; they will never fire"),
    "SZ104": ("resource-leak", "a process terminating while holding a "
                               "Resource slot"),
    "SZ105": ("ambient-rng-draw", "runtime RNG draws bypassing "
                                  "RngRegistry during a simulation"),
}


class SanitizerError(SimulationError):
    """A sanitizer check failed in strict mode."""


@dataclass(frozen=True)
class SanitizerFinding:
    """One runtime diagnostic, stamped with simulated time."""

    code: str
    message: str
    time: float
    severity: str = "error"

    def format(self) -> str:
        return f"[{self.code} {self.severity}] t={self.time:.6g}: {self.message}"

    def to_dict(self) -> dict:
        return {"code": self.code, "message": self.message,
                "time": self.time, "severity": self.severity}


@dataclass
class SanitizerReport:
    """Aggregate outcome of one sanitized run."""

    findings: "list[SanitizerFinding]" = field(default_factory=list)
    events_processed: int = 0
    final_time: float = 0.0

    @property
    def error_count(self) -> int:
        return sum(1 for f in self.findings if f.severity == "error")

    @property
    def warning_count(self) -> int:
        return sum(1 for f in self.findings if f.severity == "warning")

    def to_dict(self) -> dict:
        counts: "dict[str, int]" = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return {
            "version": 1,
            "tool": "sim-sanitizer",
            "events_processed": self.events_processed,
            "final_time": self.final_time,
            "error_count": self.error_count,
            "warning_count": self.warning_count,
            "counts_by_code": dict(sorted(counts.items())),
            "findings": [f.to_dict() for f in self.findings],
        }

    def format(self) -> str:
        lines = [f.format() for f in self.findings]
        lines.append(f"sanitizer: {self.error_count} errors, "
                     f"{self.warning_count} warnings over "
                     f"{self.events_processed} events "
                     f"(final t={self.final_time:.6g})")
        return "\n".join(lines)


#: ``random``-module functions patched during a sanitized run.
_RANDOM_FUNCS = ("random", "randint", "randrange", "uniform", "choice",
                 "choices", "shuffle", "sample", "gauss", "normalvariate",
                 "expovariate", "betavariate", "getrandbits")


class SanitizedSimulator(Simulator):
    """A :class:`Simulator` with reproducibility checks switched on.

    Parameters
    ----------
    start_time:
        Forwarded to :class:`Simulator`.
    strict:
        Raise :class:`SanitizerError` at the first error-severity finding
        instead of collecting it.
    max_tie_reports:
        Cap on recorded SZ101 tie warnings (ties can be numerous).
    """

    def __init__(self, start_time: float = 0.0, *, strict: bool = False,
                 max_tie_reports: int = 50) -> None:
        super().__init__(start_time)
        self.strict = bool(strict)
        self.max_tie_reports = int(max_tie_reports)
        self.findings: "list[SanitizerFinding]" = []
        #: One byte-stable line per processed event: ``time prio seq kind``.
        self.event_log: "list[str]" = []
        self._run_drained = False
        self._current_process: "Process | None" = None
        #: id(resource) -> {process: held slot count}.
        self._holds: "dict[int, dict[Process, int]]" = {}
        self._resources: "dict[int, Resource]" = {}
        self._leak_reported: "set[tuple[int, int]]" = set()
        self._tie_reports = 0

    # -- findings plumbing ---------------------------------------------

    def _record(self, code: str, message: str) -> SanitizerFinding:
        finding = SanitizerFinding(code=code, message=message, time=self._now,
                                   severity=_SEVERITIES[code])
        self.findings.append(finding)
        if self.strict and finding.severity == "error":
            raise SanitizerError(finding.format())
        return finding

    def report(self) -> SanitizerReport:
        """Snapshot of everything observed so far (plus final leak scan)."""
        self._scan_for_leaks()
        return SanitizerReport(findings=list(self.findings),
                               events_processed=self.processed_events,
                               final_time=self._now)

    # -- scheduling checks (SZ102 / SZ103) ------------------------------

    def _schedule(self, event: Event, priority: int = NORMAL,
                  delay: float = 0.0) -> None:
        if not math.isfinite(delay):
            self._record("SZ102", f"non-finite delay {delay!r} for {event!r}; "
                                  f"this corrupts heap ordering")
            raise SanitizerError(  # always fatal: NaN poisons every compare
                f"non-finite delay {delay!r} cannot be scheduled")
        if delay < 0:
            # The engine raises SchedulingError right after; record first so
            # the report pins the origin even when the exception is caught.
            self._record("SZ102", f"negative delay {delay!r} for {event!r}")
        if self._run_drained:
            self._record("SZ103", f"{event!r} scheduled after the run "
                                  f"completed; it will never be processed")
        super()._schedule(event, priority=priority, delay=delay)

    # -- step instrumentation (SZ101 / SZ104, event log) -----------------

    def step(self) -> None:
        # The sanitizer is the engine's supervisor: peeking at the heap
        # structure is its job, unlike ordinary client code.
        heap = self._heap  # simlint: disable=SL003
        if heap:
            when, prio, seq, event = heap[0]
            self._detect_tie(when, prio, event)
            self.event_log.append(
                f"{when!r} {prio} {seq} {self._describe(event)}")
            if isinstance(event, Request):
                self._note_grant(event)
            if isinstance(event, Process):
                self._note_termination(event)
            if event.callbacks:
                event.callbacks[:] = [self._wrap_callback(cb)
                                      for cb in event.callbacks]
        super().step()

    @staticmethod
    def _describe(event: Event) -> str:
        kind = type(event).__name__
        name = getattr(event, "name", None)
        return f"{kind}:{name}" if name else kind

    def _detect_tie(self, when: float, prio: int, event: Event) -> None:
        if self._tie_reports >= self.max_tie_reports:
            return
        heap = self._heap  # simlint: disable=SL003
        # The second-smallest key sits on one of the root's children.
        rivals = [heap[i] for i in (1, 2) if i < len(heap)]
        tied = [r for r in rivals if r[0] == when and r[1] == prio]
        if not tied:
            return
        self._tie_reports += 1
        rival = min(tied)
        self._record("SZ101", (
            f"event tie at t={when!r} priority={prio}: "
            f"{self._describe(event)} (seq {heap[0][2]}) runs before "
            f"{self._describe(rival[3])} (seq {rival[2]}) only because it "
            f"was scheduled first"))

    # -- resource-leak tracking (SZ104) ----------------------------------

    def _wrap_callback(self, callback):
        func = getattr(callback, "__func__", None)
        proc = getattr(callback, "__self__", None)
        if func is not Process._resume or not isinstance(proc, Process):
            return callback

        def tracked(event: Event, _proc: Process = proc,
                    _callback=callback) -> None:
            previous, self._current_process = self._current_process, _proc
            try:
                _callback(event)
            finally:
                self._current_process = previous

        return tracked

    def _note_grant(self, request: Request) -> None:
        resource = request.resource
        self._instrument_resource(resource)
        holder = next(
            (cb.__self__ for cb in (request.callbacks or ())
             if getattr(cb, "__func__", None) is Process._resume
             and isinstance(getattr(cb, "__self__", None), Process)), None)
        if holder is None:
            return
        holds = self._holds.setdefault(id(resource), {})
        holds[holder] = holds.get(holder, 0) + 1

    def _instrument_resource(self, resource: Resource) -> None:
        if id(resource) in self._resources:
            return
        self._resources[id(resource)] = resource
        original = resource.release

        def release() -> None:
            self._note_release(resource)
            original()

        resource.release = release  # type: ignore[method-assign]

    def _note_release(self, resource: Resource) -> None:
        holds = self._holds.get(id(resource))
        if not holds:
            return
        holder = self._current_process
        if holder is None or holds.get(holder, 0) <= 0:
            # Released by a process we did not see acquire (handoff or
            # pre-instrumentation grant): debit any positive holder.
            holder = next((p for p, n in holds.items() if n > 0), None)
        if holder is not None:
            holds[holder] -= 1
            if holds[holder] <= 0:
                del holds[holder]

    def _note_termination(self, process: Process) -> None:
        for res_id, holds in self._holds.items():
            count = holds.get(process, 0)
            if count > 0 and (res_id, id(process)) not in self._leak_reported:
                self._leak_reported.add((res_id, id(process)))
                resource = self._resources.get(res_id)
                self._record("SZ104", (
                    f"{process!r} terminated holding {count} slot(s) of "
                    f"{resource!r}; waiting processes starve forever"))

    def _scan_for_leaks(self) -> None:
        for res_id, holds in self._holds.items():
            for process, count in list(holds.items()):
                if count > 0 and not process.is_alive:
                    if (res_id, id(process)) in self._leak_reported:
                        continue
                    self._leak_reported.add((res_id, id(process)))
                    self._record("SZ104", (
                        f"{process!r} ended holding {count} slot(s) of "
                        f"{self._resources.get(res_id)!r}"))

    # -- RNG discipline (SZ105) ------------------------------------------

    @contextlib.contextmanager
    def _rng_guard(self):
        import random as random_module

        import numpy as np

        patched: "list[tuple[Any, str, Any]]" = []

        def guard(owner: Any, attr: str, qualname: str) -> None:
            original = getattr(owner, attr)

            def wrapper(*args: Any, **kwargs: Any) -> Any:
                frame = sys._getframe(1)
                caller = frame.f_code.co_filename.replace("\\", "/")
                if not caller.endswith("simkernel/rng.py"):
                    self._record("SZ105", (
                        f"{qualname}() called at {caller}:{frame.f_lineno} "
                        f"during the run; draw streams from RngRegistry so "
                        f"competing strategies see identical environments"))
                return original(*args, **kwargs)

            patched.append((owner, attr, original))
            setattr(owner, attr, wrapper)

        guard(np.random, "default_rng", "numpy.random.default_rng")
        guard(np.random, "seed", "numpy.random.seed")
        for name in _RANDOM_FUNCS:
            if hasattr(random_module, name):
                guard(random_module, name, f"random.{name}")
        try:
            yield
        finally:
            for owner, attr, original in reversed(patched):
                setattr(owner, attr, original)

    # -- run loop ---------------------------------------------------------

    def run(self, until: "float | Event | None" = None) -> Any:
        with self._rng_guard():
            result = super().run(until)
        if until is None and not self._heap:  # simlint: disable=SL003
            self._run_drained = True
        return result
