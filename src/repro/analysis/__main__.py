"""``python -m repro.analysis`` dispatches to the CLI."""

import sys

from repro.analysis.cli import main

sys.exit(main())
