"""The built-in ``simlint`` rule set and its registry.

Every rule targets a *real* reproducibility hazard of this codebase: the
paper's methodology only holds if back-to-back strategy comparisons see
identical stochastic environments (see the docstring of
:mod:`repro.simkernel.rng`), which in turn requires that no code path
draws entropy outside the :class:`~repro.simkernel.rng.RngRegistry`, that
the event heap's ``(time, priority, sequence)`` ordering stays
encapsulated in :mod:`repro.simkernel.engine`, and that simulated time is
never compared with ``==``.

A rule is a subclass of :class:`Rule` registered with :func:`register`.
Rules declare the AST node types they want to inspect; the linter in
:mod:`repro.analysis.linter` performs a single walk per module and
dispatches nodes to interested rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True)
class Finding:
    """One lint diagnostic, pinned to a source location."""

    code: str
    message: str
    path: str
    line: int
    column: int

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        return {"code": self.code, "message": self.message, "path": self.path,
                "line": self.line, "column": self.column}


class LintContext:
    """Per-module facts shared by all rules: path, imports, resolution."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path.replace("\\", "/")
        self.source = source
        self.tree = tree
        #: ``import numpy as np`` -> {"np": "numpy"}
        self.module_imports: "dict[str, str]" = {}
        #: ``from time import time as t`` -> {"t": "time.time"}
        self.from_imports: "dict[str, str]" = {}
        self._collect_imports(tree)

    def _collect_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0])
                    if alias.asname:
                        self.module_imports[alias.asname] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}")

    # -- facts ----------------------------------------------------------

    @property
    def is_engine_module(self) -> bool:
        """Whether this file is the one place allowed to touch the heap."""
        return self.path.endswith("simkernel/engine.py")

    @property
    def is_units_module(self) -> bool:
        return self.path.endswith("repro/units.py")

    @property
    def imports_simkernel(self) -> bool:
        """Whether the module imports any simulation-kernel layer."""
        modules = list(self.module_imports.values()) + list(
            self.from_imports.values())
        return any(m.startswith(("repro.simkernel", "repro.smpi", "repro.swap"))
                   for m in modules)

    # -- name resolution ------------------------------------------------

    def qualified_name(self, node: ast.AST) -> "str | None":
        """Resolve an attribute/name expression to a dotted module path.

        ``np.random.default_rng`` with ``import numpy as np`` resolves to
        ``"numpy.random.default_rng"``; ``time()`` after ``from time
        import time`` resolves to ``"time.time"``.  Returns ``None`` for
        anything that is not a plain dotted name.
        """
        parts: "list[str]" = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        head = node.id
        if head in self.module_imports:
            head = self.module_imports[head]
        elif head in self.from_imports:
            head = self.from_imports[head]
        parts.append(head)
        return ".".join(reversed(parts))


class Rule:
    """Base class: one diagnostic code, one hazard."""

    code: str = "SL000"
    name: str = "abstract-rule"
    summary: str = ""
    #: AST node classes this rule wants to see (dispatch filter).
    node_types: "tuple[type, ...]" = ()

    def check(self, node: ast.AST, ctx: LintContext) -> Iterable[Finding]:
        """Yield findings for one node of an interesting type."""
        return ()

    def finding(self, ctx: LintContext, node: ast.AST, message: str) -> Finding:
        return Finding(code=self.code, message=message, path=ctx.path,
                       line=getattr(node, "lineno", 1),
                       column=getattr(node, "col_offset", 0) + 1)


#: code -> rule instance, in registration order.
REGISTRY: "dict[str, Rule]" = {}


def register(cls: "type[Rule]") -> "type[Rule]":
    """Class decorator: instantiate and index a rule by its code."""
    rule = cls()
    if rule.code in REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code}")
    REGISTRY[rule.code] = rule
    return cls


def all_rules() -> "list[Rule]":
    return list(REGISTRY.values())


def _function_local_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested scopes."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


# ---------------------------------------------------------------------------
# SL001 -- wall-clock / ambient-entropy calls
# ---------------------------------------------------------------------------

#: Calls that read the host clock or ambient entropy; any of these inside
#: simulation code silently breaks run-to-run reproducibility.
_WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "uuid.uuid1", "uuid.uuid4", "os.urandom", "os.getrandom",
})

#: Module prefixes whose *every* callable is an unregistered entropy source.
_ENTROPY_PREFIXES = ("random.", "secrets.", "numpy.random.")

#: numpy.random callables that are fine when given an explicit seed / spec.
_SEEDABLE = frozenset({"numpy.random.default_rng", "numpy.random.SeedSequence",
                       "numpy.random.Generator", "numpy.random.PCG64",
                       "numpy.random.Philox", "numpy.random.SFC64"})


@register
class WallClockRule(Rule):
    """Nondeterministic time / RNG source used outside the RngRegistry."""

    code = "SL001"
    name = "wall-clock-or-ambient-entropy"
    summary = ("calls that read the host clock or draw entropy outside "
               "RngRegistry (time.time, datetime.now, random.*, unseeded "
               "numpy.random.default_rng, ...)")
    node_types = (ast.Call,)

    def check(self, node: ast.Call, ctx: LintContext) -> Iterable[Finding]:
        qual = ctx.qualified_name(node.func)
        if qual is None:
            return
        if qual in _WALL_CLOCK_CALLS:
            yield self.finding(ctx, node, (
                f"call to {qual}() is nondeterministic across runs; "
                f"simulated time lives on Simulator.now and entropy on "
                f"RngRegistry"))
            return
        if qual in _SEEDABLE:
            if not node.args and not node.keywords:
                yield self.finding(ctx, node, (
                    f"{qual}() without a seed draws OS entropy; derive the "
                    f"stream from RngRegistry instead"))
            return
        if qual.startswith(_ENTROPY_PREFIXES):
            yield self.finding(ctx, node, (
                f"call to {qual}() bypasses RngRegistry; competing "
                f"strategies would no longer see identical environments"))


# ---------------------------------------------------------------------------
# SL002 -- simkernel coroutine discipline
# ---------------------------------------------------------------------------

@register
class CoroutineDisciplineRule(Rule):
    """Simulation coroutines must yield Events and never return from a
    ``try`` whose ``finally`` re-yields."""

    code = "SL002"
    name = "sim-coroutine-discipline"
    summary = ("sim coroutines yielding plain constants (never Events), or "
               "returning inside a try whose finally yields again")
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)

    def check(self, node: ast.AST, ctx: LintContext) -> Iterable[Finding]:
        if not ctx.imports_simkernel:
            return
        local = list(_function_local_nodes(node))
        yields = [n for n in local if isinstance(n, (ast.Yield, ast.YieldFrom))]
        if not yields:
            return
        for y in yields:
            if isinstance(y, ast.Yield) and isinstance(y.value, ast.Constant):
                yield self.finding(ctx, y, (
                    f"yield of constant {y.value.value!r} in a simulation "
                    f"coroutine; processes may only yield Events"))
        for t in local:
            if not isinstance(t, ast.Try) or not t.finalbody:
                continue
            finally_yields = any(
                isinstance(n, (ast.Yield, ast.YieldFrom))
                for stmt in t.finalbody for n in [stmt, *ast.walk(stmt)]
                if not isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.Lambda)))
            if not finally_yields:
                continue
            for stmt in t.body + [h for hd in t.handlers for h in hd.body]:
                for n in [stmt, *ast.walk(stmt)]:
                    if isinstance(n, ast.Return):
                        yield self.finding(ctx, n, (
                            "return inside try whose finally yields: the "
                            "kernel cannot resume a returning coroutine, so "
                            "the finally-yield deadlocks the process"))
                        break


# ---------------------------------------------------------------------------
# SL003 -- event-heap encapsulation
# ---------------------------------------------------------------------------

@register
class HeapEncapsulationRule(Rule):
    """Only ``simkernel.engine`` may touch heapq / the event heap."""

    code = "SL003"
    name = "heap-encapsulation"
    summary = ("direct heapq use or Simulator._heap access outside "
               "simkernel.engine, which can break (time, priority, seq) "
               "total ordering")
    node_types = (ast.Attribute, ast.Call)

    def check(self, node: ast.AST, ctx: LintContext) -> Iterable[Finding]:
        if ctx.is_engine_module:
            return
        if isinstance(node, ast.Attribute) and node.attr == "_heap":
            yield self.finding(ctx, node, (
                "direct access to the simulator's _heap; event ordering is "
                "an engine invariant -- go through Simulator methods"))
        elif isinstance(node, ast.Call):
            qual = ctx.qualified_name(node.func)
            if qual is not None and qual.startswith("heapq."):
                yield self.finding(ctx, node, (
                    f"{qual}() outside simkernel.engine; keep heap ordering "
                    f"logic in the engine (or suppress with a justification "
                    f"if this heap is unrelated to the event loop)"))


# ---------------------------------------------------------------------------
# SL004 -- floating-point simulated-time equality
# ---------------------------------------------------------------------------

def _is_sim_time_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Attribute) and node.attr in ("now", "_now"):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "peek":
            return True
    return False


@register
class FloatTimeEqualityRule(Rule):
    """``==`` / ``!=`` on simulated time is a float-comparison trap."""

    code = "SL004"
    name = "float-time-equality"
    summary = ("== / != comparisons against simulated time (.now / peek()); "
               "accumulated float error makes exact equality fragile")
    node_types = (ast.Compare,)

    def check(self, node: ast.Compare, ctx: LintContext) -> Iterable[Finding]:
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return
        operands = [node.left, *node.comparators]
        if any(_is_sim_time_expr(o) for o in operands):
            yield self.finding(ctx, node, (
                "exact == / != comparison on simulated time; compare with "
                "an ordering (<, >=) or an explicit tolerance"))


# ---------------------------------------------------------------------------
# SL005 -- raw unit literals
# ---------------------------------------------------------------------------

#: literal value -> the repro.units spelling that should replace it.
#: Float and int keys that compare equal hash together, so ``300e6`` in
#: source hits the ``300 * 10**6`` entry.
_UNIT_LITERALS = {
    10 ** 6: "units.MB (bytes), units.MFLOPS (flop/s), or units.MB_S "
             "(bytes/s)",
    10 ** 9: "units.GB (bytes), units.GFLOPS (flop/s), or units.GB_S "
             "(bytes/s)",
    1 << 20: "units.MIB",
    1 << 30: "units.GIB",
    3600: "units.HOUR",          # simlint: disable=SL005 (rule table)
    86400: "24 * units.HOUR",    # simlint: disable=SL005 (rule table)
    # Rates that appear in platform/app specs (100e6, 300e6, ...).
    100 * 10 ** 6: "100 * units.MFLOPS (flop/s) or 100 * units.MB_S "
                   "(bytes/s)",
    250 * 10 ** 6: "250 * units.MFLOPS (flop/s)",
    300 * 10 ** 6: "300 * units.MFLOPS (flop/s)",
    350 * 10 ** 6: "350 * units.MFLOPS (flop/s)",
}


@register
class RawUnitLiteralRule(Rule):
    """Magic numbers that already have a name in :mod:`repro.units`."""

    code = "SL005"
    name = "raw-unit-literal"
    summary = ("raw numeric literals (1e6, 1e9, 3600, ...) where a "
               "repro.units constant exists")
    node_types = (ast.Constant,)

    def check(self, node: ast.Constant, ctx: LintContext) -> Iterable[Finding]:
        if ctx.is_units_module:
            return
        value = node.value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return
        suggestion = _UNIT_LITERALS.get(value)
        if suggestion is not None:
            yield self.finding(ctx, node, (
                f"raw unit literal {value!r}; use {suggestion} so call "
                f"sites read like the paper"))


# ---------------------------------------------------------------------------
# SL006 -- shared mutable state
# ---------------------------------------------------------------------------

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                     ast.SetComp)
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray",
                            "collections.deque", "collections.defaultdict"})


def _is_mutable_value(node: "ast.AST | None", ctx: LintContext) -> bool:
    if node is None:
        return False
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        qual = ctx.qualified_name(node.func)
        return qual in _MUTABLE_CALLS
    return False


@register
class MutableSharedStateRule(Rule):
    """Mutable defaults / class attributes leak state across runs."""

    code = "SL006"
    name = "mutable-shared-state"
    summary = ("mutable default arguments and class-level mutable literals; "
               "state shared across strategy runs destroys back-to-back "
               "comparability")
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)

    def check(self, node: ast.AST, ctx: LintContext) -> Iterable[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                if _is_mutable_value(default, ctx):
                    yield self.finding(ctx, default, (
                        f"mutable default argument in {node.name}(); the "
                        f"same object is shared by every call -- default to "
                        f"None and create inside"))
        else:
            assert isinstance(node, ast.ClassDef)
            decorators = {ctx.qualified_name(d) or "" for d in node.decorator_list
                          } | {ctx.qualified_name(d.func) or ""
                               for d in node.decorator_list
                               if isinstance(d, ast.Call)}
            if any(d.endswith("dataclass") for d in decorators):
                # Field defaults are validated by dataclasses itself
                # (mutable defaults raise at class-creation time).
                return
            for stmt in node.body:
                targets: "list[ast.AST]" = []
                value: "ast.AST | None" = None
                if isinstance(stmt, ast.Assign):
                    targets, value = stmt.targets, stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    targets, value = [stmt.target], stmt.value
                if value is not None and _is_mutable_value(value, ctx):
                    names = ", ".join(t.id for t in targets
                                      if isinstance(t, ast.Name))
                    yield self.finding(ctx, value, (
                        f"class-level mutable attribute "
                        f"{names or '<attribute>'} on {node.name}; every "
                        f"instance shares it -- initialize in __init__"))
