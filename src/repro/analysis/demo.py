"""A small canonical scenario for sanitized runs.

Used by ``python -m repro.analysis --sanitize`` and by the determinism
smoke test: a 6-host shared platform with ON/OFF external load, a 3-rank
swapped BSP application, and the greedy policy -- the whole swap stack
(handlers, manager, state transfers) exercised on a
:class:`~repro.analysis.sanitizer.SanitizedSimulator` in a few hundred
events.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.sanitizer import SanitizedSimulator, SanitizerReport
from repro.load.onoff import OnOffLoadModel
from repro.platform.cluster import make_platform
from repro.swap.runtime import SwapJobResult, SwapRuntime
from repro.units import KB, MB, MFLOPS


@dataclass
class DemoOutcome:
    """Everything the CLI / tests need from one sanitized demo run."""

    result: SwapJobResult
    report: SanitizerReport
    event_log: "list[str]"

    @property
    def makespan(self) -> float:
        return self.result.makespan


def run_demo(seed: int = 0, *, strict: bool = False,
             iterations: int = 4) -> DemoOutcome:
    """Run the demo scenario under the sanitizer and collect its report."""
    platform = make_platform(
        6, OnOffLoadModel(p=0.3, q=0.08), seed=seed,
        speed_range=(250 * MFLOPS, 350 * MFLOPS), horizon=600.0)
    sim = SanitizedSimulator(strict=strict)
    runtime = SwapRuntime(platform, n_active=3,
                          chunk_flops=500 * MFLOPS,  # ~2 s per iteration
                          probe_interval=5.0, sim=sim)
    result = runtime.run_iterative(iterations, exchange_bytes=64 * KB,
                                   state_bytes=1 * MB)
    return DemoOutcome(result=result, report=sim.report(),
                       event_log=list(sim.event_log))
