"""Correctness tooling for the reproduction: ``simlint`` + sanitizer.

Two layers keep the determinism discipline of :mod:`repro.simkernel`
enforceable as the codebase grows (see ``docs/STATIC_ANALYSIS.md``):

* :mod:`repro.analysis.linter` -- an AST-based static linter with rules
  ``SL001``-``SL006`` targeting wall-clock calls, coroutine misuse, heap
  encapsulation, float-time equality, raw unit literals, and shared
  mutable state;
* :mod:`repro.analysis.sanitizer` -- a runtime supervisor
  (:class:`SanitizedSimulator`) that watches a live run for event-order
  ties, corrupt delays, post-run scheduling, leaked resource slots, and
  RNG draws that bypass the registry.

Run both from the command line: ``python -m repro.analysis src/``.
"""

from repro.analysis.linter import (findings_to_dict, format_json, format_text,
                                   lint_paths, lint_source)
from repro.analysis.rules import Finding, LintContext, Rule, all_rules
from repro.analysis.sanitizer import (SanitizedSimulator, SanitizerError,
                                      SanitizerFinding, SanitizerReport)

__all__ = [
    "Finding",
    "LintContext",
    "Rule",
    "SanitizedSimulator",
    "SanitizerError",
    "SanitizerFinding",
    "SanitizerReport",
    "all_rules",
    "findings_to_dict",
    "format_json",
    "format_text",
    "lint_paths",
    "lint_source",
]
