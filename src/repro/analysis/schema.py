"""The shared finding schema of every ``repro.analysis`` family.

All four analyzer families -- the per-file AST linter (``SL``), the
runtime sanitizer (``SZ``), the trace invariant linter (``TL``), and the
interprocedural flow analyzer (``SF``) -- report through one JSON shape
so CI gates and baselines can treat them interchangeably:

* a *finding* is ``{"code", "message", "path", "line", "column"}`` plus
  optional family extras (flow findings add ``"function"``);
* a *payload* is ``{"version", "tool", ..., "finding_count",
  "counts_by_code", "findings"}``.

Exit-code convention, shared by every subcommand of
``python -m repro.analysis``: ``0`` clean, ``1`` findings, ``2`` usage
error.
"""

from __future__ import annotations

import json
from typing import Any, Sequence

#: Schema version of the payload produced by :func:`findings_payload`.
SCHEMA_VERSION = 1


def findings_payload(tool: str, findings: Sequence[Any],
                     **extra: Any) -> dict:
    """The stable JSON payload of one analyzer run.

    ``findings`` is a sequence of objects with ``code`` attributes and a
    ``to_dict()`` method (the :class:`~repro.analysis.rules.Finding` /
    :class:`~repro.analysis.flow.FlowFinding` duck type).  ``extra``
    keys (e.g. ``files_scanned``) are inserted after ``tool``.
    """
    counts: "dict[str, int]" = {}
    for finding in findings:
        counts[finding.code] = counts.get(finding.code, 0) + 1
    payload: dict = {"version": SCHEMA_VERSION, "tool": tool}
    payload.update(extra)
    payload["finding_count"] = len(findings)
    payload["counts_by_code"] = dict(sorted(counts.items()))
    payload["findings"] = [f.to_dict() for f in findings]
    return payload


def format_payload(payload: dict) -> str:
    return json.dumps(payload, indent=2)
