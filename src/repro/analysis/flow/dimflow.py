"""Interprocedural dimension inference (the dataflow behind SF005).

Two entry points:

* :func:`infer_return_dims` -- the fixed point assigning each function a
  return dimension when every ``return`` expression agrees on one
  (``LinkSpec.transfer_time`` returns seconds, ``WorkloadSpec.total_flops``
  returns flop).  Runs alongside the effect fixed point.
* :func:`check_function_dims` -- the per-function check pass: flags
  ``+``/``-``/comparison between *known, different* dimensions, call
  arguments contradicting dimension-named parameters, and assignments of
  a dimensioned value to a variable whose name pins a different one.

Both share :class:`DimEvaluator`, a best-effort expression evaluator
over :mod:`repro.analysis.flow.dims`.  Unknown stays unknown; only
certain contradictions surface.
"""

from __future__ import annotations

import ast

from repro.analysis.flow import dims
from repro.analysis.flow.contracts import FlowContracts
from repro.analysis.flow.graph import (FunctionInfo, ModuleInfo,
                                       PackageIndex, _dotted_name)

#: Builtins that pass their arguments' common dimension through.
_DIM_PRESERVING = frozenset({"min", "max", "abs", "float", "round", "sum"})


def _walk_scope(root: ast.AST):
    """Walk a function body without descending into nested defs/classes."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


class DimEvaluator:
    """Evaluate an expression's dimension inside one function."""

    def __init__(self, index: PackageIndex, mod: ModuleInfo,
                 info: FunctionInfo,
                 return_dims: "dict[str, tuple]") -> None:
        self.index = index
        self.mod = mod
        self.info = info
        self.return_dims = return_dims
        self.env: "dict[str, tuple]" = {}
        self._build_env()

    def _build_env(self) -> None:
        args = self.info.node.args
        for arg in (list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)):
            dim = dims.name_dim(arg.arg)
            if dim is not None:
                self.env[arg.arg] = dim
        for _ in range(2):  # forward refs within a body settle
            for node in _walk_scope(self.info.node):
                if (isinstance(node, ast.Assign) and len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Name)):
                    dim = self.eval(node.value)
                    if dim is not None:
                        self.env[node.targets[0].id] = dim

    # -- expression evaluation ------------------------------------------

    def eval(self, expr: ast.AST) -> "tuple | None":
        if isinstance(expr, ast.Constant):
            return dims.SCALAR if isinstance(expr.value,
                                             (int, float)) else None
        if isinstance(expr, ast.Name):
            if expr.id in self.env:
                return self.env[expr.id]
            return self._symbol_dim(expr.id) or dims.name_dim(expr.id)
        if isinstance(expr, ast.Attribute):
            dotted = _dotted_name(expr)
            if dotted is not None:
                unit = self._symbol_dim(dotted)
                if unit is not None:
                    return unit
            return dims.name_dim(expr.attr)
        if isinstance(expr, ast.UnaryOp):
            return self.eval(expr.operand)
        if isinstance(expr, ast.BinOp):
            left, right = self.eval(expr.left), self.eval(expr.right)
            if isinstance(expr.op, ast.Mult):
                return dims.mul(left, right)
            if isinstance(expr.op, (ast.Div, ast.FloorDiv)):
                return dims.div(left, right)
            if isinstance(expr.op, (ast.Add, ast.Sub)):
                return dims.combine_add(left, right)[0]
            if isinstance(expr.op, ast.Mod):
                return left
            return None
        if isinstance(expr, ast.IfExp):
            body, orelse = self.eval(expr.body), self.eval(expr.orelse)
            return body if body == orelse else None
        if isinstance(expr, ast.Call):
            return self._call_dim(expr)
        return None

    def _symbol_dim(self, dotted: str) -> "tuple | None":
        """Dimension of a name resolving to a ``repro.units`` constant."""
        resolved = self.index.resolve_name(self.mod, dotted)
        if resolved is None:
            return None
        prefix = f"{self.index.package}.units."
        if resolved.startswith(prefix):
            return dims.UNIT_CONSTANT_DIMS.get(resolved[len(prefix):])
        return None

    def _call_dim(self, node: ast.Call) -> "tuple | None":
        target = self.resolve_callee(node)
        if target is not None:
            return self.return_dims.get(target)
        func = node.func
        if isinstance(func, ast.Name) and func.id in _DIM_PRESERVING:
            arg_dims = [self.eval(a) for a in node.args]
            known = [d for d in arg_dims
                     if d is not None and d != dims.SCALAR]
            if known and all(d == known[0] for d in known):
                return known[0]
            return dims.SCALAR if arg_dims and all(
                d == dims.SCALAR for d in arg_dims) else None
        if isinstance(func, ast.Attribute):
            return dims.name_dim(func.attr)
        return None

    def resolve_callee(self, node: ast.Call) -> "str | None":
        """The in-package function a call resolves to, if determinable."""
        dotted = _dotted_name(node.func)
        if dotted is not None:
            resolved = self.index.resolve_name(self.mod, dotted)
            if resolved in self.index.functions:
                return resolved
            if resolved in self.index.classes:
                return None  # constructor: the dim of an instance is moot
        if isinstance(node.func, ast.Attribute):
            matches = self.index.subclass_methods(node.func.attr)
            if len(matches) == 1:
                return matches[0]
        return None

    # -- return-dim inference ---------------------------------------------

    def return_dim(self) -> "tuple | None":
        seen: "list[tuple | None]" = []
        for node in _walk_scope(self.info.node):
            if isinstance(node, ast.Return) and node.value is not None:
                seen.append(self.eval(node.value))
        known = [d for d in seen if d is not None]
        if known and len(known) == len(seen) and all(
                d == known[0] for d in known):
            return known[0]
        return None


def infer_return_dims(index: PackageIndex,
                      contracts: FlowContracts) -> "dict[str, tuple]":
    """Fixed point over call edges; seeds from ``contracts.extra_dims``."""
    return_dims: "dict[str, tuple]" = dict(contracts.extra_dims)
    for _ in range(4):
        changed = False
        for qualname in sorted(index.functions):
            info = index.functions[qualname]
            evaluator = DimEvaluator(index, index.modules[info.module],
                                     info, return_dims)
            dim = evaluator.return_dim()
            if dim is not None and return_dims.get(qualname) != dim:
                return_dims[qualname] = dim
                changed = True
        if not changed:
            break
    return return_dims


def check_function_dims(index: PackageIndex, info: FunctionInfo,
                        return_dims: "dict[str, tuple]",
                        ) -> "list[tuple[int, int, str]]":
    """SF005 sites in one function: (line, column, message)."""
    mod = index.modules[info.module]
    ev = DimEvaluator(index, mod, info, return_dims)
    out: "list[tuple[int, int, str]]" = []

    def flag(node: ast.AST, message: str) -> None:
        out.append((node.lineno, node.col_offset + 1, message))

    for node in _walk_scope(info.node):
        if isinstance(node, ast.BinOp) and isinstance(node.op,
                                                      (ast.Add, ast.Sub)):
            left, right = ev.eval(node.left), ev.eval(node.right)
            _, legal = dims.combine_add(left, right)
            if not legal:
                op = "+" if isinstance(node.op, ast.Add) else "-"
                flag(node, f"dimension mismatch: {dims.describe(left)} "
                           f"{op} {dims.describe(right)}")
        elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)):
            left, right = ev.eval(node.target), ev.eval(node.value)
            _, legal = dims.combine_add(left, right)
            if not legal:
                op = "+=" if isinstance(node.op, ast.Add) else "-="
                flag(node, f"dimension mismatch: {dims.describe(left)} "
                           f"{op} {dims.describe(right)}")
        elif isinstance(node, ast.Compare):
            operands = [node.left] + list(node.comparators)
            ops = node.ops
            for i, op in enumerate(ops):
                if not isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE,
                                       ast.Eq, ast.NotEq)):
                    continue
                left, right = ev.eval(operands[i]), ev.eval(operands[i + 1])
                _, legal = dims.combine_add(left, right)
                if not legal:
                    flag(node, f"dimension mismatch in comparison: "
                               f"{dims.describe(left)} vs "
                               f"{dims.describe(right)}")
        elif isinstance(node, ast.Call):
            out.extend(_check_call_args(index, ev, node))
        elif (isinstance(node, ast.Assign) and len(node.targets) == 1
              and isinstance(node.targets[0], ast.Name)):
            named = dims.name_dim(node.targets[0].id)
            value = ev.eval(node.value)
            if (named is not None and value is not None
                    and value not in (dims.SCALAR, named)):
                flag(node, f"assigns {dims.describe(value)} to "
                           f"{dims.describe(named)}-named variable "
                           f"'{node.targets[0].id}'")
    return out


def _check_call_args(index: PackageIndex, ev: DimEvaluator,
                     node: ast.Call) -> "list[tuple[int, int, str]]":
    target = ev.resolve_callee(node)
    if target is None:
        return []
    callee = index.functions[target]
    args = callee.node.args
    params = list(args.posonlyargs) + list(args.args)
    if callee.cls is not None and params and params[0].arg in ("self",
                                                               "cls"):
        params = params[1:]
    out: "list[tuple[int, int, str]]" = []
    pairs = list(zip(params, node.args))
    by_name = {p.arg: p for p in params + list(args.kwonlyargs)}
    for kw in node.keywords:
        if kw.arg in by_name:
            pairs.append((by_name[kw.arg], kw.value))
    for param, arg in pairs:
        expected = dims.name_dim(param.arg)
        actual = ev.eval(arg)
        if (expected is not None and actual is not None
                and actual not in (dims.SCALAR, expected)):
            out.append((arg.lineno, arg.col_offset + 1,
                        f"argument '{param.arg}' of "
                        f"{callee.qualname.rsplit('.', 1)[-1]}() expects "
                        f"{dims.describe(expected)}, got "
                        f"{dims.describe(actual)}"))
    return out
