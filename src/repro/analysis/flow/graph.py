"""Whole-package module/call graph for the flow analyzer.

:class:`PackageIndex` parses every module of a package once and builds
the symbol tables the interprocedural pass needs:

* functions and methods by qualified name (``pkg.mod.Class.meth``);
* classes with resolved base classes and attribute types (gathered
  from class-body annotations and ``self.x = <typed>`` assignments in
  ``__init__``);
* per-module import maps, mirroring
  :class:`repro.analysis.rules.LintContext`;
* module-level *mutable globals* and, among them, the ones some
  function actually mutates -- the "shared state" the effect pass and
  rule SF001 care about.

Call resolution is deliberately pragmatic: exact where types are known
(imports, constructors, annotated parameters, ``self``), and falling
back to *by-name* linking for attribute calls on untyped receivers --
``strategy.run(...)`` links to every in-package ``run`` method.  That
over-approximation is what makes effect inference conservative rather
than blind; common container-method names (``append``, ``update``,
...) are excluded from the fallback so list manipulation does not link
to unrelated classes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

#: Attribute-call names never linked by the untyped-receiver fallback:
#: they are overwhelmingly builtin-container operations.
GENERIC_METHODS = frozenset({
    "append", "add", "update", "extend", "insert", "remove", "pop",
    "popitem", "clear", "setdefault", "discard", "get", "items", "keys",
    "values", "copy", "sort", "index", "count", "join", "split", "strip",
    "startswith", "endswith", "format", "replace", "encode", "decode",
    "lower", "upper", "read", "write", "close", "flush",
})

#: Cap on by-name fallback fan-out; a name matching more methods than
#: this is too generic to carry signal.
_FALLBACK_CAP = 16

#: Calls producing mutable containers (module-level globals bound to one
#: of these are mutable-global candidates).
_MUTABLE_FACTORIES = frozenset({
    "list", "dict", "set", "bytearray", "collections.deque",
    "collections.defaultdict", "collections.OrderedDict",
    "collections.Counter",
})

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp,
                     ast.DictComp, ast.SetComp)


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    module: str
    path: str
    node: ast.AST
    lineno: int
    cls: "str | None" = None
    #: call sites: (callee qualname or external dotted name, resolved
    #: in-package?, lineno, col)
    calls: "list[tuple[str, bool, int, int]]" = field(default_factory=list)


@dataclass
class ClassInfo:
    qualname: str
    module: str
    node: ast.ClassDef
    base_names: "list[str]" = field(default_factory=list)
    methods: "dict[str, str]" = field(default_factory=dict)
    #: attribute name -> class qualname (from annotations and __init__).
    attr_types: "dict[str, str]" = field(default_factory=dict)


@dataclass
class ModuleInfo:
    name: str
    path: str
    source: str
    tree: ast.Module
    #: alias -> module dotted name (``import numpy as np``).
    imports_mod: "dict[str, str]" = field(default_factory=dict)
    #: local name -> full dotted origin (``from x import y [as z]``).
    imports_from: "dict[str, str]" = field(default_factory=dict)
    #: module-level names bound to a mutable container.
    mutable_globals: "set[str]" = field(default_factory=set)
    #: module-level name -> class qualname (``X = ClassName()``).
    global_types: "dict[str, str]" = field(default_factory=dict)


class PackageIndex:
    """Symbol tables and call graph for one parsed package tree."""

    def __init__(self, package: str) -> None:
        self.package = package
        self.modules: "dict[str, ModuleInfo]" = {}
        self.functions: "dict[str, FunctionInfo]" = {}
        self.classes: "dict[str, ClassInfo]" = {}
        self.methods_by_name: "dict[str, list[str]]" = {}
        #: global qualname (module.NAME) -> set of mutating function
        #: qualnames; populated by the effects pass.
        self.shared_globals: "dict[str, set]" = {}

    # -- construction -----------------------------------------------------

    @classmethod
    def build(cls, root: "str | Path", package: "str | None" = None,
              ) -> "PackageIndex":
        """Parse every ``.py`` file under ``root`` (a package directory).

        ``package`` defaults to the directory's name.
        """
        root = Path(root).resolve()
        if not root.is_dir():
            raise FileNotFoundError(f"package directory not found: {root}")
        package = package or root.name
        index = cls(package)
        for path in sorted(root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            rel = path.relative_to(root)
            parts = [package] + list(rel.with_suffix("").parts)
            if parts[-1] == "__init__":
                parts = parts[:-1]
            module_name = ".".join(parts)
            source = path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError:
                continue  # the per-file linter reports SL000 for these
            index._add_module(module_name, str(path), source, tree)
        for mod in sorted(index.modules):
            index._resolve_calls(index.modules[mod])
        return index

    def _add_module(self, name: str, path: str, source: str,
                    tree: ast.Module) -> None:
        mod = ModuleInfo(name=name, path=path.replace("\\", "/"),
                         source=source, tree=tree)
        self.modules[name] = mod
        self._collect_imports(mod)
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(mod, node, cls=None)
            elif isinstance(node, ast.ClassDef):
                self._add_class(mod, node)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                self._classify_global(mod, node)

    def _collect_imports(self, mod: ModuleInfo) -> None:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    key = alias.asname or alias.name.split(".")[0]
                    mod.imports_mod[key] = (alias.name if alias.asname
                                            else alias.name.split(".")[0])
                    if alias.asname:
                        mod.imports_mod[alias.asname] = alias.name
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:  # relative import -> anchor in the package
                    parts = mod.name.split(".")
                    anchor = parts[:len(parts) - node.level]
                    base = ".".join(anchor + ([node.module]
                                              if node.module else []))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    target = f"{base}.{alias.name}" if base else alias.name
                    mod.imports_from[alias.asname or alias.name] = target

    def _add_function(self, mod: ModuleInfo, node, cls: "str | None") -> None:
        name = node.name if cls is None else f"{cls.split('.')[-1]}.{node.name}"
        qualname = (f"{mod.name}.{node.name}" if cls is None
                    else f"{cls}.{node.name}")
        info = FunctionInfo(qualname=qualname, module=mod.name, path=mod.path,
                            node=node, lineno=node.lineno, cls=cls)
        self.functions[qualname] = info
        if cls is not None:
            self.methods_by_name.setdefault(node.name, []).append(qualname)
        del name

    def _add_class(self, mod: ModuleInfo, node: ast.ClassDef) -> None:
        qualname = f"{mod.name}.{node.name}"
        cinfo = ClassInfo(qualname=qualname, module=mod.name, node=node)
        self.classes[qualname] = cinfo
        mod.global_types.setdefault(node.name, qualname)
        for base in node.bases:
            dotted = _dotted_name(base)
            if dotted is not None:
                cinfo.base_names.append(dotted)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(mod, stmt, cls=qualname)
                cinfo.methods[stmt.name] = f"{qualname}.{stmt.name}"
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name):
                type_name = annotation_class_name(stmt.annotation)
                if type_name:
                    resolved = self.resolve_class(mod, type_name)
                    if resolved:
                        cinfo.attr_types[stmt.target.id] = resolved

    def _classify_global(self, mod: ModuleInfo, node) -> None:
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        value = node.value
        if value is None:
            return
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if not names:
            return
        if isinstance(value, _MUTABLE_LITERALS):
            mod.mutable_globals.update(names)
        elif isinstance(value, ast.Call):
            dotted = _dotted_name(value.func)
            if dotted in _MUTABLE_FACTORIES:
                mod.mutable_globals.update(names)
            elif dotted is not None:
                cls_qual = self.resolve_class(mod, dotted)
                if cls_qual:
                    for n in names:
                        mod.global_types[n] = cls_qual

    # -- name/type resolution ----------------------------------------------

    def resolve_name(self, mod: ModuleInfo, dotted: str) -> "str | None":
        """Resolve a dotted name as seen from ``mod`` to a full origin.

        ``obs.emit`` with ``from repro import obs`` resolves to
        ``repro.obs.emit``.  Returns None for unresolvable heads.
        """
        head, _, rest = dotted.partition(".")
        origin = None
        if head in mod.imports_from:
            origin = mod.imports_from[head]
        elif head in mod.imports_mod:
            origin = mod.imports_mod[head]
        elif f"{mod.name}.{head}" in self.functions:
            origin = f"{mod.name}.{head}"
        elif f"{mod.name}.{head}" in self.classes:
            origin = f"{mod.name}.{head}"
        elif head in mod.global_types or head in mod.mutable_globals:
            origin = f"{mod.name}.{head}"
        if origin is None:
            return None
        return f"{origin}.{rest}" if rest else origin

    def resolve_class(self, mod: ModuleInfo, name: str) -> "str | None":
        """Resolve an annotation/constructor name to an in-package class."""
        resolved = self.resolve_name(mod, name)
        if resolved in self.classes:
            return resolved
        # A class re-exported through a package __init__ still resolves
        # if the terminal name is unique in the package.
        tail = name.split(".")[-1]
        matches = [q for q in self.classes if q.endswith(f".{tail}")]
        if len(matches) == 1 and (resolved is None
                                  or resolved.split(".")[-1] == tail):
            return matches[0]
        return None

    def method_on(self, cls_qual: str, name: str,
                  _seen: "frozenset | None" = None) -> "str | None":
        """Look up a method on a class or its in-package bases (MRO-ish)."""
        seen = _seen or frozenset()
        if cls_qual in seen or cls_qual not in self.classes:
            return None
        cinfo = self.classes[cls_qual]
        if name in cinfo.methods:
            return cinfo.methods[name]
        mod = self.modules[cinfo.module]
        for base in cinfo.base_names:
            base_qual = self.resolve_class(mod, base)
            if base_qual:
                found = self.method_on(base_qual, name,
                                       seen | {cls_qual})
                if found:
                    return found
        return None

    def subclass_methods(self, name: str) -> "list[str]":
        """Every in-package method with this name (the by-name fallback)."""
        return self.methods_by_name.get(name, [])

    # -- call resolution -----------------------------------------------------

    def _resolve_calls(self, mod: ModuleInfo) -> None:
        for qualname in sorted(self.functions):
            info = self.functions[qualname]
            if info.module != mod.name:
                continue
            env = self._param_types(mod, info)
            self._infer_local_types(mod, info, env)
            for node in ast.walk(info.node):
                if isinstance(node, ast.Call):
                    for callee, internal in self._resolve_call(
                            mod, info, env, node):
                        info.calls.append((callee, internal, node.lineno,
                                           node.col_offset))

    def _param_types(self, mod: ModuleInfo,
                     info: FunctionInfo) -> "dict[str, str]":
        env: "dict[str, str]" = {}
        args = info.node.args
        params = list(args.posonlyargs) + list(args.args) + list(
            args.kwonlyargs)
        for arg in params:
            if arg.annotation is not None:
                type_name = annotation_class_name(arg.annotation)
                if type_name:
                    resolved = self.resolve_class(mod, type_name)
                    if resolved:
                        env[arg.arg] = resolved
        if info.cls is not None and params and params[0].arg in ("self",
                                                                 "cls"):
            env[params[0].arg] = info.cls
        return env

    def _infer_local_types(self, mod: ModuleInfo, info: FunctionInfo,
                           env: "dict[str, str]") -> None:
        # Two passes so forward references within a body settle.
        for _ in range(2):
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Assign):
                    continue
                if len(node.targets) != 1 or not isinstance(
                        node.targets[0], ast.Name):
                    continue
                inferred = self.infer_type(mod, env, node.value)
                if inferred:
                    env[node.targets[0].id] = inferred
        # __init__ assignments feed the class attribute-type table.
        if info.cls and info.node.name == "__init__":
            cinfo = self.classes.get(info.cls)
            if cinfo is not None:
                for node in ast.walk(info.node):
                    if (isinstance(node, ast.Assign)
                            and len(node.targets) == 1
                            and isinstance(node.targets[0], ast.Attribute)
                            and isinstance(node.targets[0].value, ast.Name)
                            and node.targets[0].value.id == "self"):
                        inferred = self.infer_type(mod, env, node.value)
                        if inferred:
                            cinfo.attr_types.setdefault(
                                node.targets[0].attr, inferred)

    def infer_type(self, mod: ModuleInfo, env: "dict[str, str]",
                   expr: ast.AST) -> "str | None":
        """Best-effort class qualname of an expression, or None."""
        if isinstance(expr, ast.Name):
            if expr.id in env:
                return env[expr.id]
            if expr.id in mod.global_types:
                return mod.global_types[expr.id]
            resolved = mod.imports_from.get(expr.id)
            if resolved in self.classes:
                return resolved
            return None
        if isinstance(expr, ast.Attribute):
            base = self.infer_type(mod, env, expr.value)
            if base and base in self.classes:
                return self.classes[base].attr_types.get(expr.attr)
            return None
        if isinstance(expr, ast.Call):
            dotted = _dotted_name(expr.func)
            if dotted is not None:
                cls_qual = self.resolve_class(mod, dotted)
                if cls_qual:
                    return cls_qual
                resolved = self.resolve_name(mod, dotted)
                if resolved in self.functions:
                    ret = return_annotation_class(
                        self.functions[resolved].node)
                    if ret:
                        return self.resolve_class(
                            self.modules[self.functions[resolved].module],
                            ret)
            return None
        if isinstance(expr, ast.IfExp):
            return (self.infer_type(mod, env, expr.body)
                    or self.infer_type(mod, env, expr.orelse))
        return None

    def _resolve_call(self, mod: ModuleInfo, info: FunctionInfo,
                      env: "dict[str, str]", node: ast.Call,
                      ) -> "list[tuple[str, bool]]":
        """Resolve one call site to (callee, in_package?) pairs."""
        func = node.func
        dotted = _dotted_name(func)
        if dotted is not None:
            resolved = self.resolve_name(mod, dotted)
            if resolved is not None:
                if resolved in self.functions:
                    return [(resolved, True)]
                if resolved in self.classes:
                    init = self.method_on(resolved, "__init__")
                    return [(init, True)] if init else [(resolved, True)]
                # method on a typed module-global / imported symbol chain
                head, _, rest = resolved.rpartition(".")
                if rest and head in self.classes:
                    meth = self.method_on(head, rest)
                    if meth:
                        return [(meth, True)]
                if not resolved.startswith(self.package + "."):
                    return [(resolved, False)]
        if isinstance(func, ast.Attribute):
            recv_type = self.infer_type(mod, env, func.value)
            if recv_type:
                meth = self.method_on(recv_type, func.attr)
                if meth:
                    return [(meth, True)]
            if dotted is None or recv_type is None:
                # Untyped receiver: by-name fallback over the package.
                if func.attr not in GENERIC_METHODS:
                    matches = self.subclass_methods(func.attr)
                    if matches and len(matches) <= _FALLBACK_CAP:
                        return [(m, True) for m in sorted(matches)]
                return [(f"<unknown>.{func.attr}", False)]
        if dotted is not None:
            return [(dotted, False)]
        return [("<dynamic>", False)]


def _dotted_name(node: ast.AST) -> "str | None":
    """``a.b.c`` as a string, or None for non-name expressions."""
    parts: "list[str]" = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def annotation_class_name(node: ast.AST) -> "str | None":
    """The class name an annotation denotes, unwrapping quotes and
    ``X | None`` unions; None when it is not a plain class reference."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = annotation_class_name(node.left)
        right = annotation_class_name(node.right)
        candidates = [c for c in (left, right) if c and c != "None"]
        return candidates[0] if len(candidates) == 1 else None
    dotted = _dotted_name(node)
    if dotted in ("None", "Any", "object"):
        return None
    return dotted


def return_annotation_class(node: ast.AST) -> "str | None":
    returns = getattr(node, "returns", None)
    if returns is None:
        return None
    return annotation_class_name(returns)
