"""``simflow``: interprocedural effect, determinism, and units analysis.

Where :mod:`repro.analysis.rules` judges one AST node at a time, this
package parses the *whole* ``repro`` tree, builds a call graph
(:mod:`~repro.analysis.flow.graph`), infers per-function effect
signatures by fixed point (:mod:`~repro.analysis.flow.effects`), and
evaluates the interprocedural SF rules
(:mod:`~repro.analysis.flow.rules`) against the repo's contracts
(:mod:`~repro.analysis.flow.contracts`).

Entry point::

    from repro.analysis.flow import analyze_package
    result = analyze_package("src/repro")
    result.findings              # unsuppressed FlowFindings
    result.analysis.signature("repro.simkernel.engine.Simulator.step")

CLI: ``python -m repro.analysis flow`` (see :mod:`repro.analysis.cli`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.flow.contracts import FlowContracts, default_contracts
from repro.analysis.flow.effects import EffectAnalysis, analyze_effects
from repro.analysis.flow.graph import PackageIndex
from repro.analysis.flow.report import (apply_baseline, effects_report,
                                        flow_payload, format_effects_report,
                                        format_flow_json, format_flow_text,
                                        format_rules, load_baseline)
from repro.analysis.flow.rules import (FLOW_RULES, FlowFinding,
                                       run_flow_rules)

__all__ = [
    "FlowContracts", "default_contracts", "EffectAnalysis", "PackageIndex",
    "FlowFinding", "FLOW_RULES", "FlowResult", "analyze_package",
    "effects_report", "flow_payload", "format_effects_report",
    "format_flow_json",
    "format_flow_text", "format_rules", "apply_baseline", "load_baseline",
]


@dataclass
class FlowResult:
    """Everything one flow run produced."""

    index: PackageIndex
    analysis: EffectAnalysis
    #: findings surviving suppression comments, sorted.
    findings: "list[FlowFinding]" = field(default_factory=list)
    suppressed_count: int = 0

    @property
    def functions_analyzed(self) -> int:
        return len(self.index.functions)


def _relativize(findings: "list[FlowFinding]", root: Path,
                ) -> "list[FlowFinding]":
    """Report paths relative to the tree that contains the package, so
    output is stable across checkouts (mirrors ``--self-check``)."""
    base = root.resolve().parent
    out: "list[FlowFinding]" = []
    for f in findings:
        try:
            rel = str(Path(f.path).resolve().relative_to(base))
        except ValueError:
            rel = f.path
        out.append(FlowFinding(code=f.code, message=f.message,
                               path=rel.replace("\\", "/"), line=f.line,
                               column=f.column, function=f.function))
    return out


def analyze_package(root: "str | Path", package: "str | None" = None,
                    contracts: "FlowContracts | None" = None,
                    relative_paths: bool = True) -> FlowResult:
    """Run the full pipeline on a package directory."""
    from repro.analysis.linter import SuppressionIndex

    root = Path(root)
    index = PackageIndex.build(root, package)
    analysis = analyze_effects(index, contracts or default_contracts())
    findings = run_flow_rules(analysis)

    # The same suppression comments simlint honours silence SF findings.
    suppressions: "dict[str, SuppressionIndex]" = {}
    for mod in index.modules.values():
        suppressions[mod.path] = SuppressionIndex(mod.source, mod.tree)
    kept: "list[FlowFinding]" = []
    suppressed = 0
    for finding in findings:
        sup = suppressions.get(finding.path)
        if sup is not None and sup.suppressed(finding.code, finding.line):
            suppressed += 1
        else:
            kept.append(finding)

    if relative_paths:
        kept = _relativize(kept, root)
    return FlowResult(index=index, analysis=analysis, findings=kept,
                      suppressed_count=suppressed)
