"""Flow-analysis output shaping: findings, baselines, the effects report.

The **effects report** is the purity contract other PRs consume (see
ROADMAP items 1 and 2): a byte-stable JSON table of the inferred effect
signature of every function under :data:`~repro.analysis.flow.contracts.
REPORT_SCOPE`.  It is committed at ``docs/effects-report.json`` and CI
fails when the committed copy drifts from a fresh run, so purity
regressions (a helper quietly acquiring IO, a strategy starting to read
shared state) surface in review rather than as flaky sweeps.

A **baseline** is a previous findings payload (``--format json``
output); findings matching a baseline entry by ``(code, path,
function)`` are filtered out, which lets a tree adopt the analyzer
before paying down every pre-existing finding.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from repro.analysis.flow import effects as fx
from repro.analysis.flow.effects import EffectAnalysis
from repro.analysis.flow.rules import FLOW_RULES, FlowFinding
from repro.analysis.schema import findings_payload
from repro.analysis.flow import dims as dims_mod


# -- findings payloads ---------------------------------------------------------

def flow_payload(findings: "Sequence[FlowFinding]",
                 functions_analyzed: int) -> dict:
    return findings_payload("simflow", findings,
                            functions_analyzed=functions_analyzed)


def format_flow_json(findings: "Sequence[FlowFinding]",
                     functions_analyzed: int) -> str:
    return json.dumps(flow_payload(findings, functions_analyzed), indent=2)


def format_flow_text(findings: "Sequence[FlowFinding]",
                     functions_analyzed: int) -> str:
    lines = [f.format() for f in findings]
    lines.append(f"simflow: {len(findings)} finding"
                 f"{'' if len(findings) == 1 else 's'} across "
                 f"{functions_analyzed} functions")
    return "\n".join(lines)


def format_rules() -> str:
    lines = []
    for code in sorted(FLOW_RULES):
        name, summary = FLOW_RULES[code]
        lines.append(f"{code} {name}: {summary}")
    return "\n".join(lines)


# -- baselines -------------------------------------------------------------------

def load_baseline(path: "str | Path") -> "set[tuple[str, str, str]]":
    """Baseline keys from a previous ``--format json`` payload."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    keys: "set[tuple[str, str, str]]" = set()
    for finding in payload.get("findings", ()):
        keys.add((finding.get("code", ""), finding.get("path", ""),
                  finding.get("function", "")))
    return keys


def apply_baseline(findings: "Sequence[FlowFinding]",
                   baseline: "set[tuple[str, str, str]]",
                   ) -> "list[FlowFinding]":
    return [f for f in findings
            if (f.code, f.path, f.function) not in baseline]


# -- the effects report ------------------------------------------------------------

def effects_report(analysis: EffectAnalysis) -> dict:
    """The committed purity-contract table (byte-stable)."""
    functions: "dict[str, dict]" = {}
    for qualname in sorted(analysis.index.functions):
        if not qualname.startswith(analysis.contracts.report_scope):
            continue
        signature = analysis.signature(qualname)
        entry: dict = {
            "effects": signature,
            "pure": not signature,
        }
        dim = analysis.return_dims.get(qualname)
        if dim is not None and dim != dims_mod.SCALAR:
            entry["returns"] = dims_mod.describe(dim)
        functions[qualname] = entry
    pure_count = sum(1 for e in functions.values() if e["pure"])
    return {
        "version": 1,
        "tool": "simflow-effects",
        "package": analysis.index.package,
        "scope": list(analysis.contracts.report_scope),
        "effect_lattice": list(fx.EFFECT_ORDER),
        "function_count": len(functions),
        "pure_count": pure_count,
        "functions": functions,
    }


def format_effects_report(report: dict) -> str:
    """Canonical serialization -- CI compares this byte-for-byte."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"
