"""The repo-wide contracts the flow analyzer checks code against.

These tables are the *interface* between simflow and the two tentpoles
that consume its guarantees (ROADMAP items 1 and 2):

* :data:`PARALLEL_ROOTS` -- functions the sweep fabric executes in
  worker processes.  Everything reachable from them must not mutate
  state shared across cells (rule SF001), or two workers computing
  different cells would observe each other.
* :data:`ASSUMED_PURE` -- qualname prefixes the scenario-lowering /
  vectorization pass will treat as side-effect-free and freely
  reorderable, batchable, or specializable.  Any inferred effect on a
  matching function is a contract violation (rule SF004).
* :data:`TRACE_SINKS` / :data:`SCHEDULE_SINKS` -- where trace records
  and kernel events enter the system; iteration order flowing into
  either must be deterministic (rule SF003).

A fixture package under test can swap in its own
:class:`FlowContracts`; :func:`default_contracts` describes this repo.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Entry points the parallel executor runs inside worker processes.
PARALLEL_ROOTS = (
    "repro.experiments.executor.compute_cell",
)

#: Qualname prefixes (``.`` suffix means "everything under") that the
#: lowering/vectorization pass will assume pure: no IO, no RNG draws, no
#: shared-state access, no ambient sim-time reads.
ASSUMED_PURE = (
    "repro.core.payback.",
    "repro.core.decision.",
    "repro.core.policy.",
    "repro.units.",
    "repro.simkernel.rng.derive_seed",
    "repro.platform.network.LinkSpec.",
    # NOTE: repro.strategies.scheduler.initial_schedule was listed here
    # until the batch-kernel rewrite surfaced that ranking hosts can
    # lazily extend load traces (an RNG draw) and ticks the kernel-event
    # tally -- it never was pure, the old call chain just hid it from
    # the interprocedural analysis.
)

#: Functions that emit trace records / metrics into the ambient session.
TRACE_SINKS = (
    "repro.obs.emit",
    "repro.obs.count",
    "repro.obs.gauge",
    "repro.obs.observe_value",
    "repro.obs.emit_decision",
    "repro.obs.emit_check",
    "repro.obs.trace.TraceRecorder.emit",
)

#: The one place kernel events enter the heap.
SCHEDULE_SINKS = (
    "repro.simkernel.engine.Simulator._schedule",
)

#: Attribute names holding an optional observation hook/session: every
#: use must be guarded by an ``is not None`` check (rule SF006).
OPTIONAL_OBS_ATTRS = frozenset({"hooks"})

#: Module prefixes whose inferred signatures the ``--effects-report``
#: table covers (the purity contract the fabric and lowering PRs build
#: on).
REPORT_SCOPE = (
    "repro.simkernel.",
    "repro.strategies.",
    "repro.experiments.executor",
)


@dataclass(frozen=True)
class FlowContracts:
    """Everything rule evaluation needs to know about the package."""

    parallel_roots: "tuple[str, ...]" = PARALLEL_ROOTS
    assumed_pure: "tuple[str, ...]" = ASSUMED_PURE
    trace_sinks: "tuple[str, ...]" = TRACE_SINKS
    schedule_sinks: "tuple[str, ...]" = SCHEDULE_SINKS
    optional_obs_attrs: frozenset = OPTIONAL_OBS_ATTRS
    report_scope: "tuple[str, ...]" = REPORT_SCOPE
    #: dotted call names resolving to ``ObsSession | None`` accessors.
    optional_session_calls: "tuple[str, ...]" = ("repro.obs.active",)
    extra_dims: "dict[str, tuple]" = field(default_factory=dict)

    def is_assumed_pure(self, qualname: str) -> bool:
        return any(qualname == p or (p.endswith(".") and qualname.startswith(p))
                   for p in self.assumed_pure)


def default_contracts() -> FlowContracts:
    """The contracts of the ``repro`` package itself."""
    return FlowContracts()
