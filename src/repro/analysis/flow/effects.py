"""Effect extraction and the interprocedural fixed point.

Every function gets an **effect signature**: a subset of

* ``mutates-shared-state`` -- writes module-level state some other call
  can observe (the executor's parallel cells must never do this);
* ``reads-sim-state``     -- reads such state (ordering-sensitive);
* ``consumes-rng-stream`` -- draws from a random stream;
* ``sim-time-dependent``  -- touches the simulated clock
  (``.now`` / ``._now`` / ``peek()``);
* ``performs-io``         -- filesystem, stdout, wall clock, OS calls.

The empty signature is *pure* -- the property the scenario-lowering and
vectorization work will rely on.

Direct effects are syntactic facts gathered per function; the fixed
point then closes them over the call graph: a function carries every
effect of every callee.  Unresolved calls contribute effects through a
conservative external table (``open`` is IO, ``random.random`` consumes
RNG, an unknown attribute call contributes nothing).

The same fixed point also infers **return dimensions** (seconds /
bytes / flop vectors, see :mod:`repro.analysis.flow.dims`), so
``platform.link.transfer_time(...)`` is known to yield seconds at every
call site without annotations.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.flow.contracts import FlowContracts
from repro.analysis.flow.graph import (FunctionInfo, ModuleInfo, PackageIndex,
                                       _dotted_name)

# -- the lattice -------------------------------------------------------------

MUTATES_SHARED = "mutates-shared-state"
READS_SIM_STATE = "reads-sim-state"
CONSUMES_RNG = "consumes-rng-stream"
SIM_TIME = "sim-time-dependent"
PERFORMS_IO = "performs-io"

#: Canonical ordering for byte-stable reports.
EFFECT_ORDER = (MUTATES_SHARED, READS_SIM_STATE, CONSUMES_RNG, SIM_TIME,
                PERFORMS_IO)


def ordered(effects: "frozenset[str]") -> "list[str]":
    return [e for e in EFFECT_ORDER if e in effects]


@dataclass(frozen=True)
class EffectSite:
    """One syntactic origin of a direct effect."""

    effect: str
    line: int
    column: int
    detail: str
    #: for rng sites: "owned" / "unowned" (rule SF002 keys on this).
    ownership: str = ""


# -- external classification --------------------------------------------------

_IO_EXACT = frozenset({
    "open", "print", "input", "json.dump", "json.load", "os.urandom",
})
_IO_PREFIXES = ("os.", "sys.", "shutil.", "subprocess.", "socket.",
                "logging.", "tempfile.", "io.", "time.",
                "datetime.datetime.now", "datetime.datetime.utcnow",
                "datetime.date.today", "uuid.uuid1", "builtins.open")
_IO_EXEMPT_PREFIXES = ("os.path.", "os.fspath", "os.environ.get",
                       "sys.intern", "sys.maxsize", "time.struct_time")

#: Path-like IO method names (receiver type is rarely known statically).
_PATH_IO_METHODS = frozenset({
    "read_text", "write_text", "read_bytes", "write_bytes", "mkdir",
    "rmdir", "unlink", "touch", "rename", "iterdir", "glob", "rglob",
    "stat", "is_file", "is_dir", "exists", "resolve", "hardlink_to",
    "symlink_to", "samefile",
})

_RNG_PREFIXES = ("random.", "secrets.", "numpy.random.")
#: numpy.random constructors that are deterministic *when seeded*.
_SEEDED_OK = frozenset({
    "numpy.random.default_rng", "numpy.random.SeedSequence",
    "numpy.random.Generator", "numpy.random.PCG64", "numpy.random.Philox",
    "numpy.random.SFC64",
})

#: Generator sampling methods (a call to one *consumes* the stream).
RNG_SAMPLERS = frozenset({
    "random", "uniform", "normal", "standard_normal", "exponential",
    "standard_exponential", "integers", "choice", "shuffle", "permutation",
    "poisson", "geometric", "lognormal", "gamma", "beta", "binomial",
    "randint", "rand", "randn", "sample", "choices", "betavariate",
    "expovariate", "gauss",
})

_GLOBAL_MUTATORS = frozenset({
    "append", "add", "update", "extend", "insert", "remove", "pop",
    "popitem", "clear", "setdefault", "discard", "appendleft",
    "extendleft", "inc", "observe", "set",
})


def external_call_effect(name: str) -> "str | None":
    """Effect contributed by a call that resolves outside the package."""
    if name in _IO_EXACT:
        return PERFORMS_IO
    if name.startswith(_IO_EXEMPT_PREFIXES):
        return None
    if name in _SEEDED_OK:
        return None  # argument presence is checked at the call site
    if name.startswith(_IO_PREFIXES):
        return PERFORMS_IO
    if name.startswith(_RNG_PREFIXES):
        return CONSUMES_RNG
    if name.startswith("<unknown>."):
        attr = name.split(".", 1)[1]
        if attr in _PATH_IO_METHODS:
            return PERFORMS_IO
    return None


# -- direct-effect extraction --------------------------------------------------


def _local_bindings(func: ast.AST) -> "set[str]":
    """Names plainly assigned (bound) inside the function body."""
    bound: "set[str]" = set()
    args = func.args
    for arg in (list(args.posonlyargs) + list(args.args)
                + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])):
        bound.add(arg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for t in ast.walk(node.target):
                if isinstance(t, ast.Name):
                    bound.add(t.id)
        elif isinstance(node, ast.comprehension):
            for t in ast.walk(node.target):
                if isinstance(t, ast.Name):
                    bound.add(t.id)
    return bound


def _rng_locals(func: ast.AST) -> "set[str]":
    """Names that plausibly hold an owned random stream."""
    owned: "set[str]" = set()
    args = func.args
    for arg in (list(args.posonlyargs) + list(args.args)
                + list(args.kwonlyargs)):
        if "rng" in arg.arg.lower() or "random" in arg.arg.lower():
            owned.add(arg.arg)
    for _ in range(2):
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            from_stream = (isinstance(value, ast.Call)
                           and isinstance(value.func, ast.Attribute)
                           and value.func.attr in ("stream", "spawn"))
            from_owned = (isinstance(value, ast.Name) and value.id in owned)
            if isinstance(value, ast.Tuple):
                # ``a, b = rng.spawn(2)`` handled below via targets
                pass
            if from_stream or from_owned:
                for target in node.targets:
                    for t in ast.walk(target):
                        if isinstance(t, ast.Name):
                            owned.add(t.id)
    return owned


def _is_rng_receiver(expr: ast.AST, owned: "set[str]") -> "str | None":
    """Classify a sampler call's receiver: "owned", "unowned", or None
    (not recognisably a random stream at all)."""
    if isinstance(expr, ast.Name):
        if expr.id in owned:
            return "owned"
        if "rng" in expr.id.lower() or "random" in expr.id.lower():
            return "unowned"  # module-global / unknown provenance
        return None
    if isinstance(expr, ast.Attribute):
        if "rng" in expr.attr.lower() or "random" in expr.attr.lower():
            # self.rng / obj.rng: instance-owned stream
            if isinstance(expr.value, ast.Name) and expr.value.id in (
                    "self", "cls"):
                return "owned"
            return "owned"
        return None
    if isinstance(expr, ast.Call):
        if (isinstance(expr.func, ast.Attribute)
                and expr.func.attr in ("stream", "spawn")):
            return "owned"
        return None
    return None


class _DirectEffectVisitor:
    """Single walk of one function body collecting direct effect sites."""

    def __init__(self, index: PackageIndex, mod: ModuleInfo,
                 info: FunctionInfo) -> None:
        self.index = index
        self.mod = mod
        self.info = info
        self.sites: "list[EffectSite]" = []
        self.locals = _local_bindings(info.node)
        self.rng_owned = _rng_locals(info.node)
        self.declared_global: "set[str]" = set()

    def _site(self, effect: str, node: ast.AST, detail: str,
              ownership: str = "") -> None:
        self.sites.append(EffectSite(
            effect=effect, line=getattr(node, "lineno", self.info.lineno),
            column=getattr(node, "col_offset", 0) + 1, detail=detail,
            ownership=ownership))

    def _is_module_global(self, name: str) -> bool:
        if name in self.declared_global:
            return True
        if name in self.locals:
            return False
        return (name in self.mod.mutable_globals
                or f"{self.mod.name}.{name}" in self.index.shared_globals)

    def _register_shared(self, name: str) -> None:
        key = f"{self.mod.name}.{name}"
        self.index.shared_globals.setdefault(key, set()).add(
            self.info.qualname)

    def run(self) -> "list[EffectSite]":
        for node in ast.walk(self.info.node):
            self._visit(node)
        return self.sites

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.Global):
            self.declared_global.update(node.names)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            self._check_store(node)
        elif isinstance(node, ast.Call):
            self._check_call(node)
        elif isinstance(node, ast.Attribute):
            self._check_attribute(node)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            self._check_name_load(node)

    def _check_store(self, node) -> None:
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        for target in targets:
            if isinstance(target, ast.Name):
                if target.id in self.declared_global:
                    self._register_shared(target.id)
                    self._site(MUTATES_SHARED, node,
                               f"rebinds module global {target.id}")
            elif isinstance(target, ast.Subscript):
                base = target.value
                if (isinstance(base, ast.Name)
                        and self._is_module_global(base.id)):
                    self._register_shared(base.id)
                    self._site(MUTATES_SHARED, node,
                               f"writes into module global {base.id}")
            elif isinstance(target, ast.Attribute):
                base = target.value
                if isinstance(base, ast.Name):
                    resolved = self.index.resolve_name(self.mod, base.id)
                    if resolved in self.index.classes:
                        self._site(MUTATES_SHARED, node,
                                   f"writes class attribute "
                                   f"{base.id}.{target.attr}")
                if (isinstance(target, ast.Attribute)
                        and target.attr in ("now", "_now")):
                    self._site(SIM_TIME, node,
                               f"advances simulated clock .{target.attr}")

    def _check_call(self, node: ast.Call) -> None:
        func = node.func
        dotted = _dotted_name(func)
        if dotted is not None:
            resolved = self.index.resolve_name(self.mod, dotted)
            external = resolved if (
                resolved is not None
                and not resolved.startswith(self.index.package + ".")
            ) else (dotted if resolved is None else None)
            if external is not None:
                if (external in _SEEDED_OK
                        and not node.args and not node.keywords):
                    self._site(CONSUMES_RNG, node,
                               f"{external}() seeded from OS entropy",
                               ownership="unowned")
                    return
                effect = external_call_effect(external)
                if effect == CONSUMES_RNG:
                    self._site(effect, node, f"call to {external}()",
                               ownership="unowned")
                    return
                if effect is not None:
                    self._site(effect, node, f"call to {external}()")
                    return
        if isinstance(func, ast.Attribute):
            if func.attr == "peek":
                self._site(SIM_TIME, node, "reads next-event time (peek)")
            elif func.attr in RNG_SAMPLERS:
                kind = _is_rng_receiver(func.value, self.rng_owned)
                if kind is not None:
                    self._site(CONSUMES_RNG, node,
                               f"draws from stream via .{func.attr}()",
                               ownership=kind)
            elif func.attr in _PATH_IO_METHODS and dotted is None:
                self._site(PERFORMS_IO, node,
                           f"filesystem access via .{func.attr}()")
            elif func.attr in _GLOBAL_MUTATORS:
                base = func.value
                if (isinstance(base, ast.Name)
                        and self._is_module_global(base.id)):
                    self._register_shared(base.id)
                    self._site(MUTATES_SHARED, node,
                               f"mutates module global {base.id} "
                               f"via .{func.attr}()")

    def _check_attribute(self, node: ast.Attribute) -> None:
        if node.attr not in ("now", "_now"):
            return
        if not isinstance(node.ctx, ast.Load):
            return
        dotted = _dotted_name(node)
        if dotted is not None:
            resolved = self.index.resolve_name(self.mod, dotted)
            if (resolved is not None
                    and not resolved.startswith(self.index.package + ".")):
                return  # datetime.datetime.now and friends: IO, not sim time
        self._site(SIM_TIME, node, f"reads simulated clock .{node.attr}")

    def _check_name_load(self, node: ast.Name) -> None:
        if node.id in self.locals or node.id in self.declared_global:
            # declared-global loads are paired with their mutation site
            return
        key = f"{self.mod.name}.{node.id}"
        if key in self.index.shared_globals:
            self._site(READS_SIM_STATE, node,
                       f"reads shared module global {node.id}")


# -- the analysis ---------------------------------------------------------------


@dataclass
class EffectAnalysis:
    """Inferred signatures plus everything the SF rules consume."""

    index: PackageIndex
    contracts: FlowContracts
    direct: "dict[str, list[EffectSite]]" = field(default_factory=dict)
    effects: "dict[str, frozenset]" = field(default_factory=dict)
    return_dims: "dict[str, tuple]" = field(default_factory=dict)
    callers: "dict[str, set]" = field(default_factory=dict)

    def signature(self, qualname: str) -> "list[str]":
        return ordered(self.effects.get(qualname, frozenset()))

    def is_pure(self, qualname: str) -> bool:
        return not self.effects.get(qualname, frozenset())

    def reachable_from(self, roots: "tuple[str, ...]") -> "dict[str, str]":
        """BFS over the call graph; returns {function: parent} for every
        function reachable from any root (roots map to themselves)."""
        parents: "dict[str, str]" = {}
        frontier = [r for r in roots if r in self.index.functions]
        for r in frontier:
            parents[r] = r
        while frontier:
            nxt: "list[str]" = []
            for qual in frontier:
                for callee, internal, _l, _c in self.index.functions[
                        qual].calls:
                    if internal and callee in self.index.functions and (
                            callee not in parents):
                        parents[callee] = qual
                        nxt.append(callee)
            frontier = nxt
        return parents

    def reaches_sinks(self, sinks: "tuple[str, ...]") -> "set[str]":
        """Every function from which some sink is reachable (inclusive)."""
        sink_set = {s for s in sinks if s in self.index.functions}
        result = set(sink_set)
        changed = True
        while changed:
            changed = False
            for qual in self.index.functions:
                if qual in result:
                    continue
                for callee, internal, _l, _c in self.index.functions[
                        qual].calls:
                    if internal and callee in result:
                        result.add(qual)
                        changed = True
                        break
        return result

    def chain(self, parents: "dict[str, str]", target: str) -> "list[str]":
        """Root -> ... -> target path from a :meth:`reachable_from` map."""
        path = [target]
        while parents.get(path[-1]) not in (None, path[-1]):
            path.append(parents[path[-1]])
        return list(reversed(path))


def analyze_effects(index: PackageIndex,
                    contracts: FlowContracts) -> EffectAnalysis:
    analysis = EffectAnalysis(index=index, contracts=contracts)

    # Pass A: mutation sites register shared globals...
    for qualname in sorted(index.functions):
        info = index.functions[qualname]
        mod = index.modules[info.module]
        analysis.direct[qualname] = _DirectEffectVisitor(index, mod,
                                                         info).run()
    # ...pass B: re-run so *reads* of late-registered globals are seen.
    for qualname in sorted(index.functions):
        info = index.functions[qualname]
        mod = index.modules[info.module]
        analysis.direct[qualname] = _DirectEffectVisitor(index, mod,
                                                         info).run()

    # Effects fixed point over the call graph.
    effects = {q: frozenset(s.effect for s in sites)
               for q, sites in analysis.direct.items()}
    callers: "dict[str, set]" = {}
    for qualname in sorted(index.functions):
        for callee, internal, _l, _c in index.functions[qualname].calls:
            if internal and callee in index.functions:
                callers.setdefault(callee, set()).add(qualname)
            elif not internal:
                extra = external_call_effect(callee)
                if extra is not None:
                    effects[qualname] = effects[qualname] | {extra}
    worklist = sorted(index.functions)
    while worklist:
        nxt: "set[str]" = set()
        for qualname in worklist:
            for caller in callers.get(qualname, ()):
                merged = effects[caller] | effects[qualname]
                if merged != effects[caller]:
                    effects[caller] = merged
                    nxt.add(caller)
        worklist = sorted(nxt)
    analysis.effects = effects
    analysis.callers = callers

    # Return-dimension fixed point (see dims.py); SF005 consumes this.
    from repro.analysis.flow.dimflow import infer_return_dims
    analysis.return_dims = infer_return_dims(index, contracts)
    return analysis
