"""Dimension algebra for rule SF005 (wrong-dimension arithmetic).

A dimension is a vector of integer exponents over the package's three
base quantities -- seconds, bytes, flop -- exactly the SI discipline
:mod:`repro.units` documents.  ``bytes / (bytes/s) = s`` and
``s * flop/s = flop`` fall out of exponent arithmetic.

Sources of dimension facts:

* the :mod:`repro.units` constants (``MB`` is bytes, ``HOUR`` seconds,
  ``MFLOPS`` and ``GFLOPS`` flop/s, ``MB_S`` bytes/s);
* identifier-name conventions on parameters, locals, and attributes
  (``state_bytes``, ``comm_time``, ``chunk_flops``, ``bandwidth``);
* interprocedural return dimensions, computed in the same fixed point
  as the effect lattice (``LinkSpec.transfer_time`` returns seconds
  because ``latency + nbytes / bandwidth`` does).

Anything unknown stays unknown and never flags: SF005 only fires when
two *known, different* dimensions meet under ``+``/``-``/comparison, or
when a call argument's known dimension contradicts the parameter's.
"""

from __future__ import annotations

#: A dimension: (seconds, bytes, flop) exponents.
Dim = "tuple[int, int, int]"

SECONDS: Dim = (1, 0, 0)
BYTES: Dim = (0, 1, 0)
FLOP: Dim = (0, 0, 1)
BYTES_PER_S: Dim = (-1, 1, 0)
FLOP_PER_S: Dim = (-1, 0, 1)
SCALAR: Dim = (0, 0, 0)

_NAMES = {SECONDS: "seconds", BYTES: "bytes", FLOP: "flop",
          BYTES_PER_S: "bytes/s", FLOP_PER_S: "flop/s",
          SCALAR: "dimensionless"}

#: repro.units constant -> dimension.
UNIT_CONSTANT_DIMS = {
    "KB": BYTES, "MB": BYTES, "GB": BYTES,
    "KIB": BYTES, "MIB": BYTES, "GIB": BYTES,
    "SECOND": SECONDS, "MINUTE": SECONDS, "HOUR": SECONDS,
    "MFLOPS": FLOP_PER_S, "GFLOPS": FLOP_PER_S,
    "KB_S": BYTES_PER_S, "MB_S": BYTES_PER_S, "GB_S": BYTES_PER_S,
}

#: Exact identifier names carrying seconds.
_SECONDS_NAMES = frozenset({
    "t", "now", "when", "start", "end", "delay", "elapsed", "until",
    "latency", "makespan", "duration", "deadline", "onset", "horizon",
    "window", "timeout", "overhead", "seconds",
})

#: Exact identifier names carrying rates.
_BYTES_PER_S_NAMES = frozenset({"bandwidth"})
_FLOP_PER_S_NAMES = frozenset({"speed", "reference_speed"})


def describe(dim: "Dim | None") -> str:
    if dim is None:
        return "unknown"
    if dim in _NAMES:
        return _NAMES[dim]
    s, b, f = dim
    return f"s^{s}*bytes^{b}*flop^{f}"


#: Names whose suffix lies about their quantity (``int.from_bytes``
#: returns an int, not a byte count).
_NAME_DIM_BLACKLIST = frozenset({"from_bytes", "to_bytes"})


def name_dim(identifier: str) -> "Dim | None":
    """Dimension implied by an identifier name, or None."""
    name = identifier.lower()
    if name in _NAME_DIM_BLACKLIST:
        return None
    if name in _SECONDS_NAMES:
        return SECONDS
    if name in _BYTES_PER_S_NAMES or name.endswith("_per_s"):
        return BYTES_PER_S
    if name in _FLOP_PER_S_NAMES or name.endswith("speed"):
        return FLOP_PER_S
    if name.endswith("flops") or name == "flops":
        return FLOP
    if name.endswith("bytes") or name == "nbytes":
        return BYTES
    if (name.endswith(("_time", "_seconds", "_start", "_end", "_until",
                       "_delay", "_duration", "_deadline", "_elapsed"))
            or name.startswith(("t_", "time_"))):
        return SECONDS
    return None


def mul(a: "Dim | None", b: "Dim | None") -> "Dim | None":
    if a is None or b is None:
        return None
    return (a[0] + b[0], a[1] + b[1], a[2] + b[2])


def div(a: "Dim | None", b: "Dim | None") -> "Dim | None":
    if a is None or b is None:
        return None
    return (a[0] - b[0], a[1] - b[1], a[2] - b[2])


def combine_add(a: "Dim | None", b: "Dim | None",
                ) -> "tuple[Dim | None, bool]":
    """Result dimension of ``a + b`` and whether the pairing is legal.

    Unknown or dimensionless operands never conflict (numeric literals
    like ``0`` are dimensionless and legitimately meet any quantity).
    """
    if a is None or b is None or a == SCALAR or b == SCALAR:
        return (a if a not in (None, SCALAR) else b), True
    if a == b:
        return a, True
    return None, False
