"""The SF rule set: judgments over inferred effect signatures.

Unlike the per-file ``SL`` rules, every SF rule is *interprocedural*: it
reasons about what is reachable over the call graph, not just what a
single AST node looks like.

============  =============================================================
``SF001``     shared mutable state reachable from executor-parallel cells
``SF002``     RNG stream consumed outside its named-stream owner
``SF003``     unordered set/dict-view iteration in code feeding the event
              heap or trace stream
``SF004``     effectful code reachable from functions the lowering pass
              assumes pure
``SF005``     wrong-dimension arithmetic (seconds/bytes/flops) via dataflow
``SF006``     optional hook/session use unguarded by a None check
============  =============================================================

Findings respect the same suppression comments as simlint
(``# simflow: disable=SF001`` -- see :mod:`repro.analysis.linter`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.flow import effects as fx
from repro.analysis.flow.dimflow import check_function_dims
from repro.analysis.flow.effects import EffectAnalysis
from repro.analysis.flow.graph import FunctionInfo, _dotted_name

#: code -> (name, summary) catalogue for the ``rules`` subcommand.
FLOW_RULES = {
    "SF001": ("parallel-shared-mutation",
              "mutation of shared module/class state reachable from an "
              "executor-parallel entry point; worker processes would "
              "observe each other"),
    "SF002": ("rng-outside-owner",
              "random draw whose stream is not an owned named stream "
              "(parameter, registry.stream(...) local, or self.rng); "
              "competing strategies would desynchronize"),
    "SF003": ("unordered-iteration-to-sink",
              "iteration over a set or dict view, unsorted, inside a "
              "function that feeds the event heap or the trace stream"),
    "SF004": ("assumed-pure-violation",
              "function the lowering/vectorization contract assumes pure "
              "has an inferred effect"),
    "SF005": ("dimension-mismatch",
              "arithmetic or call argument mixing seconds/bytes/flop "
              "dimensions, tracked through assignments and return values"),
    "SF006": ("unguarded-optional-obs",
              "use of an optional hooks/session object without a "
              "preceding None/truthiness guard"),
}


@dataclass(frozen=True)
class FlowFinding:
    """One interprocedural diagnostic (adds ``function`` to the shared
    finding shape)."""

    code: str
    message: str
    path: str
    line: int
    column: int
    function: str

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.column}: {self.code} "
                f"{self.message} [in {self.function}]")

    def to_dict(self) -> dict:
        return {"code": self.code, "message": self.message, "path": self.path,
                "line": self.line, "column": self.column,
                "function": self.function}


def run_flow_rules(analysis: EffectAnalysis) -> "list[FlowFinding]":
    findings: "list[FlowFinding]" = []
    findings.extend(_sf001(analysis))
    findings.extend(_sf002(analysis))
    findings.extend(_sf003(analysis))
    findings.extend(_sf004(analysis))
    findings.extend(_sf005(analysis))
    findings.extend(_sf006(analysis))
    findings.sort(key=lambda f: (f.path, f.line, f.column, f.code))
    return findings


def _finding(code: str, info: FunctionInfo, line: int, column: int,
             message: str) -> FlowFinding:
    return FlowFinding(code=code, message=message, path=info.path,
                       line=line, column=column, function=info.qualname)


# -- SF001 -------------------------------------------------------------------

def _sf001(analysis: EffectAnalysis) -> "list[FlowFinding]":
    out: "list[FlowFinding]" = []
    parents = analysis.reachable_from(analysis.contracts.parallel_roots)
    for qualname in sorted(parents):
        info = analysis.index.functions[qualname]
        for site in analysis.direct.get(qualname, ()):
            if site.effect != fx.MUTATES_SHARED:
                continue
            chain = analysis.chain(parents, qualname)
            via = " -> ".join(chain)
            out.append(_finding(
                "SF001", info, site.line, site.column,
                f"{site.detail}, reachable from parallel root via {via}; "
                f"executor workers must not share mutable state"))
    return out


# -- SF002 -------------------------------------------------------------------

def _sf002(analysis: EffectAnalysis) -> "list[FlowFinding]":
    out: "list[FlowFinding]" = []
    for qualname in sorted(analysis.index.functions):
        info = analysis.index.functions[qualname]
        for site in analysis.direct.get(qualname, ()):
            if site.effect != fx.CONSUMES_RNG or site.ownership != "unowned":
                continue
            out.append(_finding(
                "SF002", info, site.line, site.column,
                f"{site.detail}; draws must come from an owned named "
                f"stream (RngRegistry.stream(...) or an rng parameter)"))
    return out


# -- SF003 -------------------------------------------------------------------

_UNORDERED_VIEW_METHODS = frozenset({"keys", "values", "items"})
_ORDERING_WRAPPERS = frozenset({"sorted", "list", "tuple", "min", "max",
                                "len", "sum", "enumerate", "any", "all",
                                "frozenset", "set"})


def _unordered_iter_expr(node: ast.AST) -> "str | None":
    """Description of an unordered iterable, or None if fine."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set literal/comprehension"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id == "set":
            return "set(...)"
        if (isinstance(func, ast.Attribute)
                and func.attr in _UNORDERED_VIEW_METHODS):
            return f".{func.attr}() view"
    return None


def _iteration_sites(info: FunctionInfo) -> "list[tuple[ast.AST, str]]":
    sites: "list[tuple[ast.AST, str]]" = []
    for node in ast.walk(info.node):
        iters: "list[ast.AST]" = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            desc = _unordered_iter_expr(it)
            if desc is not None:
                sites.append((it, desc))
    return sites


def _sf003(analysis: EffectAnalysis) -> "list[FlowFinding]":
    contracts = analysis.contracts
    sink_reachers = analysis.reaches_sinks(contracts.trace_sinks
                                           + contracts.schedule_sinks)
    out: "list[FlowFinding]" = []
    for qualname in sorted(sink_reachers):
        info = analysis.index.functions.get(qualname)
        if info is None:
            continue
        if qualname in (contracts.trace_sinks + contracts.schedule_sinks):
            continue  # the sink itself, not a feeder
        for node, desc in _iteration_sites(info):
            out.append(_finding(
                "SF003", info, node.lineno, node.col_offset + 1,
                f"iteration over {desc} in a function that reaches the "
                f"event heap / trace stream; wrap in sorted(...) so "
                f"emission order is deterministic"))
    return out


# -- SF004 -------------------------------------------------------------------

def _sf004(analysis: EffectAnalysis) -> "list[FlowFinding]":
    out: "list[FlowFinding]" = []
    for qualname in sorted(analysis.index.functions):
        if not analysis.contracts.is_assumed_pure(qualname):
            continue
        effects = analysis.signature(qualname)
        if not effects:
            continue
        info = analysis.index.functions[qualname]
        culprit = _nearest_effect_origin(analysis, qualname)
        suffix = f" (via {culprit})" if culprit and culprit != qualname else ""
        out.append(_finding(
            "SF004", info, info.lineno, 1,
            f"assumed pure by the lowering contract but inferred effects "
            f"are [{', '.join(effects)}]{suffix}"))
    return out


def _nearest_effect_origin(analysis: EffectAnalysis,
                           root: str) -> "str | None":
    """BFS from ``root`` to the closest function with a *direct* effect."""
    seen = {root}
    frontier = [root]
    while frontier:
        nxt: "list[str]" = []
        for qual in frontier:
            if analysis.direct.get(qual):
                return qual
            for callee, internal, _l, _c in analysis.index.functions[
                    qual].calls:
                if internal and callee in analysis.index.functions and (
                        callee not in seen):
                    seen.add(callee)
                    nxt.append(callee)
        frontier = sorted(nxt)
    return None


# -- SF005 -------------------------------------------------------------------

def _sf005(analysis: EffectAnalysis) -> "list[FlowFinding]":
    out: "list[FlowFinding]" = []
    for qualname in sorted(analysis.index.functions):
        info = analysis.index.functions[qualname]
        for line, column, message in check_function_dims(
                analysis.index, info, analysis.return_dims):
            out.append(_finding("SF005", info, line, column, message))
    return out


# -- SF006 -------------------------------------------------------------------

def _guard_chains(info: FunctionInfo) -> "dict[str, int]":
    """Dotted chains tested for truthiness/None -> first guarding line."""
    guards: "dict[str, int]" = {}

    def note(expr: ast.AST, line: int) -> None:
        for node in ast.walk(expr):
            dotted = _dotted_name(node)
            if dotted is not None:
                guards.setdefault(dotted, line)

    for node in ast.walk(info.node):
        if isinstance(node, (ast.If, ast.While, ast.Assert, ast.IfExp)):
            note(node.test, node.lineno)
        elif isinstance(node, ast.BoolOp):
            for value in node.values[:-1]:
                note(value, node.lineno)
    return guards


def _sf006(analysis: EffectAnalysis) -> "list[FlowFinding]":
    contracts = analysis.contracts
    out: "list[FlowFinding]" = []
    for qualname in sorted(analysis.index.functions):
        info = analysis.index.functions[qualname]
        mod = analysis.index.modules[info.module]
        guards = _guard_chains(info)
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            # self.hooks.on_event(...) -- receiver chain ends in an
            # optional attribute.
            recv = func.value
            if (isinstance(recv, ast.Attribute)
                    and recv.attr in contracts.optional_obs_attrs):
                chain = _dotted_name(recv)
                if chain is not None and chain not in guards:
                    out.append(_finding(
                        "SF006", info, node.lineno, node.col_offset + 1,
                        f"call through optional '{chain}' without a "
                        f"preceding None/truthiness guard"))
            elif (isinstance(recv, ast.Name)
                  and recv.id in contracts.optional_obs_attrs
                  and recv.id not in guards):
                out.append(_finding(
                    "SF006", info, node.lineno, node.col_offset + 1,
                    f"call through optional '{recv.id}' without a "
                    f"preceding None/truthiness guard"))
            # active().emit(...) -- chaining on an Optional-returning call.
            elif isinstance(recv, ast.Call):
                dotted = _dotted_name(recv.func)
                resolved = (analysis.index.resolve_name(mod, dotted)
                            if dotted is not None else None)
                if resolved in contracts.optional_session_calls:
                    out.append(_finding(
                        "SF006", info, node.lineno, node.col_offset + 1,
                        f"chained call on {resolved}() which returns "
                        f"ObsSession | None; bind it and guard first"))
    out.sort(key=lambda f: (f.path, f.line, f.column))
    return out
