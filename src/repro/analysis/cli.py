"""Command-line front end: ``python -m repro.analysis``.

One umbrella over the four analyzer families, with a shared finding
schema (:mod:`repro.analysis.schema`), shared suppression comments, and
shared exit codes (0 clean, 1 findings, 2 usage error)::

    python -m repro.analysis lint src/            # SL: per-file AST lint
    python -m repro.analysis flow                 # SF: interprocedural flow
    python -m repro.analysis flow --effects-report  # the purity contract
    python -m repro.analysis sanitize --seed 3    # SZ: runtime sanitizer
    python -m repro.analysis trace lint t.jsonl   # TL: trace invariants
    python -m repro.analysis rules                # every code, all families
    python -m repro.analysis self-check           # the CI gate (SL+SZ+SF)

The pre-umbrella spellings keep working: ``python -m repro.analysis
src/`` lints paths, and ``--list-rules`` / ``--sanitize`` /
``--self-check`` behave as before.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.linter import (findings_to_dict, format_json, format_text,
                                   lint_paths)
from repro.analysis.rules import all_rules

#: First-positional words routed to the subcommand interface; anything
#: else falls through to the legacy parser (paths, flags).
SUBCOMMANDS = ("lint", "flow", "sanitize", "trace", "rules", "self-check")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Determinism linter (simlint) and simulation sanitizer "
                    "for the repro DES kernel.")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default: text)")
    parser.add_argument("--list-rules", action="store_true",
                        help="describe every lint rule and exit")
    parser.add_argument("--sanitize", action="store_true",
                        help="run the built-in demo scenario under the "
                             "simulation sanitizer and print its report")
    parser.add_argument("--seed", type=int, default=0,
                        help="root seed for --sanitize (default: 0)")
    parser.add_argument("--strict", action="store_true",
                        help="with --sanitize: raise at the first "
                             "error-severity finding")
    parser.add_argument("--self-check", action="store_true",
                        help="lint the installed repro package, sanitize "
                             "the demo scenario, and run the flow analyzer; "
                             "nonzero on any finding (the CI gate)")
    return parser


def build_subcommand_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Unified static/runtime analysis for the repro "
                    "package (SL lint, SF flow, SZ sanitizer, TL trace).")
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser("lint", help="per-file AST lint (SL rules)")
    lint.add_argument("paths", nargs="+")
    lint.add_argument("--format", choices=("text", "json"), default="text")

    flow = sub.add_parser(
        "flow", help="interprocedural effect/determinism/units analysis "
                     "(SF rules)")
    flow.add_argument("root", nargs="?", default=None,
                      help="package directory (default: the installed "
                           "repro package)")
    flow.add_argument("--package", default=None,
                      help="package name for qualnames (default: the "
                           "directory name)")
    flow.add_argument("--format", choices=("text", "json"), default="text")
    flow.add_argument("--baseline", metavar="FILE", default=None,
                      help="previous --format json payload; matching "
                           "findings (code, path, function) are filtered")
    flow.add_argument("--effects-report", action="store_true",
                      help="print the inferred effect-signature table for "
                           "the contract scope instead of findings")

    sanitize = sub.add_parser("sanitize",
                              help="run the demo scenario under the "
                                   "runtime sanitizer (SZ rules)")
    sanitize.add_argument("--seed", type=int, default=0)
    sanitize.add_argument("--strict", action="store_true")
    sanitize.add_argument("--format", choices=("text", "json"),
                          default="text")

    trace = sub.add_parser("trace",
                           help="trace analytics and TL invariant lint "
                                "(forwards to python -m repro.obs)")
    trace.add_argument("args", nargs=argparse.REMAINDER)

    rules = sub.add_parser("rules",
                           help="list every diagnostic code of every "
                                "family (SL, SF, SZ, TL)")
    rules.add_argument("--format", choices=("text", "json"), default="text")

    check = sub.add_parser("self-check", help="the CI gate: lint + "
                                              "sanitizer demo + flow")
    check.add_argument("--format", choices=("text", "json"), default="text")
    return parser


# -- helpers shared by legacy and subcommand paths ---------------------------


def _print_lint(findings, files_scanned, fmt: str) -> None:
    if fmt == "json":
        print(format_json(findings, files_scanned))
    else:
        print(format_text(findings, files_scanned))


def _run_lint(paths, fmt: str) -> int:
    try:
        findings, files_scanned = lint_paths(paths)
    except FileNotFoundError as exc:
        print(f"error: {exc}")
        return 2
    _print_lint(findings, files_scanned, fmt)
    return 1 if findings else 0


def _run_sanitize(seed: int, strict: bool, fmt: str) -> int:
    from repro.analysis.demo import run_demo

    outcome = run_demo(seed, strict=strict)
    report = outcome.report
    if fmt == "json":
        payload = report.to_dict()
        payload["makespan"] = outcome.makespan
        payload["swap_count"] = outcome.result.swap_count
        print(json.dumps(payload, indent=2))
    else:
        print(report.format())
        print(f"demo scenario: makespan={outcome.makespan:.1f}s, "
              f"swaps={outcome.result.swap_count}, seed={seed}")
    return 1 if report.error_count else 0


def _package_dir() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


def _run_flow(root: "str | None", package: "str | None", fmt: str,
              baseline: "str | None", effects: bool) -> int:
    from repro.analysis import flow as flowpkg

    if root is None:
        root_path = _package_dir()
        package = package or "repro"
    else:
        root_path = Path(root)

    baseline_keys = None
    if baseline is not None:
        try:
            baseline_keys = flowpkg.load_baseline(baseline)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read baseline {baseline}: {exc}")
            return 2

    try:
        result = flowpkg.analyze_package(root_path, package=package)
    except FileNotFoundError as exc:
        print(f"error: {exc}")
        return 2

    if effects:
        report = flowpkg.effects_report(result.analysis)
        print(flowpkg.format_effects_report(report), end="")
        return 0

    findings = result.findings
    if baseline_keys is not None:
        findings = flowpkg.apply_baseline(findings, baseline_keys)
    if fmt == "json":
        print(flowpkg.format_flow_json(findings, result.functions_analyzed))
    else:
        print(flowpkg.format_flow_text(findings, result.functions_analyzed))
    return 1 if findings else 0


def _all_rule_catalogue() -> "list[tuple[str, str, str]]":
    """(code, name, summary) for every family, sorted by code."""
    from repro.analysis.flow.rules import FLOW_RULES
    from repro.analysis.sanitizer import SANITIZER_RULES
    from repro.obs.analyze import TRACE_RULES

    rows = [(r.code, r.name, r.summary) for r in all_rules()]
    rows += [(code, name, summary)
             for code, (name, summary) in FLOW_RULES.items()]
    rows += [(code, name, summary)
             for code, (name, summary) in SANITIZER_RULES.items()]
    rows += [(code, f"trace-{code.lower()}", summary)
             for code, summary in TRACE_RULES.items()]
    return sorted(rows)


def _run_rules(fmt: str) -> int:
    rows = _all_rule_catalogue()
    if fmt == "json":
        print(json.dumps([{"code": c, "name": n, "summary": s}
                          for c, n, s in rows], indent=2))
    else:
        for code, name, summary in rows:
            print(f"{code} {name}: {summary}")
    return 0


def _self_check(fmt: str) -> int:
    from repro.analysis import flow as flowpkg
    from repro.analysis.demo import run_demo

    package_dir = _package_dir()
    findings, files_scanned = lint_paths([package_dir])
    # Report paths relative to the package root so output is stable
    # across checkouts.
    rel = [f.__class__(code=f.code, message=f.message,
                       path=str(Path(f.path).relative_to(package_dir.parent)),
                       line=f.line, column=f.column) for f in findings]

    outcome = run_demo(0)
    report = outcome.report
    flow_result = flowpkg.analyze_package(package_dir, package="repro")
    failed = bool(rel or report.error_count or flow_result.findings)

    if fmt == "json":
        payload = findings_to_dict(rel, files_scanned)
        payload["sanitizer"] = report.to_dict()
        payload["flow"] = flowpkg.flow_payload(
            flow_result.findings, flow_result.functions_analyzed)
        print(json.dumps(payload, indent=2))
    else:
        _print_lint(rel, files_scanned, fmt)
        print(f"sanitizer demo: {report.error_count} errors, "
              f"{report.warning_count} warnings over "
              f"{report.events_processed} events")
        print(flowpkg.format_flow_text(flow_result.findings,
                                       flow_result.functions_analyzed))
    return 1 if failed else 0


# -- entry points -------------------------------------------------------------


def _main_subcommand(argv: "list[str]") -> int:
    parser = build_subcommand_parser()
    args = parser.parse_args(argv)
    if args.command == "lint":
        return _run_lint(args.paths, args.format)
    if args.command == "flow":
        return _run_flow(args.root, args.package, args.format,
                         args.baseline, args.effects_report)
    if args.command == "sanitize":
        return _run_sanitize(args.seed, args.strict, args.format)
    if args.command == "trace":
        from repro.obs.__main__ import main as obs_main

        return obs_main(args.args)
    if args.command == "rules":
        return _run_rules(args.format)
    assert args.command == "self-check"
    return _self_check(args.format)


def main(argv: "list[str] | None" = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in SUBCOMMANDS:
        return _main_subcommand(argv)

    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code} {rule.name}: {rule.summary}")
        return 0

    if args.self_check:
        return _self_check(args.format)

    if args.sanitize:
        return _run_sanitize(args.seed, args.strict, args.format)

    if not args.paths:
        parser.print_usage()
        return 2

    return _run_lint(args.paths, args.format)
