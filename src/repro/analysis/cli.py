"""Command-line front end: ``python -m repro.analysis``.

Examples
--------

::

    python -m repro.analysis src/                 # lint a tree
    python -m repro.analysis src/ --format json   # machine-readable
    python -m repro.analysis --list-rules         # the rule catalogue
    python -m repro.analysis --sanitize --seed 3  # sanitized demo run
    python -m repro.analysis --self-check         # CI gate: lint the
                                                  # installed package and
                                                  # sanitize the demo

Exit status: 0 clean, 1 findings (or sanitizer errors), 2 usage error.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.analysis.linter import (findings_to_dict, format_json, format_text,
                                   lint_paths)
from repro.analysis.rules import all_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Determinism linter (simlint) and simulation sanitizer "
                    "for the repro DES kernel.")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default: text)")
    parser.add_argument("--list-rules", action="store_true",
                        help="describe every lint rule and exit")
    parser.add_argument("--sanitize", action="store_true",
                        help="run the built-in demo scenario under the "
                             "simulation sanitizer and print its report")
    parser.add_argument("--seed", type=int, default=0,
                        help="root seed for --sanitize (default: 0)")
    parser.add_argument("--strict", action="store_true",
                        help="with --sanitize: raise at the first "
                             "error-severity finding")
    parser.add_argument("--self-check", action="store_true",
                        help="lint the installed repro package and sanitize "
                             "the demo scenario; nonzero on any finding "
                             "(the CI gate)")
    return parser


def _print_lint(findings, files_scanned, fmt: str) -> None:
    if fmt == "json":
        print(format_json(findings, files_scanned))
    else:
        print(format_text(findings, files_scanned))


def _run_sanitize(seed: int, strict: bool, fmt: str) -> int:
    from repro.analysis.demo import run_demo

    outcome = run_demo(seed, strict=strict)
    report = outcome.report
    if fmt == "json":
        payload = report.to_dict()
        payload["makespan"] = outcome.makespan
        payload["swap_count"] = outcome.result.swap_count
        print(json.dumps(payload, indent=2))
    else:
        print(report.format())
        print(f"demo scenario: makespan={outcome.makespan:.1f}s, "
              f"swaps={outcome.result.swap_count}, seed={seed}")
    return 1 if report.error_count else 0


def _self_check(fmt: str) -> int:
    import repro

    package_dir = Path(repro.__file__).resolve().parent
    findings, files_scanned = lint_paths([package_dir])
    # Report paths relative to the package root so output is stable
    # across checkouts.
    rel = [f.__class__(code=f.code, message=f.message,
                       path=str(Path(f.path).relative_to(package_dir.parent)),
                       line=f.line, column=f.column) for f in findings]

    from repro.analysis.demo import run_demo

    outcome = run_demo(0)
    report = outcome.report
    if fmt == "json":
        payload = findings_to_dict(rel, files_scanned)
        payload["sanitizer"] = report.to_dict()
        print(json.dumps(payload, indent=2))
    else:
        _print_lint(rel, files_scanned, fmt)
        print(f"sanitizer demo: {report.error_count} errors, "
              f"{report.warning_count} warnings over "
              f"{report.events_processed} events")
    return 1 if (rel or report.error_count) else 0


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code} {rule.name}: {rule.summary}")
        return 0

    if args.self_check:
        return _self_check(args.format)

    if args.sanitize:
        return _run_sanitize(args.seed, args.strict, args.format)

    if not args.paths:
        parser.print_usage()
        return 2

    try:
        findings, files_scanned = lint_paths(args.paths)
    except FileNotFoundError as exc:
        print(f"error: {exc}")
        return 2
    _print_lint(findings, files_scanned, args.format)
    return 1 if findings else 0
