"""``simlint``: the AST walk, suppression comments, and output shaping.

Suppression syntax (checked against the *reported* line; the same
comments silence the interprocedural :mod:`repro.analysis.flow`
analyzer, so one directive can mix families --
``disable=SL003,SF001``):

* ``# simlint: disable=SL003`` -- suppress the listed codes on this line;
* ``# simlint: disable=SL001,SF005`` -- several codes at once, any family;
* ``# simlint: disable=all`` -- everything on this line;
* ``# simlint: disable-file=SL003`` -- suppress for the whole file
  (conventionally placed near the top, with a justification comment).

A suppression on any decorator line of a decorated ``def`` / ``class``
also covers findings reported on the ``def`` line itself (rules that
anchor to the definition, like SL006, are otherwise unreachable when a
decorator owns the natural comment spot).

Suppressions exist so that a *justified* exception can be recorded in
place -- e.g. :mod:`repro.load.hyperexp` keeps a private ``heapq`` of
process departure times that has nothing to do with the simulator's
event heap.
"""

from __future__ import annotations

import ast
import json
import re
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.rules import Finding, LintContext, Rule, all_rules

_SUPPRESS_RE = re.compile(
    r"#\s*(?:simlint|simflow|repro-analysis):\s*disable(?P<file>-file)?\s*=\s*"
    r"(?P<codes>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)")

#: Directory names never descended into when walking paths.
_SKIP_DIRS = {"__pycache__", ".git", ".hg", "node_modules", "build", "dist"}


def _parse_suppressions(source: str) -> "tuple[dict[int, set[str]], set[str]]":
    """Extract per-line and per-file suppressed codes from comments."""
    per_line: "dict[int, set[str]]" = {}
    per_file: "set[str]" = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        for match in _SUPPRESS_RE.finditer(line):
            codes = {c.strip().upper() if c.strip().lower() != "all" else "ALL"
                     for c in match.group("codes").split(",")}
            if match.group("file"):
                per_file |= codes
            else:
                per_line.setdefault(lineno, set()).update(codes)
    return per_line, per_file


class SuppressionIndex:
    """Per-module suppression lookup shared by simlint and simflow.

    Built from the module source (and, when available, its AST so that
    decorator-line suppressions extend to the decorated definition's
    ``def`` line, where definition-anchored findings are reported).
    """

    def __init__(self, source: str, tree: "ast.Module | None" = None) -> None:
        self._per_line, self._per_file = _parse_suppressions(source)
        if tree is not None:
            self._extend_decorated_defs(tree)

    def _extend_decorated_defs(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                continue
            if not node.decorator_list:
                continue
            first = min(d.lineno for d in node.decorator_list)
            codes: "set[str]" = set()
            for line in range(first, node.lineno):
                codes |= self._per_line.get(line, set())
            if codes:
                self._per_line.setdefault(node.lineno, set()).update(codes)

    def suppressed(self, code: str, line: int) -> bool:
        if "ALL" in self._per_file or code in self._per_file:
            return True
        codes = self._per_line.get(line, ())
        return "ALL" in codes or code in codes


def _suppressed(finding: Finding, index: SuppressionIndex) -> bool:
    return index.suppressed(finding.code, finding.line)


def lint_source(source: str, path: str = "<string>",
                rules: "Sequence[Rule] | None" = None) -> "list[Finding]":
    """Lint one module's source text; returns unsuppressed findings."""
    if rules is None:
        rules = all_rules()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(code="SL000", message=f"syntax error: {exc.msg}",
                        path=path.replace("\\", "/"),
                        line=exc.lineno or 1, column=(exc.offset or 0) + 1 if
                        exc.offset else 1)]

    ctx = LintContext(path, source, tree)
    dispatch: "dict[type, list[Rule]]" = {}
    for rule in rules:
        for node_type in rule.node_types:
            dispatch.setdefault(node_type, []).append(rule)

    findings: "list[Finding]" = []
    for node in ast.walk(tree):
        for rule in dispatch.get(type(node), ()):
            findings.extend(rule.check(node, ctx))

    index = SuppressionIndex(source, tree)
    kept = [f for f in findings if not _suppressed(f, index)]
    kept.sort(key=lambda f: (f.line, f.column, f.code))
    return kept


def iter_python_files(paths: "Iterable[str | Path]") -> "list[Path]":
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: "set[Path]" = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                parts = set(candidate.parts)
                if parts & _SKIP_DIRS:
                    continue
                if any(p.endswith(".egg-info") for p in candidate.parts):
                    continue
                files.add(candidate)
        elif path.suffix == ".py":
            files.add(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(files)


def lint_paths(paths: "Iterable[str | Path]",
               rules: "Sequence[Rule] | None" = None,
               ) -> "tuple[list[Finding], int]":
    """Lint files/directory trees; returns (findings, files_scanned)."""
    files = iter_python_files(paths)
    findings: "list[Finding]" = []
    for file in files:
        findings.extend(lint_source(file.read_text(encoding="utf-8"),
                                    path=str(file), rules=rules))
    findings.sort(key=lambda f: (f.path, f.line, f.column, f.code))
    return findings, len(files)


# -- output shaping --------------------------------------------------------

def findings_to_dict(findings: "Sequence[Finding]",
                     files_scanned: int) -> dict:
    """The stable JSON payload of a lint run (shared schema)."""
    from repro.analysis.schema import findings_payload

    return findings_payload("simlint", findings, files_scanned=files_scanned)


def format_text(findings: "Sequence[Finding]", files_scanned: int) -> str:
    lines = [f.format() for f in findings]
    noun = "file" if files_scanned == 1 else "files"
    lines.append(f"simlint: {len(findings)} finding"
                 f"{'' if len(findings) == 1 else 's'} in "
                 f"{files_scanned} {noun}")
    return "\n".join(lines)


def format_json(findings: "Sequence[Finding]", files_scanned: int) -> str:
    return json.dumps(findings_to_dict(findings, files_scanned), indent=2)
