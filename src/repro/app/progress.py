"""Application progress tracking (the paper's Fig. 1).

Figure 1 plots application progress (iterations completed) against time:
during a swap the curve is flat (the application pauses for the state
transfer), and afterwards a steeper slope erases the pause -- the time to
break even is the *payback distance*.  :class:`ProgressRecorder` captures
exactly that curve from any strategy run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple, Optional

from repro.errors import StrategyError


class ProgressEvent(NamedTuple):
    """One milestone on the progress curve.

    A NamedTuple: strategies append one per iteration, so creation cost
    sits on the sweep hot path.
    """

    time: float
    """Simulated time in seconds."""
    iterations_done: int
    """Iterations completed by this time."""
    kind: str
    """``"iteration"``, ``"swap"``, ``"checkpoint"``, or ``"startup"``."""
    detail: str = ""
    """Free-form annotation (e.g. which hosts were exchanged)."""


@dataclass
class ProgressRecorder:
    """Accumulates a progress curve during a simulated run."""

    events: "list[ProgressEvent]" = field(default_factory=list)

    def record(self, time: float, iterations_done: int, kind: str,
               detail: str = "") -> None:
        events = self.events
        if events and time < events[-1].time - 1e-9:
            raise StrategyError(
                f"progress event at t={time} is older than the last one")
        events.append(ProgressEvent(float(time), int(iterations_done),
                                    kind, detail))

    def curve(self) -> "tuple[list[float], list[int]]":
        """(times, iterations) arrays -- the Fig. 1 axes."""
        return ([e.time for e in self.events],
                [e.iterations_done for e in self.events])

    def pauses(self) -> "list[tuple[float, float, str]]":
        """Flat stretches caused by swaps/checkpoints: (start, end, kind)."""
        result = []
        for prev, cur in zip(self.events, self.events[1:]):
            if cur.kind in ("swap", "checkpoint") and cur.time > prev.time:
                result.append((prev.time, cur.time, cur.kind))
        return result

    def time_of_iteration(self, k: int) -> Optional[float]:
        """Completion time of iteration ``k`` (1-based), or None."""
        for event in self.events:
            if event.kind == "iteration" and event.iterations_done == k:
                return event.time
        return None

    def payback_point(self, baseline: "ProgressRecorder") -> Optional[float]:
        """First time after a pause that this run catches the ``baseline``.

        Interprets Fig. 1: given a run that paid a swap/checkpoint pause
        and a baseline that did not, returns the earliest post-pause time
        at which the paying run's completed-iteration count reaches the
        baseline's -- i.e. when the pause has paid for itself.  None if
        there was no pause, or it never catches up within the recorded
        horizon.
        """
        pause_times = [t for t, _end, _k in self.pauses()]
        if not pause_times:
            return None
        first_pause = pause_times[0]
        for event in self.events:
            if event.kind != "iteration" or event.time <= first_pause:
                continue
            baseline_time = baseline.time_of_iteration(event.iterations_done)
            if baseline_time is not None and event.time <= baseline_time:
                return event.time
        return None
