"""The iterative-application specification.

A data-parallel iterative application is characterized by:

* a number of desired processors ``n_processes`` (the paper's ``N``,
  chosen for memory/performance reasons);
* per-iteration compute work, partitioned into per-process chunks --
  equal chunks by default, since "the application is stuck with the
  initial data distribution" (only DLB may repartition);
* per-iteration communication volume per process;
* a per-process state image size (what a swap or checkpoint must move);
* a fixed iteration count (a stand-in for run-until-convergence; the
  paper's payback metric exists precisely because the true remaining
  iteration count is unknown).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StrategyError


@dataclass(frozen=True)
class ApplicationSpec:
    """Static description of an iterative data-parallel application."""

    n_processes: int
    """Desired number of active processes ``N``."""
    iterations: int
    """Number of iterations to execute."""
    flops_per_iteration: float
    """Total compute work per iteration, across all processes (flop)."""
    bytes_per_process: float = 0.0
    """Data each process communicates per iteration (bytes)."""
    state_bytes: float = 0.0
    """Per-process state image moved by a swap or checkpoint (bytes)."""
    name: str = "app"

    def __post_init__(self) -> None:
        if self.n_processes < 1:
            raise StrategyError(f"need >= 1 process, got {self.n_processes}")
        if self.iterations < 1:
            raise StrategyError(f"need >= 1 iteration, got {self.iterations}")
        if self.flops_per_iteration <= 0:
            raise StrategyError("flops_per_iteration must be > 0")
        if self.bytes_per_process < 0:
            raise StrategyError("bytes_per_process must be >= 0")
        if self.state_bytes < 0:
            raise StrategyError("state_bytes must be >= 0")

    @property
    def chunk_flops(self) -> float:
        """Per-process compute work under the equal initial partition."""
        return self.flops_per_iteration / self.n_processes

    def equal_chunks(self, hosts: "list[int]") -> "dict[int, float]":
        """Equal-size chunk mapping for the given active hosts."""
        if len(hosts) != self.n_processes:
            raise StrategyError(
                f"application wants {self.n_processes} processes, "
                f"got {len(hosts)} hosts")
        return {h: self.chunk_flops for h in hosts}

    def proportional_chunks(self, rates: "dict[int, float]") -> "dict[int, float]":
        """Chunks proportional to predicted rates (the DLB partition).

        A perfectly balanced partition: every process finishes at the same
        time if each host sustains its predicted rate.
        """
        if len(rates) != self.n_processes:
            raise StrategyError(
                f"application wants {self.n_processes} processes, "
                f"got {len(rates)} rates")
        total_rate = sum(rates.values())
        if total_rate <= 0:
            raise StrategyError("total predicted rate must be > 0")
        return {h: self.flops_per_iteration * r / total_rate
                for h, r in rates.items()}

    def unloaded_iteration_time(self, speeds: "list[float]") -> float:
        """Compute-phase duration on dedicated hosts with equal chunks."""
        if len(speeds) != self.n_processes:
            raise StrategyError("speeds list must match n_processes")
        return max(self.chunk_flops / s for s in speeds)

    def describe(self) -> str:
        return (f"{self.name}(N={self.n_processes}, I={self.iterations}, "
                f"{self.flops_per_iteration:.3g} flop/iter, "
                f"{self.bytes_per_process:.3g} B/proc comm, "
                f"{self.state_bytes:.3g} B state)")
