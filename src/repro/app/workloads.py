"""Workload generators in the paper's parameter ranges.

Section 6 ("Application"): computation per iteration on an unloaded
processor in the 1-5 minute range; per-iteration communication in the
1 KB - 1 GB range; process state 1 KB - 1 GB.
"""

from __future__ import annotations

import numpy as np

from repro.app.iterative import ApplicationSpec
from repro.errors import StrategyError
from repro.units import GB, KB, MB, MFLOPS, MINUTE


def scaled_iteration_minutes(minutes: float, n_processes: int,
                             reference_speed: float = 300 * MFLOPS) -> float:
    """Total per-iteration flops so an unloaded iteration lasts ``minutes``.

    ``reference_speed`` is the speed of a mid-range host in the paper's
    hundreds-of-megaflops platform; the per-process chunk then takes
    ``minutes`` on such a host.
    """
    if minutes <= 0:
        raise StrategyError(f"iteration length must be > 0, got {minutes}")
    if reference_speed <= 0:
        raise StrategyError("reference_speed must be > 0")
    return minutes * MINUTE * reference_speed * n_processes


def paper_application(n_processes: int = 4,
                      iterations: int = 60,
                      iteration_minutes: float = 1.0,
                      bytes_per_process: float = 100 * KB,
                      state_bytes: float = 1 * MB,
                      name: str = "paper-app") -> ApplicationSpec:
    """The canonical evaluation application of the paper's figures.

    Defaults give a ~1 minute unloaded iteration on a mid-range host,
    small communication, and a 1 MB process image (the Figs. 4-5 value).
    """
    return ApplicationSpec(
        n_processes=n_processes,
        iterations=iterations,
        flops_per_iteration=scaled_iteration_minutes(iteration_minutes,
                                                     n_processes),
        bytes_per_process=bytes_per_process,
        state_bytes=state_bytes,
        name=name,
    )


def particle_dynamics_application(n_processes: int = 4,
                                  iterations: int = 100,
                                  particles_per_process: int = 250_000,
                                  name: str = "particle-dynamics",
                                  ) -> ApplicationSpec:
    """A particle-dynamics workload like the paper's retrofit target.

    Section 3 reports retrofitting "a real-world particle dynamics code
    for which only 4 lines of the original source code were modified".
    This preset models such a code: per-particle state of ~64 bytes
    (position, velocity, force, mass), per-iteration compute of ~500
    flop/particle (neighbour forces + integration), and boundary-exchange
    communication of ~5 % of the particles per iteration.
    """
    if particles_per_process < 1:
        raise StrategyError("need at least one particle per process")
    bytes_per_particle = 64.0
    flops_per_particle = 500.0
    boundary_fraction = 0.05
    return ApplicationSpec(
        n_processes=n_processes,
        iterations=iterations,
        flops_per_iteration=(flops_per_particle * particles_per_process
                             * n_processes),
        bytes_per_process=(bytes_per_particle * particles_per_process
                           * boundary_fraction),
        state_bytes=bytes_per_particle * particles_per_process,
        name=name,
    )


def random_application(rng: np.random.Generator,
                       n_processes: int = 4,
                       iterations: int = 60,
                       name: str = "random-app") -> ApplicationSpec:
    """Draw an application uniformly from the paper's stated ranges.

    Compute 1-5 min/iteration, communication 1 KB - 1 GB (log-uniform),
    state 1 KB - 1 GB (log-uniform).
    """
    minutes = float(rng.uniform(1.0, 5.0))
    comm = float(10 ** rng.uniform(np.log10(1 * KB), np.log10(1 * GB)))
    state = float(10 ** rng.uniform(np.log10(1 * KB), np.log10(1 * GB)))
    return ApplicationSpec(
        n_processes=n_processes,
        iterations=iterations,
        flops_per_iteration=scaled_iteration_minutes(minutes, n_processes),
        bytes_per_process=comm,
        state_bytes=state,
        name=name,
    )
