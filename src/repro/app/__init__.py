"""Iterative application models.

The paper targets "the broad class of iterative applications" and
simulates apps with: per-iteration compute of 1-5 minutes on an unloaded
processor, per-iteration communication of 1 KB - 1 GB, and per-process
state of 1 KB - 1 GB (its Section 6, "Application").
"""

from repro.app.iterative import ApplicationSpec
from repro.app.progress import ProgressEvent, ProgressRecorder
from repro.app.workloads import (
    paper_application,
    particle_dynamics_application,
    random_application,
    scaled_iteration_minutes,
)

__all__ = [
    "ApplicationSpec",
    "ProgressEvent",
    "ProgressRecorder",
    "paper_application",
    "particle_dynamics_application",
    "random_application",
    "scaled_iteration_minutes",
]
