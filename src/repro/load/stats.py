"""Statistics over load traces.

Used by the test-suite to validate the stochastic models against their
analytic properties (stationary ON fraction, offered utilization, dwell
times) and by the experiment reports to characterize "environment
dynamism" quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import LoadModelError
from repro.load.base import LoadTrace


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of a load trace over a window."""

    window: float
    """Length of the analysed window in seconds."""
    mean_load: float
    """Time-averaged number of competing processes."""
    mean_availability: float
    """Time-averaged CPU share of one application process."""
    max_load: int
    """Peak number of competing processes."""
    busy_fraction: float
    """Fraction of time with at least one competing process."""
    transition_rate: float
    """Load changes per second -- the paper's notion of dynamism."""
    mean_busy_interval: float
    """Average length of a maximal busy (n >= 1) interval; 0 if never busy."""


def trace_stats(trace: LoadTrace, t0: float = 0.0,
                t1: float | None = None) -> TraceStats:
    """Compute :class:`TraceStats` for ``trace`` over ``[t0, t1]``."""
    if t1 is None:
        t1 = trace.horizon
    if t1 <= t0:
        raise LoadModelError(f"empty window [{t0}, {t1}]")
    trace._ensure(t1)

    window = t1 - t0
    load_integral = 0.0
    busy_time = 0.0
    max_load = 0
    transitions = 0
    busy_intervals: list[float] = []
    current_busy_start: float | None = None
    previous_value: int | None = None

    for start, end, value in trace.segments():
        lo, hi = max(start, t0), min(end, t1)
        if hi <= lo:
            continue
        span = hi - lo
        load_integral += span * value
        max_load = max(max_load, value)
        if previous_value is not None and value != previous_value:
            transitions += 1
        previous_value = value
        if value >= 1:
            busy_time += span
            if current_busy_start is None:
                current_busy_start = lo
        else:
            if current_busy_start is not None:
                busy_intervals.append(lo - current_busy_start)
                current_busy_start = None
    if current_busy_start is not None:
        busy_intervals.append(t1 - current_busy_start)

    return TraceStats(
        window=window,
        mean_load=load_integral / window,
        mean_availability=trace.mean_availability(t0, t1),
        max_load=max_load,
        busy_fraction=busy_time / window,
        transition_rate=transitions / window,
        mean_busy_interval=(float(np.mean(busy_intervals))
                            if busy_intervals else 0.0),
    )


def availability_series(trace: LoadTrace, t0: float, t1: float,
                        n_points: int = 200) -> "tuple[np.ndarray, np.ndarray]":
    """Sampled ``(times, availability)`` arrays for plotting (Figs. 2-3)."""
    if n_points < 2:
        raise LoadModelError("need at least 2 sample points")
    times = np.linspace(t0, t1, n_points)
    values = np.array([trace.availability_at(float(t)) for t in times])
    return times, values


def load_series(trace: LoadTrace, t0: float, t1: float,
                n_points: int = 200) -> "tuple[np.ndarray, np.ndarray]":
    """Sampled ``(times, competing process count)`` arrays (Figs. 2-3)."""
    if n_points < 2:
        raise LoadModelError("need at least 2 sample points")
    times = np.linspace(t0, t1, n_points)
    values = np.array([trace.value_at(float(t)) for t in times])
    return times, values
