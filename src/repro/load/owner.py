"""Owner reclamation: desktop-grid style resource revocation.

The paper's related-work section motivates "combining MPI process
swapping techniques and policies with the cycle-stealing facilities of
desktop computing systems like Condor [or] XtremWeb ...  These systems
evict application processes when a resource is reclaimed by its owner."

:class:`OwnerActivityModel` composes any base CPU load model with an
ON/OFF *owner presence* signal.  While the owner is present the host is
effectively revoked: the guest application process is throttled to a
negligible share (``owner_weight`` competing-process equivalents, default
49 => at most 2 % of the CPU).  Under a swapping policy this produces
exactly the eviction-and-migrate behaviour the paper sketches -- the
spare pool absorbs reclaimed processes -- without requiring a separate
kill/restart mechanism: a revoked process that cannot migrate simply
stalls, as a suspended Condor guest job would.
"""

from __future__ import annotations

from repro.errors import LoadModelError
from repro.load.base import ConstantLoadModel, LoadModel, LoadTrace
from repro.load.onoff import OnOffLoadModel


class OwnerActivityModel(LoadModel):
    """Base external load plus owner-presence revocation periods.

    Parameters
    ----------
    presence_fraction:
        Long-run fraction of time the owner uses their workstation.
    mean_presence:
        Mean length of one owner session in seconds.
    base:
        CPU load model for guest-visible background load while the owner
        is away (defaults to an otherwise idle host).
    owner_weight:
        Competing-process equivalents contributed by the owner; the guest
        then receives ``1 / (1 + owner_weight + n_base)`` of the CPU.
    step:
        Time resolution of the presence signal in seconds.
    """

    def __init__(self, presence_fraction: float, mean_presence: float,
                 base: LoadModel | None = None, owner_weight: int = 49,
                 step: float = 10.0) -> None:
        if not 0.0 <= presence_fraction < 1.0:
            raise LoadModelError(
                f"presence_fraction must be in [0, 1), got {presence_fraction}")
        if mean_presence <= 0:
            raise LoadModelError(
                f"mean_presence must be > 0, got {mean_presence}")
        if owner_weight < 1:
            raise LoadModelError(
                f"owner_weight must be >= 1, got {owner_weight}")
        self.presence_fraction = float(presence_fraction)
        self.mean_presence = float(mean_presence)
        self.base = base or ConstantLoadModel(0)
        self.owner_weight = int(owner_weight)
        self.step = float(step)

    def _presence_model(self) -> OnOffLoadModel:
        q = min(1.0, self.step / self.mean_presence)
        if self.presence_fraction == 0.0:
            p = 0.0
        else:
            p = min(1.0, q * self.presence_fraction
                    / (1.0 - self.presence_fraction))
        return OnOffLoadModel(p=p, q=q, step=self.step,
                              n_when_on=self.owner_weight)

    def build(self, rng, horizon: float) -> LoadTrace:
        base_rng, presence_rng = rng.spawn(2)
        base_trace = self.base.build(base_rng, horizon)
        presence_trace = self._presence_model().build(presence_rng, horizon)

        def extend(trace: LoadTrace, new_horizon: float) -> None:
            start = trace.horizon
            base_trace._ensure(new_horizon)
            presence_trace._ensure(new_horizon)
            points = {new_horizon}
            for child in (base_trace, presence_trace):
                points.update(t for t in child._times
                              if start < t <= new_horizon)
            for t in sorted(points):
                mid = (max(start, t - 1e-9) + t) / 2.0
                total = (base_trace.value_at(mid)
                         + presence_trace.value_at(mid))
                if t > trace.horizon:
                    trace.append_segment(t, total)
                start = t

        first = base_trace.value_at(0.0) + presence_trace.value_at(0.0)
        trace = LoadTrace([0.0, 1e-12], [first], extender=extend)
        extend(trace, max(horizon, 1.0))
        return trace

    def is_revoked(self, trace: LoadTrace, t: float) -> bool:
        """Whether the owner is present at ``t`` on a built trace."""
        return trace.value_at(t) >= self.owner_weight

    def describe(self) -> str:
        return (f"owner-activity(presence={self.presence_fraction:.0%}, "
                f"session={self.mean_presence:g}s, "
                f"base={self.base.describe()})")
