"""Trace-replay load model (the paper's stated future work).

"Augmenting the simulation with CPU load traces that better reflect
actual environments will help ensure our policies are beneficial."
This module lets recorded (timestamp, competing-process-count) samples --
e.g. converted NWS CPU availability measurements -- drive a host's load,
optionally cycling when the simulated run outlives the recording.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import LoadModelError
from repro.load.base import LoadModel, LoadTrace
from repro.units import HOUR


class ReplayLoadModel(LoadModel):
    """Replays a recorded piecewise-constant load signal.

    Parameters
    ----------
    times:
        Sample timestamps (seconds), strictly increasing, starting at 0.
    values:
        Competing-process count holding from each timestamp to the next;
        one entry per timestamp.  The final value holds until ``duration``.
    duration:
        Recording length; defaults to the last timestamp plus the mean
        sample spacing.
    cycle:
        If True (default), the recording repeats end-to-end forever;
        otherwise the final value holds forever.
    """

    def __init__(self, times: Sequence[float], values: Sequence[int],
                 duration: float | None = None, cycle: bool = True) -> None:
        times = [float(t) for t in times]
        values = [int(v) for v in values]
        if not times:
            raise LoadModelError("empty trace")
        if len(times) != len(values):
            raise LoadModelError(
                f"need len(times) == len(values), got {len(times)} and {len(values)}")
        if times[0] != 0.0:
            raise LoadModelError(f"recording must start at t=0, got {times[0]}")
        if any(b <= a for a, b in zip(times, times[1:])):
            raise LoadModelError("timestamps must be strictly increasing")
        if any(v < 0 for v in values):
            raise LoadModelError("competing process counts must be >= 0")
        if duration is None:
            spacing = times[-1] / max(len(times) - 1, 1) if times[-1] > 0 else 1.0
            duration = times[-1] + max(spacing, 1e-9)
        if duration <= times[-1]:
            raise LoadModelError(
                f"duration {duration} must exceed last timestamp {times[-1]}")
        self.times = times
        self.values = values
        self.duration = float(duration)
        self.cycle = bool(cycle)

    @classmethod
    def from_availability(cls, times: Sequence[float],
                          availability: Sequence[float],
                          **kwargs) -> "ReplayLoadModel":
        """Build from CPU-availability samples in (0, 1].

        Availability ``a`` maps to the nearest competing-process count
        ``round(1/a) - 1`` -- the inverse of the fair-share model.
        """
        values = []
        for a in availability:
            if not 0.0 < a <= 1.0:
                raise LoadModelError(f"availability must be in (0, 1], got {a}")
            values.append(max(0, round(1.0 / a) - 1))
        return cls(times, values, **kwargs)

    @classmethod
    def diurnal(cls, work_load: int = 1, busy_hours: float = 8.0,
                day_hours: float = 24.0, lunch_hours: float = 1.0,
                phase_hours: float = 0.0) -> "ReplayLoadModel":
        """A synthetic office workday: busy mornings/afternoons, idle
        nights, an idle lunch break -- cycled daily.

        The paper's validation platform was "a production intranet at a
        Hewlett-Packard research and development facility [where] most of
        the workstations ... are used as personal computers"; this preset
        approximates that diurnal usage for trace-replay studies.
        ``phase_hours`` shifts the pattern (owners with different hours).
        """
        hour = HOUR
        day = day_hours * hour
        if not 0 < lunch_hours < busy_hours < day_hours:
            raise LoadModelError(
                "need 0 < lunch_hours < busy_hours < day_hours")
        start = ((9.0 + phase_hours) % day_hours) * hour  # work starts 9am
        half = (busy_hours - lunch_hours) / 2.0 * hour
        lunch = lunch_hours * hour
        # Busy intervals in unwrapped time, then folded into [0, day).
        busy: "list[tuple[float, float]]" = []
        for a, b in ((start, start + half),
                     (start + half + lunch, start + busy_hours * hour)):
            a, b = a % day, a % day + (b - a)
            if b <= day:
                busy.append((a, b))
            else:  # crosses midnight: split
                busy.append((a, day))
                busy.append((0.0, b - day))
        busy.sort()
        breakpoints, values = [0.0], [0]
        for a, b in busy:
            for t, value in ((a, work_load), (b, 0)):
                if t >= day:
                    continue
                if t == breakpoints[-1]:
                    values[-1] = value
                else:
                    breakpoints.append(t)
                    values.append(value)
        return cls(breakpoints, values, duration=day, cycle=True)

    def build(self, rng, horizon: float) -> LoadTrace:
        # rng is accepted for interface uniformity but unused: replay is
        # deterministic by construction.
        del rng

        def extend(trace: LoadTrace, new_horizon: float) -> None:
            while trace.horizon < new_horizon:
                base = trace.horizon
                if not self.cycle and base >= self.duration:
                    # The recording played once; the final value holds.
                    trace.append_segment(new_horizon, self.values[-1])
                    return
                offset = base % self.duration if self.cycle else base
                # Index of the sample active at `offset`.
                idx = 0
                for i, t in enumerate(self.times):
                    if t <= offset + 1e-12:
                        idx = i
                # Emit the remainder of the current pass of the recording.
                for i in range(idx, len(self.times)):
                    seg_end = (self.times[i + 1] if i + 1 < len(self.times)
                               else self.duration)
                    end = base - offset + seg_end
                    if end > trace.horizon:
                        trace.append_segment(end, self.values[i])

        trace = LoadTrace([0.0, 1e-12], [self.values[0]], extender=extend)
        extend(trace, max(horizon, 1.0))
        return trace

    def describe(self) -> str:
        mode = "cyclic" if self.cycle else "hold-last"
        return (f"replay({len(self.times)} samples over "
                f"{self.duration:g}s, {mode})")
