"""Degenerate hyperexponential CPU load (paper Section 6, Fig. 3).

Competing processes arrive at each host as a Poisson stream (the paper's
"process arrival adheres to a uniform random distribution") and live for a
time drawn from a *degenerate hyperexponential* distribution, following
Eager, Lazowska and Zahorjan [14]: with probability ``branch_prob = a``
the lifetime is exponential with mean ``mean_lifetime / a``, otherwise it
is zero (a process too short to matter).  This keeps the overall mean at
``mean_lifetime`` while making the squared coefficient of variation
``CV^2 = 2/a - 1 > 1`` -- the heavy-tailed process-lifetime behaviour the
paper wants ("this model should better predict the heavy-tailed nature of
the process lifetime distribution").

Unlike the ON/OFF model, several competing processes may overlap, so
``n(t)`` can exceed 1 (paper: "we allow multiple simultaneous competing
processes per processor").
"""

from __future__ import annotations

import heapq

from repro.errors import LoadModelError
from repro.load.base import LoadModel, LoadTrace


class HyperexponentialLoadModel(LoadModel):
    """Poisson arrivals + degenerate hyperexponential lifetimes.

    Parameters
    ----------
    mean_lifetime:
        Mean competing-process lifetime in seconds (the x-axis of the
        paper's Fig. 9: "environment dynamism [mean process lifetime]").
    utilization:
        Offered load ``rho = arrival_rate * mean_lifetime``; the arrival
        rate is derived so that the long-run expected number of competing
        processes is ``rho`` regardless of the swept lifetime.
    branch_prob:
        The ``a`` of the degenerate hyperexponential (0 < a <= 1);
        ``a = 1`` degenerates to a plain exponential.
    """

    def __init__(self, mean_lifetime: float, utilization: float = 0.4,
                 branch_prob: float = 0.1) -> None:
        if mean_lifetime <= 0:
            raise LoadModelError(f"mean_lifetime must be > 0, got {mean_lifetime}")
        if utilization < 0:
            raise LoadModelError(f"utilization must be >= 0, got {utilization}")
        if not 0.0 < branch_prob <= 1.0:
            raise LoadModelError(f"branch_prob must be in (0, 1], got {branch_prob}")
        self.mean_lifetime = float(mean_lifetime)
        self.utilization = float(utilization)
        self.branch_prob = float(branch_prob)

    @property
    def arrival_rate(self) -> float:
        """Arrivals per second: ``utilization / mean_lifetime``."""
        return self.utilization / self.mean_lifetime

    @property
    def cv_squared(self) -> float:
        """Squared coefficient of variation of the lifetime: ``2/a - 1``."""
        return 2.0 / self.branch_prob - 1.0

    def _lifetime(self, rng) -> float:
        if rng.random() >= self.branch_prob:
            return 0.0
        return float(rng.exponential(self.mean_lifetime / self.branch_prob))

    def build(self, rng, horizon: float) -> LoadTrace:
        if self.utilization == 0.0:
            def extend_idle(trace: LoadTrace, new_horizon: float) -> None:
                trace.append_segment(new_horizon, 0)
            return LoadTrace([0.0, max(horizon, 1.0)], [0], extender=extend_idle)

        # State shared by successive extend() calls: departure-time heap of
        # live processes, and the next arrival instant.
        state = {
            "departures": [],            # min-heap of departure times
            "next_arrival": float(rng.exponential(1.0 / self.arrival_rate)),
        }

        def extend(trace: LoadTrace, new_horizon: float) -> None:
            departures = state["departures"]
            while trace.horizon < new_horizon:
                now = trace.horizon
                n_live = len(departures)
                next_departure = departures[0] if departures else float("inf")
                next_event = min(state["next_arrival"], next_departure)
                if next_event > new_horizon:
                    trace.append_segment(new_horizon, n_live)
                    return
                if next_event > now:
                    trace.append_segment(next_event, n_live)
                if next_departure <= state["next_arrival"]:
                    # This heap orders *lifetime departures* local to one
                    # load source; it never touches the event loop.
                    heapq.heappop(departures)  # simlint: disable=SL003
                else:
                    arrival = state["next_arrival"]
                    life = self._lifetime(rng)
                    if life > 0.0:
                        heapq.heappush(departures, arrival + life)  # simlint: disable=SL003
                    state["next_arrival"] = arrival + float(
                        rng.exponential(1.0 / self.arrival_rate))

        trace = LoadTrace([0.0, 1e-12], [0], extender=extend)
        extend(trace, max(horizon, 1.0))
        return trace

    def describe(self) -> str:
        return (f"hyperexp(mean_lifetime={self.mean_lifetime:g}s, "
                f"rho={self.utilization:g}, a={self.branch_prob:g})")
