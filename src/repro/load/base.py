"""Load traces and the load-model interface.

A :class:`LoadTrace` is a right-open piecewise-constant function
``n(t) >= 0``: the number of external compute-bound processes on a host.
Traces are *lazily extensible*: stochastic models attach an extender so a
trace grows on demand as the simulation advances (application makespans
are not known up front -- the paper targets run-until-convergence codes).

The two operations the simulators need are exact (no time-stepping):

* :meth:`LoadTrace.integrate_availability` -- CPU share received by one
  application process over a window, under fair timesharing;
* :meth:`LoadTrace.advance_work` -- the finish time of a compute demand
  started at ``t0``.

Both are answered from a cached prefix sum of per-segment availability
integrals (compiled by :mod:`repro.load.kernels` and invalidated on
every mutation), so a query costs O(log segments) instead of a segment
walk.  The kernel module also keeps pure-Python reference
implementations of the same algebra that CI cross-checks bit-for-bit.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, Optional, Sequence

from repro.errors import LoadModelError

#: Fraction by which lazy extension overshoots, to amortize extend calls.
_EXTEND_SLACK = 1.5

#: Process-wide trace-mutation counter.  Batch query state
#: (:class:`repro.load.kernels.HostBatch`) keys its cached kernel table
#: on this: an unchanged counter proves every previously-fetched kernel
#: is still current, so full-platform queries skip the per-host epoch
#: checks entirely between mutations.
_MUTATIONS = [0]


class LoadTrace:
    """Piecewise-constant external load ``n(t)`` on one host.

    Parameters
    ----------
    times:
        Segment breakpoints, strictly increasing, ``times[0] == 0.0``.
        Segment ``i`` spans ``[times[i], times[i+1])``; the trace is
        defined up to ``horizon`` (== ``times[-1] + last segment`` handled
        by extension).  Internally ``times`` has one more entry than
        ``values``: the final entry is the horizon.
    values:
        Number of competing processes on each segment (``len(times) - 1``
        entries, each >= 0).
    extender:
        Optional callable ``extender(trace, new_horizon)`` that appends
        segments until ``trace.horizon >= new_horizon``.  Without one, use
        of the trace past its horizon follows ``beyond_horizon``.
    beyond_horizon:
        For non-extensible traces: ``"hold"`` keeps the final value
        forever, ``"error"`` raises :class:`LoadModelError`.
    """

    __slots__ = ("_times", "_values", "_extender", "_beyond",
                 "_horizon", "_epoch", "_kernel")

    def __init__(self, times: Sequence[float], values: Sequence[int],
                 extender: Optional[Callable[["LoadTrace", float], None]] = None,
                 beyond_horizon: str = "hold") -> None:
        times = [float(t) for t in times]
        values = [int(v) for v in values]
        if len(times) != len(values) + 1:
            raise LoadModelError(
                f"need len(times) == len(values) + 1, got {len(times)} and {len(values)}")
        if times[0] != 0.0:
            raise LoadModelError(f"trace must start at t=0, got {times[0]}")
        if any(b <= a for a, b in zip(times, times[1:])):
            raise LoadModelError("trace breakpoints must be strictly increasing")
        if any(v < 0 for v in values):
            raise LoadModelError("competing process counts must be >= 0")
        if beyond_horizon not in ("hold", "error"):
            raise LoadModelError(f"unknown beyond_horizon mode {beyond_horizon!r}")
        self._times = times
        self._values = values
        self._extender = extender
        self._beyond = beyond_horizon
        self._horizon = times[-1]
        self._epoch = 0
        self._kernel = None

    # -- inspection -----------------------------------------------------

    @property
    def horizon(self) -> float:
        """Time up to which the trace is currently materialized."""
        return self._horizon

    @property
    def n_segments(self) -> int:
        return len(self._values)

    def segments(self) -> "list[tuple[float, float, int]]":
        """Materialized ``(start, end, n)`` triples (a copy)."""
        return [(self._times[i], self._times[i + 1], self._values[i])
                for i in range(len(self._values))]

    # -- extension ------------------------------------------------------

    def append_segment(self, end_time: float, value: int) -> None:
        """Append one segment ending at ``end_time`` (extenders use this).

        Merges with the previous segment when the value is unchanged.
        """
        if end_time <= self.horizon:
            raise LoadModelError(
                f"segment end {end_time} does not extend horizon {self.horizon}")
        value = int(value)
        if value < 0:
            raise LoadModelError("competing process counts must be >= 0")
        if self._values and self._values[-1] == value:
            self._times[-1] = float(end_time)
        else:
            self._times.append(float(end_time))
            self._values.append(value)
        self._horizon = self._times[-1]
        # The stale kernel is kept: its epoch mismatch marks it for an
        # incremental tail extension on the next kernel() call.
        self._epoch += 1
        _MUTATIONS[0] += 1  # simflow: disable=SF001 (coherence counter)

    def append_segments(self, pairs: "Sequence[tuple[float, int]]") -> None:
        """Append many ``(end_time, value)`` segments in one mutation.

        Exactly ``append_segment`` called in a loop -- same validation,
        same equal-value merging -- but with one epoch bump and one
        kernel invalidation, so bulk extenders (the ON/OFF dwell loop
        materializing thousands of segments per build) do not pay the
        per-segment invalidation cost.
        """
        if not pairs:
            return
        times = self._times
        values = self._values
        horizon = self._horizon
        for end_time, value in pairs:
            end_time = float(end_time)
            if end_time <= horizon:
                raise LoadModelError(
                    f"segment end {end_time} does not extend horizon {horizon}")
            value = int(value)
            if value < 0:
                raise LoadModelError("competing process counts must be >= 0")
            if values and values[-1] == value:
                times[-1] = end_time
            else:
                times.append(end_time)
                values.append(value)
            horizon = end_time
        self._horizon = horizon
        self._epoch += 1
        _MUTATIONS[0] += 1  # simflow: disable=SF001 (coherence counter)

    def _append_run(self, end_times: "list[float]",
                    values: "list[int]") -> None:
        """Bulk append for extender fast paths, one mutation.

        Contract (callers guarantee; not re-validated): ``end_times`` are
        strictly increasing floats with ``end_times[0] > horizon``,
        ``values`` are non-negative ints, and no two *consecutive* values
        are equal -- so the only possible merge is the first element into
        the current final segment, and the rest is a straight extend.
        """
        if not end_times:
            return
        times = self._times
        vals = self._values
        if vals and vals[-1] == values[0]:
            times[-1] = end_times[0]
            times.extend(end_times[1:])
            vals.extend(values[1:])
        else:
            times.extend(end_times)
            vals.extend(values)
        self._horizon = times[-1]
        self._epoch += 1
        _MUTATIONS[0] += 1  # simflow: disable=SF001 (coherence counter)

    def _ensure(self, t: float) -> None:
        if t < self._horizon:
            return
        if self._extender is not None:
            target = max(t * _EXTEND_SLACK, self._horizon * _EXTEND_SLACK,
                         t + 1.0)
            self._extender(self, target)
            if t >= self._horizon:
                raise LoadModelError(
                    f"trace extender failed to reach requested time {t} "
                    f"(horizon stuck at {self._horizon})")
        elif self._beyond == "error":
            raise LoadModelError(
                f"trace ends at t={self._horizon} but t={t} was requested")
        else:  # hold final value
            self.append_segment(max(t + 1.0, self._horizon * _EXTEND_SLACK),
                                self._values[-1] if self._values else 0)

    def _extend_for_integral(self, remaining: float) -> None:
        """Grow the trace until (at least) ``remaining`` more availability
        integral can plausibly fit; callers loop until it actually does.

        ``remaining`` is in availability units (<= the wall-clock span it
        covers), so doubling it overshoots for any load below n=1 and the
        retry loop handles heavier load.
        """
        self._ensure(self._horizon + remaining * 2.0 + 1.0)

    # -- the compiled kernel --------------------------------------------

    def kernel(self):
        """The compiled :class:`~repro.load.kernels.TraceKernel` for the
        trace's current state.

        Cached per epoch.  A stale kernel (the trace grew since it was
        compiled) is recompiled *incrementally*: mutations only ever
        append segments, so only the tail past the old final segment is
        recomputed (:func:`~repro.load.kernels.extend_kernel`), with
        results bit-identical to a from-scratch compile.
        """
        kernel = self._kernel
        if kernel is None:
            from repro.load.kernels import compile_trace
            kernel = compile_trace(self._epoch, self._times, self._values)
            self._kernel = kernel
        elif kernel.epoch != self._epoch:
            from repro.load.kernels import extend_kernel
            kernel = extend_kernel(kernel, self._epoch, self._times,
                                   self._values)
            self._kernel = kernel
        return kernel

    # -- queries --------------------------------------------------------

    def value_at(self, t: float) -> int:
        """Number of competing processes at time ``t``."""
        if t < 0:
            raise LoadModelError(f"negative time {t}")
        if t >= self._horizon:
            self._ensure(t)
        idx = bisect_right(self._times, t) - 1
        if idx < 0 or idx >= len(self._values):
            raise LoadModelError(
                f"time {t} is outside the materialized trace "
                f"[0, {self._times[-1]}) -- extension failed")
        return self._values[idx]

    def availability_at(self, t: float) -> float:
        """CPU share one application process gets at ``t``: ``1/(1+n)``."""
        return 1.0 / (1.0 + self.value_at(t))

    def integrate_availability(self, t0: float, t1: float) -> float:
        """``∫ 1/(1+n(u)) du`` over ``[t0, t1]`` (exact).

        Two prefix-sum lookups: ``I(t1) - I(t0)`` on the compiled
        kernel (bit-identical to the scalar reference, which accumulates
        the same prefix sum with a Python loop).
        """
        if t0 < 0:
            raise LoadModelError(f"negative start time {t0}")
        if t1 < t0:
            raise LoadModelError(f"empty window [{t0}, {t1}]")
        if t1 == t0:
            return 0.0
        if t1 >= self._horizon:
            self._ensure(t1)
        kernel = self.kernel()
        return kernel.integral_to(t1) - kernel.integral_to(t0)

    def mean_availability(self, t0: float, t1: float) -> float:
        """Average CPU share over ``[t0, t1]``; instantaneous if t0 == t1."""
        if t1 == t0:
            return self.availability_at(t0)
        return self.integrate_availability(t0, t1) / (t1 - t0)

    def advance_work(self, t0: float, demand: float) -> float:
        """Finish time of ``demand`` unloaded-CPU-seconds started at ``t0``.

        ``demand`` is the compute requirement already divided by the
        host's unloaded speed (i.e., seconds of dedicated CPU).  Returns
        the earliest ``t`` with ``integrate_availability(t0, t) == demand``
        -- one inverse-prefix-sum lookup on the compiled kernel.
        """
        if demand < 0:
            raise LoadModelError(f"negative compute demand {demand}")
        if demand == 0:
            return t0
        if t0 < 0:
            raise LoadModelError(f"negative start time {t0}")
        if t0 >= self._horizon:
            self._ensure(t0)
        kernel = self.kernel()
        target = kernel.integral_to(t0) + demand
        while kernel.cum_list[-1] < target:
            # Not enough materialized availability: extend and recompile.
            self._extend_for_integral(target - kernel.cum_list[-1])
            kernel = self.kernel()
        finish = kernel.invert(target)
        # Inverting the prefix sum can round a hair below t0 for tiny
        # demands; time never runs backwards.
        return finish if finish > t0 else t0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<LoadTrace segments={self.n_segments} "
                f"horizon={self.horizon:.6g}>")


class LoadModel:
    """Interface: stochastic (or replayed) generator of load traces."""

    def build(self, rng, horizon: float) -> LoadTrace:
        """Materialize a trace to at least ``horizon`` seconds.

        Parameters
        ----------
        rng:
            A :class:`numpy.random.Generator`; the model must draw all its
            randomness from it (reproducibility contract).
        horizon:
            Initial materialization horizon; traces remain lazily
            extensible past it using the same ``rng``.
        """
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human-readable description (used in reports)."""
        return type(self).__name__


class ConstantExtender:
    """Extender that appends the same value forever.

    A named class (not a closure) so the scenario-lowering pass
    (:mod:`repro.simkernel.plan`) can *prove* a trace stays constant
    beyond its horizon by inspecting the extender, not just the load
    model the host was specced with (tests legitimately replace traces
    behind a spec's back).
    """

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = int(value)

    def __call__(self, trace: LoadTrace, new_horizon: float) -> None:
        trace.append_segment(new_horizon, self.value)


class ConstantLoadModel(LoadModel):
    """A fixed number of competing processes forever (incl. 0 = dedicated)."""

    def __init__(self, n_competing: int = 0) -> None:
        if n_competing < 0:
            raise LoadModelError("n_competing must be >= 0")
        self.n_competing = int(n_competing)

    def build(self, rng, horizon: float) -> LoadTrace:
        return LoadTrace([0.0, max(horizon, 1.0)], [self.n_competing],
                         extender=ConstantExtender(self.n_competing))

    def describe(self) -> str:
        return f"constant load (n={self.n_competing})"
