"""Load traces and the load-model interface.

A :class:`LoadTrace` is a right-open piecewise-constant function
``n(t) >= 0``: the number of external compute-bound processes on a host.
Traces are *lazily extensible*: stochastic models attach an extender so a
trace grows on demand as the simulation advances (application makespans
are not known up front -- the paper targets run-until-convergence codes).

The two operations the simulators need are exact (no time-stepping):

* :meth:`LoadTrace.integrate_availability` -- CPU share received by one
  application process over a window, under fair timesharing;
* :meth:`LoadTrace.advance_work` -- the finish time of a compute demand
  started at ``t0``, by walking trace segments.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, Optional, Sequence

from repro.errors import LoadModelError

#: Fraction by which lazy extension overshoots, to amortize extend calls.
_EXTEND_SLACK = 1.5


class LoadTrace:
    """Piecewise-constant external load ``n(t)`` on one host.

    Parameters
    ----------
    times:
        Segment breakpoints, strictly increasing, ``times[0] == 0.0``.
        Segment ``i`` spans ``[times[i], times[i+1])``; the trace is
        defined up to ``horizon`` (== ``times[-1] + last segment`` handled
        by extension).  Internally ``times`` has one more entry than
        ``values``: the final entry is the horizon.
    values:
        Number of competing processes on each segment (``len(times) - 1``
        entries, each >= 0).
    extender:
        Optional callable ``extender(trace, new_horizon)`` that appends
        segments until ``trace.horizon >= new_horizon``.  Without one, use
        of the trace past its horizon follows ``beyond_horizon``.
    beyond_horizon:
        For non-extensible traces: ``"hold"`` keeps the final value
        forever, ``"error"`` raises :class:`LoadModelError`.
    """

    __slots__ = ("_times", "_values", "_extender", "_beyond")

    def __init__(self, times: Sequence[float], values: Sequence[int],
                 extender: Optional[Callable[["LoadTrace", float], None]] = None,
                 beyond_horizon: str = "hold") -> None:
        times = [float(t) for t in times]
        values = [int(v) for v in values]
        if len(times) != len(values) + 1:
            raise LoadModelError(
                f"need len(times) == len(values) + 1, got {len(times)} and {len(values)}")
        if times[0] != 0.0:
            raise LoadModelError(f"trace must start at t=0, got {times[0]}")
        if any(b <= a for a, b in zip(times, times[1:])):
            raise LoadModelError("trace breakpoints must be strictly increasing")
        if any(v < 0 for v in values):
            raise LoadModelError("competing process counts must be >= 0")
        if beyond_horizon not in ("hold", "error"):
            raise LoadModelError(f"unknown beyond_horizon mode {beyond_horizon!r}")
        self._times = times
        self._values = values
        self._extender = extender
        self._beyond = beyond_horizon

    # -- inspection -----------------------------------------------------

    @property
    def horizon(self) -> float:
        """Time up to which the trace is currently materialized."""
        return self._times[-1]

    @property
    def n_segments(self) -> int:
        return len(self._values)

    def segments(self) -> "list[tuple[float, float, int]]":
        """Materialized ``(start, end, n)`` triples (a copy)."""
        return [(self._times[i], self._times[i + 1], self._values[i])
                for i in range(len(self._values))]

    # -- extension ------------------------------------------------------

    def append_segment(self, end_time: float, value: int) -> None:
        """Append one segment ending at ``end_time`` (extenders use this).

        Merges with the previous segment when the value is unchanged.
        """
        if end_time <= self.horizon:
            raise LoadModelError(
                f"segment end {end_time} does not extend horizon {self.horizon}")
        value = int(value)
        if value < 0:
            raise LoadModelError("competing process counts must be >= 0")
        if self._values and self._values[-1] == value:
            self._times[-1] = float(end_time)
        else:
            self._times.append(float(end_time))
            self._values.append(value)

    def _ensure(self, t: float) -> None:
        if t < self.horizon:
            return
        if self._extender is not None:
            target = max(t * _EXTEND_SLACK, self.horizon * _EXTEND_SLACK, t + 1.0)
            self._extender(self, target)
            if t >= self.horizon:  # pragma: no cover - defensive
                raise LoadModelError("trace extender failed to reach requested time")
        elif self._beyond == "error":
            raise LoadModelError(
                f"trace ends at t={self.horizon} but t={t} was requested")
        else:  # hold final value
            self.append_segment(max(t + 1.0, self.horizon * _EXTEND_SLACK),
                                self._values[-1] if self._values else 0)

    # -- queries --------------------------------------------------------

    def value_at(self, t: float) -> int:
        """Number of competing processes at time ``t``."""
        if t < 0:
            raise LoadModelError(f"negative time {t}")
        self._ensure(t)
        idx = bisect_right(self._times, t) - 1
        idx = min(idx, len(self._values) - 1)
        return self._values[idx]

    def availability_at(self, t: float) -> float:
        """CPU share one application process gets at ``t``: ``1/(1+n)``."""
        return 1.0 / (1.0 + self.value_at(t))

    def integrate_availability(self, t0: float, t1: float) -> float:
        """``∫ 1/(1+n(u)) du`` over ``[t0, t1]`` (exact)."""
        if t0 < 0:
            raise LoadModelError(f"negative start time {t0}")
        if t1 < t0:
            raise LoadModelError(f"empty window [{t0}, {t1}]")
        if t1 == t0:
            return 0.0
        self._ensure(t1)
        total = 0.0
        idx = min(bisect_right(self._times, t0) - 1, len(self._values) - 1)
        t = t0
        while t < t1:
            seg_end = min(self._times[idx + 1], t1)
            total += (seg_end - t) / (1.0 + self._values[idx])
            t = seg_end
            idx += 1
        return total

    def mean_availability(self, t0: float, t1: float) -> float:
        """Average CPU share over ``[t0, t1]``; instantaneous if t0 == t1."""
        if t1 == t0:
            return self.availability_at(t0)
        return self.integrate_availability(t0, t1) / (t1 - t0)

    def advance_work(self, t0: float, demand: float) -> float:
        """Finish time of ``demand`` unloaded-CPU-seconds started at ``t0``.

        ``demand`` is the compute requirement already divided by the
        host's unloaded speed (i.e., seconds of dedicated CPU).  Returns
        the earliest ``t`` with ``integrate_availability(t0, t) == demand``.
        """
        if demand < 0:
            raise LoadModelError(f"negative compute demand {demand}")
        if demand == 0:
            return t0
        if t0 < 0:
            raise LoadModelError(f"negative start time {t0}")
        self._ensure(t0)
        idx = min(bisect_right(self._times, t0) - 1, len(self._values) - 1)
        t = t0
        remaining = float(demand)
        while True:
            if idx >= len(self._values):
                # Ran off the materialized end: extend (extension may merge
                # into the final segment, so re-derive the index from t).
                self._ensure(t + remaining * 2.0 + 1.0)
                idx = min(bisect_right(self._times, t) - 1,
                          len(self._values) - 1)
            avail = 1.0 / (1.0 + self._values[idx])
            seg_end = self._times[idx + 1]
            capacity = (seg_end - t) * avail
            if capacity >= remaining:
                return t + remaining / avail
            remaining -= capacity
            t = seg_end
            idx += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<LoadTrace segments={self.n_segments} "
                f"horizon={self.horizon:.6g}>")


class LoadModel:
    """Interface: stochastic (or replayed) generator of load traces."""

    def build(self, rng, horizon: float) -> LoadTrace:
        """Materialize a trace to at least ``horizon`` seconds.

        Parameters
        ----------
        rng:
            A :class:`numpy.random.Generator`; the model must draw all its
            randomness from it (reproducibility contract).
        horizon:
            Initial materialization horizon; traces remain lazily
            extensible past it using the same ``rng``.
        """
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human-readable description (used in reports)."""
        return type(self).__name__


class ConstantLoadModel(LoadModel):
    """A fixed number of competing processes forever (incl. 0 = dedicated)."""

    def __init__(self, n_competing: int = 0) -> None:
        if n_competing < 0:
            raise LoadModelError("n_competing must be >= 0")
        self.n_competing = int(n_competing)

    def build(self, rng, horizon: float) -> LoadTrace:
        def extend(trace: LoadTrace, new_horizon: float) -> None:
            trace.append_segment(new_horizon, self.n_competing)

        return LoadTrace([0.0, max(horizon, 1.0)], [self.n_competing],
                         extender=extend)

    def describe(self) -> str:
        return f"constant load (n={self.n_competing})"
