"""Numpy-backed load-trace kernels: O(log n) queries and batch entry points.

The strategy simulators ask two questions of every host's
:class:`~repro.load.base.LoadTrace`, once per host per iteration:

* ``integrate_availability(t0, t1)`` -- CPU share received over a window;
* ``advance_work(t0, demand)`` -- when a compute demand finishes.

The original implementations walked trace segments in pure Python --
O(segments in the window) per query, times tens of hosts, times tens of
thousands of iterations per sweep.  This module replaces the walk with a
*compiled* trace representation (:class:`TraceKernel`): segment
breakpoints and values as numpy arrays plus a cached prefix sum of
per-segment availability integrals, so

* ``integrate_availability`` becomes two prefix-sum lookups, and
* ``advance_work`` becomes one inverse-prefix-sum lookup,

both O(log segments).  The kernel is cached on the trace and invalidated
whenever the trace mutates (``append_segment``, lazy extension).

Float-identity contract
-----------------------
Every kernel result is **bit-for-bit identical** to the scalar reference
implementations kept in this module (:func:`integrate_availability_scalar`,
:func:`advance_work_scalar`), which CI cross-checks.  The shared algebra:

* per-segment integral ``seg[i] = (times[i+1] - times[i]) / (1 + n_i)``,
* prefix sum ``cum`` accumulated left-to-right (``numpy.cumsum`` over
  float64 performs exactly the sequential IEEE-754 additions of the
  Python loop, which the property tests pin down),
* ``I(t) = cum[i] + (t - times[i]) / (1 + n_i)`` for ``t`` in segment
  ``i``, with ``integrate_availability(t0, t1) = I(t1) - I(t0)`` and
  ``advance_work(t0, d)`` inverting ``I`` at ``I(t0) + d``.

Scalar lookups index Python-list mirrors of the arrays (``tolist`` is
value-preserving for float64) because a ``bisect`` on a list outruns a
scalar ``numpy.searchsorted`` call; the batch entry points
(:func:`integrate_availability_many`, :func:`advance_work_many`,
:func:`effective_rates_many`) use the arrays.

Every query also ticks the process-wide kernel-event counter
(:func:`repro.simkernel.engine.count_kernel_events`) so sweep benchmarks
can report kernel throughput for the analytic simulators.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.errors import LoadModelError
from repro.load.base import _MUTATIONS
from repro.simkernel.engine import count_kernel_events

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.load.base import LoadTrace
    from repro.platform.host import Host


class TraceKernel:
    """Compiled representation of one trace's materialized segments.

    Built lazily by :meth:`LoadTrace.kernel`; the epoch stamp ties a
    kernel to the trace state it was compiled from.  Because traces only
    ever *grow* (append or merge-into-last-segment), a stale kernel is
    always an ancestor of the current trace state, and
    :func:`extend_kernel` recompiles just the changed tail instead of
    the whole trace -- resuming the prefix-sum accumulation from the
    last shared entry, which is exactly where a full sequential
    recompute would have arrived with the same bits.
    """

    __slots__ = ("epoch", "times_list", "den_list", "cum_list",
                 "_times_arr", "_den_arr", "_cum_arr")

    def __init__(self, epoch: int, times: Sequence[float],
                 values: Sequence[int]) -> None:
        self.epoch = epoch
        if len(values) < 256:
            # Short traces (the freshly-built common case) compile faster
            # as a plain left-to-right fold than through numpy's array
            # round-trip; ``numpy.cumsum`` over float64 performs exactly
            # these sequential additions, so both paths agree bit-for-bit
            # (the arrays materialize lazily if a batch caller needs
            # them).
            times_list = list(times)
            den_list = [1.0 + v for v in values]
            cum_list = [0.0]
            acc = 0.0
            for i, den in enumerate(den_list):
                acc = acc + (times_list[i + 1] - times_list[i]) / den
                cum_list.append(acc)
            self.times_list = times_list
            self.den_list = den_list
            self.cum_list = cum_list
            self._times_arr = None
            self._den_arr = None
            self._cum_arr = None
            return
        times_arr = np.asarray(times, dtype=np.float64)
        den = 1.0 + np.asarray(values, dtype=np.float64)
        seg = np.diff(times_arr) / den
        cum = np.empty(len(times_arr), dtype=np.float64)
        cum[0] = 0.0
        np.cumsum(seg, out=cum[1:])
        self._times_arr = times_arr
        self._den_arr = den
        self._cum_arr = cum
        # List mirrors: scalar bisect on a Python list beats a scalar
        # numpy searchsorted; tolist() preserves every float64 bit.
        self.times_list = times_arr.tolist()
        self.den_list = den.tolist()
        self.cum_list = cum.tolist()

    # -- array views (materialized on demand after a tail extension) -----

    @property
    def times(self) -> np.ndarray:
        if self._times_arr is None:
            self._times_arr = np.asarray(self.times_list, dtype=np.float64)
        return self._times_arr

    @property
    def den(self) -> np.ndarray:
        if self._den_arr is None:
            self._den_arr = np.asarray(self.den_list, dtype=np.float64)
        return self._den_arr

    @property
    def cum(self) -> np.ndarray:
        if self._cum_arr is None:
            self._cum_arr = np.asarray(self.cum_list, dtype=np.float64)
        return self._cum_arr

    # -- scalar lookups (callers guarantee 0 <= t < horizon) ------------

    def index_of(self, t: float) -> int:
        """Segment index containing ``t``; raises if out of range."""
        idx = bisect_right(self.times_list, t) - 1
        if idx < 0 or idx >= len(self.den_list):
            raise LoadModelError(
                f"time {t} is outside the materialized trace "
                f"[0, {self.times_list[-1]}) -- extension failed")
        return idx

    def integral_to(self, t: float) -> float:
        """``I(t)``: availability integrated from 0 to ``t``."""
        idx = self.index_of(t)
        return self.cum_list[idx] + (t - self.times_list[idx]) / self.den_list[idx]

    def total_integral(self) -> float:
        """``I(horizon)``: the full materialized availability."""
        return self.cum_list[-1]

    def invert(self, target: float) -> float:
        """Earliest ``t`` with ``I(t) == target`` (target <= I(horizon)).

        Boundary targets resolve in the *earlier* segment, matching the
        segment walk's ``capacity >= remaining`` acceptance.
        """
        cum = self.cum_list
        idx = bisect_left(cum, target) - 1
        if idx < 0:
            idx = 0
        return self.times_list[idx] + (target - cum[idx]) * self.den_list[idx]


def compile_trace(epoch: int, times: Sequence[float],
                  values: Sequence[int]) -> TraceKernel:
    """Compile one trace state into a :class:`TraceKernel`."""
    return TraceKernel(epoch, times, values)


def extend_kernel(old: TraceKernel, epoch: int, times: Sequence[float],
                  values: Sequence[int]) -> TraceKernel:
    """Recompile a grown trace by extending its previous kernel.

    Trace mutations only append segments or move the end of the last one
    (equal-value merge), so everything before the old final segment is
    shared verbatim and only ``cum`` entries from that segment onward
    need recomputing.  The accumulation resumes from the last shared
    prefix-sum entry with the same left-to-right float64 additions a
    full recompute performs, so the result is bit-identical to
    :func:`compile_trace` on the grown trace -- at O(tail) cost instead
    of O(trace).
    """
    n_old = len(old.den_list)
    kernel = TraceKernel.__new__(TraceKernel)
    kernel.epoch = epoch
    times_list = old.times_list[:n_old]
    times_list.extend(times[n_old:])
    den_list = old.den_list[:]
    den_list.extend(1.0 + v for v in values[n_old:])
    cum_list = old.cum_list[:n_old]
    acc = cum_list[-1]
    for i in range(n_old - 1, len(values)):
        acc = acc + (times_list[i + 1] - times_list[i]) / den_list[i]
        cum_list.append(acc)
    kernel.times_list = times_list
    kernel.den_list = den_list
    kernel.cum_list = cum_list
    kernel._times_arr = None
    kernel._den_arr = None
    kernel._cum_arr = None
    return kernel


# -- scalar reference path ---------------------------------------------------
#
# Pure-Python implementations of the same algebra, recomputing the prefix
# sum with a plain left-to-right loop on every call.  CI cross-checks the
# kernel against these; they share the trace's extension helpers so both
# paths materialize identical trace states.


def _reference_cum(trace: "LoadTrace") -> "list[float]":
    """The prefix sum, accumulated exactly like ``numpy.cumsum``."""
    times = trace._times
    values = trace._values
    cum = [0.0]
    acc = 0.0
    for i in range(len(values)):
        acc += (times[i + 1] - times[i]) / (1.0 + values[i])
        cum.append(acc)
    return cum


def _reference_integral_to(trace: "LoadTrace", cum: "list[float]",
                           t: float) -> float:
    idx = bisect_right(trace._times, t) - 1
    if idx < 0 or idx >= len(trace._values):
        raise LoadModelError(
            f"time {t} is outside the materialized trace "
            f"[0, {trace._times[-1]}) -- extension failed")
    return cum[idx] + (t - trace._times[idx]) / (1.0 + trace._values[idx])


def integrate_availability_scalar(trace: "LoadTrace", t0: float,
                                  t1: float) -> float:
    """Scalar reference for :meth:`LoadTrace.integrate_availability`."""
    if t0 < 0:
        raise LoadModelError(f"negative start time {t0}")
    if t1 < t0:
        raise LoadModelError(f"empty window [{t0}, {t1}]")
    if t1 == t0:
        return 0.0
    trace._ensure(t1)
    cum = _reference_cum(trace)
    return (_reference_integral_to(trace, cum, t1)
            - _reference_integral_to(trace, cum, t0))


def advance_work_scalar(trace: "LoadTrace", t0: float,
                        demand: float) -> float:
    """Scalar reference for :meth:`LoadTrace.advance_work`."""
    if demand < 0:
        raise LoadModelError(f"negative compute demand {demand}")
    if demand == 0:
        return t0
    if t0 < 0:
        raise LoadModelError(f"negative start time {t0}")
    trace._ensure(t0)
    cum = _reference_cum(trace)
    target = _reference_integral_to(trace, cum, t0) + demand
    while cum[-1] < target:
        trace._extend_for_integral(target - cum[-1])
        cum = _reference_cum(trace)
    idx = bisect_left(cum, target) - 1
    if idx < 0:
        idx = 0
    finish = trace._times[idx] + (target - cum[idx]) * (1.0 + trace._values[idx])
    return finish if finish > t0 else t0


def value_at_scalar(trace: "LoadTrace", t: float) -> int:
    """Scalar reference for :meth:`LoadTrace.value_at`."""
    if t < 0:
        raise LoadModelError(f"negative time {t}")
    trace._ensure(t)
    idx = bisect_right(trace._times, t) - 1
    if idx < 0 or idx >= len(trace._values):
        raise LoadModelError(
            f"time {t} is outside the materialized trace "
            f"[0, {trace._times[-1]}) -- extension failed")
    return trace._values[idx]


# -- per-run batch state -----------------------------------------------------


class HostBatch:
    """Per-run batch query state over one platform's hosts.

    Holds the hosts' traces and speeds plus coherence state keyed to the
    process-wide trace-mutation counter (:func:`~repro.load.base.
    trace_mutations`), so repeated full-platform queries inside one run
    amortize to near-constant cost:

    * instantaneous rates are piecewise-constant in ``t``, so the whole
      rate map is cached and revalidated with one comparison (did any
      host cross a segment boundary?  trace growth cannot change an
      already-materialized segment, so appends never invalidate it);
    * window-averaged rates and work advancement keep per-host segment
      *cursor hints* -- query times are non-decreasing inside a run, so
      the next lookup starts in the right segment and walks forward,
      with a validity check and bisect fallback keeping any query order
      correct (amortized O(1) per host, independent of trace length).

    One instance serves one strategy run.  Callers must treat returned
    rate maps as read-only: the instantaneous map is a shared cache.
    """

    __slots__ = ("traces", "speeds", "_rate_lo", "_rate_hi",
                 "_adv_t0", "_adv_cum", "_hzn", "_kern", "_mut_seen",
                 "_inst_rates", "_inst_idx", "_inst_starts", "_inst_ends",
                 "_inst_min_end", "_inst_max_start")

    def __init__(self, hosts: "Sequence[Host]") -> None:
        self.traces = [host.trace for host in hosts]
        self.speeds = [host.spec.speed for host in hosts]
        n = len(self.traces)
        self._rate_lo = [0] * n
        self._rate_hi = [0] * n
        self._adv_t0 = [0] * n
        self._adv_cum = [0] * n
        #: Lower bound on every trace's materialized horizon -- one
        #: comparison replaces the per-host horizon checks on the
        #: full-platform paths (horizons only ever grow).
        self._hzn = 0.0
        #: Per-host kernel table, valid while the process-wide mutation
        #: counter is unchanged (an unchanged counter proves every entry
        #: still matches its trace's epoch).
        self._kern: "list[TraceKernel]" = [None] * n  # type: ignore[list-item]
        self._mut_seen = -1
        self._inst_rates: "dict[int, float] | None" = None
        self._inst_idx = [0] * n
        self._inst_starts = [0.0] * n
        self._inst_ends = [0.0] * n
        self._inst_min_end = 0.0
        self._inst_max_start = 0.0

    def _ensure_all(self, t: float) -> None:
        """Materialize every trace through ``t`` and refresh ``_hzn``."""
        hzn = float("inf")
        for trace in self.traces:
            if t >= trace._horizon:
                trace._ensure(t)
            h = trace._horizon
            if h < hzn:
                hzn = h
        self._hzn = hzn

    def _kernels(self) -> "list[TraceKernel]":
        """The per-host kernel table, revalidated in one comparison.

        Keyed on the process-wide trace-mutation counter: unchanged
        counter means no trace mutated anywhere, so every cached kernel
        is still current and the hot loops skip the per-host trace,
        kernel, and epoch fetches entirely.  On a counter change the
        whole table is rebuilt through :meth:`LoadTrace.kernel` (which
        itself extends incrementally).
        """
        seen = _MUTATIONS[0]
        kerns = self._kern
        if self._mut_seen != seen:
            for i, trace in enumerate(self.traces):
                kernel = trace._kernel
                if kernel is None or kernel.epoch != trace._epoch:
                    kernel = trace.kernel()
                kerns[i] = kernel
            self._mut_seen = seen
        return kerns

    def rates_map(self, t: float, window: float = 0.0,
                  indices: "Sequence[int] | None" = None
                  ) -> "dict[int, float]":
        """Host-index -> rate map, exactly :meth:`Host.effective_rate`.

        Covers all hosts when ``indices`` is None.  The returned mapping
        is a shared cache -- read-only for callers.
        """
        t0 = max(0.0, t - window)
        if indices is None:
            if t >= self._hzn:
                self._ensure_all(t)
            if t0 == t:
                count_kernel_events(len(self.traces))
                # The cached map is exact only while ``t`` stays inside
                # every host's cached segment -- bounded on *both* sides
                # (a backward query below a cached segment's start must
                # re-resolve, not serve the later segment's rate).
                if (self._inst_max_start <= t < self._inst_min_end
                        and self._inst_rates is not None):
                    return self._inst_rates
                return self._inst_refresh(t)
            indices = range(len(self.traces))
        else:
            traces = self.traces
            for i in indices:
                trace = traces[i]
                if t >= trace._horizon:
                    trace._ensure(t)
        return self._rates_loop(t, t0, indices)

    def _inst_refresh(self, t: float) -> "dict[int, float]":
        """Bring the instantaneous rate map up to date at ``t``.

        A cached per-host rate is exact until ``t`` leaves the segment
        it was read from (its cached end): appends only ever add
        segments or push the final breakpoint further out, so growth
        never changes a materialized segment.  Only hosts whose cached
        segment ended by ``t`` are re-resolved.
        """
        speeds = self.speeds
        idxs = self._inst_idx
        starts = self._inst_starts
        ends = self._inst_ends
        rates = self._inst_rates
        kerns = self._kern
        if self._mut_seen != _MUTATIONS[0]:
            kerns = self._kernels()
        if rates is None:
            rates = self._inst_rates = dict.fromkeys(
                range(len(self.traces)), 0.0)
        for i, end in enumerate(ends):
            if starts[i] <= t < end:
                continue
            kernel = kerns[i]
            times = kernel.times_list
            dens = kernel.den_list
            # Cursor hints can go *behind* t but never out of range:
            # kernels only ever grow (appends add segments, merges move
            # the final breakpoint out), so an index valid once is valid
            # forever, and the walk stops before the horizon entry
            # because _ensure guarantees t < times[-1].
            c = idxs[i]
            if times[c] > t:
                c = bisect_right(times, t) - 1
            else:
                while times[c + 1] <= t:
                    c += 1
            idxs[i] = c
            rates[i] = speeds[i] * (1.0 / dens[c])
            starts[i] = times[c]
            ends[i] = times[c + 1]
        self._inst_min_end = min(ends)
        self._inst_max_start = max(starts)
        return rates

    def _rates_loop(self, t: float, t0: float,
                    indices: "Sequence[int]") -> "dict[int, float]":
        """Cursor-hinted scalar loop (windowed and subset queries).

        Callers (:meth:`rates_map`) have already materialized every
        queried trace through ``t``.
        """
        speeds = self.speeds
        out = {}
        cur_hi = self._rate_hi
        bisect = bisect_right
        kerns = self._kern
        if self._mut_seen != _MUTATIONS[0]:
            kerns = self._kernels()
        if t0 == t:
            for i in indices:
                kernel = kerns[i]
                times = kernel.times_list
                dens = kernel.den_list
                c = cur_hi[i]
                if times[c] > t:
                    c = bisect(times, t) - 1
                else:
                    while times[c + 1] <= t:
                        c += 1
                cur_hi[i] = c
                out[i] = speeds[i] * (1.0 / dens[c])
        else:
            span = t - t0
            cur_lo = self._rate_lo
            for i in indices:
                kernel = kerns[i]
                times = kernel.times_list
                dens = kernel.den_list
                cum = kernel.cum_list
                c = cur_hi[i]
                if times[c] > t:
                    c = bisect(times, t) - 1
                else:
                    while times[c + 1] <= t:
                        c += 1
                cur_hi[i] = c
                upper = cum[c] + (t - times[c]) / dens[c]
                c = cur_lo[i]
                if times[c] > t0:
                    c = bisect(times, t0) - 1
                else:
                    while times[c + 1] <= t0:
                        c += 1
                cur_lo[i] = c
                lower = cum[c] + (t0 - times[c]) / dens[c]
                out[i] = speeds[i] * ((upper - lower) / span)
        count_kernel_events(len(out))
        return out

    def compute_end(self, chunks: "Mapping[int, float]", t0: float) -> float:
        """``max`` of per-host work-advancement finishes, exactly
        ``max(host.compute_finish(t0, flops) for ...)``."""
        if t0 < 0:
            raise LoadModelError(f"negative start time {t0}")
        traces = self.traces
        speeds = self.speeds
        adv_t0 = self._adv_t0
        adv_cum = self._adv_cum
        if t0 >= self._hzn:
            # Below the batch horizon bound every queried trace is
            # already materialized past ``t0``; otherwise check per host.
            for i in chunks:
                trace = traces[i]
                if t0 >= trace._horizon:
                    trace._ensure(t0)
        kerns = self._kern
        if self._mut_seen != _MUTATIONS[0]:
            kerns = self._kernels()
        best = t0
        for i, flops in chunks.items():
            demand = flops / speeds[i]
            if demand == 0:
                continue
            if demand < 0:
                raise LoadModelError(f"negative compute demand {demand}")
            kernel = kerns[i]
            times = kernel.times_list
            dens = kernel.den_list
            cum = kernel.cum_list
            c = adv_t0[i]
            if times[c] > t0:
                c = bisect_right(times, t0) - 1
            else:
                while times[c + 1] <= t0:
                    c += 1
            adv_t0[i] = c
            target = cum[c] + (t0 - times[c]) / dens[c] + demand
            if cum[-1] < target:
                trace = traces[i]
                while cum[-1] < target:
                    trace._extend_for_integral(target - cum[-1])
                    kernel = trace.kernel()
                    times = kernel.times_list
                    dens = kernel.den_list
                    cum = kernel.cum_list
                # The extension bumped the mutation counter; keep this
                # host's table entry current for the rest of the loop
                # (the next _kernels() call revalidates the others).
                kerns[i] = kernel
            c = adv_cum[i]
            if not cum[c] < target:
                c = bisect_left(cum, target) - 1
                if c < 0:
                    c = 0
            else:
                while cum[c + 1] < target:
                    c += 1
            adv_cum[i] = c
            finish = times[c] + (target - cum[c]) * dens[c]
            if finish > best:
                best = finish
        count_kernel_events(len(chunks))
        return best


# -- batch entry points ------------------------------------------------------


def integrate_availability_many(traces: "Sequence[LoadTrace]", t0: float,
                                t1: float) -> np.ndarray:
    """``integrate_availability(t0, t1)`` across many traces, one pass.

    All traces share the query window (the per-iteration rate-prediction
    pattern: one decision epoch, every candidate host).  Returns a
    float64 array aligned with ``traces``.
    """
    out = np.empty(len(traces), dtype=np.float64)
    count_kernel_events(len(traces))
    if t1 == t0:
        out.fill(0.0)
        return out
    for i, trace in enumerate(traces):
        out[i] = trace.integrate_availability(t0, t1)
    return out


def advance_work_many(traces: "Sequence[LoadTrace]", t0: float,
                      demands: "Sequence[float]") -> np.ndarray:
    """``advance_work(t0, demand)`` across many traces, one pass."""
    out = np.empty(len(traces), dtype=np.float64)
    count_kernel_events(len(traces))
    for i, trace in enumerate(traces):
        out[i] = trace.advance_work(t0, demands[i])
    return out


def effective_rates_many(hosts: "Sequence[Host]", t: float,
                         window: float = 0.0) -> "list[float]":
    """Window-averaged effective rates across hosts, flattened.

    The exact algebra of :meth:`Host.effective_rate` -- instantaneous
    ``speed / (1 + n(t))`` for ``window == 0`` (or ``t == 0``), else
    ``speed * (I(t) - I(t0)) / (t - t0)`` -- with the per-host call
    chain collapsed into one loop over cached kernels.
    """
    if window < 0:
        raise LoadModelError(f"negative window {window}")
    t0 = max(0.0, t - window)
    rates = []
    if t0 == t:
        for host in hosts:
            trace = host.trace
            if t >= trace._horizon:
                trace._ensure(t)
            kernel = trace._kernel
            if kernel is None or kernel.epoch != trace._epoch:
                kernel = trace.kernel()
            rates.append(host.spec.speed
                         * (1.0 / kernel.den_list[kernel.index_of(t)]))
    else:
        span = t - t0
        for host in hosts:
            trace = host.trace
            if t >= trace._horizon:
                trace._ensure(t)
            kernel = trace._kernel
            if kernel is None or kernel.epoch != trace._epoch:
                kernel = trace.kernel()
            integral = kernel.integral_to(t) - kernel.integral_to(t0)
            rates.append(host.spec.speed * (integral / span))
    count_kernel_events(len(rates))
    return rates
