"""CPU load models for shared workstations.

The paper models external CPU load on each workstation with two stochastic
models (its Section 6):

* an **ON/OFF two-state Markov source** (Fig. 2): the host is either
  unloaded or loaded with exactly one competing compute-bound process;
* a **degenerate hyperexponential lifetime model** (Fig. 3): competing
  processes arrive uniformly at random and live for hyperexponentially
  distributed times, several may overlap.

Both produce a :class:`~repro.load.base.LoadTrace` -- a piecewise-constant
function of time giving the number of competing compute-bound processes on
a host.  A host running one application process under fair CPU timesharing
then computes at ``speed / (1 + n(t))``.

Trace replay (:class:`~repro.load.trace.ReplayLoadModel`) implements the
paper's stated future work of driving the simulation from recorded load
measurements.
"""

from repro.load.base import ConstantLoadModel, LoadModel, LoadTrace
from repro.load.hyperexp import HyperexponentialLoadModel
from repro.load.onoff import AggregatedOnOffLoadModel, OnOffLoadModel
from repro.load.owner import OwnerActivityModel
from repro.load.trace import ReplayLoadModel
from repro.load.stats import TraceStats, availability_series, trace_stats

__all__ = [
    "AggregatedOnOffLoadModel",
    "ConstantLoadModel",
    "HyperexponentialLoadModel",
    "LoadModel",
    "LoadTrace",
    "OnOffLoadModel",
    "OwnerActivityModel",
    "ReplayLoadModel",
    "TraceStats",
    "availability_series",
    "trace_stats",
]
