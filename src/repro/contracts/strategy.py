"""Contract-triggered process swapping.

:class:`ContractSwapStrategy` runs the same policy machinery as
:class:`~repro.strategies.swapstrat.SwapStrategy`, but only *when the
performance contract is violated* -- the GrADS execution model, where the
contract monitor gates rescheduling actions.  Between violations the
application runs undisturbed: no per-iteration policy evaluation, no
opportunistic processor hoarding (a stronger form of the friendly
policy's restraint).
"""

from __future__ import annotations

from repro.app.iterative import ApplicationSpec
from repro.contracts.monitor import ContractMonitor, PerformanceContract
from repro.core.decision import decide_swaps
from repro.core.policy import PolicyParams, greedy_policy
from repro.platform.cluster import Platform
from repro.strategies.base import ExecutionResult, IterationRecord, Strategy
from repro.strategies.scheduler import initial_schedule


class ContractSwapStrategy(Strategy):
    """SWAP gated by a GrADS-style performance contract."""

    name = "swap-contract"

    def __init__(self, policy: PolicyParams | None = None,
                 tolerance: float = 0.2,
                 violation_window: int = 2) -> None:
        self.policy = policy or greedy_policy()
        self.tolerance = float(tolerance)
        self.violation_window = int(violation_window)
        self.name = f"swap-contract-{self.policy.name}"

    def _expected_iteration(self, platform: Platform, active, chunks,
                            comm_time: float, t: float) -> float:
        """The contract's budget: predicted iteration time on ``active``."""
        rates = self.predicted_rates(platform, t, self.policy.history_window,
                                     indices=active)
        return max(chunks[h] / rates[h] for h in active) + comm_time

    def run(self, platform: Platform, app: ApplicationSpec) -> ExecutionResult:
        self.check_fit(platform, app)
        result = ExecutionResult(strategy=self.name, app=app)

        pool = list(range(len(platform)))
        active = initial_schedule(platform, app.n_processes, t=0.0)
        chunks = app.equal_chunks(active)
        comm_time = self.comm_time(platform, app)
        swap_cost_one = platform.link.transfer_time(app.state_bytes)

        t = platform.startup_time(len(pool))
        result.startup_time = t
        result.progress.record(t, 0, "startup")

        monitor = ContractMonitor(PerformanceContract(
            expected_iteration_time=self._expected_iteration(
                platform, active, chunks, comm_time, 0.0),
            tolerance=self.tolerance,
            violation_window=self.violation_window))
        #: Policy evaluations actually performed (the GrADS saving).
        self.decision_evaluations = 0

        for i in range(1, app.iterations + 1):
            iter_start = t
            ran_on = tuple(active)
            compute_end, iter_end = self.run_iteration(platform, chunks, t,
                                                       comm_time)
            t = iter_end
            result.progress.record(t, i, "iteration")

            overhead = 0.0
            event = ""
            violated = monitor.observe(iter_end - iter_start)
            if violated and i < app.iterations:
                self.decision_evaluations += 1
                spares = [h for h in pool if h not in active]
                rates = self.predicted_rates(platform, t,
                                             self.policy.history_window)
                decision = decide_swaps(active, spares, rates, chunks,
                                        comm_time, swap_cost_one, self.policy)
                if decision.should_swap:
                    n_moves = len(decision.moves)
                    overhead = platform.link.serialized_time(
                        n_moves * app.state_bytes, n_moves)
                    event = "swap"
                    active = decision.active_set_after(active)
                    chunks = {h: app.chunk_flops for h in active}
                    result.swap_count += n_moves
                    result.overhead_time += overhead
                    t += overhead
                    result.progress.record(
                        t, i, "swap",
                        ", ".join(f"{m.out_host}->{m.in_host}"
                                  for m in decision.moves))
                    monitor.renegotiate(self._expected_iteration(
                        platform, active, chunks, comm_time, t))
                else:
                    # No better processors exist: accept the new normal so
                    # the monitor does not fire every iteration.
                    monitor.renegotiate(decision.new_iteration_time)

            result.records.append(IterationRecord(
                index=i, start=iter_start, compute_end=compute_end,
                end=iter_end, active=ran_on, overhead_after=overhead,
                event=event))

        result.makespan = t
        result.final_active = tuple(active)
        self.contract_monitor = monitor
        return result
