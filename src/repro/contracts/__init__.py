"""GrADS-style performance contracts (the paper's integration target).

The paper closes with "work is underway to integrate process swapping in
the GrADS architecture".  In GrADS, an application launches with a
*performance contract* (the performance its schedule promised); a
*contract monitor* watches the live execution and raises a violation
when reality falls short; a rescheduling action then runs.  This package
provides that triad on top of the swap machinery:

* :class:`~repro.contracts.monitor.PerformanceContract` -- the promised
  iteration time plus a tolerance and a violation window;
* :class:`~repro.contracts.monitor.ContractMonitor` -- streaming
  violation detection over measured iteration times;
* :class:`~repro.contracts.strategy.ContractSwapStrategy` -- a SWAP
  variant that consults its policy only when the contract is violated
  (instead of after every iteration) and renegotiates the contract after
  each migration.
"""

from repro.contracts.monitor import ContractMonitor, PerformanceContract
from repro.contracts.strategy import ContractSwapStrategy

__all__ = [
    "ContractMonitor",
    "ContractSwapStrategy",
    "PerformanceContract",
]
