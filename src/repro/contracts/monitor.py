"""Performance contracts and streaming violation detection."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StrategyError


@dataclass(frozen=True)
class PerformanceContract:
    """What the schedule promised: an iteration-time budget.

    A measured iteration *over-runs* the contract when it exceeds
    ``expected_iteration_time * (1 + tolerance)``; the contract is
    *violated* after ``violation_window`` consecutive over-runs (one
    slow iteration is weather, several are climate -- the same transient
    damping motivation as the paper's history window).
    """

    expected_iteration_time: float
    tolerance: float = 0.2
    violation_window: int = 2

    def __post_init__(self) -> None:
        if self.expected_iteration_time <= 0:
            raise StrategyError("expected_iteration_time must be > 0")
        if self.tolerance < 0:
            raise StrategyError("tolerance must be >= 0")
        if self.violation_window < 1:
            raise StrategyError("violation_window must be >= 1")

    @property
    def threshold(self) -> float:
        """Iteration time above which an over-run is counted."""
        return self.expected_iteration_time * (1.0 + self.tolerance)

    def renegotiated(self, new_expected: float) -> "PerformanceContract":
        """A fresh contract with a new budget (after a migration)."""
        return PerformanceContract(
            expected_iteration_time=new_expected,
            tolerance=self.tolerance,
            violation_window=self.violation_window)


class ContractMonitor:
    """Streams measured iteration times against one contract."""

    def __init__(self, contract: PerformanceContract) -> None:
        self.contract = contract
        self._consecutive = 0
        #: Total iterations observed (across renegotiations).
        self.observations = 0
        #: Total violations raised.
        self.violations = 0

    def observe(self, iteration_time: float) -> bool:
        """Feed one measurement; returns True when a violation fires.

        After firing, the consecutive counter resets (the caller is
        expected to act, typically renegotiating the contract).
        """
        if iteration_time <= 0:
            raise StrategyError("iteration_time must be > 0")
        self.observations += 1
        if iteration_time > self.contract.threshold:
            self._consecutive += 1
        else:
            self._consecutive = 0
        if self._consecutive >= self.contract.violation_window:
            self._consecutive = 0
            self.violations += 1
            return True
        return False

    def renegotiate(self, new_expected: float) -> None:
        """Replace the contract after a rescheduling action."""
        self.contract = self.contract.renegotiated(new_expected)
        self._consecutive = 0
