"""Scenario lowering: pre-bind a simulation plan before a run starts.

The strategy simulators answer the same three questions every iteration
-- effective host rates, compute-phase finish times, trace emission --
through generic code that re-discovers per-call what was already known
before the run began: whether a fault plan exists, whether an
observability session is active, and whether the load is constant.

:func:`lower` inspects a concrete ``(platform, app)`` pair once and runs
a small pipeline of *lowering passes* (the rewrite-pass idiom of MLIR
lowerings), each of which may specialize one binding of the resulting
:class:`SimPlan`:

* :class:`FaultEliminationPass` -- no fault plan on the platform means
  the fault hooks are compiled out: strategies consult
  ``plan.fault_free`` instead of re-testing ``platform.faults`` inside
  the loop.
* :class:`ObsEliminationPass` -- no active :mod:`repro.obs` session
  means trace emission is lowered to nothing: strategies guard their
  per-iteration ``obs.emit``/``obs.count`` calls on ``plan.obs_on`` so
  the disabled cost is one attribute read, not a kwargs dict per record.
* :class:`ConstantLoadPass` -- every host on a
  :class:`~repro.load.base.ConstantLoadModel` admits closed-form
  availability: ``I(t) = t / (1 + n)`` exactly, so rate queries and
  work advancement need no trace walk, no kernel, and no lazy extension
  at all.
* :class:`BatchKernelPass` -- the default lowering: per-host query loops
  are bound to the batch entry points of :mod:`repro.load.kernels`
  (one flat pass over cached prefix-sum kernels).

Float-identity contract
-----------------------
Every lowered binding reproduces the exact IEEE-754 operation sequence
of the generic path.  The constant-load closed forms mirror the kernel
algebra on a one-segment trace (``cum[0] == 0.0`` and ``times[0] ==
0.0`` make ``I(t) == t / den`` bit-exact), so golden makespans and
traces are byte-identical whichever lowering fires; the property tests
in ``tests/simkernel/test_plan.py`` pin this down.

:func:`disable_lowering` suspends the pipeline (every binding falls back
to the generic per-host call chain), which is how the microbenchmarks
measure lowered vs. unlowered scenarios.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

from repro import obs
from repro.errors import StrategyError
from repro.load.base import ConstantExtender
from repro.load.kernels import HostBatch, count_kernel_events

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.app.iterative import ApplicationSpec
    from repro.platform.cluster import Platform

#: Nesting depth of :func:`disable_lowering` blocks (0 = lowering on).
_DISABLED = [0]


@contextmanager
def disable_lowering() -> Iterator[None]:
    """Suspend the lowering pipeline inside the block (re-entrant).

    :func:`lower` still returns a :class:`SimPlan`, but with every
    binding on the generic per-host call chain -- the reference the
    microbenchmarks compare lowered scenarios against.
    """
    _DISABLED[0] += 1  # simflow: disable=SF001 (process-local toggle)
    try:
        yield
    finally:
        _DISABLED[0] -= 1  # simflow: disable=SF001 (process-local toggle)


def lowering_enabled() -> bool:
    """Whether :func:`lower` currently runs its pass pipeline."""
    return _DISABLED[0] == 0


class PlanContext:
    """Mutable build state the lowering passes refine."""

    __slots__ = ("platform", "app", "fault_free", "obs_on",
                 "constant_dens", "batch", "applied")

    def __init__(self, platform: "Platform",
                 app: "ApplicationSpec | None" = None) -> None:
        self.platform = platform
        self.app = app
        self.fault_free = False
        self.obs_on = True
        #: Per-host ``1 + n`` denominators when every load is constant.
        self.constant_dens: "tuple[float, ...] | None" = None
        self.batch = False
        self.applied: "list[str]" = []


class LoweringPass:
    """One inspection step of the pipeline.

    :meth:`apply` returns ``True`` when the pass fired (specialized a
    binding); fired passes are recorded in ``PlanContext.applied``.
    """

    name = "pass"

    def apply(self, ctx: PlanContext) -> bool:
        raise NotImplementedError


class FaultEliminationPass(LoweringPass):
    """Compile out fault hooks when the platform carries no fault plan."""

    name = "fault-elim"

    def apply(self, ctx: PlanContext) -> bool:
        ctx.fault_free = ctx.platform.faults is None
        return ctx.fault_free


class ObsEliminationPass(LoweringPass):
    """Lower trace emission to nothing when no obs session is active.

    The session is activated *around* a strategy run (the executor's
    ``obs.observing`` block), never inside one, so the run-start
    inspection holds for the whole run.
    """

    name = "obs-elim"

    def apply(self, ctx: PlanContext) -> bool:
        ctx.obs_on = obs.active() is not None
        return not ctx.obs_on


class ConstantLoadPass(LoweringPass):
    """Closed-form availability when every host load is constant.

    A provably-constant trace is one merged segment with ``times[0] ==
    0`` and ``cum[0] == 0``, so the kernel algebra collapses exactly:
    ``I(t) = t / den`` and ``advance(t0, d) = (t0/den + d) * den``.

    The proof inspects the *instantiated traces*, not the host specs: a
    trace counts as constant only when its single materialized segment
    will provably be held forever -- by a :class:`ConstantExtender` of
    the same value, or by ``beyond_horizon="hold"`` with no extender.
    A trace swapped in behind a constant spec (a standard test rig)
    therefore correctly declines the pass.
    """

    name = "constant-load"

    def apply(self, ctx: PlanContext) -> bool:
        dens = []
        for host in ctx.platform.hosts:
            trace = host.trace
            if trace.n_segments != 1:
                return False
            value = trace._values[0]
            extender = trace._extender
            if isinstance(extender, ConstantExtender):
                if extender.value != value:
                    return False
            elif extender is not None or trace._beyond != "hold":
                return False
            dens.append(1.0 + value)
        ctx.constant_dens = tuple(dens)
        return True


class BatchKernelPass(LoweringPass):
    """Bind per-host query loops to the batch kernel entry points."""

    name = "batch-kernel"

    def apply(self, ctx: PlanContext) -> bool:
        ctx.batch = True
        return True


#: The pipeline, in application order.
PASSES: "tuple[LoweringPass, ...]" = (
    FaultEliminationPass(),
    ObsEliminationPass(),
    ConstantLoadPass(),
    BatchKernelPass(),
)


class SimPlan:
    """A pre-bound simulation plan for one ``(platform, app)`` run.

    Strategies fetch one via :func:`lower` at run start and route their
    hot-path queries through it:

    * :meth:`predicted_rates` -- the rate map fed to swap/rebalance
      decisions;
    * :meth:`iteration` -- one fault-free BSP compute + communication
      phase;
    * :attr:`obs_on` -- gate for per-iteration trace emission;
    * :attr:`fault_free` -- whether fault hooks were compiled out.
    """

    __slots__ = ("platform", "fault_free", "obs_on", "lowered", "passes",
                 "_dens", "_batch", "iteration", "predicted_rates")

    def __init__(self, ctx: PlanContext, lowered: bool) -> None:
        self.platform = ctx.platform
        self.lowered = lowered
        self.fault_free = ctx.platform.faults is None
        self.obs_on = ctx.obs_on if lowered else True
        self.passes = tuple(ctx.applied)
        self._dens = ctx.constant_dens if lowered else None
        self._batch = None
        # The public bindings are instance attributes pointing at the
        # innermost callables, not dispatching methods: strategies call
        # them once per iteration, where each indirection layer costs.
        #
        # ``iteration(chunks, start, comm_time) -> (compute_end,
        # iter_end)`` runs one fault-free BSP phase pair;
        # ``predicted_rates(t, window=0.0, indices=None)`` is the
        # host-index -> flop/s map -- the lowered equivalent of
        # ``Platform.effective_rates``.
        if self._dens is not None:
            self.iteration = self._iteration_constant
            self.predicted_rates = self._rates_constant
        elif lowered and ctx.batch:
            batch = self._batch = HostBatch(ctx.platform.hosts)
            compute_end = batch.compute_end

            def iteration(chunks, start, comm_time, _end=compute_end):
                if not chunks:
                    raise StrategyError("no active hosts")
                finish = _end(chunks, start)
                return finish, finish + comm_time

            self.iteration = iteration
            self.predicted_rates = batch.rates_map
        else:
            self.iteration = self._iteration_generic
            self.predicted_rates = self._rates_generic

    # -- constant-load closed forms -------------------------------------

    def _iteration_constant(self, chunks, start, comm_time):
        if not chunks:
            raise StrategyError("no active hosts")
        hosts = self.platform.hosts
        dens = self._dens
        compute_end = start
        for h, flops in chunks.items():
            host = hosts[h]
            demand = flops / host.spec.speed
            if demand == 0:
                continue
            den = dens[h]
            # Exact kernel algebra on the one-segment trace:
            # target = I(start) + demand; finish = invert(target).
            finish = (start / den + demand) * den
            if finish > compute_end:
                compute_end = finish
        count_kernel_events(len(chunks))
        return compute_end, compute_end + comm_time

    def _rates_constant(self, t, window=0.0, indices=None):
        hosts = self.platform.hosts
        dens = self._dens
        if indices is None:
            indices = range(len(hosts))
        t0 = max(0.0, t - window)
        count_kernel_events(len(indices))
        if t0 == t:
            return {i: hosts[i].spec.speed * (1.0 / dens[i])
                    for i in indices}
        span = t - t0
        return {i: hosts[i].spec.speed * ((t / dens[i] - t0 / dens[i]) / span)
                for i in indices}

    # -- generic (unlowered) reference ----------------------------------

    def _iteration_generic(self, chunks, start, comm_time):
        if not chunks:
            raise StrategyError("no active hosts")
        hosts = self.platform.hosts
        compute_end = max(hosts[h].compute_finish(start, flops)
                          for h, flops in chunks.items())
        return compute_end, compute_end + comm_time

    def _rates_generic(self, t, window=0.0, indices=None):
        hosts = self.platform.hosts
        if indices is None:
            indices = range(len(hosts))
        return {i: hosts[i].effective_rate(t, window) for i in indices}

    def describe(self) -> dict:
        """JSON-ready summary of what the lowering decided."""
        return {"lowered": self.lowered,
                "passes": list(self.passes),
                "fault_free": self.fault_free,
                "obs_on": self.obs_on,
                "constant_load": self._dens is not None}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SimPlan passes={list(self.passes)}>"


def lower(platform: "Platform",
          app: "ApplicationSpec | None" = None) -> SimPlan:
    """Run the lowering pipeline for one concrete run."""
    ctx = PlanContext(platform, app)
    enabled = lowering_enabled()
    if enabled:
        for pipeline_pass in PASSES:
            if pipeline_pass.apply(ctx):
                ctx.applied.append(pipeline_pass.name)
    return SimPlan(ctx, lowered=enabled)


def lower_spec(spec, x: "float | None" = None, seed: int = 0) -> dict:
    """Inspect one cell of an ``ExperimentSpec`` before running it.

    Builds the cell's platform and variants (exactly what the executor
    would run) and reports, per variant label, which passes would fire.
    ``spec`` is duck-typed (needs ``.name``, ``.x_values`` and
    ``.build``) to keep this module below the experiments layer.
    """
    if x is None:
        x = spec.x_values[0]
    platform, variants = spec.build(x, seed)
    report = {"scenario": spec.name, "x": float(x), "seed": int(seed),
              "variants": {}}
    for label, app, _strategy in variants:
        report["variants"][label] = lower(platform, app).describe()
    return report
