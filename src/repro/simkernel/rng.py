"""Named, reproducible random-number streams.

Stochastic components (one per host load source, per workload generator,
...) must be statistically independent yet fully reproducible, and -- the
property the paper's methodology hinges on -- *identical across competing
strategies* so that back-to-back comparisons see the same environment.

:class:`RngRegistry` derives an independent :class:`numpy.random.Generator`
for each string/int key path from a single root seed, using SHA-256 of the
key path mixed into a :class:`numpy.random.SeedSequence`.  The same
``(root_seed, key path)`` always produces the same stream, regardless of
creation order.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, *key: "str | int") -> int:
    """Derive a 64-bit child seed from a root seed and a key path.

    The derivation is order-independent across *different* key paths (each
    path hashes independently) and stable across Python processes (no use
    of ``hash()``).
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(root_seed)).encode("utf-8"))
    for part in key:
        hasher.update(b"\x00")
        hasher.update(str(part).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "little")


class RngRegistry:
    """Factory of independent, named random streams under one root seed.

    Examples
    --------
    >>> reg = RngRegistry(42)
    >>> a = reg.stream("load", "host", 3)
    >>> b = RngRegistry(42).stream("load", "host", 3)
    >>> float(a.random()) == float(b.random())
    True
    """

    def __init__(self, root_seed: int) -> None:
        self.root_seed = int(root_seed)

    def seed_for(self, *key: "str | int") -> int:
        """The derived 64-bit seed for ``key`` (without creating a stream)."""
        return derive_seed(self.root_seed, *key)

    def stream(self, *key: "str | int") -> np.random.Generator:
        """A fresh Generator for ``key``; same key -> same stream.

        Constructs ``Generator(PCG64(seed))`` directly -- ``PCG64`` wraps
        an int seed in a ``SeedSequence`` itself, so this is the exact
        stream ``default_rng`` would produce at less than half the
        construction cost (platform builds create one stream per host,
        so construction is on the sweep hot path).
        """
        return np.random.Generator(np.random.PCG64(self.seed_for(*key)))

    def spawn(self, *key: "str | int") -> "RngRegistry":
        """A sub-registry rooted at ``key`` (for nested components)."""
        return RngRegistry(self.seed_for(*key))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngRegistry(root_seed={self.root_seed})"
