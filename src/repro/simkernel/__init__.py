"""Discrete-event simulation kernel.

This package plays the role that the SimGrid toolkit played in the paper:
it provides a simulated clock, an event heap, generator-coroutine
processes, and waitable synchronization primitives.  The platform model
(:mod:`repro.platform`) and the simulated MPI layer (:mod:`repro.smpi`)
are built on top of it.

Public API
----------

* :class:`~repro.simkernel.engine.Simulator` -- the event loop and clock.
* :class:`~repro.simkernel.events.Event`, :class:`~repro.simkernel.events.Timeout`,
  :class:`~repro.simkernel.events.AnyOf`, :class:`~repro.simkernel.events.AllOf`
  -- waitable events.
* :class:`~repro.simkernel.process.Process`,
  :class:`~repro.simkernel.process.Interrupt` -- coroutine processes.
* :class:`~repro.simkernel.resources.Resource`,
  :class:`~repro.simkernel.resources.Store`,
  :class:`~repro.simkernel.resources.Mailbox` -- synchronization.
* :class:`~repro.simkernel.rng.RngRegistry` -- named, reproducible random
  number streams.
"""

from repro.simkernel.engine import Simulator
from repro.simkernel.events import AllOf, AnyOf, Event, Timeout
from repro.simkernel.process import Interrupt, Process
from repro.simkernel.resources import Mailbox, Resource, Store
from repro.simkernel.rng import RngRegistry, derive_seed

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Mailbox",
    "Process",
    "Resource",
    "RngRegistry",
    "Simulator",
    "Store",
    "Timeout",
    "derive_seed",
]
