"""Waitable events for the simulation kernel.

An :class:`Event` is a one-shot condition that processes can wait on by
``yield``-ing it.  Events carry a value (delivered to the waiter) or an
exception (re-raised in the waiter).  :class:`Timeout` is an event that
fires after a fixed simulated delay; :class:`AnyOf`/:class:`AllOf` compose
events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.errors import ProcessError, SchedulingError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simkernel.engine import Simulator

#: Scheduling priorities: lower runs first at equal timestamps.  URGENT is
#: used for internal bookkeeping (e.g. resource releases) so that state
#: changes are visible to normally-scheduled events at the same instant.
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot waitable condition.

    Parameters
    ----------
    sim:
        The simulator this event belongs to.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_scheduled", "_defused")

    #: Sentinel for "no value yet".
    _PENDING = object()

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        #: Callbacks invoked (in order) when the event is processed.
        self.callbacks: list[Callable[["Event"], None]] | None = []
        self._value: Any = Event._PENDING
        self._ok: bool = True
        self._scheduled = False
        self._defused = False

    # -- state ---------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """Whether the event has a value and is (or will be) scheduled."""
        return self._value is not Event._PENDING

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """Whether the event succeeded (valid once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception).  Raises if still pending."""
        if self._value is Event._PENDING:
            raise ProcessError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering ----------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise ProcessError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, priority=NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception, re-raised in waiters."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self.triggered:
            raise ProcessError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.sim._schedule(self, priority=NORMAL)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event.

        Useful as a callback: ``other.add_callback(this.trigger)``.
        """
        if self.triggered:
            return
        if event.ok:
            self.succeed(event.value)
        else:
            event.defuse()
            self.fail(event.value)

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)`` to run when the event fires.

        If the event was already processed the callback runs immediately.
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SchedulingError(f"negative timeout delay {delay!r}")
        super().__init__(sim)
        self.delay = float(delay)
        self._ok = True
        self._value = value
        sim._schedule(self, priority=NORMAL, delay=self.delay)


class _Condition(Event):
    """Base for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = tuple(events)
        for event in self.events:
            if event.sim is not sim:
                raise SchedulingError("cannot mix events from different simulators")
        self._count = 0
        if not self.events:
            self.succeed(self._collect())
            return
        for event in self.events:
            event.add_callback(self._check)

    def _collect(self) -> dict[Event, Any]:
        return {e: e.value for e in self.events if e.processed and e.ok}

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event.ok:
                event.defuse()
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            return
        self._count += 1
        if self._satisfied():
            # Collect values of events that actually fired by now (a
            # pending Timeout is "triggered" from birth but has not fired).
            self.succeed({e: e.value for e in self.events
                          if e.processed and e.ok})

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires when any constituent event fires."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= 1


class AllOf(_Condition):
    """Fires when all constituent events have fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= len(self.events)
