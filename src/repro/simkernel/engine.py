"""The discrete-event simulation loop.

:class:`Simulator` owns the simulated clock and the event heap.  Events are
ordered by ``(time, priority, sequence)`` so that same-time events run in a
deterministic order, which makes whole simulations reproducible.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.errors import SchedulingError, SimulationError
from repro.simkernel.events import NORMAL, Event, Timeout
from repro.simkernel.process import Process

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.hooks import SimHooks

# The event loop is the innermost loop of every simulation; bind the heap
# primitives once so `step`/`_schedule` skip the module-attribute lookups.
_heappush = heapq.heappush
_heappop = heapq.heappop

_INF = float("inf")

#: Process-wide tally of kernel events: discrete events processed by
#: *every* Simulator instance plus load-kernel queries issued by the
#: analytic (iteration-level) simulators.  Orchestration layers (the
#: sweep executor's timing records) read it via
#: :func:`events_processed_total` to report kernel throughput without
#: holding references to the simulators created deep inside a run.
_EVENTS_TOTAL = [0]


def events_processed_total() -> int:
    """Kernel events processed in this process so far.

    Discrete-event loop events plus analytic load-kernel queries (see
    :func:`count_kernel_events`); the sweep executor samples deltas of
    this around each cell, so ``engine_events`` in ``BENCH_sweeps.json``
    measures kernel throughput for *both* simulator families.
    """
    return _EVENTS_TOTAL[0]


def count_kernel_events(n: int) -> None:
    """Credit ``n`` analytic kernel queries to the process-wide tally.

    The iteration-level simulators never enter the event loop; their
    "events" are the exact load-trace queries (availability integrals,
    work advancement) the batch kernels in :mod:`repro.load.kernels`
    answer.  Counting them here gives the sweep benchmarks one
    throughput number covering both simulation styles.
    """
    _EVENTS_TOTAL[0] += n  # simflow: disable=SF001 (diagnostics counter)


class Simulator:
    """Discrete-event simulator: clock, heap, and factory methods.

    Examples
    --------
    >>> sim = Simulator()
    >>> def proc(sim):
    ...     yield sim.timeout(3.0)
    ...     return "done"
    >>> p = sim.process(proc(sim))
    >>> sim.run()
    >>> sim.now, p.value
    (3.0, 'done')
    """

    def __init__(self, start_time: float = 0.0,
                 hooks: "SimHooks | None" = None) -> None:
        self._now = float(start_time)
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = count()
        #: Number of events processed so far (diagnostic).
        self.processed_events = 0
        #: Observation hooks (:class:`repro.obs.hooks.SimHooks`), or None.
        #: The disabled cost is one ``is not None`` check per operation.
        self.hooks = hooks

    # -- clock ----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling -----------------------------------------------------

    def _schedule(self, event: Event, priority: int = NORMAL,
                  delay: float = 0.0) -> None:
        """Insert a triggered event into the heap (internal)."""
        if not 0.0 <= delay < _INF:
            # One range check rejects negatives, NaN and +/-inf: NaN fails
            # every comparison, and a non-finite timestamp silently corrupts
            # the heap's total ordering for every later event.
            if delay < 0:
                raise SchedulingError(
                    f"cannot schedule into the past (delay={delay})")
            raise SchedulingError(
                f"non-finite delay {delay!r} cannot be scheduled")
        if event._scheduled:
            raise SchedulingError(f"{event!r} is already scheduled")
        event._scheduled = True
        seq = next(self._seq)
        _heappush(self._heap, (self._now + delay, priority, seq, event))
        if self.hooks is not None:
            self.hooks.event_scheduled(self._now, self._now + delay,
                                       priority, seq, type(event).__name__)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        heap = self._heap
        if not heap:
            raise SimulationError("no more events to process")
        when, _prio, seq, event = _heappop(heap)
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError("event scheduled in the past")
        self._now = when
        if self.hooks is not None:
            self.hooks.event_fired(when, seq, type(event).__name__)
        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)
        self.processed_events += 1
        # Per-process diagnostics counter, never read by sim logic.
        _EVENTS_TOTAL[0] += 1  # simflow: disable=SF001
        if not event.ok and not event._defused:
            exc = event.value
            raise exc

    # -- run loop ---------------------------------------------------------

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            * ``None`` -- run until no events remain.
            * a number -- run until the clock reaches that time.
            * an :class:`Event` -- run until that event is processed and
              return its value.
        """
        until_event: Optional[Event] = None
        until_time = float("inf")
        if isinstance(until, Event):
            until_event = until
            if until_event.processed:
                return until_event.value
        elif until is not None:
            until_time = float(until)
            if until_time < self._now:
                raise SchedulingError(
                    f"cannot run until t={until_time} < now={self._now}")

        if type(self).step is Simulator.step:
            # Inlined hot loop: the heap and per-event counters are bound
            # to locals and flushed once, instead of attribute traffic on
            # every event.  Subclasses that override step() (the runtime
            # sanitizer) keep the dispatching loop below.
            heap = self._heap
            hooks = self.hooks
            processed = 0
            try:
                while heap:
                    if until_event is not None and until_event.processed:
                        return until_event.value
                    when, _prio, seq, event = heap[0]
                    if when > until_time:
                        self._now = until_time
                        return None
                    _heappop(heap)
                    if when < self._now:  # pragma: no cover - defensive
                        raise SimulationError("event scheduled in the past")
                    self._now = when
                    if hooks is not None:
                        hooks.event_fired(when, seq, type(event).__name__)
                    callbacks, event.callbacks = event.callbacks, None
                    assert callbacks is not None
                    for callback in callbacks:
                        callback(event)
                    processed += 1
                    if not event.ok and not event._defused:
                        raise event.value
            finally:
                self.processed_events += processed
                _EVENTS_TOTAL[0] += processed  # simflow: disable=SF001
        else:
            while self._heap:
                if until_event is not None and until_event.processed:
                    return until_event.value
                if self._heap[0][0] > until_time:
                    self._now = until_time
                    return None
                self.step()

        if until_event is not None:
            if until_event.processed:
                return until_event.value
            raise SimulationError(
                "simulation ran out of events before the 'until' event fired")
        if until_time != float("inf"):
            self._now = until_time
        return None

    # -- factories --------------------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str | None = None) -> Process:
        """Start a new coroutine process driving ``generator``."""
        return Process(self, generator, name=name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator t={self._now:.6g} pending={len(self._heap)}>"
