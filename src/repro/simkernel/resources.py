"""Synchronization primitives built on the event kernel.

* :class:`Resource` -- a counted semaphore with a FIFO wait queue
  (models exclusive access to, e.g., a shared medium token).
* :class:`Store` -- an unbounded FIFO buffer of items with blocking gets.
* :class:`Mailbox` -- a :class:`Store` whose gets can filter on a
  predicate; this is the substrate for simulated MPI message matching
  (source / tag / communicator).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.errors import SimulationError
from repro.simkernel.events import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simkernel.engine import Simulator


class Request(Event):
    """Pending acquisition of a :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.sim)
        self.resource = resource
        resource._queue.append(self)
        resource._dispatch()

    def cancel(self) -> None:
        """Withdraw an un-granted request from the queue."""
        if not self.triggered and self in self.resource._queue:
            self.resource._queue.remove(self)


class Resource:
    """A counted resource with FIFO granting.

    Parameters
    ----------
    sim:
        Owning simulator.
    capacity:
        Number of simultaneous holders (>= 1).
    """

    def __init__(self, sim: "Simulator", capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = int(capacity)
        self._in_use = 0
        self._queue: deque[Request] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently granted slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def request(self) -> Request:
        """Ask for a slot; yield the returned event to wait for it."""
        return Request(self)

    def release(self) -> None:
        """Return a previously granted slot."""
        if self._in_use <= 0:
            raise SimulationError("release() without a matching granted request")
        self._in_use -= 1
        self._dispatch()

    def _dispatch(self) -> None:
        while self._queue and self._in_use < self.capacity:
            request = self._queue.popleft()
            self._in_use += 1
            request.succeed(self)


class _Get(Event):
    """Pending retrieval from a :class:`Store` / :class:`Mailbox`."""

    __slots__ = ("predicate",)

    def __init__(self, sim: "Simulator",
                 predicate: Optional[Callable[[Any], bool]]) -> None:
        super().__init__(sim)
        self.predicate = predicate

    def matches(self, item: Any) -> bool:
        return self.predicate is None or self.predicate(item)


class Store:
    """Unbounded FIFO buffer with blocking gets.

    ``put`` never blocks; ``get`` returns an event that fires with the
    oldest item once one is available.
    """

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._items: deque[Any] = deque()
        self._getters: deque[_Get] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item`` and wake a matching waiter, if any."""
        self._items.append(item)
        self._dispatch()

    def get(self) -> Event:
        """Return an event that fires with the next available item."""
        getter = _Get(self.sim, None)
        self._getters.append(getter)
        self._dispatch()
        return getter

    def _dispatch(self) -> None:
        while self._getters and self._items:
            matched = self._match()
            if matched is None:
                return
            getter, item = matched
            self._getters.remove(getter)
            self._items.remove(item)
            getter.succeed(item)

    def _match(self) -> Optional[tuple[_Get, Any]]:
        """First (getter, item) pair that matches, in getter FIFO order."""
        for getter in self._getters:
            for item in self._items:
                if getter.matches(item):
                    return getter, item
        return None


class Mailbox(Store):
    """A :class:`Store` supporting predicate-filtered gets.

    Used by the simulated MPI layer: a receive posts a get whose predicate
    checks (source, tag, communicator) against queued message envelopes.
    Messages that match no pending receive stay queued ("unexpected
    message queue" in MPI parlance).
    """

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> Event:
        """Return an event firing with the oldest item matching ``predicate``."""
        getter = _Get(self.sim, predicate)
        self._getters.append(getter)
        self._dispatch()
        return getter

    def peek_count(self, predicate: Optional[Callable[[Any], bool]] = None) -> int:
        """Number of queued items matching ``predicate`` (non-blocking)."""
        if predicate is None:
            return len(self._items)
        return sum(1 for item in self._items if predicate(item))
