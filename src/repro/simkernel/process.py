"""Coroutine processes for the simulation kernel.

A :class:`Process` drives a Python generator: each ``yield`` must produce
an :class:`~repro.simkernel.events.Event`, and the process resumes when
that event fires, receiving the event's value.  A process is itself an
event that fires when the generator returns (with its return value) or
raises.

Processes can be interrupted: :meth:`Process.interrupt` raises
:class:`Interrupt` inside the generator at its current wait point, which
the generator may catch to model preemption (e.g. a compute task whose
host's load changed).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.errors import ProcessError
from repro.simkernel.events import URGENT, Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simkernel.engine import Simulator


class Interrupt(Exception):
    """Raised inside a process generator by :meth:`Process.interrupt`."""

    @property
    def cause(self) -> Any:
        """The object passed to :meth:`Process.interrupt`."""
        return self.args[0] if self.args else None


class _Initialize(Event):
    """Internal event used to start a process at the current time."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process") -> None:
        super().__init__(sim)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        sim._schedule(self, priority=URGENT)


class Process(Event):
    """A running coroutine; also an event that fires on termination."""

    __slots__ = ("generator", "name", "_target")

    def __init__(self, sim: "Simulator", generator: Generator,
                 name: str | None = None) -> None:
        if not hasattr(generator, "throw"):
            raise ProcessError(f"{generator!r} is not a generator")
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process currently waits on (None before start /
        #: after termination).
        self._target: Event | None = _Initialize(sim, self)
        if sim.hooks is not None:
            sim.hooks.process_started(sim.now, self.name)

    @property
    def is_alive(self) -> bool:
        """Whether the generator has not yet terminated."""
        return self._value is Event._PENDING

    def succeed(self, value: Any = None) -> "Event":
        super().succeed(value)
        if self.sim.hooks is not None:
            self.sim.hooks.process_ended(self.sim.now, self.name, True)
        return self

    def fail(self, exception: BaseException) -> "Event":
        super().fail(exception)
        if self.sim.hooks is not None:
            self.sim.hooks.process_ended(self.sim.now, self.name, False)
        return self

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt(cause)` inside the process.

        The interrupt is delivered immediately (synchronously): the target
        event the process was waiting on remains pending, and the process
        may re-wait on it.
        """
        if not self.is_alive:
            raise ProcessError(f"{self!r} has terminated and cannot be interrupted")
        if self._target is None or isinstance(self._target, _Initialize):
            raise ProcessError(f"{self!r} has not yet started waiting")
        target, self._target = self._target, None
        # Stop listening on the old target; it may still fire later.
        if target.callbacks is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._deliver(Interrupt(cause), is_exception=True)

    # -- internal ---------------------------------------------------------

    def _resume(self, event: Event) -> None:
        """Callback: the awaited event fired; advance the generator."""
        self._target = None
        if event.ok:
            self._deliver(event.value, is_exception=False)
        else:
            event.defuse()
            self._deliver(event.value, is_exception=True)

    def _deliver(self, value: Any, is_exception: bool) -> None:
        try:
            if is_exception:
                target = self.generator.throw(value)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as interrupt:
            # An uncaught interrupt terminates the process with failure.
            self.fail(interrupt)
            return
        except BaseException as exc:
            self.fail(exc)
            return

        if not isinstance(target, Event):
            exc = ProcessError(
                f"process {self.name!r} yielded a non-event: {target!r}")
            try:
                self.generator.throw(exc)
            except StopIteration as stop:
                self.succeed(stop.value)
            except BaseException as inner:
                self.fail(inner)
            return
        if target.sim is not self.sim:
            self.fail(ProcessError(
                f"process {self.name!r} yielded an event from another simulator"))
            return
        self._target = target
        target.add_callback(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.is_alive else "done"
        return f"<Process {self.name!r} {state}>"
