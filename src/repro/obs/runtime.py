"""The runtime telemetry plane: wall-clock spans, fleet timelines, progress.

:mod:`repro.obs` has **two planes** (docs/OBSERVABILITY.md, "Two
planes"):

* the *sim-time plane* (:mod:`repro.obs.trace`, :mod:`repro.obs.metrics`)
  -- every timestamp is simulated seconds, exports are byte-stable, and
  CI compares them byte-for-byte across reruns, worker counts, and cache
  states;
* the *runtime plane* (this module) -- explicitly **nondeterministic**
  wall-clock telemetry of the sweep machinery itself: where host time
  goes, which fabric worker is straggling, why a lease expired.  Nothing
  here may ever feed back into a simulation result; the sim-time plane
  stays digest-identical whether runtime telemetry is on or off (the
  ``telemetry-isolation`` CI job enforces exactly that).

The plane has four parts:

* :class:`RuntimeRecorder` -- a structured wall-clock event log.  Each
  process of a run (coordinator, every fabric worker, the pool executor)
  appends JSONL records to its own ``spans-<role>.jsonl`` file in a
  shared *run directory*, flushed per line so a follower sees them live.
* :func:`fleet_timeline` / :func:`wall_summary` -- render a run
  directory's span files as a Chrome trace-event document (one track per
  worker, a coordinator track for leases and heartbeats) and nearest-rank
  wall-time percentiles per span kind.
* :class:`MetricsSnapshotter` / :func:`prometheus_text` -- periodic
  :class:`~repro.obs.metrics.MetricsRegistry` snapshots to a JSONL
  series, exportable as a Prometheus-style textfile
  (``python -m repro.obs runtime-metrics RUN_DIR``).
* :class:`ProgressTicker` -- live progress: a coordinator-side ticker
  (cells done/total, cache hits, active workers, stragglers, ETA) that
  also maintains an atomically-replaced ``progress.json`` so
  ``python -m repro.obs tail RUN_DIR`` can follow out-of-band.

Record schema (one JSON object per line, key-sorted)::

    {"kind": "<dotted.kind>",      # e.g. "lease.assign", "cell.compute"
     "seq": 3,                     # per-file monotone sequence number
     "t": 12345.678,               # time.monotonic() seconds
     "dur": 0.012,                 # span duration (spans only)
     "pid": 4242, "role": "coordinator", "worker": "w0" | null,
     ...}                          # kind-specific fields

The first record of every file is ``runtime.meta`` and additionally
carries ``unix`` (``time.time()``), ``schema``, and ``host`` (the
machine that wrote the file -- TCP fabric workers record on their own
host); the timeline exporter uses the (``t``, ``unix``) anchor pair to
align files recorded by processes with different monotonic epochs.
"""

# This module *is* the wall-clock plane: every clock read below is
# deliberate and never observable by simulation code.
# simlint: disable-file=SL001

from __future__ import annotations

import json
import math
import os
import socket
import sys
import time
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, TextIO

from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import jsonable

#: Schema version stamped into every ``runtime.meta`` record.
RUNTIME_SCHEMA = 1

#: Span-file glob inside a run directory.
SPAN_GLOB = "spans-*.jsonl"

#: Heartbeat-latency histogram bounds (seconds of host wall time).
HEARTBEAT_BUCKETS = (0.005, 0.02, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0)

#: Per-cell wall-time histogram bounds (seconds of host wall time).
CELL_WALL_BUCKETS = (0.001, 0.005, 0.02, 0.05, 0.1, 0.5, 1.0, 5.0)


# -- the recorder -----------------------------------------------------------


class RuntimeRecorder:
    """Append wall-clock telemetry records to one JSONL span file.

    One recorder per process-and-role: the fabric coordinator owns
    ``spans-coordinator.jsonl``, worker ``w3`` owns
    ``spans-worker-w3.jsonl``, the pool executor owns
    ``spans-executor.jsonl``.  Records are flushed per line so crashes
    lose at most the record being written (the loader tolerates a torn
    final line) and a live follower sees events as they happen.
    """

    def __init__(self, path: "str | os.PathLike", *, role: str,
                 worker: "str | None" = None,
                 clock: "Callable[[], float]" = time.monotonic,
                 unix_clock: "Callable[[], float]" = time.time) -> None:
        self.path = Path(path)
        self.role = role
        self.worker = worker
        self._clock = clock
        self._unix_clock = unix_clock
        self._seq = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: "TextIO | None" = open(self.path, "a", buffering=1,
                                         encoding="utf-8")
        # ``host`` tells a cross-host fleet timeline which machine wrote
        # each track: TCP fabric workers append spans on their own host
        # (same meta schema, so readers of schema 1 are unaffected).
        self.event("runtime.meta", schema=RUNTIME_SCHEMA,
                   unix=self._unix_clock(), host=socket.gethostname())

    @classmethod
    def for_worker(cls, run_dir: "str | os.PathLike",
                   worker_id: str) -> "RuntimeRecorder":
        """The span file a fabric worker owns inside ``run_dir``."""
        return cls(Path(run_dir) / f"spans-worker-{worker_id}.jsonl",
                   role="worker", worker=worker_id)

    def now(self) -> float:
        return self._clock()

    def event(self, kind: str, *, t: "float | None" = None,
              dur: "float | None" = None, **fields: Any) -> None:
        """Append one record (an instant, or a span when ``dur`` given)."""
        if self._fh is None:
            return
        record = {key: jsonable(value) for key, value in fields.items()}
        # Structural keys win over same-named payload fields: a record's
        # (role, worker) identity is *who emitted it*, never who it is
        # about -- events concerning another worker name it in
        # ``worker_id`` instead.
        record.update(kind=str(kind), seq=self._seq,
                      t=float(t) if t is not None else self._clock(),
                      pid=os.getpid(), role=self.role, worker=self.worker)
        if dur is not None:
            record["dur"] = float(dur)
        self._seq += 1
        self._fh.write(json.dumps(record, sort_keys=True,
                                  separators=(",", ":")) + "\n")

    def span(self, kind: str, **fields: Any) -> "_Span":
        """Context manager measuring a wall-clock span::

            with recorder.span("cell.compute", x=2.0, seed=7):
                compute()
        """
        return _Span(self, kind, fields)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class _Span:
    __slots__ = ("_recorder", "_kind", "_fields", "_start")

    def __init__(self, recorder: RuntimeRecorder, kind: str,
                 fields: dict) -> None:
        self._recorder = recorder
        self._kind = kind
        self._fields = fields

    def __enter__(self) -> "_Span":
        self._start = self._recorder.now()
        return self

    def __exit__(self, *exc_info) -> None:
        end = self._recorder.now()
        self._recorder.event(self._kind, t=self._start,
                             dur=end - self._start, **self._fields)


# -- loading span files back ------------------------------------------------


class SpanSet:
    """All runtime records of one run directory, queryable.

    The runtime-plane sibling of :class:`repro.obs.analyze.TraceSet`:
    records are plain dicts, unparseable lines are collected (a worker
    killed mid-write tears its last line) rather than raised, and files
    are visited in sorted-name order so exports are stable for a given
    set of input bytes.
    """

    def __init__(self, records: "Iterable[dict]",
                 bad_lines: "list[tuple[str, int, str]] | None" = None,
                 ) -> None:
        self.records = list(records)
        self.bad_lines = list(bad_lines or [])

    @classmethod
    def load_dir(cls, run_dir: "str | os.PathLike") -> "SpanSet":
        run_dir = Path(run_dir)
        records: "list[dict]" = []
        bad: "list[tuple[str, int, str]]" = []
        for path in sorted(run_dir.glob(SPAN_GLOB)):
            for lineno, line in enumerate(
                    path.read_text(encoding="utf-8").splitlines(), start=1):
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                    if not isinstance(record, dict):
                        raise ValueError("record is not an object")
                except ValueError:
                    bad.append((path.name, lineno, line))
                    continue
                records.append(record)
        return cls(records, bad)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> "Iterator[dict]":
        return iter(self.records)

    def filter(self, kind: "str | None" = None, *,
               role: "str | None" = None,
               worker: "str | None" = None) -> "SpanSet":
        out = self.records
        if kind is not None:
            out = [r for r in out if r.get("kind") == kind]
        if role is not None:
            out = [r for r in out if r.get("role") == role]
        if worker is not None:
            out = [r for r in out if r.get("worker") == worker]
        return SpanSet(out, self.bad_lines)

    def kinds(self) -> "dict[str, int]":
        counts: "dict[str, int]" = {}
        for record in self.records:
            kind = str(record.get("kind", "?"))
            counts[kind] = counts.get(kind, 0) + 1
        return dict(sorted(counts.items()))

    def tracks(self) -> "list[tuple[str, str | None]]":
        """Distinct ``(role, worker)`` sources, coordinator first, then
        workers in id order, then anything else."""
        seen = {(str(r.get("role", "?")), r.get("worker"))
                for r in self.records}

        def key(track):
            role, worker = track
            order = {"coordinator": 0, "executor": 1, "worker": 2}
            return (order.get(role, 3), role, str(worker or ""))

        return sorted(seen, key=key)


# -- fleet timeline (Chrome trace-event export) -----------------------------


def _file_offsets(spans: SpanSet) -> "dict[tuple[str, str | None], float]":
    """Per-track offset aligning monotonic clocks via the meta anchors.

    Each ``runtime.meta`` record pairs a monotonic ``t`` with a wall
    ``unix`` stamp; ``unix - t`` converts that file's monotonic times
    onto the shared wall clock.  Tracks without a meta record (torn
    file) fall back to offset 0 of the earliest anchored track.
    """
    offsets: "dict[tuple[str, str | None], float]" = {}
    for record in spans.records:
        if record.get("kind") != "runtime.meta":
            continue
        try:
            offset = float(record["unix"]) - float(record["t"])
        except (KeyError, TypeError, ValueError):
            continue
        offsets[(str(record.get("role", "?")), record.get("worker"))] = offset
    return offsets


def fleet_timeline(spans: SpanSet) -> dict:
    """Render runtime spans as a Chrome trace-event document.

    One ``pid`` (track) per span source -- the coordinator first, then
    workers in id order -- so chrome://tracing / ui.perfetto.dev shows
    the fleet as parallel swimlanes: leases and heartbeats on the
    coordinator lane, per-cell compute spans on each worker lane.
    Records with ``dur`` become complete ("X") slices; the rest become
    instant events.
    """
    tracks = spans.tracks()
    pids = {track: pid for pid, track in enumerate(tracks)}
    offsets = _file_offsets(spans)
    default_offset = min(offsets.values(), default=0.0)
    anchored = []
    for record in spans.records:
        track = (str(record.get("role", "?")), record.get("worker"))
        offset = offsets.get(track, default_offset)
        try:
            t = float(record["t"]) + offset
        except (KeyError, TypeError, ValueError):
            continue
        anchored.append((t, track, record))
    base = min((t for t, _track, _r in anchored), default=0.0)

    events: "list[dict]" = []
    for track in tracks:
        role, worker = track
        name = role if worker is None else f"{role} {worker}"
        events.append({"ph": "M", "name": "process_name",
                       "pid": pids[track], "tid": 0, "ts": 0,
                       "args": {"name": name}})
    for t, track, record in anchored:
        if record.get("kind") == "runtime.meta":
            continue
        args = {k: v for k, v in record.items()
                if k not in ("kind", "t", "dur", "pid", "role", "worker",
                             "seq")}
        ts = (t - base) * 1e6  # simlint: disable=SL005 (seconds -> trace microseconds)
        common = {"name": str(record["kind"]), "cat": "runtime",
                  "pid": pids[track], "tid": 0, "ts": ts, "args": args}
        dur = record.get("dur")
        if isinstance(dur, (int, float)):
            events.append({"ph": "X",
                           "dur": float(dur) * 1e6,  # simlint: disable=SL005 (seconds -> trace microseconds)
                           **common})
        else:
            events.append({"ph": "i", "s": "t", **common})
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"tool": "repro.obs.runtime",
                          "clock": "host-wall-seconds",
                          "schema": RUNTIME_SCHEMA}}


def write_fleet_timeline(run_dir: "str | os.PathLike",
                         out: "str | os.PathLike | None" = None) -> Path:
    """Export ``run_dir``'s span files as a Chrome trace; returns the path."""
    run_dir = Path(run_dir)
    out = Path(out) if out is not None else run_dir / "timeline.trace.json"
    doc = fleet_timeline(SpanSet.load_dir(run_dir))
    out.write_text(json.dumps(doc, sort_keys=True,
                              separators=(",", ":")) + "\n")
    return out


# -- wall-time percentiles --------------------------------------------------


def percentile(values: "Iterable[float]", q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 for an empty input."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if not 0 <= q <= 100:
        raise ObservabilityError(f"percentile q must be in [0, 100]: {q}")
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def wall_stats(walls: "Iterable[float]") -> "dict[str, float]":
    """p50/p95/max summary of a wall-time sample (zeros when empty)."""
    ordered = sorted(walls)
    if not ordered:
        return {"p50": 0.0, "p95": 0.0, "max": 0.0}
    return {"p50": percentile(ordered, 50.0),
            "p95": percentile(ordered, 95.0),
            "max": ordered[-1]}


def wall_summary(spans: SpanSet) -> dict:
    """Per-kind wall-time percentiles over every span carrying ``dur``."""
    durations: "dict[str, list[float]]" = {}
    for record in spans.records:
        dur = record.get("dur")
        if isinstance(dur, (int, float)):
            durations.setdefault(str(record["kind"]), []).append(float(dur))
    return {kind: {"count": len(values), **wall_stats(values)}
            for kind, values in sorted(durations.items())}


# -- Prometheus-style textfile exposition -----------------------------------


def _prom_name(name: str) -> str:
    return "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)


def _prom_value(value) -> str:
    if isinstance(value, str):  # the "inf"/"-inf"/"nan" JSON spellings
        value = float(value)
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(value)


def prometheus_text(payload: dict, *, prefix: str = "repro_") -> str:
    """Render a :meth:`MetricsRegistry.to_dict` payload as Prometheus
    text exposition format (counters, gauges, and histograms with
    cumulative ``_bucket{le=...}`` series)."""
    lines: "list[str]" = []
    for name in sorted(payload.get("counters", {})):
        metric = prefix + _prom_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prom_value(payload['counters'][name])}")
    for name in sorted(payload.get("gauges", {})):
        value = payload["gauges"][name]
        if value is None:
            continue
        metric = prefix + _prom_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(value)}")
    for name in sorted(payload.get("histograms", {})):
        data = payload["histograms"][name]
        metric = prefix + _prom_name(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(data["bounds"], data["buckets"]):
            cumulative += int(count)
            lines.append(
                f'{metric}_bucket{{le="{_prom_value(float(bound))}"}} '
                f"{cumulative}")
        lines.append(f'{metric}_bucket{{le="+Inf"}} {int(data["count"])}')
        lines.append(f"{metric}_sum {_prom_value(data['sum'])}")
        lines.append(f"{metric}_count {int(data['count'])}")
    return "\n".join(lines) + ("\n" if lines else "")


class MetricsSnapshotter:
    """Append periodic registry snapshots to a ``metrics.jsonl`` series."""

    def __init__(self, registry: MetricsRegistry,
                 path: "str | os.PathLike", *, interval: float = 1.0,
                 clock: "Callable[[], float]" = time.monotonic,
                 unix_clock: "Callable[[], float]" = time.time) -> None:
        self.registry = registry
        self.path = Path(path)
        self.interval = float(interval)
        self._clock = clock
        self._unix_clock = unix_clock
        self._seq = 0
        self._last: "float | None" = None

    def maybe_snapshot(self) -> bool:
        """Snapshot if ``interval`` elapsed since the last one."""
        now = self._clock()
        if self._last is not None and now - self._last < self.interval:
            return False
        self.snapshot(now=now)
        return True

    def snapshot(self, *, now: "float | None" = None) -> None:
        now = self._clock() if now is None else now
        self._last = now
        line = json.dumps({"seq": self._seq, "t": now,
                           "unix": self._unix_clock(),
                           "metrics": self.registry.to_dict()},
                          sort_keys=True, separators=(",", ":"))
        self._seq += 1
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")


def load_metrics_series(run_dir: "str | os.PathLike") -> "list[dict]":
    """The snapshot series of a run directory (empty if none written)."""
    path = Path(run_dir) / "metrics.jsonl"
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return []
    series = []
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            series.append(json.loads(line))
        except ValueError:
            continue  # torn final line of a crashed run
    return series


def write_prometheus(run_dir: "str | os.PathLike",
                     out: "str | os.PathLike | None" = None) -> Path:
    """Export the *latest* metrics snapshot as a Prometheus textfile."""
    run_dir = Path(run_dir)
    out = Path(out) if out is not None else run_dir / "metrics.prom"
    series = load_metrics_series(run_dir)
    payload = series[-1]["metrics"] if series else {}
    out.write_text(prometheus_text(payload))
    return out


# -- live progress ----------------------------------------------------------


class ProgressTicker:
    """Coordinator-side live progress: a stderr ticker plus an
    atomically-replaced ``progress.json`` for out-of-band followers.

    ETA is the naive rate estimate -- cells remaining over cells
    completed per elapsed second -- which is exactly what an operator
    watching a million-cell campaign wants first.
    """

    def __init__(self, total: int, *, cache_hits: int = 0,
                 path: "str | os.PathLike | None" = None,
                 stream: "TextIO | None" = None,
                 interval: float = 0.5,
                 clock: "Callable[[], float]" = time.monotonic,
                 unix_clock: "Callable[[], float]" = time.time) -> None:
        self.total = int(total)
        self.cache_hits = int(cache_hits)
        self.path = Path(path) if path is not None else None
        self.stream = stream
        self.interval = float(interval)
        self._clock = clock
        self._unix_clock = unix_clock
        self._started = clock()
        self._baseline_done = 0
        self._last_emit: "float | None" = None
        self.done = 0
        self.active_workers = 0
        self.stragglers = 0
        self.state = "running"

    def eta_seconds(self, now: float) -> "float | None":
        computed = self.done - self._baseline_done
        elapsed = now - self._started
        if computed <= 0 or elapsed <= 0:
            return None
        rate = computed / elapsed
        return (self.total - self.done) / rate

    def update(self, done: int, *, active_workers: int = 0,
               stragglers: int = 0, force: bool = False) -> bool:
        """Record progress; emit a tick if the interval elapsed (or
        ``force``).  Returns whether a tick was emitted."""
        self.done = int(done)
        self.active_workers = int(active_workers)
        self.stragglers = int(stragglers)
        now = self._clock()
        if (not force and self._last_emit is not None
                and now - self._last_emit < self.interval):
            return False
        self._emit(now)
        return True

    def finish(self, done: "int | None" = None, *,
               state: str = "done") -> None:
        if done is not None:
            self.done = int(done)
        self.state = state
        self._emit(self._clock())

    def _emit(self, now: float) -> None:
        self._last_emit = now
        eta = self.eta_seconds(now)
        if self.path is not None:
            payload = self.snapshot(now, eta)
            tmp = self.path.with_name(f"{self.path.name}.tmp{os.getpid()}")
            tmp.write_text(json.dumps(payload, sort_keys=True, indent=2)
                           + "\n")
            os.replace(tmp, self.path)
        if self.stream is not None:
            self.stream.write(format_progress(
                self.snapshot(now, eta)) + "\n")
            self.stream.flush()

    def snapshot(self, now: "float | None" = None,
                 eta: "float | None" = None) -> dict:
        now = self._clock() if now is None else now
        if eta is None:
            eta = self.eta_seconds(now)
        return {"state": self.state, "done": self.done, "total": self.total,
                "cache_hits": self.cache_hits,
                "active_workers": self.active_workers,
                "stragglers": self.stragglers,
                "elapsed_s": now - self._started,
                "eta_s": eta, "unix": self._unix_clock()}


def format_progress(snapshot: dict) -> str:
    """One human-readable progress line from a ``progress.json`` payload."""
    total = snapshot.get("total", 0) or 0
    done = snapshot.get("done", 0) or 0
    pct = 100.0 * done / total if total else 0.0
    eta = snapshot.get("eta_s")
    eta_text = "eta --" if eta is None else f"eta {eta:.1f}s"
    if snapshot.get("state") == "done":
        eta_text = "done"
    elif snapshot.get("state") not in (None, "running"):
        eta_text = str(snapshot["state"])
    return (f"[progress] {done}/{total} cells ({pct:.0f}%), "
            f"{snapshot.get('cache_hits', 0)} cache hits, "
            f"{snapshot.get('active_workers', 0)} workers, "
            f"{snapshot.get('stragglers', 0)} stragglers, "
            f"{snapshot.get('elapsed_s', 0.0):.1f}s elapsed, {eta_text}")


def tail_run(run_dir: "str | os.PathLike", *, follow: bool = False,
             interval: float = 0.5, max_polls: "int | None" = None,
             stream: "TextIO | None" = None,
             sleep: "Callable[[float], None]" = time.sleep) -> int:
    """Follow a run directory's progress out-of-band.

    Prints the current progress line (and, with ``follow=True``, keeps
    polling until the run reports a terminal state or ``max_polls`` is
    exhausted).  Returns 0 if progress was found, 1 otherwise.
    """
    run_dir = Path(run_dir)
    stream = stream if stream is not None else sys.stdout
    path = run_dir / "progress.json"
    last_line: "str | None" = None
    polls = 0
    while True:
        polls += 1
        snapshot: "dict | None" = None
        try:
            snapshot = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            snapshot = None  # not written yet, or mid-replace
        if snapshot is not None:
            line = format_progress(snapshot)
            if line != last_line:
                stream.write(line + "\n")
                stream.flush()
                last_line = line
            if snapshot.get("state") != "running":
                return 0
        if not follow or (max_polls is not None and polls >= max_polls):
            return 0 if last_line is not None else 1
        sleep(interval)


# -- the run-level bundle ---------------------------------------------------


class RunTelemetry:
    """Everything one sweep run needs from the runtime plane.

    Bundles the coordinator-side :class:`RuntimeRecorder`, a runtime
    :class:`MetricsRegistry` (snapshotted periodically), and the
    :class:`ProgressTicker`.  Created by
    :func:`~repro.experiments.executor.execute_sweep` /
    :func:`~repro.experiments.fabric.execute_sweep_fabric` when the run
    asks for ``runtime_dir`` and/or ``progress``; everything degrades to
    cheap no-ops for the parts not enabled.
    """

    def __init__(self, run_dir: "str | os.PathLike | None", *,
                 role: str = "coordinator", total_cells: int = 0,
                 cache_hits: int = 0, progress: bool = False,
                 progress_stream: "TextIO | None" = None,
                 progress_interval: float = 0.5,
                 snapshot_interval: float = 1.0,
                 clock: "Callable[[], float]" = time.monotonic) -> None:
        self.run_dir = Path(run_dir) if run_dir is not None else None
        self.metrics = MetricsRegistry()
        self.recorder: "RuntimeRecorder | None" = None
        self.snapshots: "MetricsSnapshotter | None" = None
        progress_path = None
        if self.run_dir is not None:
            self.run_dir.mkdir(parents=True, exist_ok=True)
            self.recorder = RuntimeRecorder(
                self.run_dir / f"spans-{role}.jsonl", role=role, clock=clock)
            self.snapshots = MetricsSnapshotter(
                self.metrics, self.run_dir / "metrics.jsonl",
                interval=snapshot_interval, clock=clock)
            progress_path = self.run_dir / "progress.json"
        stream = None
        if progress:
            stream = (progress_stream if progress_stream is not None
                      else sys.stderr)
        self.progress = ProgressTicker(
            total_cells, cache_hits=cache_hits, path=progress_path,
            stream=stream, interval=progress_interval, clock=clock)
        self._clock = clock

    @classmethod
    def create(cls, run_dir, *, progress: bool = False,
               **kwargs) -> "RunTelemetry | None":
        """A telemetry bundle, or None when nothing was asked for."""
        if run_dir is None and not progress:
            return None
        return cls(run_dir, progress=progress, **kwargs)

    # -- emission helpers (all safe when parts are disabled) ------------

    def now(self) -> float:
        return self._clock()

    def event(self, kind: str, **fields: Any) -> None:
        if self.recorder is not None:
            self.recorder.event(kind, **fields)

    def span(self, kind: str, **fields: Any):
        if self.recorder is not None:
            return self.recorder.span(kind, **fields)
        return _NullSpan()

    def tick(self, done: int, *, active_workers: int = 0,
             stragglers: int = 0, force: bool = False) -> None:
        self.progress.update(done, active_workers=active_workers,
                             stragglers=stragglers, force=force)
        if self.snapshots is not None:
            self.metrics.gauge("runtime.cells_done").set(done)
            self.metrics.gauge("runtime.active_workers").set(active_workers)
            self.metrics.gauge("runtime.stragglers").set(stragglers)
            self.snapshots.maybe_snapshot()

    def finalize(self, *, done: "int | None" = None,
                 state: str = "done") -> None:
        """Close out the run: final progress, final snapshot, and the
        derived exports (Chrome fleet timeline, Prometheus textfile,
        wall-time summary) inside the run directory."""
        self.progress.finish(done, state=state)
        self.event("run.done", state=state)
        if self.recorder is not None:
            self.recorder.close()
        if self.run_dir is None:
            return
        if self.snapshots is not None:
            if done is not None:
                self.metrics.gauge("runtime.cells_done").set(done)
            self.snapshots.snapshot()
        write_prometheus(self.run_dir)
        spans = SpanSet.load_dir(self.run_dir)
        write_fleet_timeline(self.run_dir)
        summary = {"schema": RUNTIME_SCHEMA, "state": state,
                   "kinds": spans.kinds(), "wall": wall_summary(spans),
                   "bad_lines": len(spans.bad_lines)}
        (self.run_dir / "summary.json").write_text(
            json.dumps(summary, sort_keys=True, indent=2) + "\n")


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass
