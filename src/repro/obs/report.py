"""Deterministic run reports: Markdown analytics plus a swap Gantt SVG.

Renders the :mod:`repro.obs.analyze` analytics as two artifacts:

* :func:`render_markdown` -- a **byte-stable** Markdown report (record
  inventory, decision outcomes, rejection breakdown, payback
  distribution, per-series adaptation summary, lint verdict).  No wall
  clock, no environment data: identical traces render identical bytes,
  which is what the ``trace-report`` CI job ``cmp``-checks.
* :func:`render_gantt_svg` -- one sweep cell as a Gantt timeline (one
  row per series: iteration slices in the series color, swap/checkpoint
  slices in accent colors, rebalance ticks), reusing the axis/format
  primitives of :mod:`repro.experiments.svgplot`.

:func:`write_report` bundles both plus linting into one directory; the
CLI (``python -m repro.obs report``) and ``python -m repro.experiments
<fig> --report DIR`` call it.
"""

from __future__ import annotations

import math
from xml.sax.saxutils import escape

from repro.obs.analyze import (TraceSet, adaptation_overhead,
                               decision_summary, format_cell,
                               host_utilization, lint, payback_distribution,
                               rejection_breakdown, time_to_first_swap,
                               timeline)

#: Accent colors for adaptation marks (iteration rows use the sweep
#: palette from :mod:`repro.experiments.svgplot`).
GANTT_ACCENTS = {"swap": "#d55e00", "checkpoint": "#cc79a7",
                 "rebalance": "#009e73"}

_ROW_HEIGHT = 34.0
_MARGIN_LEFT = 130.0
_MARGIN_RIGHT = 30.0
_MARGIN_TOP = 40.0
_MARGIN_BOTTOM = 60.0


def _num(value: float, spec: str = ".4g") -> str:
    """A float as deterministic text, spelling non-finites explicitly."""
    if value != value:
        return "nan"
    if value == math.inf:
        return "inf"
    if value == -math.inf:
        return "-inf"
    return format(value, spec)


def _mean(values: "list[float]") -> "float | None":
    return sum(values) / len(values) if values else None


def _series_rollup(ts: TraceSet) -> "list[dict]":
    """Per-series aggregates across all cells (appearance order)."""
    utilization = host_utilization(ts)
    overhead = adaptation_overhead(ts)
    first_swap = time_to_first_swap(ts)
    lines = timeline(ts)
    rollup = []
    for series in ts.series_names():
        keys = [key for key in ts.rows() if key[1] == series]
        events = {"swap": 0, "checkpoint": 0, "rebalance": 0}
        for key in keys:
            for event in lines.get(key, ()):
                events[event["kind"]] += 1
        utils = [usage["utilization"]
                 for key in keys
                 for usage in utilization.get(key, {}).values()]
        fractions = [overhead[key]["fraction"]
                     for key in keys if key in overhead]
        firsts = [first_swap[key] for key in keys
                  if first_swap.get(key) is not None]
        rollup.append({"series": series, "cells": len(keys),
                       "swaps": events["swap"],
                       "checkpoints": events["checkpoint"],
                       "rebalances": events["rebalance"],
                       "first_swap": _mean(firsts),
                       "overhead": _mean(fractions),
                       "utilization": _mean(utils)})
    return rollup


def _opt(value: "float | None", spec: str = ".4g") -> str:
    return "n/a" if value is None else _num(value, spec)


def render_markdown(ts: TraceSet, metrics=None, findings=None,
                    gantt_name: "str | None" = "gantt.svg") -> str:
    """The full analytics report as byte-stable Markdown.

    ``findings`` short-circuits a second lint pass when the caller
    already ran one; pass ``None`` to lint here (with ``metrics``
    enabling the TL005 cross-checks).
    """
    if findings is None:
        findings = lint(ts, metrics)
    kinds = ts.kinds()
    cells = ts.cells()
    series = ts.series_names()
    decisions = decision_summary(ts)
    scenarios = sorted({str(cell[0]) for cell in cells})

    lines = ["# Trace run report", ""]
    lines += ["## Overview", "",
              "| | |", "|---|---|",
              f"| scenarios | {', '.join(scenarios) or 'n/a'} |",
              f"| cells | {len(cells)} |",
              f"| series | {', '.join(series) or 'n/a'} |",
              f"| records | {len(ts)} |",
              f"| trace lint | "
              f"{'clean' if not findings else f'{len(findings)} finding(s)'}"
              f" |", ""]

    lines += ["### Records by kind", "",
              "| kind | count |", "|---|---|"]
    lines += [f"| {kind} | {count} |" for kind, count in kinds.items()]
    lines.append("")

    lines += ["## Decision outcomes", "",
              "| | |", "|---|---|",
              f"| epochs | {decisions['epochs']} |",
              f"| accepted | {decisions['accepted']} |",
              f"| rejected | {decisions['rejected']} |",
              f"| accepted moves | {decisions['moves']} |"]
    if decisions["epochs"]:
        rate = decisions["accepted"] / decisions["epochs"]
        lines.append(f"| accept rate | {_num(rate, '.4f')} |")
    lines.append("")

    rejections = rejection_breakdown(ts)
    if rejections:
        lines += ["### Rejection reasons", "",
                  "| reason | epochs |", "|---|---|"]
        lines += [f"| {reason} | {count} |"
                  for reason, count in rejections.items()]
        lines.append("")

    payback = payback_distribution(ts).to_payload()
    if payback["count"]:
        lines += ["## Payback distribution", "",
                  "Iterations needed to recoup each accepted "
                  "reconfiguration.", "",
                  "| bucket | moves |", "|---|---|"]
        bounds = payback["bounds"]
        for i, count in enumerate(payback["buckets"]):
            label = (f"<= {_num(bounds[i])}" if i < len(bounds)
                     else f"> {_num(bounds[-1])}")
            lines.append(f"| {label} | {count} |")
        mean = (float(payback["sum"]) / payback["count"]
                if not isinstance(payback["sum"], str) else math.inf)
        lines += ["",
                  f"observations {payback['count']}, "
                  f"min {_num(float(str(payback['min'])))}, "
                  f"max {_num(float(str(payback['max'])))}, "
                  f"mean of finite {_num(mean)}", ""]

    rollup = _series_rollup(ts)
    if rollup:
        lines += ["## Adaptation by series", "",
                  "| series | cells | swaps | checkpoints | rebalances | "
                  "mean t to first swap [s] | overhead fraction | "
                  "host utilization |",
                  "|---|---|---|---|---|---|---|---|"]
        for row in rollup:
            lines.append(
                f"| {row['series']} | {row['cells']} | {row['swaps']} | "
                f"{row['checkpoints']} | {row['rebalances']} | "
                f"{_opt(row['first_swap'])} | "
                f"{_opt(row['overhead'], '.4f')} | "
                f"{_opt(row['utilization'], '.4f')} |")
        lines.append("")

    if gantt_name and cells:
        lines += ["## Timeline", "",
                  f"Gantt of the first cell "
                  f"({format_cell(cells[0])}): see `{gantt_name}`.", ""]

    lines += ["## Trace lint", ""]
    if findings:
        lines += [f"- `{finding.code}` {finding}" for finding in findings]
    else:
        lines.append("All TL invariants hold (TL001-TL007): clean.")
    lines.append("")
    return "\n".join(lines)


def render_gantt_svg(ts: TraceSet, cell: "tuple | None" = None,
                     width: int = 900) -> str:
    """One cell's run as an SVG Gantt: a row per series.

    Iteration slices draw in the series palette color, swap/checkpoint
    slices in :data:`GANTT_ACCENTS`, rebalances as thin ticks.  Rows are
    labelled with the series name and its mean host utilization.
    """
    from repro.experiments.svgplot import (PALETTE, fmt_tick, svg_header,
                                           ticks)

    cells = ts.cells()
    if cell is None and cells:
        cell = cells[0]
    subset = ts.filter(cell=cell) if cell is not None else ts
    series = subset.series_names()
    height = int(_MARGIN_TOP + _MARGIN_BOTTOM
                 + _ROW_HEIGHT * max(1, len(series)))
    title = (f"Run timeline: {format_cell(cell)}" if cell is not None
             else "Run timeline: (empty trace)")
    parts = svg_header(width, height, title)
    plot_w = width - _MARGIN_LEFT - _MARGIN_RIGHT
    plot_h = _ROW_HEIGHT * max(1, len(series))

    spans = []
    for record in subset:
        start, end = record.get("start"), record.get("end")
        if isinstance(start, (int, float)) and isinstance(end, (int, float)):
            spans += [float(start), float(end)]
        t = record.get("t")
        if isinstance(t, (int, float)):
            spans.append(float(t))
    t_lo = min(spans) if spans else 0.0
    t_hi = max(spans) if spans else 1.0
    if t_hi <= t_lo:
        t_hi = t_lo + 1.0

    def px(t: float) -> float:
        return _MARGIN_LEFT + (t - t_lo) / (t_hi - t_lo) * plot_w

    # Time axis.
    axis_y = _MARGIN_TOP + plot_h
    parts.append(f'<line x1="{_MARGIN_LEFT}" y1="{axis_y:.1f}" '
                 f'x2="{_MARGIN_LEFT + plot_w}" y2="{axis_y:.1f}" '
                 f'stroke="#333"/>')
    for tick in ticks(t_lo, t_hi, 6):
        x = px(tick)
        parts.append(f'<line x1="{x:.1f}" y1="{_MARGIN_TOP}" '
                     f'x2="{x:.1f}" y2="{axis_y:.1f}" stroke="#eee"/>')
        parts.append(f'<line x1="{x:.1f}" y1="{axis_y:.1f}" '
                     f'x2="{x:.1f}" y2="{axis_y + 4:.1f}" stroke="#333"/>')
        parts.append(f'<text x="{x:.1f}" y="{axis_y + 18:.1f}" '
                     f'text-anchor="middle">{fmt_tick(tick)}</text>')
    parts.append(f'<text x="{_MARGIN_LEFT + plot_w / 2:.0f}" '
                 f'y="{height - 16}" text-anchor="middle">'
                 f'simulated time [s]</text>')

    utilization = host_utilization(subset)
    # Keep the accent colors exclusive to adaptation marks.
    row_palette = [c for c in PALETTE
                   if c not in GANTT_ACCENTS.values()] or list(PALETTE)
    for index, name in enumerate(series):
        color = row_palette[index % len(row_palette)]
        row_top = _MARGIN_TOP + _ROW_HEIGHT * index
        bar_y = row_top + 6.0
        bar_h = _ROW_HEIGHT - 14.0
        row_key = (cell, name) if cell is not None else None
        utils = [usage["utilization"] for key, hosts in utilization.items()
                 if (row_key is None or key == row_key)
                 for usage in hosts.values()]
        mean_util = _mean(utils)
        label = escape(name)
        if mean_util is not None:
            label += f" ({mean_util * 100.0:.0f}%)"
        parts.append(f'<text x="{_MARGIN_LEFT - 8}" '
                     f'y="{row_top + _ROW_HEIGHT / 2 + 4:.1f}" '
                     f'text-anchor="end">{label}</text>')
        drawn: "set[tuple]" = set()
        for record in subset.filter(series=name):
            kind = record.get("kind")
            start, end = record.get("start"), record.get("end")
            has_span = (isinstance(start, (int, float))
                        and isinstance(end, (int, float)))
            if kind == "iteration" and has_span:
                parts.append(
                    f'<rect x="{px(float(start)):.1f}" y="{bar_y:.1f}" '
                    f'width="{max(0.2, px(float(end)) - px(float(start))):.1f}" '
                    f'height="{bar_h:.1f}" fill="{color}" '
                    f'fill-opacity="0.35"/>')
            elif kind in ("swap", "checkpoint") and has_span:
                span = (float(start), float(end))
                if span in drawn:  # coincident batch-swap slices
                    continue
                drawn.add(span)
                parts.append(
                    f'<rect x="{px(span[0]):.1f}" y="{bar_y:.1f}" '
                    f'width="{max(0.8, px(span[1]) - px(span[0])):.1f}" '
                    f'height="{bar_h:.1f}" fill="{GANTT_ACCENTS[kind]}"/>')
            elif kind == "rebalance":
                x = px(float(record["t"]))
                parts.append(
                    f'<line x1="{x:.1f}" y1="{bar_y:.1f}" x2="{x:.1f}" '
                    f'y2="{bar_y + bar_h:.1f}" '
                    f'stroke="{GANTT_ACCENTS[kind]}" stroke-width="1"/>')

    legend_x = _MARGIN_LEFT
    legend_y = height - 36.0
    for offset, (kind, color) in enumerate(sorted(GANTT_ACCENTS.items())):
        x = legend_x + 160.0 * offset
        parts.append(f'<rect x="{x:.1f}" y="{legend_y:.1f}" width="14" '
                     f'height="10" fill="{color}"/>')
        parts.append(f'<text x="{x + 20:.1f}" y="{legend_y + 9:.1f}">'
                     f'{kind}</text>')
    parts.append("</svg>")
    return "\n".join(parts)


def write_report(ts: TraceSet, outdir, metrics=None, findings=None,
                 cell: "tuple | None" = None) -> "tuple":
    """Lint, render, and write ``report.md`` + ``gantt.svg`` into a dir.

    Returns ``(markdown_path, svg_path, findings)`` so callers can both
    print the artifact locations and fail on lint findings.
    """
    from pathlib import Path

    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    if findings is None:
        findings = lint(ts, metrics)
    md_path = outdir / "report.md"
    svg_path = outdir / "gantt.svg"
    md_path.write_text(render_markdown(ts, metrics, findings=findings,
                                       gantt_name=svg_path.name))
    svg_path.write_text(render_gantt_svg(ts, cell=cell) + "\n")
    return md_path, svg_path, findings
