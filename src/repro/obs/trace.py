"""Deterministic run traces: structured records, JSONL, Chrome trace JSON.

A :class:`TraceRecorder` accumulates plain-dict records in execution
order.  Every timestamp is *simulated* time, never wall clock, so two
identically-seeded runs produce byte-identical exports regardless of host
speed, worker count, or cache state (the executor merges per-cell records
in grid order; see :mod:`repro.experiments.executor`).

Two export formats:

* **JSONL** -- one compact, key-sorted JSON object per record.  The
  canonical machine-readable decision log; byte-stable by construction.
* **Chrome trace-event JSON** -- loadable in ``chrome://tracing`` (or
  https://ui.perfetto.dev).  Records with ``start``/``end`` fields become
  complete ("X") slices; everything else becomes an instant event.  Rows
  are grouped by cell (pid) and series (tid), with metadata name events
  so the UI shows human-readable labels.
"""

from __future__ import annotations

import json
import math
from typing import Any, Iterable

from repro.errors import ObservabilityError

#: Seconds -> Chrome trace microseconds (the trace-event format's unit).
_US = 1e6  # simlint: disable=SL005 (unit conversion factor, not a byte/flop quantity)


def jsonable(value: Any) -> Any:
    """Map a record value to something JSON can round-trip exactly.

    Non-finite floats are spelled as the strings ``"inf"``, ``"-inf"``
    and ``"nan"`` (strict JSON has no literal for them); containers are
    converted recursively; mapping keys become strings.
    """
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if math.isnan(value):
            return "nan"
        return value
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    raise ObservabilityError(f"cannot serialize trace value {value!r}")


class TraceRecorder:
    """Append-only store of structured trace records.

    ``context`` holds fields stamped onto every subsequent record (the
    executor sets ``scenario``/``x``/``seed``/``series`` per variant so
    strategies never need to know where they run).
    """

    def __init__(self) -> None:
        self.records: "list[dict]" = []
        self.context: "dict[str, Any]" = {}

    def __len__(self) -> int:
        return len(self.records)

    def set_context(self, **fields: Any) -> None:
        """Replace the ambient fields merged into every record."""
        self.context = {k: jsonable(v) for k, v in fields.items()}

    def emit(self, kind: str, t: float, **fields: Any) -> None:
        """Record one event of ``kind`` at simulated time ``t``."""
        record = {"kind": str(kind), "t": jsonable(float(t))}
        record.update(self.context)
        for key, value in fields.items():
            record[key] = jsonable(value)
        self.records.append(record)

    def extend(self, records: "Iterable[dict]") -> None:
        """Append pre-built records (already jsonable dicts) verbatim."""
        self.records.extend(records)

    # -- exports ---------------------------------------------------------

    def to_jsonl(self) -> str:
        """One key-sorted compact JSON object per line (byte-stable)."""
        lines = [json.dumps(r, sort_keys=True, separators=(",", ":"))
                 for r in self.records]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path) -> None:
        from pathlib import Path

        Path(path).write_text(self.to_jsonl())

    def to_chrome(self) -> dict:
        """The records as a Chrome trace-event document.

        Deterministic: pids/tids are assigned in order of first
        appearance, which is itself deterministic because the record list
        is.
        """
        events: "list[dict]" = []
        pids: "dict[str, int]" = {}
        tids: "dict[tuple[str, str], int]" = {}
        for record in self.records:
            cell = (f"{record.get('scenario', 'run')}"
                    f" x={record.get('x', '-')} seed={record.get('seed', '-')}")
            series = str(record.get("series", record.get("source", "trace")))
            if cell not in pids:
                pids[cell] = len(pids)
                events.append({"ph": "M", "name": "process_name",
                               "pid": pids[cell], "tid": 0, "ts": 0,
                               "args": {"name": cell}})
            pid = pids[cell]
            if (cell, series) not in tids:
                tids[(cell, series)] = len(tids)
                events.append({"ph": "M", "name": "thread_name",
                               "pid": pid, "tid": tids[(cell, series)],
                               "ts": 0, "args": {"name": series}})
            tid = tids[(cell, series)]
            args = {k: v for k, v in record.items()
                    if k not in ("kind", "t", "start", "end",
                                 "scenario", "x", "seed", "series")}
            name = record["kind"]
            if "iteration" in record:
                name = f"{record['kind']} {record['iteration']}"
            start = record.get("start")
            end = record.get("end")
            if (isinstance(start, (int, float))
                    and isinstance(end, (int, float))):
                events.append({"ph": "X", "name": name,
                               "cat": record["kind"], "pid": pid, "tid": tid,
                               "ts": start * _US,
                               "dur": (end - start) * _US, "args": args})
            else:
                events.append({"ph": "i", "s": "t", "name": name,
                               "cat": record["kind"], "pid": pid, "tid": tid,
                               "ts": record["t"] * _US, "args": args})
        return {"traceEvents": events, "displayTimeUnit": "ms",
                "otherData": {"tool": "repro.obs",
                              "clock": "simulated-seconds"}}

    def to_chrome_json(self) -> str:
        return json.dumps(self.to_chrome(), sort_keys=True,
                          separators=(",", ":")) + "\n"

    def write_chrome(self, path) -> None:
        from pathlib import Path

        Path(path).write_text(self.to_chrome_json())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TraceRecorder {len(self.records)} records>"
