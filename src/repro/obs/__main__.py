"""Command-line trace analytics: ``python -m repro.obs <command>``.

Commands
--------

``report TRACE [--metrics M] --out DIR``
    Analyze + lint a JSONL trace and write the deterministic Markdown
    report and Gantt SVG into DIR.  ``--strict`` exits non-zero when the
    linter finds anything.
``lint TRACE [--metrics M]``
    Run only the TL invariant linter; exit 1 on findings (the CI gate).
``summary TRACE``
    One-screen text summary (record kinds, cells, decision outcomes).

Runtime-plane commands (wall-clock telemetry; see
docs/OBSERVABILITY.md, "two planes"):

``timeline RUN_DIR [--out PATH]``
    Render the run's span files as a Chrome trace-event fleet timeline
    (one track per worker plus the coordinator track); open it in
    chrome://tracing or ui.perfetto.dev.
``runtime-metrics RUN_DIR [--out PATH]``
    Export the latest runtime metrics snapshot as a Prometheus-style
    textfile (for node_exporter's textfile collector).
``runtime-summary RUN_DIR``
    One-screen summary of the runtime plane: record kinds and per-kind
    wall-time percentiles.
``tail RUN_DIR [--follow]``
    Print the run's live progress line from ``progress.json``;
    ``--follow`` keeps polling until the run reaches a terminal state.

Examples::

    python -m repro.experiments fig7 --seeds 2 --trace fig7.jsonl \\
        --metrics-json fig7-metrics.json
    python -m repro.obs report fig7.jsonl --metrics fig7-metrics.json \\
        --out fig7-report
    python -m repro.obs lint fig7.jsonl --metrics fig7-metrics.json
    python -m repro.experiments fig7 --fabric --runtime-telemetry rt/
    python -m repro.obs timeline rt/ && python -m repro.obs tail rt/
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.analyze import (TRACE_RULES, TraceSet, decision_summary,
                               format_cell, lint)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Consume repro.obs decision traces: analytics, "
                    "invariant lint, run reports.")
    sub = parser.add_subparsers(dest="command")

    report = sub.add_parser("report", help="write Markdown + SVG run report")
    report.add_argument("trace", help="JSONL trace file (--trace output)")
    report.add_argument("--metrics", metavar="PATH", default=None,
                        help="metrics registry JSON (--metrics-json "
                             "output) for TL005 cross-checks")
    report.add_argument("--out", metavar="DIR", default="trace-report",
                        help="output directory (default: trace-report/)")
    report.add_argument("--strict", action="store_true",
                        help="exit 3 when the linter reports findings")

    lint_cmd = sub.add_parser("lint", help="check TL001-TL007 invariants")
    lint_cmd.add_argument("trace")
    lint_cmd.add_argument("--metrics", metavar="PATH", default=None)
    lint_cmd.add_argument("--json", action="store_true",
                          help="machine-readable findings on stdout")

    summary = sub.add_parser("summary", help="one-screen trace summary")
    summary.add_argument("trace")

    rules = sub.add_parser("rules", help="list the TL invariant codes")
    del rules

    timeline = sub.add_parser(
        "timeline", help="export the Chrome fleet timeline of a "
                         "runtime-telemetry run directory")
    timeline.add_argument("run_dir", help="--runtime-telemetry directory")
    timeline.add_argument("--out", metavar="PATH", default=None,
                          help="output file (default: "
                               "RUN_DIR/timeline.trace.json)")

    rt_metrics = sub.add_parser(
        "runtime-metrics", help="export the latest runtime metrics "
                                "snapshot as a Prometheus textfile")
    rt_metrics.add_argument("run_dir")
    rt_metrics.add_argument("--out", metavar="PATH", default=None,
                            help="output file (default: "
                                 "RUN_DIR/metrics.prom)")

    rt_summary = sub.add_parser(
        "runtime-summary", help="summarize a run's wall-clock spans")
    rt_summary.add_argument("run_dir")

    tail = sub.add_parser(
        "tail", help="print (and optionally follow) a run's live progress")
    tail.add_argument("run_dir")
    tail.add_argument("--follow", action="store_true",
                      help="keep polling until the run finishes")
    tail.add_argument("--interval", type=float, default=0.5,
                      help="polling interval in seconds (default: 0.5)")
    return parser


def _runtime_main(args) -> int:
    """Dispatch the runtime-plane subcommands (wall-clock telemetry)."""
    from repro.obs.runtime import (SpanSet, tail_run, wall_summary,
                                   write_fleet_timeline, write_prometheus)

    if args.command == "tail":
        return tail_run(args.run_dir, follow=args.follow,
                        interval=args.interval)
    if args.command == "timeline":
        try:
            out = write_fleet_timeline(args.run_dir, out=args.out)
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"wrote {out}")
        return 0
    if args.command == "runtime-metrics":
        try:
            out = write_prometheus(args.run_dir, out=args.out)
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"wrote {out}")
        return 0
    # runtime-summary
    spans = SpanSet.load_dir(args.run_dir)
    if not spans.records:
        print(f"no runtime span files under {args.run_dir}",
              file=sys.stderr)
        return 1
    print(f"{len(spans.records)} records, {len(spans.bad_lines)} "
          f"unparseable lines, {len(spans.tracks())} tracks")
    for kind, count in sorted(spans.kinds().items()):
        print(f"  {kind:>24}: {count}")
    walls = wall_summary(spans)
    if walls:
        print("wall-time percentiles (seconds):")
        for kind in sorted(walls):
            stats = walls[kind]
            print(f"  {kind:>24}: p50 {stats['p50']:.6f}  "
                  f"p95 {stats['p95']:.6f}  max {stats['max']:.6f}")
    return 0


def _load_metrics(path: "str | None"):
    if path is None:
        return None
    from pathlib import Path

    return json.loads(Path(path).read_text())


def _print_findings(findings) -> None:
    for finding in findings:
        print(str(finding), file=sys.stderr)
    print(f"{len(findings)} lint finding(s)", file=sys.stderr)


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command is None:
        parser.print_usage()
        return 2

    if args.command == "rules":
        for code in sorted(TRACE_RULES):
            print(f"{code}: {TRACE_RULES[code]}")
        return 0

    if args.command in ("timeline", "runtime-metrics", "runtime-summary",
                        "tail"):
        return _runtime_main(args)

    ts = TraceSet.load(args.trace)

    if args.command == "summary":
        print(f"{len(ts)} records, {len(ts.bad_lines)} unparseable lines")
        for kind, count in ts.kinds().items():
            print(f"  {kind:>24}: {count}")
        print(f"cells ({len(ts.cells())}):")
        for cell in ts.cells():
            print(f"  {format_cell(cell)}")
        decisions = decision_summary(ts)
        print(f"decisions: {decisions['epochs']} epochs, "
              f"{decisions['accepted']} accepted, "
              f"{decisions['moves']} moves")
        return 0

    metrics = _load_metrics(args.metrics)
    findings = lint(ts, metrics)

    if args.command == "lint":
        if args.json:
            print(json.dumps(
                [{"code": f.code, "message": f.message,
                  "cell": list(f.cell) if f.cell else None,
                  "series": f.series} for f in findings],
                sort_keys=True))
            return 1 if findings else 0
        if findings:
            _print_findings(findings)
            return 1
        print(f"clean: {len(ts)} records satisfy "
              f"{len(TRACE_RULES)} TL invariants")
        return 0

    # report
    from repro.obs.report import write_report

    md_path, svg_path, findings = write_report(ts, args.out, metrics,
                                               findings=findings)
    print(f"wrote {md_path}")
    print(f"wrote {svg_path}")
    if findings:
        _print_findings(findings)
        if args.strict:
            return 3
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
