"""Trace consumption: parse, query, derive analytics, lint invariants.

:mod:`repro.obs.trace` is the *production* side of observability; this
module is the consumption side.  A :class:`TraceSet` loads a JSONL trace
(or wraps a live :class:`~repro.obs.trace.TraceRecorder`) back into the
record dicts the recorder held in memory -- byte-for-byte the same
objects ``to_jsonl`` serialized, including the ``"inf"``/``"-inf"``/
``"nan"`` spellings :func:`~repro.obs.trace.jsonable` gives non-finite
floats -- and offers:

* a small **query API** (:meth:`TraceSet.filter`, :meth:`TraceSet.cells`,
  :meth:`TraceSet.series_names`) over kind / cell / series / time window;
* **derived analytics** -- per-host busy/idle utilization from iteration
  slices, the swap/checkpoint/rebalance timeline per series, the
  gate-rejection breakdown, the payback-distance distribution,
  time-to-first-swap, and adaptation-overhead fractions;
* a **trace invariant linter** (:func:`lint`, codes ``TL001``-``TL007``)
  that checks the structural guarantees every later analysis relies on.

Everything here is deterministic: outputs depend only on record content
and order, never on wall clock, hashes of ids, or set iteration, so a
report rendered from these analytics is byte-stable whenever the trace
is (see :mod:`repro.obs.report`).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from repro.errors import ObservabilityError

#: TL rule codes and what each one guards.
TRACE_RULES = {
    "TL001": "timestamps are monotonic (non-decreasing) per cell row",
    "TL002": "every executed swap/checkpoint follows an accepting "
             "decision epoch for the same iteration",
    "TL003": "no overlapping slices on one (cell, series) row "
             "(coincident batch-swap slices excepted)",
    "TL004": "decision records carry a complete, consistent gate trail",
    "TL005": "metrics registry agrees with the trace (epochs, moves, "
             "iterations, payback observations)",
    "TL006": "every trace line parses as one JSON record",
    "TL007": "every revocation of an active host is followed by a "
             "recovery or a declared stall for that host",
}

#: Float tolerance for slice-overlap comparisons (sim times are exact
#: float sums, but derived ends may differ in the last ulp).
_SLICE_TOL = 1e-9


def as_float(value: Any) -> float:
    """A trace field as a float, reviving the non-finite spellings.

    Inverse of :func:`~repro.obs.trace.jsonable` for numeric fields:
    ``"inf"``/``"-inf"``/``"nan"`` come back as the floats they encoded.
    """
    if isinstance(value, str):
        if value == "inf":
            return math.inf
        if value == "-inf":
            return -math.inf
        if value == "nan":
            return math.nan
        raise ObservabilityError(f"not a trace float: {value!r}")
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ObservabilityError(f"not a trace float: {value!r}")
    return float(value)


def _slice_bounds(record: dict) -> "tuple[float, float] | None":
    """(start, end) when the record is a complete slice, else None."""
    start, end = record.get("start"), record.get("end")
    if (isinstance(start, (int, float)) and not isinstance(start, bool)
            and isinstance(end, (int, float)) and not isinstance(end, bool)):
        return float(start), float(end)
    return None


@dataclass(frozen=True)
class BadLine:
    """One trace line that failed to parse (reported as TL006)."""

    number: int
    """1-based line number in the source file."""
    error: str
    text: str
    """The offending line, truncated to 120 characters."""


def cell_key(record: dict) -> tuple:
    """The (scenario, x, seed) coordinates stamped on a record.

    Missing fields become ``None`` (e.g. ad-hoc recorders without
    executor context); ``x`` keeps its recorded spelling, so an ``inf``
    grid point groups correctly.
    """
    return (record.get("scenario"), record.get("x"), record.get("seed"))


def format_cell(cell: tuple) -> str:
    """Human-readable label of a :func:`cell_key`."""
    scenario, x, seed = cell
    if scenario is None and x is None and seed is None:
        return "(no cell)"
    return f"{scenario} x={x} seed={seed}"


class TraceSet:
    """An ordered collection of trace records plus parse diagnostics.

    The record dicts are exactly what :class:`~repro.obs.trace.
    TraceRecorder` stores (already ``jsonable``): loading a JSONL export
    reconstructs them verbatim, so ``TraceSet.load(p).records ==
    recorder.records`` round-trips including non-finite float spellings.
    """

    def __init__(self, records: "Iterable[dict]",
                 bad_lines: "Iterable[BadLine]" = ()) -> None:
        self.records = list(records)
        self.bad_lines = tuple(bad_lines)

    # -- construction ----------------------------------------------------

    @classmethod
    def from_jsonl(cls, text: str) -> "TraceSet":
        """Parse a JSONL export; unparseable lines become TL006 fodder."""
        records: "list[dict]" = []
        bad: "list[BadLine]" = []
        for number, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                bad.append(BadLine(number, str(exc), line[:120]))
                continue
            if not isinstance(record, dict) or "kind" not in record:
                bad.append(BadLine(number, "not a trace record object",
                                   line[:120]))
                continue
            records.append(record)
        return cls(records, bad)

    @classmethod
    def load(cls, path) -> "TraceSet":
        from pathlib import Path

        return cls.from_jsonl(Path(path).read_text())

    @classmethod
    def from_recorder(cls, recorder) -> "TraceSet":
        """Wrap a live :class:`~repro.obs.trace.TraceRecorder`."""
        return cls(recorder.records)

    # -- query -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> "Iterator[dict]":
        return iter(self.records)

    def filter(self, kind: "str | None" = None,
               cell: "tuple | None" = None,
               series: "str | None" = None,
               t_min: "float | None" = None,
               t_max: "float | None" = None,
               **fields: Any) -> "TraceSet":
        """A new TraceSet of the records matching every given criterion.

        ``fields`` match on equality of arbitrary record fields
        (``iteration=3``, ``accepted=True``, ...).  Time bounds are
        inclusive and compare the record's ``t``.
        """
        out = []
        for record in self.records:
            if kind is not None and record.get("kind") != kind:
                continue
            if cell is not None and cell_key(record) != tuple(cell):
                continue
            if series is not None and record.get("series") != series:
                continue
            if t_min is not None and as_float(record["t"]) < t_min:
                continue
            if t_max is not None and as_float(record["t"]) > t_max:
                continue
            if any(record.get(k) != v for k, v in fields.items()):
                continue
            out.append(record)
        return TraceSet(out)

    def kinds(self) -> "dict[str, int]":
        """Record count per kind, key-sorted."""
        counts: "dict[str, int]" = {}
        for record in self.records:
            kind = record.get("kind", "?")
            counts[kind] = counts.get(kind, 0) + 1
        return {kind: counts[kind] for kind in sorted(counts)}

    def cells(self) -> "list[tuple]":
        """Unique cell keys, in first-appearance (grid) order."""
        seen: "dict[tuple, None]" = {}
        for record in self.records:
            seen.setdefault(cell_key(record), None)
        return list(seen)

    def series_names(self) -> "list[str]":
        """Unique series labels, in first-appearance order."""
        seen: "dict[str, None]" = {}
        for record in self.records:
            series = record.get("series")
            if series is not None:
                seen.setdefault(str(series), None)
        return list(seen)

    def rows(self) -> "dict[tuple, list[dict]]":
        """Records grouped by (cell, series) row, preserving order.

        One row is one Chrome-export (pid, tid) pair: the unit both the
        analytics and the TL lints operate on.
        """
        grouped: "dict[tuple, list[dict]]" = {}
        for record in self.records:
            key = (cell_key(record), str(record.get("series")))
            grouped.setdefault(key, []).append(record)
        return grouped

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<TraceSet {len(self.records)} records, "
                f"{len(self.bad_lines)} bad lines>")


# -- derived analytics -------------------------------------------------------


def host_utilization(ts: TraceSet) -> "dict[tuple, dict[int, dict]]":
    """Per-host busy/idle time from iteration slices, per (cell, series).

    Busy time on a host is the sum of compute phases (``start`` ..
    ``compute_end``) of the iterations whose ``active`` set contained it;
    the row span is first slice start to last slice end, so ``idle``
    covers communication, adaptation overhead, and epochs spent in the
    spare pool.  Returns ``{(cell, series): {host: {"busy": s, "idle": s,
    "utilization": fraction}}}`` in row order, hosts sorted.
    """
    out: "dict[tuple, dict[int, dict]]" = {}
    for key, records in ts.rows().items():
        iterations = [r for r in records if r.get("kind") == "iteration"
                      and _slice_bounds(r) is not None]
        if not iterations:
            continue
        span_start = min(_slice_bounds(r)[0] for r in iterations)
        span_end = max(_slice_bounds(r)[1] for r in iterations)
        span = span_end - span_start
        busy: "dict[int, float]" = {}
        for record in iterations:
            start = float(record["start"])
            compute_end = float(record.get("compute_end", record["end"]))
            for host in record.get("active", ()):
                busy[host] = busy.get(host, 0.0) + (compute_end - start)
        out[key] = {
            host: {"busy": busy[host],
                   "idle": max(0.0, span - busy[host]),
                   "utilization": busy[host] / span if span > 0 else 0.0}
            for host in sorted(busy)}
    return out


#: Record kinds that constitute an adaptation event on the timeline.
ADAPTATION_KINDS = ("swap", "checkpoint", "rebalance")


def timeline(ts: TraceSet) -> "dict[tuple, list[dict]]":
    """The adaptation timeline per (cell, series) row.

    One entry per swap / checkpoint / rebalance record, in trace order:
    ``{"t", "kind", "iteration", "detail"}`` where ``detail`` is a short
    human label (``"h5->h9"``, ``"restart -> [9, 29]"``, ``"rebalance"``).
    """
    out: "dict[tuple, list[dict]]" = {}
    for key, records in ts.rows().items():
        events = []
        for record in records:
            kind = record.get("kind")
            if kind not in ADAPTATION_KINDS:
                continue
            if kind == "swap":
                detail = (f"h{record.get('out_host')}"
                          f"->h{record.get('in_host')}")
            elif kind == "checkpoint":
                detail = f"restart -> {record.get('new_active')}"
            else:
                detail = "rebalance"
            events.append({"t": as_float(record["t"]), "kind": kind,
                           "iteration": record.get("iteration"),
                           "detail": detail})
        out[key] = events
    return out


#: (prefix, canonical class) pairs for :func:`normalize_reason`; the
#: policy gates embed the offending numbers in their reason strings.
_REASON_CLASSES = (
    ("process improvement ", "process improvement below threshold"),
    ("application improvement ", "application improvement below threshold"),
    ("payback ", "payback exceeds threshold"),
)


def normalize_reason(reason: str) -> str:
    """A rejection reason reduced to its gate class.

    The gate reasons embed the measured numbers (``"payback 9.88
    iterations exceeds threshold 0.5"``), which is right for a single
    record but makes every rejection unique; the breakdown groups them by
    the gate that fired instead.  Unrecognized reasons pass through.
    """
    for prefix, label in _REASON_CLASSES:
        if reason.startswith(prefix):
            return label
    return reason


def rejection_breakdown(ts: TraceSet, *,
                        normalize: bool = True) -> "dict[str, int]":
    """Rejected decision epochs grouped by ``rejected_reason``.

    Sorted by descending count, then reason, so the mapping renders
    deterministically.  An empty reason (no viable proposal existed) is
    reported as ``"(no proposals)"``; ``normalize=False`` keeps the raw
    per-record reason strings instead of gate classes.
    """
    counts: "dict[str, int]" = {}
    for record in ts.records:
        if record.get("kind") != "decision" or record.get("accepted"):
            continue
        reason = record.get("rejected_reason") or "(no proposals)"
        if normalize:
            reason = normalize_reason(reason)
        counts[reason] = counts.get(reason, 0) + 1
    return dict(sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])))


def payback_values(ts: TraceSet) -> "list[float]":
    """Payback distances of every accepted reconfiguration, trace order.

    Swap decisions contribute one value per accepted move; CR-style
    decisions (whole-set migration) contribute their single ``payback``.
    """
    values: "list[float]" = []
    for record in ts.records:
        if record.get("kind") != "decision" or not record.get("accepted"):
            continue
        if "moves" in record:
            values.extend(as_float(m["payback"]) for m in record["moves"])
        elif "payback" in record:
            values.append(as_float(record["payback"]))
    return values


def payback_distribution(ts: TraceSet, bounds=None):
    """The payback distances as an :class:`~repro.obs.metrics.Histogram`.

    Defaults to :data:`repro.obs.PAYBACK_BUCKETS`, matching the live
    ``decision.payback_iterations`` metric bucket for bucket.
    """
    from repro import obs
    from repro.obs.metrics import Histogram

    histogram = Histogram(obs.PAYBACK_BUCKETS if bounds is None else bounds)
    for value in payback_values(ts):
        histogram.observe(value)
    return histogram


def time_to_first_swap(ts: TraceSet) -> "dict[tuple, float | None]":
    """Sim-seconds from run start to the first swap/checkpoint, per row.

    Run start is the first iteration slice's ``start`` (i.e. after
    startup); rows that never adapted map to ``None``.  Rebalances do not
    count -- DLB adapts every iteration by construction.
    """
    out: "dict[tuple, float | None]" = {}
    for key, records in ts.rows().items():
        origin = None
        first = None
        for record in records:
            if (origin is None and record.get("kind") == "iteration"
                    and _slice_bounds(record) is not None):
                origin = float(record["start"])
            if (first is None
                    and record.get("kind") in ("swap", "checkpoint")):
                first = as_float(record["t"])
        if first is None or origin is None:
            out[key] = None
        else:
            out[key] = max(0.0, first - origin)
    return out


def adaptation_overhead(ts: TraceSet) -> "dict[tuple, dict]":
    """Time spent migrating state, per (cell, series) row.

    Sums the *unique* swap/checkpoint slice spans (a multi-move epoch
    emits one coincident slice per move covering the whole serialized
    transfer -- it is counted once) and divides by the row span.
    Returns ``{row: {"overhead": s, "span": s, "fraction": f}}``.
    """
    out: "dict[tuple, dict]" = {}
    for key, records in ts.rows().items():
        sliced = [(r, _slice_bounds(r)) for r in records
                  if _slice_bounds(r) is not None]
        if not sliced:
            continue
        span_start = min(bounds[0] for _r, bounds in sliced)
        span_end = max(bounds[1] for _r, bounds in sliced)
        span = span_end - span_start
        seen: "set[tuple]" = set()
        overhead = 0.0
        for record, (start, end) in sliced:
            if record.get("kind") not in ("swap", "checkpoint"):
                continue
            if (start, end) in seen:
                continue
            seen.add((start, end))
            overhead += end - start
        out[key] = {"overhead": overhead, "span": span,
                    "fraction": overhead / span if span > 0 else 0.0}
    return out


def decision_summary(ts: TraceSet) -> "dict[str, int]":
    """Epoch-level totals: evaluated, accepted, rejected, moves."""
    epochs = accepted = moves = 0
    for record in ts.records:
        if record.get("kind") != "decision":
            continue
        epochs += 1
        if record.get("accepted"):
            accepted += 1
            moves += len(record["moves"]) if "moves" in record else 1
    return {"epochs": epochs, "accepted": accepted,
            "rejected": epochs - accepted, "moves": moves}


# -- invariant linter --------------------------------------------------------


@dataclass(frozen=True)
class LintFinding:
    """One violated trace invariant."""

    code: str
    message: str
    cell: "tuple | None" = None
    series: "str | None" = None

    def __str__(self) -> str:
        where = ""
        if self.cell is not None:
            where = f" [{format_cell(self.cell)}"
            if self.series is not None:
                where += f" / {self.series}"
            where += "]"
        return f"{self.code}{where} {self.message}"


def _lint_row_times(key, records, findings) -> None:
    """TL001: ``t`` never decreases along one (cell, series) row."""
    cell, series = key
    previous = None
    for index, record in enumerate(records):
        t = as_float(record["t"])
        if math.isnan(t):
            findings.append(LintFinding(
                "TL001", f"record {index} has NaN timestamp", cell, series))
            continue
        if previous is not None and t < previous - _SLICE_TOL:
            findings.append(LintFinding(
                "TL001", f"record {index} ({record.get('kind')}) at "
                f"t={t:g} precedes t={previous:g}", cell, series))
        previous = t


def _lint_swap_provenance(key, records, findings) -> None:
    """TL002: swaps/checkpoints follow an accepting decision epoch."""
    cell, series = key
    accepted_iterations: "set" = set()
    for record in records:
        kind = record.get("kind")
        if kind == "decision" and record.get("accepted"):
            accepted_iterations.add(record.get("iteration"))
        elif kind in ("swap", "checkpoint"):
            if record.get("iteration") not in accepted_iterations:
                findings.append(LintFinding(
                    "TL002", f"{kind} at iteration "
                    f"{record.get('iteration')} has no preceding accepted "
                    f"decision epoch", cell, series))


def _lint_slice_overlap(key, records, findings) -> None:
    """TL003: slices on one row never overlap (batch duplicates aside)."""
    cell, series = key
    slices = sorted(bounds for bounds in map(_slice_bounds, records)
                    if bounds is not None)
    for (s0, e0), (s1, e1) in zip(slices, slices[1:]):
        if (s1, e1) == (s0, e0):  # coincident batch-swap slices
            continue
        if s1 < e0 - _SLICE_TOL:
            findings.append(LintFinding(
                "TL003", f"slice [{s1:g}, {e1:g}] overlaps "
                f"[{s0:g}, {e0:g}]", cell, series))


def _resolves_revocation(record: dict, host) -> bool:
    """Whether ``record`` accounts for a revocation of ``host``."""
    kind = record.get("kind")
    if kind == "fault.stall":
        return record.get("host") == host
    if kind == "fault.recovery":
        return (record.get("host") == host
                or record.get("out_host") == host
                or host in record.get("hosts", ()))
    return False


def _lint_fault_accounting(key, records, findings) -> None:
    """TL007: a revocation is later recovered from or declared a stall.

    Strategies emit ``fault.revocation`` only when a revocation hits a
    host they are actively computing on, so every such record must be
    resolved -- in the same row, at the same or a later position -- by a
    ``fault.recovery`` (promotion, restart, repartition, or a host
    return that resolved it) or a declared ``fault.stall`` naming the
    same host.
    """
    cell, series = key
    for index, record in enumerate(records):
        if record.get("kind") != "fault.revocation":
            continue
        host = record.get("host")
        if not any(_resolves_revocation(later, host)
                   for later in records[index + 1:]):
            findings.append(LintFinding(
                "TL007", f"revocation of host {host} at "
                f"t={as_float(record['t']):g} (record {index}) has no "
                f"subsequent recovery or declared stall", cell, series))


_GATE_KEYS = ("gate", "accepted", "reason", "out_host", "in_host")


def _lint_gate_trail(record, index, findings) -> None:
    """TL004: decision records carry a complete, consistent gate trail.

    ``decide_swaps`` commits the longest *prefix* of proposed moves whose
    cumulative application gate passed, so a committed move may itself
    carry an ``application``-rejected gate entry -- the invariants are
    that the moves match the first ``len(moves)`` application-level gate
    entries pairwise, and that the committed prefix ends at an
    ``accepted`` gate.
    """
    cell = cell_key(record)
    series = record.get("series")
    accepted = record.get("accepted")
    if "gates" in record:  # batch swap decision
        moves = record.get("moves", [])
        if accepted != bool(moves):
            findings.append(LintFinding(
                "TL004", f"decision {index}: accepted={accepted!r} but "
                f"{len(moves)} moves", cell, series))
        for gate in record["gates"]:
            missing = [k for k in _GATE_KEYS if k not in gate]
            if missing:
                findings.append(LintFinding(
                    "TL004", f"decision {index}: gate entry missing "
                    f"{missing}", cell, series))
        candidate_gates = [g for g in record["gates"]
                           if g.get("gate") in ("application", "accepted")]
        if len(moves) > len(candidate_gates):
            findings.append(LintFinding(
                "TL004", f"decision {index}: {len(moves)} moves but only "
                f"{len(candidate_gates)} application-level gate entries",
                cell, series))
        else:
            for move, gate in zip(moves, candidate_gates):
                if (move.get("out_host"), move.get("in_host")) != \
                        (gate.get("out_host"), gate.get("in_host")):
                    findings.append(LintFinding(
                        "TL004", f"decision {index}: move "
                        f"h{move.get('out_host')}->h{move.get('in_host')} "
                        f"does not match its gate entry", cell, series))
            if moves and not candidate_gates[len(moves) - 1].get("accepted"):
                findings.append(LintFinding(
                    "TL004", f"decision {index}: committed prefix of "
                    f"{len(moves)} moves does not end at an accepting "
                    f"gate", cell, series))
        if not accepted and record["gates"] \
                and not record.get("rejected_reason"):
            findings.append(LintFinding(
                "TL004", f"decision {index}: rejected with gate trail but "
                f"empty rejected_reason", cell, series))
    else:  # CR-style whole-set check
        if not accepted and not record.get("rejected_reason"):
            findings.append(LintFinding(
                "TL004", f"decision {index}: rejected without a reason",
                cell, series))


def _counter_value(payload: dict, name: str) -> float:
    value = payload.get("counters", {}).get(name, 0.0)
    return float(value)


def _lint_metrics(ts: TraceSet, metrics, findings) -> None:
    """TL005: the metrics registry agrees with the trace itself."""
    payload = metrics.to_dict() if hasattr(metrics, "to_dict") else metrics
    summary = decision_summary(ts)
    checks = (
        ("decision.epochs_total", summary["epochs"]),
        ("decision.epochs_rejected_total", summary["rejected"]),
        ("decision.moves_total",
         sum(len(r["moves"]) for r in ts.records
             if r.get("kind") == "decision" and "moves" in r)),
        ("strategy.iterations_total",
         sum(1 for r in ts.records if r.get("kind") == "iteration")),
    )
    for name, expected in checks:
        got = _counter_value(payload, name)
        if got != float(expected):
            findings.append(LintFinding(
                "TL005", f"counter {name}={got:g} but the trace implies "
                f"{expected}"))
    histogram = payload.get("histograms", {}).get(
        "decision.payback_iterations")
    expected_observations = len(payback_values(ts))
    if histogram is not None and int(histogram["count"]) \
            != expected_observations:
        findings.append(LintFinding(
            "TL005", f"histogram decision.payback_iterations counts "
            f"{histogram['count']} observations but the trace has "
            f"{expected_observations} accepted paybacks"))


def lint(ts: TraceSet, metrics=None) -> "list[LintFinding]":
    """Check every TL invariant; an empty list means the trace is clean.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry` or its
    ``to_dict`` payload) enables the TL005 cross-consistency checks; it
    must come from the same run as the trace.
    """
    findings: "list[LintFinding]" = []
    for bad in ts.bad_lines:
        findings.append(LintFinding(
            "TL006", f"line {bad.number} unparseable ({bad.error}): "
            f"{bad.text!r}"))
    for key, records in ts.rows().items():
        _lint_row_times(key, records, findings)
        _lint_swap_provenance(key, records, findings)
        _lint_slice_overlap(key, records, findings)
        _lint_fault_accounting(key, records, findings)
    for index, record in enumerate(ts.records):
        if record.get("kind") == "decision":
            _lint_gate_trail(record, index, findings)
    if metrics is not None:
        _lint_metrics(ts, metrics, findings)
    return findings


# -- one-call analysis -------------------------------------------------------


def analyze(ts: TraceSet, metrics=None) -> dict:
    """Every derived analytic plus lint findings, as one plain dict.

    The payload :mod:`repro.obs.report` renders; also convenient for
    ad-hoc notebook-style inspection.  Deterministic for a given trace.
    """
    return {
        "kinds": ts.kinds(),
        "cells": ts.cells(),
        "series": ts.series_names(),
        "decisions": decision_summary(ts),
        "rejections": rejection_breakdown(ts),
        "payback": payback_distribution(ts).to_payload(),
        "utilization": host_utilization(ts),
        "timeline": timeline(ts),
        "time_to_first_swap": time_to_first_swap(ts),
        "overhead": adaptation_overhead(ts),
        "findings": lint(ts, metrics),
    }
