"""Kernel hook API: observe the simulator without touching its hot path.

:class:`SimHooks` is the interface the :class:`~repro.simkernel.engine.
Simulator` calls at its four instrumentation points.  The engine holds a
``hooks`` attribute that defaults to ``None``; the entire cost of a
disabled trace is one ``is not None`` check per scheduling operation, and
no hook object ever exists unless an observation session asked for one.

Hook callbacks receive plain values (times, sequence numbers, names) --
never event objects -- so implementations cannot accidentally retain or
mutate kernel state, and the emitted records are picklable and
byte-stable (sequence numbers are per-simulator and deterministic,
unlike ``id()``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import ObsSession


class SimHooks:
    """No-op base class; subclass and override what you need."""

    def event_scheduled(self, now: float, when: float, priority: int,
                        seq: int, event_type: str) -> None:
        """An event was pushed onto the heap for time ``when``."""

    def event_fired(self, when: float, seq: int, event_type: str) -> None:
        """The event scheduled as ``seq`` was popped and processed."""

    def process_started(self, now: float, name: str) -> None:
        """A coroutine process was created."""

    def process_ended(self, now: float, name: str, ok: bool) -> None:
        """A coroutine process terminated (``ok=False``: with an error)."""


class TraceHooks(SimHooks):
    """Emit kernel records and counters into an observation session."""

    def __init__(self, session: "ObsSession") -> None:
        self.session = session

    def event_scheduled(self, now: float, when: float, priority: int,
                        seq: int, event_type: str) -> None:
        self.session.trace.emit("kernel.event_scheduled", now, when=when,
                                priority=priority, seq=seq,
                                event_type=event_type)
        self.session.metrics.counter("kernel.events_scheduled_total").inc()

    def event_fired(self, when: float, seq: int, event_type: str) -> None:
        self.session.trace.emit("kernel.event_fired", when, seq=seq,
                                event_type=event_type)
        self.session.metrics.counter("kernel.events_fired_total").inc()

    def process_started(self, now: float, name: str) -> None:
        self.session.trace.emit("kernel.process_started", now, process=name)
        self.session.metrics.counter("kernel.processes_started_total").inc()

    def process_ended(self, now: float, name: str, ok: bool) -> None:
        self.session.trace.emit("kernel.process_ended", now, process=name,
                                ok=ok)
        self.session.metrics.counter("kernel.processes_ended_total").inc()
