"""repro.obs -- deterministic run-trace and metrics observability.

The paper's contribution is *why* a policy swaps or declines at each
epoch; this package makes that visible.  It has three layers:

* :mod:`repro.obs.trace` -- :class:`TraceRecorder`: structured records
  in execution order, exported as JSONL or Chrome trace-event JSON.
  All timestamps are simulated time, so traces are byte-stable.
* :mod:`repro.obs.metrics` -- :class:`MetricsRegistry`: counters,
  gauges, histograms with a deterministic merge.
* :mod:`repro.obs.hooks` -- :class:`SimHooks`: the kernel's
  instrumentation points (event scheduled/fired, process start/stop).
* :mod:`repro.obs.analyze` -- :class:`TraceSet`: load traces back into
  records, query them, derive analytics, and :func:`lint` the TL
  invariants (TL001-TL007).
* :mod:`repro.obs.report` -- deterministic Markdown run reports and the
  swap-Gantt SVG (also ``python -m repro.obs report``).

An :class:`ObsSession` bundles one recorder and one registry.  Code that
wants to *emit* never handles a session directly: it calls the module
helpers (:func:`emit`, :func:`count`, :func:`observe_value`), which are
no-ops unless a session has been activated with :func:`observing`.  The
disabled cost is a single module-global read per call site, and --
guarded by ``benchmarks/test_obs_overhead.py`` -- a disabled run records
exactly zero events.

Usage::

    session = ObsSession()
    with observing(session):
        strategy.run(platform, app)
    session.trace.write_jsonl("trace.jsonl")
    session.metrics.write_json("metrics.json")
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.analyze import (TRACE_RULES, LintFinding, TraceSet, analyze,
                               lint)
from repro.obs.hooks import SimHooks, TraceHooks
from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry
from repro.obs.report import write_report
from repro.obs.runtime import (ProgressTicker, RunTelemetry, RuntimeRecorder,
                               SpanSet, fleet_timeline, prometheus_text,
                               wall_stats, wall_summary)
from repro.obs.trace import TraceRecorder, jsonable

__all__ = [
    "DEFAULT_BUCKETS", "LintFinding", "MetricsRegistry", "ObsSession",
    "PAYBACK_BUCKETS", "ProgressTicker", "RunTelemetry", "RuntimeRecorder",
    "SimHooks", "SpanSet", "TRACE_RULES", "TraceHooks", "TraceRecorder",
    "TraceSet", "active", "analyze", "count", "emit", "emit_check",
    "emit_decision", "emitted_total", "fleet_timeline", "gauge", "jsonable",
    "kernel_hooks", "lint", "observe_value", "observing", "prometheus_text",
    "wall_stats", "wall_summary", "write_report",
]

#: Bucket bounds for payback-distance histograms (iterations; the
#: implicit overflow bucket absorbs ``+inf`` = "never recouped").
PAYBACK_BUCKETS = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


class ObsSession:
    """One trace recorder plus one metrics registry."""

    def __init__(self) -> None:
        self.trace = TraceRecorder()
        self.metrics = MetricsRegistry()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<ObsSession {len(self.trace)} records, "
                f"{len(self.metrics)} metrics>")


#: The currently active session (module-level so instrumentation sites
#: need no plumbing).  Mutated only by :func:`observing`.
_ACTIVE: "ObsSession | None" = None

#: Total records emitted through :func:`emit` by this process -- the
#: "zero events when disabled" benchmark assertion reads this.
_EMITTED_TOTAL = [0]


def active() -> "ObsSession | None":
    """The session instrumentation currently emits into, or ``None``."""
    return _ACTIVE


@contextmanager
def observing(session: ObsSession) -> Iterator[ObsSession]:
    """Activate ``session`` for the duration of the block (re-entrant:
    the previous session, if any, is restored on exit)."""
    global _ACTIVE
    previous = _ACTIVE
    # The ambient session is per-process by design: each executor worker
    # activates its own session inside its own interpreter, and the
    # parent merges trace files afterwards.
    _ACTIVE = session  # simflow: disable=SF001
    try:
        yield session
    finally:
        _ACTIVE = previous  # simflow: disable=SF001


def emitted_total() -> int:
    """Records emitted through :func:`emit` in this process so far."""
    return _EMITTED_TOTAL[0]


def emit(kind: str, t: float, **fields: Any) -> None:
    """Emit one trace record into the active session (no-op if none)."""
    session = _ACTIVE
    if session is None:
        return
    session.trace.emit(kind, t, **fields)
    # Per-process diagnostics counter, never read by sim logic.
    _EMITTED_TOTAL[0] += 1  # simflow: disable=SF001


def count(name: str, amount: float = 1.0) -> None:
    """Increment a counter in the active session (no-op if none)."""
    session = _ACTIVE
    if session is None:
        return
    session.metrics.counter(name).inc(amount)


def gauge(name: str, value: float) -> None:
    """Set a gauge in the active session (no-op if none)."""
    session = _ACTIVE
    if session is None:
        return
    session.metrics.gauge(name).set(value)


def observe_value(name: str, value: float,
                  bounds=DEFAULT_BUCKETS) -> None:
    """Observe into a histogram in the active session (no-op if none)."""
    session = _ACTIVE
    if session is None:
        return
    session.metrics.histogram(name, bounds).observe(value)


def emit_decision(t: float, *, source: str, iteration: int, policy: str,
                  decision: Any, active, spares) -> None:
    """Emit one swap decision epoch: the full gate trail, the accepted
    moves, and the reason the batch ended.

    ``decision`` is a :class:`repro.core.decision.SwapDecision`
    (duck-typed here so the core stays free of observability imports).
    No-op unless a session is observing.
    """
    session = _ACTIVE
    if session is None:
        return
    moves = [{"out_host": m.out_host, "in_host": m.in_host,
              "process_improvement": m.process_improvement,
              "app_improvement": m.app_improvement,
              "payback": m.payback} for m in decision.moves]
    session.trace.emit(
        "decision", t, source=source, iteration=iteration, policy=policy,
        active=list(active), spares=list(spares),
        old_iteration_time=decision.old_iteration_time,
        new_iteration_time=decision.new_iteration_time,
        accepted=bool(decision.moves),
        rejected_reason=decision.rejected_reason,
        moves=moves, gates=[g.to_record() for g in decision.gates])
    # Per-process diagnostics counter, never read by sim logic.
    _EMITTED_TOTAL[0] += 1  # simflow: disable=SF001
    metrics = session.metrics
    metrics.counter("decision.epochs_total").inc()
    metrics.counter("decision.gates_evaluated_total").inc(
        len(decision.gates))
    if decision.moves:
        metrics.counter("decision.moves_total").inc(len(decision.moves))
        for move in decision.moves:
            metrics.histogram("decision.payback_iterations",
                              PAYBACK_BUCKETS).observe(move.payback)
    else:
        metrics.counter("decision.epochs_rejected_total").inc()


def emit_check(t: float, *, source: str, iteration: int, policy: str,
               check: Any, cost: float, active, candidate) -> None:
    """Emit one whole-set reconfiguration check (the CR strategy's gate).

    ``check`` is a :class:`repro.core.decision.ReconfigurationCheck`.
    No-op unless a session is observing.
    """
    session = _ACTIVE
    if session is None:
        return
    session.trace.emit(
        "decision", t, source=source, iteration=iteration, policy=policy,
        active=list(active), candidate=list(candidate), cost=cost,
        accepted=check.accepted, rejected_reason=check.reason,
        app_improvement=check.app_improvement, payback=check.payback)
    # Per-process diagnostics counter, never read by sim logic.
    _EMITTED_TOTAL[0] += 1  # simflow: disable=SF001
    metrics = session.metrics
    metrics.counter("decision.epochs_total").inc()
    if check.accepted:
        metrics.histogram("decision.payback_iterations",
                          PAYBACK_BUCKETS).observe(check.payback)
    else:
        metrics.counter("decision.epochs_rejected_total").inc()


def kernel_hooks() -> "TraceHooks | None":
    """Hooks for a new :class:`~repro.simkernel.engine.Simulator`, bound
    to the active session -- or ``None`` (keep the kernel unhooked) when
    nothing is observing."""
    session = _ACTIVE
    if session is None:
        return None
    return TraceHooks(session)
