"""Counters, gauges, and histograms with a deterministic merge.

The registry mirrors the usual monitoring vocabulary but is built for
*simulation* observability: no wall clock, no sampling, no background
threads.  Values are exact, exports are key-sorted JSON, and
:meth:`MetricsRegistry.merge` is associative over the executor's
grid-ordered per-cell payloads, so a merged sweep registry is
byte-identical regardless of worker count or cache state.

Merge semantics:

* counter -- values add;
* gauge -- last write wins (the *later* cell in grid order);
* histogram -- bucket counts, sums and observation counts add; min/max
  combine; bucket bounds must agree.
"""

from __future__ import annotations

import json
import math
from typing import Iterable

from repro.errors import ObservabilityError
from repro.obs.trace import jsonable

#: Default histogram bucket upper bounds (the last bucket is +inf).
DEFAULT_BUCKETS = (0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0)


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counters only go up; got inc({amount})")
        self.value += amount

    def to_payload(self) -> float:
        return self.value


class Gauge:
    """A point-in-time value (last write wins on merge)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: "float | None" = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def to_payload(self) -> "float | None":
        return self.value


class Histogram:
    """Fixed-bucket distribution of observed values.

    ``bounds`` are inclusive upper edges; one implicit overflow bucket
    catches everything above the last bound (including ``+inf``
    observations, which the payback metric produces by design).
    """

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, bounds: "Iterable[float]" = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(float(b) for b in bounds)
        if not self.bounds:
            raise ObservabilityError("histogram needs at least one bound")
        if list(self.bounds) != sorted(self.bounds):
            raise ObservabilityError(
                f"histogram bounds must be sorted, got {self.bounds}")
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ObservabilityError("cannot observe NaN")
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.bucket_counts[index] += 1
        self.count += 1
        if math.isfinite(value):
            self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        """Sum of finite observations over total count (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def to_payload(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "buckets": list(self.bucket_counts),
            "count": self.count,
            "sum": jsonable(self.total),
            "min": jsonable(self.min) if self.count else None,
            "max": jsonable(self.max) if self.count else None,
        }


class MetricsRegistry:
    """Named metrics, created on first use, exported as sorted JSON."""

    def __init__(self) -> None:
        self.counters: "dict[str, Counter]" = {}
        self.gauges: "dict[str, Gauge]" = {}
        self.histograms: "dict[str, Histogram]" = {}

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self.histograms)

    def counter(self, name: str) -> Counter:
        try:
            return self.counters[name]
        except KeyError:
            counter = self.counters[name] = Counter()
            return counter

    def gauge(self, name: str) -> Gauge:
        try:
            return self.gauges[name]
        except KeyError:
            gauge = self.gauges[name] = Gauge()
            return gauge

    def histogram(self, name: str,
                  bounds: "Iterable[float]" = DEFAULT_BUCKETS) -> Histogram:
        try:
            histogram = self.histograms[name]
        except KeyError:
            histogram = self.histograms[name] = Histogram(bounds)
            return histogram
        if histogram.bounds != tuple(float(b) for b in bounds):
            raise ObservabilityError(
                f"histogram {name!r} re-declared with different bounds")
        return histogram

    # -- merge / export --------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready payload, every level key-sorted."""
        return {
            "counters": {name: self.counters[name].to_payload()
                         for name in sorted(self.counters)},
            "gauges": {name: jsonable(self.gauges[name].to_payload())
                       for name in sorted(self.gauges)},
            "histograms": {name: self.histograms[name].to_payload()
                           for name in sorted(self.histograms)},
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def write_json(self, path) -> None:
        from pathlib import Path

        Path(path).write_text(self.to_json())

    def merge_dict(self, payload: dict) -> None:
        """Fold one :meth:`to_dict` payload into this registry.

        This is how per-cell metrics cross process boundaries: workers
        ship plain dicts, the executor folds them in grid order.
        """
        for name, value in payload.get("counters", {}).items():
            self.counter(name).inc(float(value))
        for name, value in payload.get("gauges", {}).items():
            if value is not None:
                if isinstance(value, str):  # "inf"/"-inf"/"nan" spellings
                    value = float(value)
                self.gauge(name).set(value)
        for name, data in payload.get("histograms", {}).items():
            incoming_bounds = tuple(float(b) for b in data["bounds"])
            histogram = self.histogram(name, incoming_bounds)
            if histogram.bounds != incoming_bounds:
                raise ObservabilityError(
                    f"histogram {name!r} merged with different bounds")
            for i, count in enumerate(data["buckets"]):
                histogram.bucket_counts[i] += int(count)
            histogram.count += int(data["count"])
            total = data["sum"]
            histogram.total += (float(total) if isinstance(total, str)
                                else total)
            for attr, combine in (("min", min), ("max", max)):
                value = data.get(attr)
                if value is not None:
                    if isinstance(value, str):
                        value = float(value)
                    setattr(histogram, attr,
                            combine(getattr(histogram, attr), value))

    def merge(self, other: "MetricsRegistry") -> None:
        self.merge_dict(other.to_dict())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<MetricsRegistry {len(self.counters)} counters, "
                f"{len(self.gauges)} gauges, "
                f"{len(self.histograms)} histograms>")
