"""Unit constants and helpers.

All quantities in this package use SI base units: seconds, bytes,
flop (floating-point operations), flop/s, bytes/s.  These constants make
call sites read like the paper ("process size 100 MB", "1-5 minute
iterations", "hundreds of megaflops").
"""

from __future__ import annotations

# -- data sizes (bytes) --------------------------------------------------
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

KIB = 1 << 10
MIB = 1 << 20
GIB = 1 << 30

# -- time (seconds) ------------------------------------------------------
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0

# -- compute rates (flop/s) ----------------------------------------------
MFLOPS = 1e6
GFLOPS = 1e9

# -- transfer rates (bytes/s) ----------------------------------------------
# Numerically equal to the byte constants, but dimensionally distinct:
# a link bandwidth is bytes/s, and simflow's SF005 dataflow tracks the
# difference (bytes / bytes-per-second = seconds).
KB_S = float(KB)
MB_S = float(MB)
GB_S = float(GB)


def format_bytes(n: float) -> str:
    """Human-readable byte count, e.g. ``format_bytes(2.5e8) == '250.0 MB'``."""
    n = float(n)
    for unit, name in ((GB, "GB"), (MB, "MB"), (KB, "KB")):
        if abs(n) >= unit:
            return f"{n / unit:.1f} {name}"
    return f"{n:.0f} B"


def format_duration(seconds: float) -> str:
    """Human-readable duration, e.g. ``format_duration(3700) == '1h01m40s'``."""
    seconds = float(seconds)
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < MINUTE:
        return f"{seconds:.2f}s"
    if seconds < HOUR:
        m, s = divmod(seconds, MINUTE)
        return f"{int(m)}m{s:04.1f}s"
    h, rem = divmod(seconds, HOUR)
    m, s = divmod(rem, MINUTE)
    return f"{int(h)}h{int(m):02d}m{s:02.0f}s"
