"""Replicated, seeded execution of experiment sweeps.

For each x value and each seed, the scenario builder constructs one
platform (one sampled environment) and every variant runs on it
back-to-back -- identical load traces across competing strategies, the
property the paper's simulation methodology exists to provide.

Cell scheduling (serial, parallel, cached) lives in
:mod:`repro.experiments.executor`; this module owns the result model and
the public :func:`run_sweep` entry point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import ExperimentError
from repro.experiments.scenarios import ExperimentSpec


@dataclass
class SeriesStats:
    """Per-x-value statistics of one variant's makespans."""

    mean: "list[float]" = field(default_factory=list)
    std: "list[float]" = field(default_factory=list)
    raw: "list[list[float]]" = field(default_factory=list)
    swap_counts: "list[float]" = field(default_factory=list)
    """Mean swaps (or restarts, for CR) per run at each x value."""


@dataclass
class SweepResult:
    """Everything a report or bench needs from one sweep."""

    name: str
    title: str
    xlabel: str
    x_values: "list[float]"
    series: "dict[str, SeriesStats]"
    seeds: "list[int]"
    paper_claim: str = ""

    def series_names(self) -> "list[str]":
        return list(self.series)

    def mean_of(self, name: str) -> "list[float]":
        if name not in self.series:
            raise ExperimentError(
                f"no series {name!r}; have {sorted(self.series)}")
        return self.series[name].mean

    def ratio_to(self, name: str, baseline: str = "nothing") -> "list[float]":
        """Per-x ratio of a series to the baseline (lower = better)."""
        base = self.mean_of(baseline)
        target = self.mean_of(name)
        return [t / b for t, b in zip(target, base)]

    def best_improvement(self, name: str,
                         baseline: str = "nothing") -> float:
        """Largest relative gain of ``name`` over the baseline across x."""
        return max(1.0 - r for r in self.ratio_to(name, baseline))

    # -- export -----------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-serializable record of the whole sweep."""
        return {
            "name": self.name,
            "title": self.title,
            "xlabel": self.xlabel,
            "x_values": list(self.x_values),
            "seeds": list(self.seeds),
            "paper_claim": self.paper_claim,
            "series": {
                label: {
                    "mean": stats.mean,
                    "std": stats.std,
                    "raw": stats.raw,
                    "swap_counts": stats.swap_counts,
                }
                for label, stats in self.series.items()
            },
        }

    def to_json(self, path) -> None:
        """Write :meth:`to_dict` to ``path`` as JSON."""
        import json
        from pathlib import Path

        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    def to_csv(self, path) -> None:
        """Write one row per x value: mean and std of every series."""
        import csv

        names = self.series_names()
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            header = ["x"]
            for name in names:
                header += [f"{name}_mean", f"{name}_std",
                           f"{name}_swaps"]
            writer.writerow(header)
            for i, x in enumerate(self.x_values):
                row = [x]
                for name in names:
                    stats = self.series[name]
                    row += [stats.mean[i], stats.std[i],
                            stats.swap_counts[i]]
                writer.writerow(row)

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepResult":
        """Inverse of :meth:`to_dict`."""
        series = {
            label: SeriesStats(mean=list(data["mean"]),
                               std=list(data["std"]),
                               raw=[list(r) for r in data["raw"]],
                               swap_counts=list(data["swap_counts"]))
            for label, data in payload["series"].items()
        }
        return cls(name=payload["name"], title=payload["title"],
                   xlabel=payload["xlabel"],
                   x_values=list(payload["x_values"]), series=series,
                   seeds=list(payload["seeds"]),
                   paper_claim=payload.get("paper_claim", ""))


def run_sweep(spec: ExperimentSpec,
              seeds: "Sequence[int] | int | None" = None,
              on_point: "Callable[[float, int], None] | None" = None,
              *,
              jobs: int = 1,
              cache_dir=None,
              obs_session=None,
              ) -> SweepResult:
    """Run a full sweep and aggregate makespans per (x, series).

    Delegates to :func:`repro.experiments.executor.execute_sweep`; the
    ``jobs=1`` default executes every cell in-process, in grid order (the
    reference implementation), and the result is bit-identical for any
    ``jobs`` / cache configuration.

    Parameters
    ----------
    spec:
        The scenario to run.
    seeds:
        Either an iterable of seeds, an int (``range(seeds)``), or None
        (``range(spec.default_seeds)``).
    on_point:
        Optional progress callback invoked as ``on_point(x, seed)`` once
        per (x, seed) cell (used by the CLI for progress output).
    jobs:
        Worker processes for cell execution (``>1`` fans cells out over a
        process pool; the spec's builder must then be picklable).
    cache_dir:
        Root directory of the content-addressed cell cache, or None (the
        default) to disable caching.
    obs_session:
        Optional :class:`repro.obs.ObsSession` that receives the run's
        trace records and metrics, merged in grid order (see
        docs/OBSERVABILITY.md).
    """
    from repro.experiments.executor import execute_sweep

    result, _timing = execute_sweep(spec, seeds=seeds, jobs=jobs,
                                    cache_dir=cache_dir, on_point=on_point,
                                    obs_session=obs_session)
    return result
