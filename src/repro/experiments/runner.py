"""Replicated, seeded execution of experiment sweeps.

For each x value and each seed, the scenario builder constructs one
platform (one sampled environment) and every variant runs on it
back-to-back -- identical load traces across competing strategies, the
property the paper's simulation methodology exists to provide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.errors import ExperimentError
from repro.experiments.scenarios import ExperimentSpec
from repro.strategies.base import ExecutionResult


@dataclass
class SeriesStats:
    """Per-x-value statistics of one variant's makespans."""

    mean: "list[float]" = field(default_factory=list)
    std: "list[float]" = field(default_factory=list)
    raw: "list[list[float]]" = field(default_factory=list)
    swap_counts: "list[float]" = field(default_factory=list)
    """Mean swaps (or restarts, for CR) per run at each x value."""


@dataclass
class SweepResult:
    """Everything a report or bench needs from one sweep."""

    name: str
    title: str
    xlabel: str
    x_values: "list[float]"
    series: "dict[str, SeriesStats]"
    seeds: "list[int]"
    paper_claim: str = ""

    def series_names(self) -> "list[str]":
        return list(self.series)

    def mean_of(self, name: str) -> "list[float]":
        if name not in self.series:
            raise ExperimentError(
                f"no series {name!r}; have {sorted(self.series)}")
        return self.series[name].mean

    def ratio_to(self, name: str, baseline: str = "nothing") -> "list[float]":
        """Per-x ratio of a series to the baseline (lower = better)."""
        base = self.mean_of(baseline)
        target = self.mean_of(name)
        return [t / b for t, b in zip(target, base)]

    def best_improvement(self, name: str,
                         baseline: str = "nothing") -> float:
        """Largest relative gain of ``name`` over the baseline across x."""
        return max(1.0 - r for r in self.ratio_to(name, baseline))

    # -- export -----------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-serializable record of the whole sweep."""
        return {
            "name": self.name,
            "title": self.title,
            "xlabel": self.xlabel,
            "x_values": list(self.x_values),
            "seeds": list(self.seeds),
            "paper_claim": self.paper_claim,
            "series": {
                label: {
                    "mean": stats.mean,
                    "std": stats.std,
                    "raw": stats.raw,
                    "swap_counts": stats.swap_counts,
                }
                for label, stats in self.series.items()
            },
        }

    def to_json(self, path) -> None:
        """Write :meth:`to_dict` to ``path`` as JSON."""
        import json
        from pathlib import Path

        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    def to_csv(self, path) -> None:
        """Write one row per x value: mean and std of every series."""
        import csv

        names = self.series_names()
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            header = ["x"]
            for name in names:
                header += [f"{name}_mean", f"{name}_std",
                           f"{name}_swaps"]
            writer.writerow(header)
            for i, x in enumerate(self.x_values):
                row = [x]
                for name in names:
                    stats = self.series[name]
                    row += [stats.mean[i], stats.std[i],
                            stats.swap_counts[i]]
                writer.writerow(row)

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepResult":
        """Inverse of :meth:`to_dict`."""
        series = {
            label: SeriesStats(mean=list(data["mean"]),
                               std=list(data["std"]),
                               raw=[list(r) for r in data["raw"]],
                               swap_counts=list(data["swap_counts"]))
            for label, data in payload["series"].items()
        }
        return cls(name=payload["name"], title=payload["title"],
                   xlabel=payload["xlabel"],
                   x_values=list(payload["x_values"]), series=series,
                   seeds=list(payload["seeds"]),
                   paper_claim=payload.get("paper_claim", ""))


def run_sweep(spec: ExperimentSpec,
              seeds: "Sequence[int] | int | None" = None,
              on_point: "Callable[[float, int], None] | None" = None,
              ) -> SweepResult:
    """Run a full sweep and aggregate makespans per (x, series).

    Parameters
    ----------
    spec:
        The scenario to run.
    seeds:
        Either an iterable of seeds, an int (``range(seeds)``), or None
        (``range(spec.default_seeds)``).
    on_point:
        Optional progress callback invoked as ``on_point(x, seed)`` before
        each (x, seed) cell (used by the CLI for progress output).
    """
    if seeds is None:
        seeds = range(spec.default_seeds)
    elif isinstance(seeds, int):
        seeds = range(seeds)
    seed_list = list(seeds)
    if not seed_list:
        raise ExperimentError("need at least one seed")

    series: "dict[str, SeriesStats]" = {}
    for x in spec.x_values:
        per_series_makespans: "dict[str, list[float]]" = {}
        per_series_events: "dict[str, list[float]]" = {}
        for seed in seed_list:
            if on_point is not None:
                on_point(x, seed)
            platform, variants = spec.build(x, seed)
            labels = [label for label, _app, _s in variants]
            if len(set(labels)) != len(labels):
                raise ExperimentError(
                    f"{spec.name}: duplicate variant labels {labels}")
            for label, app, strategy in variants:
                result: ExecutionResult = strategy.run(platform, app)
                per_series_makespans.setdefault(label, []).append(
                    result.makespan)
                per_series_events.setdefault(label, []).append(
                    float(result.swap_count + result.restart_count))
        for label, makespans in per_series_makespans.items():
            stats = series.setdefault(label, SeriesStats())
            stats.mean.append(float(np.mean(makespans)))
            stats.std.append(float(np.std(makespans)))
            stats.raw.append(makespans)
            stats.swap_counts.append(float(np.mean(per_series_events[label])))

    lengths = {label: len(s.mean) for label, s in series.items()}
    if len(set(lengths.values())) != 1:  # pragma: no cover - defensive
        raise ExperimentError(
            f"{spec.name}: ragged series lengths {lengths} -- a variant "
            f"was not produced at every x value")

    return SweepResult(name=spec.name, title=spec.title, xlabel=spec.xlabel,
                       x_values=list(spec.x_values), series=series,
                       seeds=seed_list, paper_claim=spec.paper_claim)
