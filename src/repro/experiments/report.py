"""Rendering sweep results as tables and ASCII charts.

The benches print these for every figure so the regenerated series can be
compared against the paper's plots at a glance.
"""

from __future__ import annotations

from repro.experiments.runner import SweepResult


def _fmt_x(x: float) -> str:
    # Spell non-finite grid points the way repro.obs.trace.jsonable does,
    # so tables and traces agree on the ablation grids.
    if x != x:
        return "nan"
    if x == float("inf"):
        return "inf"
    if x == float("-inf"):
        return "-inf"
    if abs(x) >= 100 or x == int(x):
        return f"{x:g}"
    return f"{x:.2f}"


def format_table(result: SweepResult, baseline: str | None = None,
                 show_events: bool = False) -> str:
    """A fixed-width table: one row per x value, one column per series.

    With ``baseline`` set, each cell also shows the ratio to that series
    (lower than 1.00 = faster than the baseline).
    """
    names = result.series_names()
    width = max(12, max(len(n) for n in names) + 8)
    lines = [result.title, ""]
    header = f"{result.xlabel[:28]:>28} | " + " | ".join(
        f"{n:>{width}}" for n in names)
    lines.append(header)
    lines.append("-" * len(header))
    for i, x in enumerate(result.x_values):
        cells = []
        for name in names:
            mean = result.series[name].mean[i]
            if baseline is not None and baseline in result.series:
                base = result.series[baseline].mean[i]
                if base == 0:
                    cell = f"{mean:9.1f} ( n/a)"
                else:
                    cell = f"{mean:9.1f} ({mean / base:4.2f})"
            else:
                cell = f"{mean:9.1f}"
            if show_events:
                cell += f" [{result.series[name].swap_counts[i]:5.1f}]"
            cells.append(f"{cell:>{width}}")
        lines.append(f"{_fmt_x(x):>28} | " + " | ".join(cells))
    if result.paper_claim:
        lines.append("")
        lines.append(f"paper: {result.paper_claim}")
    return "\n".join(lines)


def ascii_chart(result: SweepResult, height: int = 16,
                width: int = 72) -> str:
    """A rough multi-series ASCII line chart (x left-to-right).

    Each series is drawn with its own glyph; overlapping points show the
    later series' glyph.  Good enough to eyeball crossovers and shapes
    against the paper's figures.
    """
    names = result.series_names()
    glyphs = "o*x+#@%&"
    all_values = [v for n in names for v in result.series[n].mean]
    lo, hi = min(all_values), max(all_values)
    if hi <= lo:
        hi = lo + 1.0
    n_x = len(result.x_values)
    grid = [[" "] * width for _ in range(height)]

    def col_of(i: int) -> int:
        if n_x == 1:
            return width // 2
        return round(i * (width - 1) / (n_x - 1))

    def row_of(value: float) -> int:
        frac = (value - lo) / (hi - lo)
        return (height - 1) - round(frac * (height - 1))

    for s_idx, name in enumerate(names):
        glyph = glyphs[s_idx % len(glyphs)]
        means = result.series[name].mean
        # Connect consecutive points with interpolated glyphs.
        for i in range(n_x - 1):
            c0, c1 = col_of(i), col_of(i + 1)
            v0, v1 = means[i], means[i + 1]
            for c in range(c0, c1 + 1):
                frac = 0.0 if c1 == c0 else (c - c0) / (c1 - c0)
                r = row_of(v0 + frac * (v1 - v0))
                grid[r][c] = glyph
        if n_x == 1:
            grid[row_of(means[0])][col_of(0)] = glyph

    lines = [result.title, ""]
    for r, row in enumerate(grid):
        value = hi - r * (hi - lo) / (height - 1)
        lines.append(f"{value:10.1f} |{''.join(row)}")
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(" " * 12 + f"{_fmt_x(result.x_values[0])} .. "
                 f"{_fmt_x(result.x_values[-1])}  ({result.xlabel})")
    legend = "   ".join(f"{glyphs[i % len(glyphs)]} {name}"
                        for i, name in enumerate(names))
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def shape_summary(result: SweepResult, baseline: str = "nothing") -> str:
    """One line per series: best/worst ratio to the baseline across x."""
    lines = []
    for name in result.series_names():
        if name == baseline or baseline not in result.series:
            continue
        ratios = result.ratio_to(name, baseline)
        lines.append(
            f"{name:>16}: best {min(ratios):.2f}x, worst {max(ratios):.2f}x "
            f"of {baseline} (mean {sum(ratios) / len(ratios):.2f}x)")
    return "\n".join(lines)
