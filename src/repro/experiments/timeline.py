"""ASCII timelines of simulated runs.

Renders which hosts an application occupied over time, with swap and
checkpoint pauses marked -- a quick visual check that a strategy actually
migrated where the numbers say it did.
"""

from __future__ import annotations

from repro.strategies.base import ExecutionResult


def ascii_timeline(result: ExecutionResult, n_hosts: int | None = None,
                   width: int = 72) -> str:
    """One row per host, one column per time slice.

    Glyphs: ``#`` the host ran an iteration, ``=`` the application was
    paused on it for a swap/checkpoint, ``.`` idle (spare or unused).
    """
    if not result.records:
        return "(empty run)"
    if n_hosts is None:
        n_hosts = max(max(record.active) for record in result.records) + 1
    t_end = result.makespan
    if t_end <= 0:
        return "(zero-length run)"

    def col(t: float) -> int:
        return min(width - 1, int(t / t_end * width))

    grid = [["."] * width for _ in range(n_hosts)]
    for record in result.records:
        c0, c1 = col(record.start), col(record.end)
        for host in record.active:
            for c in range(c0, c1 + 1):
                grid[host][c] = "#"
        if record.overhead_after > 0:
            p0, p1 = col(record.end), col(record.end + record.overhead_after)
            for host in record.active:
                for c in range(p0, p1 + 1):
                    grid[host][c] = "="

    lines = [f"host occupancy over {t_end:.0f}s "
             f"(#=computing, ==paused for {result.strategy}, .=idle)"]
    for host in range(n_hosts):
        marker = ">" if host in result.final_active else " "
        lines.append(f"{marker}h{host:02d} |{''.join(grid[host])}")
    lines.append("     +" + "-" * width)
    events = sum(1 for r in result.records if r.event)
    lines.append(f"      0 .. {t_end:.0f}s   "
                 f"{result.swap_count} swaps, {result.restart_count} "
                 f"restarts across {events} pauses")
    return "\n".join(lines)
