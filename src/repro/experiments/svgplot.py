"""Dependency-free SVG line charts of sweep results.

The environment has no plotting stack, so this small renderer writes the
regenerated figures as standalone ``.svg`` files -- one polyline per
series, axes with ticks, and a legend.  ``python -m repro.experiments
fig4 --svg fig4.svg`` produces a file any browser displays.
"""

from __future__ import annotations

from xml.sax.saxutils import escape

from repro.errors import ExperimentError
from repro.experiments.runner import SweepResult

#: Default series colors (colorblind-safe-ish qualitative palette).
PALETTE = ("#0072b2", "#d55e00", "#009e73", "#cc79a7",
           "#e69f00", "#56b4e9", "#000000", "#999999")

_MARGIN_LEFT = 70.0
_MARGIN_RIGHT = 160.0
_MARGIN_TOP = 50.0
_MARGIN_BOTTOM = 55.0


def ticks(lo: float, hi: float, n: int = 5) -> "list[float]":
    """``n`` evenly spaced axis ticks spanning [lo, hi] (one when flat)."""
    if hi <= lo:
        return [lo]
    step = (hi - lo) / (n - 1)
    return [lo + i * step for i in range(n)]


def fmt_tick(value: float) -> str:
    """A tick label with magnitude-dependent precision."""
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:.0f}"
    if abs(value) >= 10:
        return f"{value:.1f}"
    return f"{value:.2f}"


def svg_header(width: int, height: int, title: str) -> "list[str]":
    """The shared document prologue: root element, backdrop, title."""
    return [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="sans-serif" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2:.0f}" y="20" text-anchor="middle" '
        f'font-size="13">{escape(title[:90])}</text>',
    ]


# Backward-compatible private aliases (pre-report internal names).
_ticks = ticks
_fmt = fmt_tick


def render_svg(result: SweepResult, width: int = 720,
               height: int = 420) -> str:
    """The sweep as an SVG document string (makespan vs x, all series)."""
    names = result.series_names()
    if not names:
        raise ExperimentError("no series to plot")
    xs = [float(x) for x in result.x_values]
    finite_xs = [x for x in xs if x != float("inf")]
    if len(finite_xs) != len(xs):
        raise ExperimentError("cannot plot infinite x values")
    x_lo, x_hi = min(xs), max(xs)
    all_y = [v for name in names for v in result.series[name].mean]
    y_lo, y_hi = 0.0, max(all_y) * 1.05

    plot_w = width - _MARGIN_LEFT - _MARGIN_RIGHT
    plot_h = height - _MARGIN_TOP - _MARGIN_BOTTOM

    def px(x: float) -> float:
        if x_hi == x_lo:
            return _MARGIN_LEFT + plot_w / 2
        return _MARGIN_LEFT + (x - x_lo) / (x_hi - x_lo) * plot_w

    def py(y: float) -> float:
        return _MARGIN_TOP + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h

    parts = svg_header(width, height, result.title)

    # Axes and ticks.
    axis = (f'M {_MARGIN_LEFT} {_MARGIN_TOP} '
            f'L {_MARGIN_LEFT} {_MARGIN_TOP + plot_h} '
            f'L {_MARGIN_LEFT + plot_w} {_MARGIN_TOP + plot_h}')
    parts.append(f'<path d="{axis}" stroke="#333" fill="none"/>')
    for tick in ticks(y_lo, y_hi):
        y = py(tick)
        parts.append(f'<line x1="{_MARGIN_LEFT - 4}" y1="{y:.1f}" '
                     f'x2="{_MARGIN_LEFT + plot_w}" y2="{y:.1f}" '
                     f'stroke="#ddd"/>')
        parts.append(f'<text x="{_MARGIN_LEFT - 8}" y="{y + 4:.1f}" '
                     f'text-anchor="end">{fmt_tick(tick)}</text>')
    for tick in ticks(x_lo, x_hi):
        x = px(tick)
        parts.append(f'<line x1="{x:.1f}" y1="{_MARGIN_TOP + plot_h}" '
                     f'x2="{x:.1f}" y2="{_MARGIN_TOP + plot_h + 4}" '
                     f'stroke="#333"/>')
        parts.append(f'<text x="{x:.1f}" y="{_MARGIN_TOP + plot_h + 18:.1f}" '
                     f'text-anchor="middle">{fmt_tick(tick)}</text>')
    parts.append(f'<text x="{_MARGIN_LEFT + plot_w / 2:.0f}" '
                 f'y="{height - 14}" text-anchor="middle">'
                 f'{escape(result.xlabel)}</text>')
    parts.append(f'<text x="18" y="{_MARGIN_TOP + plot_h / 2:.0f}" '
                 f'text-anchor="middle" transform="rotate(-90 18 '
                 f'{_MARGIN_TOP + plot_h / 2:.0f})">execution time [s]</text>')

    # Series polylines, markers and legend.
    for index, name in enumerate(names):
        color = PALETTE[index % len(PALETTE)]
        means = result.series[name].mean
        points = " ".join(f"{px(x):.1f},{py(y):.1f}"
                          for x, y in zip(xs, means))
        parts.append(f'<polyline points="{points}" fill="none" '
                     f'stroke="{color}" stroke-width="2"/>')
        for x, y in zip(xs, means):
            parts.append(f'<circle cx="{px(x):.1f}" cy="{py(y):.1f}" '
                         f'r="3" fill="{color}"/>')
        legend_y = _MARGIN_TOP + 16 * index
        legend_x = _MARGIN_LEFT + plot_w + 12
        parts.append(f'<line x1="{legend_x}" y1="{legend_y:.1f}" '
                     f'x2="{legend_x + 18}" y2="{legend_y:.1f}" '
                     f'stroke="{color}" stroke-width="2"/>')
        parts.append(f'<text x="{legend_x + 24}" y="{legend_y + 4:.1f}">'
                     f'{escape(name)}</text>')

    parts.append("</svg>")
    return "\n".join(parts)


def write_svg(result: SweepResult, path) -> None:
    """Render and write the chart to ``path``."""
    from pathlib import Path

    Path(path).write_text(render_svg(result))
